// One shard of the location-service cluster: a full Middlewhere core (its
// own spatial database, LocationService and concurrent RpcServer) listening
// on its own TCP port, announced in the RegistryServer under
// "location.shard.<i>/<N>" with a TTL heartbeat.
//
// Lifecycle: construct, configure the world through core() (regions,
// sensors — the same setup every shard of a cluster must share so fused
// answers match the single-process oracle), then start(). start() binds the
// port, announces, and spawns the heartbeat thread that re-announces every
// heartbeatPeriod so the registry entry outlives its TTL exactly as long as
// the process does; a crashed shard stops heartbeating and expires from
// list(). stop() (also run by the destructor) halts the heartbeat and
// withdraws the entry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/shard_map.hpp"
#include "core/middlewhere.hpp"
#include "core/remote_registry.hpp"
#include "orb/shm.hpp"

namespace mw::cluster {

class ShardHost {
 public:
  struct Options {
    std::size_t index = 0;  ///< this shard's slot, < total
    std::size_t total = 1;  ///< cluster width N
    std::uint16_t port = 0;  ///< service port (0 = ephemeral)
    /// Registry-entry TTL; zero disables expiry (and the heartbeat thread).
    util::Duration announceTtl = util::sec(2);
    /// Re-announce period; must undercut the TTL with margin.
    util::Duration heartbeatPeriod = util::msec(500);
    /// Also listen on a shared-memory ring (orb::ShmListener) and announce
    /// its name, so colocated routers skip the TCP loopback hop. Ignored
    /// (with a warning) when POSIX shm is unavailable on the host.
    bool enableShm = true;
  };

  /// Builds the core (not yet listening) and connects to the registry.
  /// Throws util::TransportError when the registry is unreachable.
  ShardHost(const util::Clock& clock, geo::Rect universe, const std::string& rootFrame,
            const std::string& registryHost, std::uint16_t registryPort, Options options);
  ~ShardHost();

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  /// The shard's own middleware stack; configure the world here before
  /// start().
  [[nodiscard]] core::Middlewhere& core() noexcept { return *core_; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Bound service port; valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// The announced shared-memory lane name; empty when the shm listener is
  /// disabled or unavailable. Valid after start().
  [[nodiscard]] const std::string& shmName() const noexcept { return shmName_; }
  [[nodiscard]] bool running() const noexcept { return running_; }
  /// Heartbeats that failed to reach the registry (logged at warn).
  [[nodiscard]] std::uint64_t heartbeatFailures() const noexcept {
    return heartbeatFailures_.load(std::memory_order_relaxed);
  }

  /// Binds the service port, announces the shard, starts heartbeating.
  void start();
  /// Stops the heartbeat and withdraws the registry entry (best effort —
  /// a dead registry cannot be withdrawn from, but the TTL cleans up).
  void stop();

 private:
  void heartbeatLoop();
  void announceOnce();

  std::unique_ptr<core::Middlewhere> core_;
  core::RegistryClient registry_;
  const Options options_;
  const std::string name_;
  std::uint16_t port_ = 0;
  std::string shmName_;
  /// Serves shared-memory connections into the same RpcServer (same lanes,
  /// same stripe routing) as the TCP listener. Declared after core_ so it
  /// stops accepting before the core it serves into dies.
  std::unique_ptr<orb::ShmListener> shmListener_;
  bool running_ = false;

  std::mutex mutex_;
  std::condition_variable stopCv_;
  bool stopping_ = false;
  std::thread heartbeat_;
  std::atomic<std::uint64_t> heartbeatFailures_{0};
};

}  // namespace mw::cluster
