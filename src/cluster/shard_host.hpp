// One shard of the location-service cluster: a full Middlewhere core (its
// own spatial database, LocationService and concurrent RpcServer) listening
// on its own TCP port, announced in the RegistryServer under
// "location.shard.<i>/<N>" (modulo mode) or "location.ring.<token>" (ring
// mode) with a TTL heartbeat.
//
// Lifecycle: construct, configure the world through core() (regions,
// sensors — the same setup every shard of a cluster must share so fused
// answers match the single-process oracle), then start(). start() binds the
// port, announces, and spawns the heartbeat thread that re-announces every
// heartbeatPeriod so the registry entry outlives its TTL exactly as long as
// the process does; a crashed shard stops heartbeating and expires from
// list(). stop() (also run by the destructor) halts the heartbeat and
// withdraws the entry.
//
// Replication (replication.hpp): a host started with Role::Backup announces
// "<primaryName>.backup" and keeps a warm standby — the primary discovers
// it in its heartbeat tick, syncs its store across and then mirrors every
// ingest batch through its tap BEFORE the local apply, so an acked reading
// exists on both sides. The backup watches the primary's registry entry;
// when the TTL downs it, the backup promotes: it claims the primary name
// under the last seen generation + 1 (the registry's fence), withdraws its
// backup entry and serves as the primary from then on. A slow-but-alive old
// primary's next heartbeat is rejected by the fence — it demotes (stops
// claiming) instead of flapping ownership back.
//
// Ring membership: a host with a ringToken and deferAnnounce can join a
// live ring — joinRing() opens handoff sessions on the owners losing arcs
// to it (their taps start buffering those arcs' readings) and only then
// announces; completeJoin() streams the affected objects' logs across,
// flushes the buffers and drops the moved objects from the losers. See
// replication.hpp for the exactness argument.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/replication.hpp"
#include "cluster/shard_map.hpp"
#include "core/middlewhere.hpp"
#include "core/remote_registry.hpp"
#include "orb/shm.hpp"

namespace mw::cluster {

/// Registry-name suffix a backup announces under: "<primaryName>.backup".
inline constexpr const char* kBackupSuffix = ".backup";

class ShardHost {
 public:
  enum class Role { Primary, Backup };

  struct Options {
    std::size_t index = 0;  ///< this shard's slot, < total (modulo mode)
    std::size_t total = 1;  ///< cluster width N (modulo mode)
    std::uint16_t port = 0;  ///< service port (0 = ephemeral)
    /// Registry-entry TTL; zero disables expiry (and the heartbeat thread).
    util::Duration announceTtl = util::sec(2);
    /// Re-announce period; must undercut the TTL with margin.
    util::Duration heartbeatPeriod = util::msec(500);
    /// Also listen on a shared-memory ring (orb::ShmListener) and announce
    /// its name, so colocated routers skip the TCP loopback hop. Ignored
    /// (with a warning) when POSIX shm is unavailable on the host.
    bool enableShm = true;
    /// Consistent-hash-ring member token; when set the shard announces as
    /// "location.ring.<token>" instead of "location.shard.<i>/<N>".
    std::string ringToken;
    /// Spatial-partitioning member token; when set the shard announces as
    /// "location.space.<token>" and serves the territory.* handoff methods
    /// (territory_map.hpp). Mutually exclusive with ringToken.
    std::string spaceToken;
    /// Primary serves and (when a backup announces) replicates; Backup
    /// keeps the warm standby and promotes on the primary's TTL expiry.
    Role role = Role::Primary;
    /// Fencing generation the primary name is announced under (see
    /// remote_registry.hpp); backups promote with lastSeen + 1.
    std::uint64_t generation = 1;
    /// start() binds and serves but does not announce — joinRing() will,
    /// after the handoff sessions are in place. Ring joiners only.
    bool deferAnnounce = false;
    /// Territory-aware backup placement (placement.hpp): what a spatial
    /// primary does when the announced backup shares a host with one of its
    /// territory neighbours. Permissive warns, counts the conflict and
    /// replicates anyway (single-host test clusters are all colocated);
    /// Strict refuses the link until a better-placed backup announces.
    /// Only consulted when spaceToken is set and a territory map is
    /// published.
    enum class BackupPlacement { Permissive, Strict };
    BackupPlacement backupPlacement = BackupPlacement::Permissive;
  };

  /// Builds the core (not yet listening) and connects to the registry.
  /// Throws util::TransportError when the registry is unreachable.
  ShardHost(const util::Clock& clock, geo::Rect universe, const std::string& rootFrame,
            const std::string& registryHost, std::uint16_t registryPort, Options options);
  ~ShardHost();

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  /// The shard's own middleware stack; configure the world here before
  /// start().
  [[nodiscard]] core::Middlewhere& core() noexcept { return *core_; }

  /// The name this host announced at start (primary name, or
  /// "<primaryName>.backup" for a backup — promotion does not change it).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// The primary serving name this host serves or stands by for.
  [[nodiscard]] const std::string& primaryName() const noexcept { return primaryName_; }
  [[nodiscard]] Role role() const noexcept { return role_.load(std::memory_order_acquire); }
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }
  /// Bound service port; valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// The announced shared-memory lane name; empty when the shm listener is
  /// disabled or unavailable. Valid after start().
  [[nodiscard]] const std::string& shmName() const noexcept { return shmName_; }
  [[nodiscard]] bool running() const noexcept { return running_; }
  /// Heartbeats that failed to reach the registry (logged at warn).
  [[nodiscard]] std::uint64_t heartbeatFailures() const noexcept {
    return heartbeatFailures_.load(std::memory_order_relaxed);
  }

  /// Cumulative load this shard has carried — what a balancer polls (also
  /// served over the wire as "territory.stats") to find hot and cold shards.
  /// Counters are since-start; poll twice and diff for rates.
  struct LoadStats {
    std::uint64_t ingestedReadings = 0;  ///< live readings applied
    std::uint64_t importedReadings = 0;  ///< handoff/replication replays
    std::uint64_t regionQueries = 0;     ///< region-based pull queries served
    std::uint64_t residentObjects = 0;   ///< mobile objects with stored readings
  };
  [[nodiscard]] LoadStats loadStats() const;

  // --- replication observability ---------------------------------------------

  /// The live replication link to this primary's backup (null when none).
  [[nodiscard]] std::shared_ptr<ReplicationLink> replicationLink() const;
  /// Backup->primary promotions this host performed.
  [[nodiscard]] std::uint64_t promotions() const noexcept {
    return promotions_.load(std::memory_order_relaxed);
  }
  /// The registry fenced this host off its primary name: a successor
  /// promoted. The host stops claiming (it no longer owns the name).
  [[nodiscard]] bool fenced() const noexcept { return fenced_.load(std::memory_order_acquire); }
  /// Heartbeat announces rejected by the fence.
  [[nodiscard]] std::uint64_t fencedHeartbeats() const noexcept {
    return fencedHeartbeats_.load(std::memory_order_relaxed);
  }
  /// Announced backups that failed the territory-aware placement check
  /// (shared a host with a territory neighbour); counted in both placement
  /// modes, refused only under Strict.
  [[nodiscard]] std::uint64_t placementConflicts() const noexcept {
    return placementConflicts_.load(std::memory_order_relaxed);
  }

  /// Binds the service port, announces the shard (unless deferAnnounce),
  /// starts heartbeating.
  void start();
  /// Stops the heartbeat and withdraws the registry entry (best effort —
  /// a dead registry cannot be withdrawn from, but the TTL cleans up).
  void stop();

  // --- ring membership --------------------------------------------------------

  /// Ring mode, after start() with deferAnnounce: computes the arcs this
  /// shard's token claims from the currently announced members, opens a
  /// handoff session on every losing owner (their taps buffer those arcs'
  /// readings from this moment), then announces this shard and starts the
  /// heartbeat. Routers that refresh now see the new ring and should keep a
  /// dual-read window open until completeJoin() has run.
  void joinRing();
  /// Streams every affected object's reading log from the losing owners,
  /// applies them locally, then flushes each session (buffer drain + switch
  /// to live forwarding) and ends it (the loser drops the moved objects).
  void completeJoin();

  /// Planned drain — the inverse of joinRing(), losers of nothing and one
  /// exporter: computes who inherits each of this member's arcs once it is
  /// gone, installs a handoff session per gainer (the tap starts consuming
  /// those arcs' readings), withdraws the registry entry (routers recompute
  /// the ring and open their dual-read window; this host keeps serving),
  /// exports every covered object's log into its gainer (importBatch — no
  /// re-fired triggers), flushes the sessions into live forwarding and drops
  /// the moved objects. The host stays up afterwards, forwarding stragglers,
  /// until stop(). Throws util::ContractError when this member is the whole
  /// ring (nobody to inherit).
  void leaveRing();

 private:
  void heartbeatLoop();
  /// One announce of `announceName_`; returns false when fenced off.
  bool announceOnce();
  /// Primary tick: discover/maintain the backup link.
  void maintainReplication();
  /// Territory-aware placement check for an announced backup endpoint
  /// (placement.hpp); true = replicate to it. Counts and logs conflicts.
  [[nodiscard]] bool backupPlacementAcceptable(const core::Endpoint& backup);
  /// Backup tick: watch the primary entry; promote when it expires.
  void monitorPrimary();
  void installTap();
  void registerHandoffMethods();
  /// shm-first (TCP fallback) connection to a peer endpoint.
  [[nodiscard]] std::shared_ptr<core::RemoteLocationClient> connectPeer(
      const core::Endpoint& endpoint, std::shared_ptr<orb::RpcClient>* rawOut = nullptr);
  [[nodiscard]] core::Endpoint selfEndpoint() const;
  [[nodiscard]] std::vector<std::shared_ptr<HandoffSession>> handoffSnapshot() const;

  std::unique_ptr<core::Middlewhere> core_;
  core::RegistryClient registry_;
  const Options options_;
  const std::string primaryName_;
  const std::string name_;
  std::uint16_t port_ = 0;
  std::string shmName_;
  /// Serves shared-memory connections into the same RpcServer (same lanes,
  /// same stripe routing) as the TCP listener. Declared after core_ so it
  /// stops accepting before the core it serves into dies.
  std::unique_ptr<orb::ShmListener> shmListener_;
  bool running_ = false;

  std::atomic<Role> role_;
  std::atomic<std::uint64_t> generation_;
  std::atomic<bool> fenced_{false};
  std::atomic<std::uint64_t> fencedHeartbeats_{0};
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> placementConflicts_{0};
  /// Highest generation seen on the primary entry (backup role); the
  /// promotion claim uses this + 1.
  std::atomic<std::uint64_t> lastSeenGeneration_{0};
  /// A backup only promotes once it has seen the primary announced (a
  /// backup starting first must not claim an empty slot).
  std::atomic<bool> sawPrimary_{false};

  /// Name currently heartbeat-announced (switches to primaryName_ on
  /// promotion) and the backup endpoint the link was built against; both
  /// under mutex_.
  std::string announceName_;
  std::optional<core::Endpoint> linkedBackup_;

  /// Published replication link (swap under mutex_, the tap pins the
  /// shared_ptr for the call).
  std::shared_ptr<ReplicationLink> link_;
  /// Open handoff sessions (losing-owner side); under mutex_, the tap
  /// copies the (tiny) vector out per call.
  std::vector<std::shared_ptr<HandoffSession>> sessions_;
  /// Territory-migration sessions also indexed by their wire id (they live
  /// in sessions_ too for the tap); under mutex_. Ids are never reused — a
  /// shard pair can run many migrations and a token key would alias them.
  std::unordered_map<std::uint64_t, std::shared_ptr<HandoffSession>> territorySessions_;
  std::uint64_t nextTerritorySession_ = 1;
  /// Set once the shard is announced (immediately, or by joinRing when
  /// deferAnnounce); the heartbeat only re-announces after that.
  std::atomic<bool> announced_{false};

  /// Pending join state between joinRing() and completeJoin().
  struct PendingHandoff {
    std::string loserToken;
    std::shared_ptr<orb::RpcClient> rpc;           ///< for handoff.* calls
    std::shared_ptr<core::RemoteLocationClient> typed;  ///< for exportReadings
    std::vector<util::MobileObjectId> objects;
  };
  std::vector<PendingHandoff> pendingJoin_;

  mutable std::mutex mutex_;
  std::condition_variable stopCv_;
  bool stopping_ = false;
  std::thread heartbeat_;
  std::atomic<std::uint64_t> heartbeatFailures_{0};
};

}  // namespace mw::cluster
