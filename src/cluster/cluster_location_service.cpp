#include "cluster/cluster_location_service.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>

#include "orb/shm.hpp"
#include "orb/tcp.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::cluster {

namespace {

/// Claim sentinel for a per-shard subscription registration in flight.
constexpr std::uint64_t kSubPending = ~0ULL;

/// Announced spatial members resolved from a live registry, same shape as
/// the ring resolver (tokens sorted, endpoints parallel).
RingMemberMap resolveSpaceMembers(core::RegistryClient& registry) {
  RingMemberMap map;
  for (const std::string& name : registry.list()) {
    auto token = parseSpaceMemberName(name);
    if (!token) continue;  // unrelated service sharing the registry
    map.tokens.push_back(std::move(*token));
  }
  std::sort(map.tokens.begin(), map.tokens.end());
  map.endpoints.reserve(map.tokens.size());
  for (const std::string& token : map.tokens) {
    map.endpoints.push_back(registry.lookup(spaceMemberName(token)));
  }
  return map;
}

/// Slot accessor that tolerates a shard list that grew since this sub's id
/// vector was sized (ring mode appends members at any refresh). Call with
/// subsMutex_ held.
std::uint64_t& subSlot(std::vector<std::uint64_t>& ids, std::size_t index) {
  if (ids.size() <= index) ids.resize(index + 1, 0);
  return ids[index];
}

}  // namespace

ClusterLocationService::ClusterLocationService(const std::string& registryHost,
                                               std::uint16_t registryPort)
    : ClusterLocationService(registryHost, registryPort, Options{}) {}

ClusterLocationService::ClusterLocationService(const std::string& registryHost,
                                               std::uint16_t registryPort, Options options)
    : options_(options), registry_(registryHost, registryPort) {
  if (options_.partitioning == Partitioning::Spatial) {
    mw::util::require(!options_.universe.empty(),
                      "ClusterLocationService: spatial partitioning needs Options::universe");
    RingMemberMap members = resolveSpaceMembers(registry_);
    if (members.tokens.empty()) {
      throw mw::util::NotFoundError(
          "ClusterLocationService: no location.space.* entry in the registry");
    }
    applySpaceMembers(members);
    return;
  }
  if (options_.partitioning == Partitioning::Ring) {
    RingMemberMap members = resolveRingMembers(registry_);
    if (members.tokens.empty()) {
      throw mw::util::NotFoundError(
          "ClusterLocationService: no location.ring.* entry in the registry");
    }
    applyRingMembers(members);
    return;
  }
  ShardMap map = resolveShardMap(registry_);
  if (map.total == 0) {
    throw mw::util::NotFoundError(
        "ClusterLocationService: no location.shard.* entry in the registry");
  }
  total_ = map.total;
  auto shards = std::make_shared<std::vector<std::shared_ptr<Shard>>>();
  shards->reserve(total_);
  for (std::size_t i = 0; i < total_; ++i) {
    auto shard = std::make_shared<Shard>(options_.retry);
    shard->index = i;
    shard->endpoint = map.endpoints[i];
    shards->push_back(std::move(shard));
  }
  {
    std::lock_guard lock(shardsMutex_);
    shards_ = std::move(shards);
  }
}

std::shared_ptr<std::vector<std::shared_ptr<ClusterLocationService::Shard>>>
ClusterLocationService::shardsSnapshot() const {
  std::lock_guard lock(shardsMutex_);
  return shards_;
}

std::shared_ptr<const ClusterLocationService::RingState> ClusterLocationService::ringSnapshot()
    const {
  std::lock_guard lock(shardsMutex_);
  return ringState_;
}

std::size_t ClusterLocationService::shardCount() const {
  if (options_.partitioning == Partitioning::Modulo) return total_;
  return shardsSnapshot()->size();
}

std::size_t ClusterLocationService::shardFor(const util::MobileObjectId& object) const {
  if (options_.partitioning == Partitioning::Modulo) return shardForObject(object, total_);
  if (options_.partitioning == Partitioning::Spatial) {
    std::lock_guard lock(spatialMutex_);
    auto home = homeOf_.find(object);
    const std::string& owner = home != homeOf_.end()
                                   ? home->second
                                   : territory_.ownerForPoint(territory_.universe().center());
    return spaceSlotOf_.at(owner);
  }
  auto state = ringSnapshot();
  return state->slotOf.at(state->ring.ownerForObject(object));
}

bool ClusterLocationService::dualReadWindowOpen() const {
  auto state = ringSnapshot();
  return state && state->window;
}

void ClusterLocationService::applyRingMembers(const RingMemberMap& members) {
  auto old = shardsSnapshot();
  auto oldState = ringSnapshot();
  auto shards = std::make_shared<std::vector<std::shared_ptr<Shard>>>();
  auto state = std::make_shared<RingState>();
  if (old) {
    *shards = *old;
    state->slotOf = oldState->slotOf;
  }
  std::vector<std::shared_ptr<Shard>> lostConnection;
  for (std::size_t i = 0; i < members.tokens.size(); ++i) {
    const std::string& token = members.tokens[i];
    const std::optional<core::Endpoint>& fresh = members.endpoints[i];
    auto slot = state->slotOf.find(token);
    if (slot == state->slotOf.end()) {
      auto shard = std::make_shared<Shard>(options_.retry);
      shard->index = shards->size();
      shard->token = token;
      shard->endpoint = fresh;
      state->slotOf.emplace(token, shard->index);
      shards->push_back(std::move(shard));
      continue;
    }
    Shard& shard = *(*shards)[slot->second];
    std::unique_lock lock(shard.connectMutex);
    if (shard.endpoint == fresh) continue;
    // A changed endpoint is a promotion (same name, the backup's address):
    // drop the dead primary's connection and carry on — no window needed,
    // the backup holds every acked reading.
    shard.endpoint = fresh;
    if (shard.client) {
      shard.client.reset();
      lock.unlock();
      lostConnection.push_back((*shards)[slot->second]);
    }
  }
  HashRing fresh(members.tokens);
  if (!oldState) {
    state->ring = fresh;
    state->prev = fresh;
  } else if (fresh.empty()) {
    // Registry momentarily empty (every member between heartbeats): keep
    // routing by the last known ring rather than failing every call.
    state->ring = oldState->ring;
    state->prev = oldState->prev;
    state->window = oldState->window;
  } else if (oldState->ring.members() == fresh.members()) {
    // Unchanged membership: any straddled change is settled; close the
    // dual-read window.
    state->ring = std::move(fresh);
    state->prev = state->ring;
    state->window = false;
  } else {
    state->prev = oldState->ring;
    state->ring = std::move(fresh);
    state->window = true;
  }
  // Members that left the listing keep their slot (stable indices) but stop
  // being routable until they announce again — EXCEPT while the dual-read
  // window straddles their departure: a planned leaver (ShardHost::
  // leaveRing) has withdrawn but keeps serving, and mid-window ingest for
  // its old arcs still routes to it (the previous owner), so its endpoint
  // must survive until the window closes.
  for (const auto& [token, slot] : state->slotOf) {
    if (std::binary_search(members.tokens.begin(), members.tokens.end(), token)) continue;
    if (state->window && state->prev.hasMember(token)) continue;
    Shard& shard = *(*shards)[slot];
    std::unique_lock lock(shard.connectMutex);
    if (!shard.endpoint) continue;
    shard.endpoint = std::nullopt;
    if (shard.client) {
      shard.client.reset();
      lock.unlock();
      lostConnection.push_back((*shards)[slot]);
    }
  }
  {
    // Grow every subscription's per-shard id vector BEFORE the wider shard
    // list is visible, so a replay on a new member never indexes past the
    // end.
    std::lock_guard lock(subsMutex_);
    for (auto& [id, sub] : subs_) {
      if (sub->shardSubIds.size() < shards->size()) sub->shardSubIds.resize(shards->size(), 0);
    }
  }
  {
    std::lock_guard lock(shardsMutex_);
    shards_ = std::move(shards);
    ringState_ = std::move(state);
  }
  for (const auto& shard : lostConnection) clearShardSubscriptions(*shard);
}

void ClusterLocationService::applySpaceMembers(const RingMemberMap& members) {
  auto old = shardsSnapshot();
  auto shards = std::make_shared<std::vector<std::shared_ptr<Shard>>>();
  std::unordered_map<std::string, std::size_t> slotOf;
  {
    std::lock_guard lock(spatialMutex_);
    slotOf = spaceSlotOf_;
  }
  if (old) *shards = *old;
  std::vector<std::shared_ptr<Shard>> lostConnection;
  for (std::size_t i = 0; i < members.tokens.size(); ++i) {
    const std::string& token = members.tokens[i];
    const std::optional<core::Endpoint>& fresh = members.endpoints[i];
    auto slot = slotOf.find(token);
    if (slot == slotOf.end()) {
      auto shard = std::make_shared<Shard>(options_.retry);
      shard->index = shards->size();
      shard->token = token;
      shard->endpoint = fresh;
      slotOf.emplace(token, shard->index);
      shards->push_back(std::move(shard));
      continue;
    }
    if (!fresh) {
      // A lapsed heartbeat is not a territory reassignment: the member's
      // rectangles still belong to it (failover is replication's job —
      // a promoted backup reappears under the SAME name), so keep the
      // endpoint rather than blackholing a whole territory.
      continue;
    }
    Shard& shard = *(*shards)[slot->second];
    std::unique_lock lock(shard.connectMutex);
    if (shard.endpoint == fresh) continue;
    shard.endpoint = fresh;
    if (shard.client) {
      shard.client.reset();
      lock.unlock();
      lostConnection.push_back((*shards)[slot->second]);
    }
  }
  {
    // Grow every subscription's per-shard id vector BEFORE the wider shard
    // list is visible (same invariant as ring mode).
    std::lock_guard lock(subsMutex_);
    for (auto& [id, sub] : subs_) {
      if (sub->shardSubIds.size() < shards->size()) sub->shardSubIds.resize(shards->size(), 0);
    }
  }
  {
    std::lock_guard lock(shardsMutex_);
    shards_ = std::move(shards);
  }
  {
    std::lock_guard lock(spatialMutex_);
    spaceSlotOf_ = std::move(slotOf);
  }
  for (const auto& shard : lostConnection) clearShardSubscriptions(*shard);

  // Territory: adopt the registry's published map when it is newer than
  // ours; bootstrap (and publish) the uniform split when nobody has
  // published one yet. uniform() is a pure function of the member set, so
  // racing routers compute identical maps and the version fence picks one.
  std::optional<core::RegistryClient::Meta> meta;
  try {
    meta = registry_.getMeta(kTerritoryMetaName);
  } catch (const util::TransportError&) {
    // Registry blind this refresh; keep routing by the map we have.
  }
  bool needBootstrap = false;
  {
    std::lock_guard lock(spatialMutex_);
    if (meta) {
      try {
        TerritoryMap fetched = TerritoryMap::decode(meta->value);
        if (fetched.version() > territory_.version()) territory_ = std::move(fetched);
      } catch (const util::MwError&) {
        util::logWarn("ClusterLocationService",
                      "published territory map undecodable; keeping the local one");
      }
    }
    needBootstrap = territory_.empty();
  }
  if (needBootstrap) {
    TerritoryMap uniform = TerritoryMap::uniform(options_.universe, members.tokens);
    try {
      registry_.putMeta(kTerritoryMetaName, uniform.encode(), uniform.version());
    } catch (const util::TransportError&) {
      // Unpublished but still correct locally; the next refresh retries.
    }
    std::lock_guard lock(spatialMutex_);
    if (territory_.empty()) territory_ = std::move(uniform);
  }
}

void ClusterLocationService::refreshShardMap() {
  if (options_.partitioning == Partitioning::Spatial) {
    applySpaceMembers(resolveSpaceMembers(registry_));
    return;
  }
  if (options_.partitioning == Partitioning::Ring) {
    applyRingMembers(resolveRingMembers(registry_));
    return;
  }
  ShardMap map = resolveShardMap(registry_);
  if (map.total != 0 && map.total != total_) {
    throw mw::util::ContractError(
        "ClusterLocationService::refreshShardMap: cluster width changed (" +
        std::to_string(total_) + " -> " + std::to_string(map.total) +
        "); repartitioning needs a new router");
  }
  auto shards = shardsSnapshot();
  for (std::size_t i = 0; i < total_; ++i) {
    Shard& shard = *(*shards)[i];
    const std::optional<core::Endpoint> fresh = map.total == 0 ? std::nullopt : map.endpoints[i];
    std::unique_lock lock(shard.connectMutex);
    if (shard.endpoint == fresh) continue;
    shard.endpoint = fresh;
    if (shard.client) {
      shard.client.reset();
      lock.unlock();
      clearShardSubscriptions(shard);
    }
  }
}

ClusterLocationService::Route ClusterLocationService::routeFor(
    const std::vector<std::shared_ptr<Shard>>& shards, const RingState* state,
    const util::MobileObjectId& object, bool ingestPath) const {
  Route route;
  if (!state) {
    route.target = shards[shardForObject(object, total_)];
    return route;
  }
  const std::string& owner = state->ring.ownerForObject(object);
  route.target = shards[state->slotOf.at(owner)];
  if (!state->window) return route;
  const std::string& prevOwner = state->prev.ownerForObject(object);
  if (prevOwner == owner) return route;
  const std::shared_ptr<Shard>& prev = shards[state->slotOf.at(prevOwner)];
  if (ingestPath) {
    // Mid-window writes go to the PREVIOUS owner: its handoff session
    // buffers or forwards them to the joiner in per-object order, which a
    // direct write to the joiner (racing the log replay) would break.
    route.target = prev;
    route.fallback = nullptr;
  } else {
    // Reads try the new owner, but until the logs have moved it may not
    // know the object — the previous owner still does.
    route.fallback = prev;
  }
  return route;
}

ClusterLocationService::Route ClusterLocationService::spatialRouteFor(
    const std::vector<std::shared_ptr<Shard>>& shards, const util::MobileObjectId& object,
    const geo::Point2* ingestPoint, bool ingestPath) {
  Route route;
  std::lock_guard lock(spatialMutex_);
  std::size_t targetSlot = 0;
  std::size_t fallbackSlot = 0;
  bool hasFallback = false;
  if (auto move = moving_.find(object); move != moving_.end()) {
    if (ingestPath) {
      // Mid-migration writes keep going to the OLD home: its handoff
      // session buffers or forwards them in per-object order, which a
      // direct write to the gainer (racing the log replay) would break.
      targetSlot = spaceSlotOf_.at(move->second.from);
    } else {
      targetSlot = spaceSlotOf_.at(move->second.to);
      fallbackSlot = spaceSlotOf_.at(move->second.from);
      hasFallback = true;
    }
  } else if (auto home = homeOf_.find(object); home != homeOf_.end()) {
    targetSlot = spaceSlotOf_.at(home->second);
  } else if (ingestPoint != nullptr) {
    // First sighting: home the object where its evidence box centers.
    const std::string& owner = territory_.ownerForPoint(*ingestPoint);
    if (ingestPath) homeOf_.emplace(object, owner);
    targetSlot = spaceSlotOf_.at(owner);
  } else {
    // Unknown object and no evidence anywhere: every shard answers the
    // same ("unknown" / the bare prior), so probe one deterministically.
    targetSlot = spaceSlotOf_.at(territory_.ownerForPoint(territory_.universe().center()));
  }
  if (ingestPath && ingestPoint != nullptr) {
    ++leafReadings_[territory_.leafForPoint(*ingestPoint).id];
  }
  route.target = shards[targetSlot];
  if (hasFallback && fallbackSlot != targetSlot) route.fallback = shards[fallbackSlot];
  return route;
}

void ClusterLocationService::maybeMigrateAfterIngest(const util::MobileObjectId& object,
                                                     const geo::Point2& center) {
  std::string from;
  std::string to;
  {
    std::lock_guard lock(spatialMutex_);
    if (moving_.contains(object)) return;  // already on its way
    auto home = homeOf_.find(object);
    if (home == homeOf_.end()) return;
    to = territory_.ownerForPoint(center);
    if (to == home->second) return;
    from = home->second;
  }
  // Boundary crossing: the reading was applied at the old home first (per-
  // object order); now the whole log follows the object across the border.
  migrateObjects(from, to, {object}, {}, std::nullopt);
}

bool ClusterLocationService::migrateObjects(const std::string& from, const std::string& to,
                                            std::vector<util::MobileObjectId> explicitObjects,
                                            const std::vector<geo::Rect>& rects,
                                            const std::optional<TerritoryMap>& newMap) {
  std::lock_guard migration(migrationMutex_);
  auto shards = shardsSnapshot();
  std::shared_ptr<Shard> loser;
  std::shared_ptr<Shard> gainer;
  {
    std::lock_guard lock(spatialMutex_);
    auto fromSlot = spaceSlotOf_.find(from);
    auto toSlot = spaceSlotOf_.find(to);
    if (fromSlot == spaceSlotOf_.end() || toSlot == spaceSlotOf_.end() ||
        fromSlot->second >= shards->size() || toSlot->second >= shards->size()) {
      return false;
    }
    loser = (*shards)[fromSlot->second];
    gainer = (*shards)[toSlot->second];
    // Re-check under the migration serializer: a migration this call queued
    // behind may already have moved (or be moving) some of these.
    std::erase_if(explicitObjects, [&](const util::MobileObjectId& object) {
      auto home = homeOf_.find(object);
      return home == homeOf_.end() || home->second != from || moving_.contains(object);
    });
    if (explicitObjects.empty() && rects.empty()) return true;  // nothing left to move
  }
  auto loserClient = clientFor(*loser);
  auto gainerClient = clientFor(*gainer);
  std::optional<core::Endpoint> gainerEndpoint;
  {
    std::lock_guard lock(gainer->connectMutex);
    gainerEndpoint = gainer->endpoint;
  }
  if (!loserClient || !gainerClient || !gainerEndpoint) return false;

  std::uint64_t sessionId = 0;
  std::vector<util::MobileObjectId> affected;
  const char* step = "begin";
  try {
    // 1. Loser installs the handoff session (its tap starts consuming the
    //    moving objects' readings) and reports the full affected set —
    //    explicit objects plus residents of the migrated rects.
    {
      util::ByteWriter w;
      w.str(to);
      w.str(gainerEndpoint->host);
      w.u16(gainerEndpoint->port);
      w.str(gainerEndpoint->shmName);
      w.u32(static_cast<std::uint32_t>(explicitObjects.size()));
      for (const auto& object : explicitObjects) w.str(object.str());
      w.u32(static_cast<std::uint32_t>(rects.size()));
      for (const auto& rect : rects) {
        w.f64(rect.lo().x);
        w.f64(rect.lo().y);
        w.f64(rect.hi().x);
        w.f64(rect.hi().y);
      }
      const util::Bytes reply = loserClient->rpc()->call("territory.migrateBegin", w.take());
      util::ByteReader r(reply);
      sessionId = r.u64();
      const std::uint32_t count = r.u32();
      affected.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        affected.emplace_back(util::MobileObjectId{r.str()});
      }
    }
    // 2. Gainer prunes its own stale forwarding sessions BEFORE any forward
    //    can arrive — an object migrating back must not chase its own tail.
    step = "adopt";
    {
      util::ByteWriter w;
      w.u32(static_cast<std::uint32_t>(affected.size()));
      for (const auto& object : affected) w.str(object.str());
      gainerClient->rpc()->call("territory.adopt", w.take());
    }
    // 3. Mark moving: ingest keeps targeting the loser (whose session now
    //    buffers these objects' readings), reads double-route new-then-old.
    {
      std::lock_guard lock(spatialMutex_);
      for (const auto& object : affected) moving_[object] = Move{from, to};
    }
    // 4. Log replay: importBatch stores quietly — the triggers these
    //    readings matched already fired where they were first ingested.
    step = "export";
    for (const auto& object : affected) {
      auto log = loserClient->exportReadings(object);
      if (!log.empty()) gainerClient->importBatch(log);
    }
    // 5. Spill subscriptions against the coverage the gainer is ABOUT to
    //    have, before the flush, so the flushed buffered readings find
    //    their triggers registered. (Registration is monotone: an extra
    //    shard carrying a trigger is harmless — one home per object means
    //    no duplicate notifications.)
    TerritoryMap coverage;
    if (newMap) {
      coverage = *newMap;
    } else {
      std::lock_guard lock(spatialMutex_);
      coverage = territory_;
    }
    step = "spill";
    spillSubscriptionsOnto(*gainer, to, coverage);
    step = "flush";
    // 6. Flush: buffered readings drain into the gainer (export first, then
    //    buffer FIFO — per-object order holds), session switches to live
    //    forwarding.
    {
      util::ByteWriter w;
      w.u64(sessionId);
      const util::Bytes reply = loserClient->rpc()->call("territory.flush", w.take());
      util::ByteReader r(reply);
      if (!r.boolean()) {
        throw mw::util::TransportError("territory.flush refused (session lost?)");
      }
    }
    // 7. End: the loser drops the moved objects' local state; the session
    //    keeps forwarding stragglers that raced the home flip.
    step = "end";
    {
      util::ByteWriter w;
      w.u64(sessionId);
      const util::Bytes reply = loserClient->rpc()->call("territory.end", w.take());
      util::ByteReader r(reply);
      if (!r.boolean()) {
        util::logWarn("ClusterLocationService", "territory.end refused by ", from,
                      "; moved objects linger there until the next migration");
      }
    }
  } catch (const util::MwError& e) {
    // Homes stay put and ingest keeps flowing to the loser. Nothing is
    // lost: the loser's session (where installed) keeps consuming the
    // objects' readings, and the next migration attempt's migrateBegin
    // prunes it and starts over.
    {
      std::lock_guard lock(spatialMutex_);
      for (const auto& object : affected) moving_.erase(object);
    }
    util::logWarn("ClusterLocationService", "migration ", from, " -> ", to, " failed at ", step,
                  ": ", e.what());
    return false;
  }
  // 8. The flip: from here reads and ingest route to the gainer.
  util::Bytes encoded;
  std::uint64_t publishVersion = 0;
  {
    std::lock_guard lock(spatialMutex_);
    for (const auto& object : affected) {
      homeOf_[object] = to;
      moving_.erase(object);
    }
    if (newMap && newMap->version() > territory_.version()) territory_ = *newMap;
    if (newMap) {
      encoded = territory_.encode();
      publishVersion = territory_.version();
    }
  }
  objectMigrations_.fetch_add(affected.size(), std::memory_order_relaxed);
  if (newMap) {
    try {
      registry_.putMeta(kTerritoryMetaName, encoded, publishVersion);
    } catch (const util::TransportError&) {
      // This router already routes by it; peers converge on the next
      // publish (the version fence makes republishing safe).
      util::logWarn("ClusterLocationService",
                    "territory map v", publishVersion, " publish failed; retrying later");
    }
  }
  return true;
}

void ClusterLocationService::spillSubscriptionsOnto(Shard& shard, const std::string& token,
                                                    const TerritoryMap& map) {
  std::vector<std::pair<util::SubscriptionId, std::shared_ptr<ClusterSub>>> candidates;
  {
    std::lock_guard lock(subsMutex_);
    for (auto& [id, sub] : subs_) {
      if (subSlot(sub->shardSubIds, shard.index) != 0) continue;
      candidates.emplace_back(util::SubscriptionId{id}, sub);
    }
  }
  for (auto& [clusterId, sub] : candidates) {
    if (!territoryCovers(map, token, sub->region)) continue;
    subscribeOnShard(shard, clusterId, sub);  // claims the slot itself
  }
}

bool ClusterLocationService::territoryCovers(const TerritoryMap& map, const std::string& token,
                                             const geo::Rect& region) const {
  const geo::Rect inflated = region.inflated(options_.regionSlack);
  for (const auto& leaf : map.leaves()) {
    if (leaf.owner == token && leaf.rect.intersects(inflated)) return true;
  }
  return false;
}

bool ClusterLocationService::territoryCovers(const std::string& token,
                                             const geo::Rect& region) const {
  std::lock_guard lock(spatialMutex_);
  return territoryCovers(territory_, token, region);
}

TerritoryMap ClusterLocationService::territorySnapshot() const {
  std::lock_guard lock(spatialMutex_);
  return territory_;
}

std::size_t ClusterLocationService::movingObjects() const {
  std::lock_guard lock(spatialMutex_);
  return moving_.size();
}

bool ClusterLocationService::rebalanceOnce(double hotColdRatio, std::uint64_t minReadings) {
  mw::util::require(options_.partitioning == Partitioning::Spatial,
                    "ClusterLocationService::rebalanceOnce: spatial mode only");
  TerritoryMap map;
  std::unordered_map<std::uint32_t, std::uint64_t> heat;
  {
    std::lock_guard lock(spatialMutex_);
    map = territory_;
    heat = leafReadings_;
  }
  if (map.empty()) return false;
  auto leafLoad = [&heat](std::uint32_t id) {
    auto it = heat.find(id);
    return it == heat.end() ? std::uint64_t{0} : it->second;
  };
  // Owner loads from the router's own routed-readings heat map (an ordered
  // map so ties break deterministically by token).
  std::map<std::string, std::uint64_t> loadOf;
  for (const std::string& owner : map.owners()) loadOf[owner] = 0;
  for (const auto& leaf : map.leaves()) loadOf[leaf.owner] += leafLoad(leaf.id);
  if (loadOf.size() < 2) return false;
  std::string hotOwner;
  std::string coldOwner;
  std::uint64_t hotLoad = 0;
  std::uint64_t coldLoad = 0;
  for (const auto& [owner, load] : loadOf) {
    if (hotOwner.empty() || load > hotLoad) {
      hotOwner = owner;
      hotLoad = load;
    }
    if (coldOwner.empty() || load < coldLoad) {
      coldOwner = owner;
      coldLoad = load;
    }
  }
  // Balanced enough: not hot at all, or the spread is within the ratio.
  if (hotOwner == coldOwner || hotLoad < minReadings) return false;
  if (static_cast<double>(hotLoad) < hotColdRatio * static_cast<double>(coldLoad)) return false;
  // Split the hot owner's hottest leaf; its fresh high half goes cold.
  const TerritoryLeaf* hottest = nullptr;
  std::uint64_t hottestLoad = 0;
  for (const auto& leaf : map.leaves()) {
    if (leaf.owner != hotOwner) continue;
    if (!hottest || leafLoad(leaf.id) > hottestLoad) {
      hottest = &leaf;
      hottestLoad = leafLoad(leaf.id);
    }
  }
  if (!hottest) return false;
  TerritoryMap next;
  try {
    next = map.splitLeaf(hottest->id, coldOwner);
  } catch (const util::ContractError&) {
    return false;  // leaf too thin to split further
  }
  const TerritoryLeaf moved = next.leaves().back();  // the fresh high half
  if (!migrateObjects(hotOwner, coldOwner, {}, {moved.rect}, next)) return false;
  {
    // Reset both halves' heat: the decision spent it, and fresh traffic
    // should drive the next one.
    std::lock_guard lock(spatialMutex_);
    leafReadings_[hottest->id] = 0;
    leafReadings_[moved.id] = 0;
  }
  territorySplits_.fetch_add(1, std::memory_order_relaxed);
  util::logInfo("ClusterLocationService", "rebalance: split leaf ", hottest->id, " of ",
                hotOwner, " (load ", hotLoad, ") and moved half to ", coldOwner, " (load ",
                coldLoad, ")");
  return true;
}

void ClusterLocationService::startBalancer(std::chrono::milliseconds period, double hotColdRatio,
                                           std::uint64_t minReadings) {
  mw::util::require(options_.partitioning == Partitioning::Spatial,
                    "ClusterLocationService::startBalancer: spatial mode only");
  mw::util::require(period.count() > 0, "ClusterLocationService::startBalancer: period must be > 0");
  std::lock_guard lock(balancerMutex_);
  balancerRatio_ = hotColdRatio;
  balancerMinReadings_ = minReadings;
  balancerPeriod_ = period;
  if (balancerThread_.joinable()) return;  // running: parameters updated in place
  balancerStop_ = false;
  balancerThread_ = std::thread([this] {
    std::unique_lock lock(balancerMutex_);
    while (!balancerStop_) {
      const auto period = balancerPeriod_;
      if (balancerCv_.wait_for(lock, period, [this] { return balancerStop_; })) break;
      const double ratio = balancerRatio_;
      const std::uint64_t minReadings = balancerMinReadings_;
      // The pass runs outside balancerMutex_ so stopBalancer() (and
      // parameter updates) never wait behind a live migration.
      lock.unlock();
      try {
        rebalanceOnce(ratio, minReadings);
      } catch (const std::exception& e) {
        util::logWarn("ClusterLocationService", "balancer pass failed: ", e.what());
      }
      balancerPasses_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
  });
}

void ClusterLocationService::stopBalancer() {
  std::thread worker;
  {
    std::lock_guard lock(balancerMutex_);
    if (!balancerThread_.joinable()) return;
    balancerStop_ = true;
    worker = std::move(balancerThread_);
  }
  balancerCv_.notify_all();
  worker.join();
}

bool ClusterLocationService::balancerRunning() const {
  std::lock_guard lock(balancerMutex_);
  return balancerThread_.joinable();
}

ClusterLocationService::~ClusterLocationService() { stopBalancer(); }

std::shared_ptr<core::RemoteLocationClient> ClusterLocationService::clientFor(Shard& shard) {
  std::shared_ptr<core::RemoteLocationClient> fresh;
  {
    std::lock_guard lock(shard.connectMutex);
    if (shard.client) return shard.client;
    if (!shard.endpoint) return nullptr;
    try {
      std::shared_ptr<orb::Transport> transport;
      if (!shard.endpoint->shmName.empty()) {
        // Colocated lane: the shard announced a shared-memory listener. The
        // name only resolves on the shard's own host — elsewhere (or when
        // the region is gone) fall back to TCP.
        try {
          transport = orb::shmConnect(shard.endpoint->shmName);
        } catch (const util::TransportError&) {
          util::logWarn("ClusterLocationService", "shard ", shard.index,
                        ": shm lane ", shard.endpoint->shmName,
                        " unreachable; falling back to tcp");
        }
      }
      if (!transport) {
        transport = orb::tcpConnect(shard.endpoint->host, shard.endpoint->port);
      }
      auto rpc = std::make_shared<orb::RpcClient>(std::move(transport));
      rpc->setCallTimeout(options_.retry.callDeadline);
      fresh = std::make_shared<core::RemoteLocationClient>(std::move(rpc));
      shard.client = fresh;
      shard.health.recordReconnect();
    } catch (const util::TransportError&) {
      return nullptr;
    }
  }
  // Outside the connect lock: a fresh connection carries none of the
  // cluster's subscriptions — replay them before traffic flows.
  replaySubscriptions(shard, *fresh);
  return fresh;
}

void ClusterLocationService::dropClient(Shard& shard) {
  {
    std::lock_guard lock(shard.connectMutex);
    shard.client.reset();
  }
  clearShardSubscriptions(shard);
}

void ClusterLocationService::clearShardSubscriptions(Shard& shard) {
  // The connection is gone, and with it every subscription registered on
  // it; zero the slots so the next reconnect replays them.
  std::lock_guard lock(subsMutex_);
  for (auto& [id, sub] : subs_) {
    std::uint64_t& slot = subSlot(sub->shardSubIds, shard.index);
    if (slot != kSubPending) slot = 0;
    if (sub->agg && slot == 0) {
      // The shard's count is unknowable until the replay re-registers and
      // seeds a fresh one; drop it silently (no callback churn) so the
      // fill-if-absent seed on reconnect takes.
      std::lock_guard aggLock(sub->agg->mutex);
      sub->agg->countOf.erase(shard.index);
    }
  }
}

template <typename R>
std::optional<R> ClusterLocationService::callShard(
    Shard& shard, const std::function<R(core::RemoteLocationClient&)>& fn) {
  if (shard.health.down() && !shard.health.tryClaimProbe()) return std::nullopt;
  const std::size_t attempts = 1 + options_.retry.maxRetries;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      shard.health.recordRetry();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.retry.backoffDelay(attempt - 1).count()));
    }
    auto client = clientFor(shard);
    if (!client) {
      shard.health.recordFailure(/*timedOut=*/false);
      if (shard.health.down() && attempt + 1 < attempts && !shard.health.tryClaimProbe()) {
        return std::nullopt;  // went down mid-budget; stop hammering
      }
      continue;
    }
    shard.health.recordCall();
    try {
      R result = fn(*client);
      shard.health.recordSuccess();
      return result;
    } catch (const util::TimeoutError&) {
      // Slow, not provably dead: keep the connection (a late reply is
      // discarded by the RpcClient), back off, retry.
      shard.health.recordFailure(/*timedOut=*/true);
    } catch (const util::TransportError&) {
      // Connection gone: reconnect on the next attempt.
      shard.health.recordFailure(/*timedOut=*/false);
      dropClient(shard);
    }
    // util::MwError (an Error reply) propagates: the shard is healthy and
    // answered — the error belongs to the caller, not the failure policy.
  }
  return std::nullopt;
}

void ClusterLocationService::probeDownShards() {
  auto shards = shardsSnapshot();
  for (const auto& shard : *shards) {
    if (!shard->health.down()) continue;
    callShard<bool>(*shard, [](core::RemoteLocationClient& client) {
      client.ping();
      return true;
    });
  }
}

// --- object-routed calls ------------------------------------------------------

void ClusterLocationService::ingest(const db::SensorReading& reading) {
  auto shards = shardsSnapshot();
  Route route;
  std::optional<geo::Point2> center;
  if (options_.partitioning == Partitioning::Spatial) {
    center = reading.rect().center();
    route = spatialRouteFor(*shards, reading.mobileObjectId, &*center, /*ingestPath=*/true);
  } else {
    auto state = ringSnapshot();
    route = routeFor(*shards, state.get(), reading.mobileObjectId, /*ingestPath=*/true);
  }
  auto ok = callShard<bool>(*route.target, [&](core::RemoteLocationClient& client) {
    client.ingest(reading);
    return true;
  });
  if (!ok) {
    failedRoutedCalls_.fetch_add(1, std::memory_order_relaxed);
    droppedIngestReadings_.fetch_add(1, std::memory_order_relaxed);
  }
  if (center) maybeMigrateAfterIngest(reading.mobileObjectId, *center);
}

void ClusterLocationService::ingestBatch(std::span<const db::SensorReading> readings) {
  if (readings.empty()) return;
  auto shards = shardsSnapshot();
  auto state = ringSnapshot();
  const bool spatial = options_.partitioning == Partitioning::Spatial;
  // Partition by target shard; a stable partition keeps each object's
  // readings in their original relative order inside its sub-batch. Spatial
  // mode also tracks each object's LAST evidence center: a batch is applied
  // entirely at the current homes first, then crossings migrate.
  std::vector<std::vector<db::SensorReading>> parts(shards->size());
  std::vector<std::pair<util::MobileObjectId, geo::Point2>> lastCenter;
  std::unordered_map<util::MobileObjectId, std::size_t> lastCenterIndex;
  for (const auto& reading : readings) {
    Route route;
    if (spatial) {
      const geo::Point2 center = reading.rect().center();
      route = spatialRouteFor(*shards, reading.mobileObjectId, &center, /*ingestPath=*/true);
      auto [it, inserted] = lastCenterIndex.emplace(reading.mobileObjectId, lastCenter.size());
      if (inserted) {
        lastCenter.emplace_back(reading.mobileObjectId, center);
      } else {
        lastCenter[it->second].second = center;
      }
    } else {
      route = routeFor(*shards, state.get(), reading.mobileObjectId, /*ingestPath=*/true);
    }
    parts[route.target->index].push_back(reading);
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].empty()) continue;
    Shard& shard = *(*shards)[i];
    auto ok = callShard<bool>(shard, [&](core::RemoteLocationClient& client) {
      client.ingestBatch(parts[i]);
      return true;
    });
    if (!ok) {
      failedRoutedCalls_.fetch_add(1, std::memory_order_relaxed);
      droppedIngestReadings_.fetch_add(parts[i].size(), std::memory_order_relaxed);
    }
  }
  for (const auto& [object, center] : lastCenter) maybeMigrateAfterIngest(object, center);
}

std::optional<fusion::LocationEstimate> ClusterLocationService::locate(
    const util::MobileObjectId& object) {
  auto shards = shardsSnapshot();
  Route route;
  if (options_.partitioning == Partitioning::Spatial) {
    route = spatialRouteFor(*shards, object, nullptr, /*ingestPath=*/false);
  } else {
    auto state = ringSnapshot();
    route = routeFor(*shards, state.get(), object, /*ingestPath=*/false);
  }
  auto result = callShard<std::optional<fusion::LocationEstimate>>(
      *route.target, [&](core::RemoteLocationClient& client) { return client.locate(object); });
  if (result && result->has_value()) return *result;
  if (route.fallback) {
    // Dual-read window: the new owner has no evidence yet — the previous
    // owner is still authoritative for this object.
    auto fallback = callShard<std::optional<fusion::LocationEstimate>>(
        *route.fallback,
        [&](core::RemoteLocationClient& client) { return client.locate(object); });
    if (fallback && fallback->has_value()) return *fallback;
    if (!result && !fallback) failedRoutedCalls_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (!result) failedRoutedCalls_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

std::string ClusterLocationService::locateSymbolic(const util::MobileObjectId& object) {
  auto shards = shardsSnapshot();
  Route route;
  if (options_.partitioning == Partitioning::Spatial) {
    route = spatialRouteFor(*shards, object, nullptr, /*ingestPath=*/false);
  } else {
    auto state = ringSnapshot();
    route = routeFor(*shards, state.get(), object, /*ingestPath=*/false);
  }
  auto result = callShard<std::string>(*route.target, [&](core::RemoteLocationClient& client) {
    return client.locateSymbolic(object);
  });
  if (result && !result->empty()) return *result;
  if (route.fallback) {
    auto fallback =
        callShard<std::string>(*route.fallback, [&](core::RemoteLocationClient& client) {
          return client.locateSymbolic(object);
        });
    if (fallback && !fallback->empty()) return *fallback;
    if (!result && !fallback) failedRoutedCalls_.fetch_add(1, std::memory_order_relaxed);
    return "";
  }
  if (!result) failedRoutedCalls_.fetch_add(1, std::memory_order_relaxed);
  return result ? *result : "";
}

// --- scatter-gather -----------------------------------------------------------

template <typename R>
std::vector<std::optional<R>> ClusterLocationService::scatter(
    const std::vector<std::shared_ptr<Shard>>& shards,
    const std::function<R(core::RemoteLocationClient&)>& fn) {
  std::vector<std::optional<R>> results(shards.size());
  std::vector<std::thread> workers;
  workers.reserve(shards.size());
  std::mutex errorMutex;
  std::exception_ptr error;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    workers.emplace_back([&, i] {
      try {
        results[i] = callShard<R>(*shards[i], fn);
      } catch (...) {
        // A remote application error (util::MwError) — keep the first.
        std::lock_guard lock(errorMutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (error) std::rethrow_exception(error);
  return results;
}

double ClusterLocationService::probabilityInRegion(const util::MobileObjectId& object,
                                                   const geo::Rect& region) {
  auto shards = shardsSnapshot();
  if (options_.partitioning == Partitioning::Spatial) {
    // Object-homed, not region-scattered: the home shard holds the object's
    // whole log, so its fused answer IS the oracle's winning (evidence-
    // bearing) answer; no other shard could beat it. Unknown objects get
    // the bare prior, which every shard computes identically.
    targetedRegionQueries_.fetch_add(1, std::memory_order_relaxed);
    Route route = spatialRouteFor(*shards, object, nullptr, /*ingestPath=*/false);
    regionShardsQueried_.fetch_add(route.fallback ? 2 : 1, std::memory_order_relaxed);
    auto reply = callShard<core::RemoteLocationClient::RegionProbability>(
        *route.target, [&](core::RemoteLocationClient& client) {
          return client.probabilityInRegionEx(object, region);
        });
    if (reply && reply->hasEvidence) return reply->probability;
    if (route.fallback) {
      // Mid-migration: the new home may not hold the log yet.
      auto fallback = callShard<core::RemoteLocationClient::RegionProbability>(
          *route.fallback, [&](core::RemoteLocationClient& client) {
            return client.probabilityInRegionEx(object, region);
          });
      if (fallback && fallback->hasEvidence) return fallback->probability;
      if (!reply) reply = fallback;
    }
    if (!reply) {
      throw mw::util::TransportError(
          "ClusterLocationService::probabilityInRegion: no shard answered");
    }
    return reply->probability;  // no evidence anywhere: the bare prior
  }
  scatterGathers_.fetch_add(1, std::memory_order_relaxed);
  auto replies = scatter<core::RemoteLocationClient::RegionProbability>(
      *shards, [&](core::RemoteLocationClient& client) {
        return client.probabilityInRegionEx(object, region);
      });

  std::size_t answered = 0;
  bool anyEvidence = false;
  double best = 0;
  double bestPrior = 0;
  for (const auto& reply : replies) {
    if (!reply) continue;
    ++answered;
    if (reply->hasEvidence) {
      best = anyEvidence ? std::max(best, reply->probability) : reply->probability;
      anyEvidence = true;
    } else {
      bestPrior = std::max(bestPrior, reply->probability);
    }
  }
  if (answered == 0) {
    throw mw::util::TransportError(
        "ClusterLocationService::probabilityInRegion: no shard answered");
  }
  if (answered < shards->size()) degradedQueries_.fetch_add(1, std::memory_order_relaxed);
  // The owning shard's fused answer wins; with no evidence anywhere every
  // shard reported the same prior mass, so any of them is THE answer.
  return anyEvidence ? best : bestPrior;
}

ClusterLocationService::RegionQueryResult ClusterLocationService::objectsInRegionDetailed(
    const geo::Rect& region, double minProbability) {
  auto shards = shardsSnapshot();
  std::vector<std::shared_ptr<Shard>> targets;
  if (options_.partitioning == Partitioning::Spatial && minProbability > 0) {
    // The payoff query: only the shards whose territory intersects the
    // slack-inflated region can home an object with evidence mass inside
    // it, so the scatter shrinks to that subset — O(intersecting shards).
    // minProbability <= 0 is a census (every shard's objects qualify at
    // probability 0) and falls through to the full scatter below.
    const geo::Rect inflated = region.inflated(options_.regionSlack);
    {
      std::lock_guard lock(spatialMutex_);
      for (const std::string& owner : territory_.ownersIntersecting(inflated)) {
        auto slot = spaceSlotOf_.find(owner);
        if (slot != spaceSlotOf_.end() && slot->second < shards->size()) {
          targets.push_back((*shards)[slot->second]);
        }
      }
    }
    targetedRegionQueries_.fetch_add(1, std::memory_order_relaxed);
    regionShardsQueried_.fetch_add(targets.size(), std::memory_order_relaxed);
    if (targets.empty()) return RegionQueryResult{};  // region outside every territory
  } else {
    targets = *shards;
    scatterGathers_.fetch_add(1, std::memory_order_relaxed);
  }
  using Members = std::vector<std::pair<util::MobileObjectId, double>>;
  auto replies = scatter<Members>(targets, [&](core::RemoteLocationClient& client) {
    return client.objectsInRegion(region, minProbability);
  });

  RegionQueryResult result;
  // Objects are disjoint across shards by construction; the map guards the
  // transient overlap a stale shard map could produce (keep the higher-
  // probability sighting).
  std::unordered_map<std::string, double> merged;
  for (const auto& reply : replies) {
    if (!reply) continue;
    ++result.shardsAnswered;
    for (const auto& [object, probability] : *reply) {
      auto [it, inserted] = merged.emplace(object.str(), probability);
      if (!inserted && probability > it->second) it->second = probability;
    }
  }
  if (result.shardsAnswered == 0) {
    throw mw::util::TransportError("ClusterLocationService::objectsInRegion: no shard answered");
  }
  result.degraded = result.shardsAnswered < targets.size();
  if (result.degraded) degradedQueries_.fetch_add(1, std::memory_order_relaxed);

  result.members.reserve(merged.size());
  for (auto& [object, probability] : merged) {
    result.members.emplace_back(util::MobileObjectId{object}, probability);
  }
  // The LocationService's own answer ordering: descending probability, ties
  // by id — so a healthy cluster's merge is byte-for-byte the oracle's.
  std::sort(result.members.begin(), result.members.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return result;
}

std::vector<std::pair<util::MobileObjectId, double>> ClusterLocationService::objectsInRegion(
    const geo::Rect& region, double minProbability) {
  return objectsInRegionDetailed(region, minProbability).members;
}

// --- push: cluster-wide subscriptions ----------------------------------------

util::SubscriptionId ClusterLocationService::subscribe(
    const geo::Rect& region, std::optional<util::MobileObjectId> subject, double threshold,
    std::function<void(const core::Notification&)> callback) {
  auto shards = shardsSnapshot();
  auto sub = std::make_shared<ClusterSub>();
  sub->region = region;
  sub->subject = std::move(subject);
  sub->threshold = threshold;
  sub->callback = std::move(callback);
  sub->shardSubIds.assign(shards->size(), 0);

  util::SubscriptionId clusterId;
  {
    std::lock_guard lock(subsMutex_);
    clusterId = subIds_.next();
    subs_.emplace(clusterId.value(), sub);
  }
  for (const auto& shard : *shards) {
    // Spatial mode: only shards whose territory intersects the region can
    // home an object triggering it; migration spills the subscription onto
    // shards that gain intersecting territory later.
    if (options_.partitioning == Partitioning::Spatial &&
        !territoryCovers(shard->token, region)) {
      continue;
    }
    subscribeOnShard(*shard, clusterId, sub);
  }
  return clusterId;
}

util::SubscriptionId ClusterLocationService::subscribeDensity(
    const geo::Rect& region, double minProbability, std::size_t limit,
    std::function<void(const core::DensityNotification&)> callback) {
  auto shards = shardsSnapshot();
  auto sub = std::make_shared<ClusterSub>();
  sub->region = region;
  sub->threshold = minProbability;
  sub->limit = limit;
  sub->densityCallback = std::move(callback);
  sub->agg = std::make_shared<DensityAgg>();
  sub->shardSubIds.assign(shards->size(), 0);

  util::SubscriptionId clusterId;
  {
    std::lock_guard lock(subsMutex_);
    clusterId = subIds_.next();
    subs_.emplace(clusterId.value(), sub);
  }
  for (const auto& shard : *shards) {
    if (options_.partitioning == Partitioning::Spatial &&
        !territoryCovers(shard->token, region)) {
      continue;
    }
    subscribeOnShard(*shard, clusterId, sub);
  }
  return clusterId;
}

void ClusterLocationService::reportDensityCount(ClusterSub& sub, util::SubscriptionId clusterId,
                                                std::size_t shardIndex, std::uint64_t count,
                                                bool seed, const util::MobileObjectId& object,
                                                util::TimePoint when) {
  core::DensityNotification out;
  bool fire = false;
  {
    std::lock_guard lock(sub.agg->mutex);
    if (seed) {
      // Fill-if-absent: a live notification that raced ahead of the
      // registration reply already reported a fresher count.
      if (!sub.agg->countOf.emplace(shardIndex, count).second) return;
    } else {
      sub.agg->countOf[shardIndex] = count;
    }
    std::uint64_t total = 0;
    for (const auto& [index, shardCount] : sub.agg->countOf) total += shardCount;
    const bool over = total >= sub.limit;
    if (over != sub.agg->lastOver) {
      out.edge = over ? cq::CountEdge::Rose : cq::CountEdge::Fell;
    }
    fire = total != sub.agg->lastTotal || out.edge != cq::CountEdge::None;
    sub.agg->lastTotal = total;
    sub.agg->lastOver = over;
    out.count = static_cast<std::size_t>(total);
  }
  if (!fire) return;
  out.id = clusterId;
  out.region = sub.region;
  out.limit = sub.limit;
  out.object = object;
  out.when = when;
  sub.densityCallback(out);
}

void ClusterLocationService::subscribeOnShard(Shard& shard, util::SubscriptionId clusterId,
                                              const std::shared_ptr<ClusterSub>& sub) {
  {
    // Claim the slot: either the initial fan-out or a reconnect replay
    // registers on a given shard, never both.
    std::lock_guard lock(subsMutex_);
    std::uint64_t& slot = subSlot(sub->shardSubIds, shard.index);
    if (slot != 0) return;
    slot = kSubPending;
  }
  std::optional<std::uint64_t> shardSubId;
  if (sub->agg) {
    // The emit bridge captures the ClusterSub by shared_ptr: its density
    // fields (region, limit, callback, agg) are immutable after creation,
    // and the pin keeps the aggregation state alive past unsubscribe races.
    auto emit = [sub, clusterId, shardIndex = shard.index](const core::DensityNotification& n) {
      reportDensityCount(*sub, clusterId, shardIndex, n.count, /*seed=*/false, n.object, n.when);
    };
    auto handle = callShard<core::RemoteLocationClient::DensityHandle>(
        shard, [&](core::RemoteLocationClient& client) {
          return client.subscribeDensity(sub->region, sub->threshold, sub->limit, emit);
        });
    if (handle) {
      shardSubId = handle->id.value();
      reportDensityCount(*sub, clusterId, shard.index, handle->initialCount, /*seed=*/true,
                         util::MobileObjectId{}, util::TimePoint{});
    }
  } else {
    auto emit = [callback = sub->callback, clusterId](const core::Notification& n) {
      core::Notification out = n;
      out.id = clusterId;  // one client-facing id, whichever shard matched
      callback(out);
    };
    shardSubId = callShard<std::uint64_t>(shard, [&](core::RemoteLocationClient& client) {
      return client.subscribe(sub->region, sub->subject, sub->threshold, emit).value();
    });
  }
  std::unique_lock lock(subsMutex_);
  const bool live = subs_.contains(clusterId.value());
  subSlot(sub->shardSubIds, shard.index) = (shardSubId && live) ? *shardSubId : 0;
  if (shardSubId && !live) {
    // unsubscribe() won the race while registration was in flight; take the
    // orphan back down (best effort).
    lock.unlock();
    callShard<bool>(shard, [&](core::RemoteLocationClient& client) {
      return client.unsubscribe(util::SubscriptionId{*shardSubId});
    });
  }
}

void ClusterLocationService::replaySubscriptions(Shard& shard, core::RemoteLocationClient& client) {
  // Collect the subscriptions missing on this shard, then register each
  // directly on the fresh client (single attempt — a failure leaves the
  // slot empty for the next reconnect). Candidates are collected WITHOUT
  // claiming, coverage-filtered outside subsMutex_ (territoryCovers takes
  // spatialMutex_ and the two must not nest), then claimed one by one.
  const bool spatial = options_.partitioning == Partitioning::Spatial;
  std::vector<std::pair<util::SubscriptionId, std::shared_ptr<ClusterSub>>> candidates;
  {
    std::lock_guard lock(subsMutex_);
    for (auto& [id, sub] : subs_) {
      if (subSlot(sub->shardSubIds, shard.index) != 0) continue;
      candidates.emplace_back(util::SubscriptionId{id}, sub);
    }
  }
  std::vector<std::pair<util::SubscriptionId, std::shared_ptr<ClusterSub>>> missing;
  for (auto& [clusterId, sub] : candidates) {
    if (spatial && !territoryCovers(shard.token, sub->region)) continue;
    std::lock_guard lock(subsMutex_);
    std::uint64_t& slot = subSlot(sub->shardSubIds, shard.index);
    if (slot != 0) continue;  // a racing spill claimed it first
    slot = kSubPending;
    missing.emplace_back(clusterId, sub);
  }
  for (auto& [clusterId, sub] : missing) {
    std::uint64_t shardSubId = 0;
    std::optional<std::size_t> seedCount;
    try {
      if (sub->agg) {
        auto emit = [sub = sub, clusterId = clusterId,
                     shardIndex = shard.index](const core::DensityNotification& n) {
          reportDensityCount(*sub, clusterId, shardIndex, n.count, /*seed=*/false, n.object,
                             n.when);
        };
        auto handle = client.subscribeDensity(sub->region, sub->threshold, sub->limit, emit);
        shardSubId = handle.id.value();
        seedCount = handle.initialCount;
      } else {
        auto emit = [callback = sub->callback,
                     clusterId = clusterId](const core::Notification& n) {
          core::Notification out = n;
          out.id = clusterId;
          callback(out);
        };
        shardSubId = client.subscribe(sub->region, sub->subject, sub->threshold, emit).value();
      }
    } catch (const util::TransportError&) {
      // Fresh connection already gone; the next reconnect replays again.
    }
    if (seedCount) {
      reportDensityCount(*sub, clusterId, shard.index, *seedCount, /*seed=*/true,
                         util::MobileObjectId{}, util::TimePoint{});
    }
    std::lock_guard lock(subsMutex_);
    subSlot(sub->shardSubIds, shard.index) = subs_.contains(clusterId.value()) ? shardSubId : 0;
  }
}

bool ClusterLocationService::unsubscribe(util::SubscriptionId id) {
  std::shared_ptr<ClusterSub> sub;
  {
    std::lock_guard lock(subsMutex_);
    auto it = subs_.find(id.value());
    if (it == subs_.end()) return false;
    sub = it->second;
    subs_.erase(it);
  }
  auto shards = shardsSnapshot();
  for (const auto& shard : *shards) {
    std::uint64_t shardSubId;
    {
      std::lock_guard lock(subsMutex_);
      shardSubId = subSlot(sub->shardSubIds, shard->index);
    }
    if (shardSubId == 0 || shardSubId == kSubPending) continue;
    callShard<bool>(*shard, [&](core::RemoteLocationClient& client) {
      return client.unsubscribe(util::SubscriptionId{shardSubId});
    });
  }
  return true;
}

ClusterLocationService::Stats ClusterLocationService::stats() const {
  Stats stats;
  auto shards = shardsSnapshot();
  stats.shards.reserve(shards->size());
  for (const auto& shard : *shards) {
    ShardStats s;
    {
      std::lock_guard lock(shard->connectMutex);
      s.announced = shard->endpoint.has_value();
    }
    s.down = shard->health.down();
    s.calls = shard->health.calls();
    s.failures = shard->health.failures();
    s.timeouts = shard->health.timeouts();
    s.retries = shard->health.retries();
    s.reconnects = shard->health.reconnects();
    stats.shards.push_back(s);
  }
  stats.scatterGathers = scatterGathers_.load(std::memory_order_relaxed);
  stats.degradedQueries = degradedQueries_.load(std::memory_order_relaxed);
  stats.failedRoutedCalls = failedRoutedCalls_.load(std::memory_order_relaxed);
  stats.droppedIngestReadings = droppedIngestReadings_.load(std::memory_order_relaxed);
  stats.targetedRegionQueries = targetedRegionQueries_.load(std::memory_order_relaxed);
  stats.regionShardsQueried = regionShardsQueried_.load(std::memory_order_relaxed);
  stats.objectMigrations = objectMigrations_.load(std::memory_order_relaxed);
  stats.territorySplits = territorySplits_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mw::cluster
