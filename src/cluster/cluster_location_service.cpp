#include "cluster/cluster_location_service.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <unordered_map>
#include <utility>

#include "orb/shm.hpp"
#include "orb/tcp.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::cluster {

namespace {

/// Claim sentinel for a per-shard subscription registration in flight.
constexpr std::uint64_t kSubPending = ~0ULL;

/// Slot accessor that tolerates a shard list that grew since this sub's id
/// vector was sized (ring mode appends members at any refresh). Call with
/// subsMutex_ held.
std::uint64_t& subSlot(std::vector<std::uint64_t>& ids, std::size_t index) {
  if (ids.size() <= index) ids.resize(index + 1, 0);
  return ids[index];
}

}  // namespace

ClusterLocationService::ClusterLocationService(const std::string& registryHost,
                                               std::uint16_t registryPort)
    : ClusterLocationService(registryHost, registryPort, Options{}) {}

ClusterLocationService::ClusterLocationService(const std::string& registryHost,
                                               std::uint16_t registryPort, Options options)
    : options_(options), registry_(registryHost, registryPort) {
  if (options_.partitioning == Partitioning::Ring) {
    RingMemberMap members = resolveRingMembers(registry_);
    if (members.tokens.empty()) {
      throw mw::util::NotFoundError(
          "ClusterLocationService: no location.ring.* entry in the registry");
    }
    applyRingMembers(members);
    return;
  }
  ShardMap map = resolveShardMap(registry_);
  if (map.total == 0) {
    throw mw::util::NotFoundError(
        "ClusterLocationService: no location.shard.* entry in the registry");
  }
  total_ = map.total;
  auto shards = std::make_shared<std::vector<std::shared_ptr<Shard>>>();
  shards->reserve(total_);
  for (std::size_t i = 0; i < total_; ++i) {
    auto shard = std::make_shared<Shard>(options_.retry);
    shard->index = i;
    shard->endpoint = map.endpoints[i];
    shards->push_back(std::move(shard));
  }
  {
    std::lock_guard lock(shardsMutex_);
    shards_ = std::move(shards);
  }
}

std::shared_ptr<std::vector<std::shared_ptr<ClusterLocationService::Shard>>>
ClusterLocationService::shardsSnapshot() const {
  std::lock_guard lock(shardsMutex_);
  return shards_;
}

std::shared_ptr<const ClusterLocationService::RingState> ClusterLocationService::ringSnapshot()
    const {
  std::lock_guard lock(shardsMutex_);
  return ringState_;
}

std::size_t ClusterLocationService::shardCount() const {
  if (options_.partitioning == Partitioning::Modulo) return total_;
  return shardsSnapshot()->size();
}

std::size_t ClusterLocationService::shardFor(const util::MobileObjectId& object) const {
  if (options_.partitioning == Partitioning::Modulo) return shardForObject(object, total_);
  auto state = ringSnapshot();
  return state->slotOf.at(state->ring.ownerForObject(object));
}

bool ClusterLocationService::dualReadWindowOpen() const {
  auto state = ringSnapshot();
  return state && state->window;
}

void ClusterLocationService::applyRingMembers(const RingMemberMap& members) {
  auto old = shardsSnapshot();
  auto oldState = ringSnapshot();
  auto shards = std::make_shared<std::vector<std::shared_ptr<Shard>>>();
  auto state = std::make_shared<RingState>();
  if (old) {
    *shards = *old;
    state->slotOf = oldState->slotOf;
  }
  std::vector<std::shared_ptr<Shard>> lostConnection;
  for (std::size_t i = 0; i < members.tokens.size(); ++i) {
    const std::string& token = members.tokens[i];
    const std::optional<core::Endpoint>& fresh = members.endpoints[i];
    auto slot = state->slotOf.find(token);
    if (slot == state->slotOf.end()) {
      auto shard = std::make_shared<Shard>(options_.retry);
      shard->index = shards->size();
      shard->token = token;
      shard->endpoint = fresh;
      state->slotOf.emplace(token, shard->index);
      shards->push_back(std::move(shard));
      continue;
    }
    Shard& shard = *(*shards)[slot->second];
    std::unique_lock lock(shard.connectMutex);
    if (shard.endpoint == fresh) continue;
    // A changed endpoint is a promotion (same name, the backup's address):
    // drop the dead primary's connection and carry on — no window needed,
    // the backup holds every acked reading.
    shard.endpoint = fresh;
    if (shard.client) {
      shard.client.reset();
      lock.unlock();
      lostConnection.push_back((*shards)[slot->second]);
    }
  }
  // Members that left the listing keep their slot (stable indices) but stop
  // being routable until they announce again.
  for (const auto& [token, slot] : state->slotOf) {
    if (std::binary_search(members.tokens.begin(), members.tokens.end(), token)) continue;
    Shard& shard = *(*shards)[slot];
    std::unique_lock lock(shard.connectMutex);
    if (!shard.endpoint) continue;
    shard.endpoint = std::nullopt;
    if (shard.client) {
      shard.client.reset();
      lock.unlock();
      lostConnection.push_back((*shards)[slot]);
    }
  }
  HashRing fresh(members.tokens);
  if (!oldState) {
    state->ring = fresh;
    state->prev = fresh;
  } else if (fresh.empty()) {
    // Registry momentarily empty (every member between heartbeats): keep
    // routing by the last known ring rather than failing every call.
    state->ring = oldState->ring;
    state->prev = oldState->prev;
    state->window = oldState->window;
  } else if (oldState->ring.members() == fresh.members()) {
    // Unchanged membership: any straddled change is settled; close the
    // dual-read window.
    state->ring = std::move(fresh);
    state->prev = state->ring;
    state->window = false;
  } else {
    state->prev = oldState->ring;
    state->ring = std::move(fresh);
    state->window = true;
  }
  {
    // Grow every subscription's per-shard id vector BEFORE the wider shard
    // list is visible, so a replay on a new member never indexes past the
    // end.
    std::lock_guard lock(subsMutex_);
    for (auto& [id, sub] : subs_) {
      if (sub->shardSubIds.size() < shards->size()) sub->shardSubIds.resize(shards->size(), 0);
    }
  }
  {
    std::lock_guard lock(shardsMutex_);
    shards_ = std::move(shards);
    ringState_ = std::move(state);
  }
  for (const auto& shard : lostConnection) clearShardSubscriptions(*shard);
}

void ClusterLocationService::refreshShardMap() {
  if (options_.partitioning == Partitioning::Ring) {
    applyRingMembers(resolveRingMembers(registry_));
    return;
  }
  ShardMap map = resolveShardMap(registry_);
  if (map.total != 0 && map.total != total_) {
    throw mw::util::ContractError(
        "ClusterLocationService::refreshShardMap: cluster width changed (" +
        std::to_string(total_) + " -> " + std::to_string(map.total) +
        "); repartitioning needs a new router");
  }
  auto shards = shardsSnapshot();
  for (std::size_t i = 0; i < total_; ++i) {
    Shard& shard = *(*shards)[i];
    const std::optional<core::Endpoint> fresh = map.total == 0 ? std::nullopt : map.endpoints[i];
    std::unique_lock lock(shard.connectMutex);
    if (shard.endpoint == fresh) continue;
    shard.endpoint = fresh;
    if (shard.client) {
      shard.client.reset();
      lock.unlock();
      clearShardSubscriptions(shard);
    }
  }
}

ClusterLocationService::Route ClusterLocationService::routeFor(
    const std::vector<std::shared_ptr<Shard>>& shards, const RingState* state,
    const util::MobileObjectId& object, bool ingestPath) const {
  Route route;
  if (!state) {
    route.target = shards[shardForObject(object, total_)];
    return route;
  }
  const std::string& owner = state->ring.ownerForObject(object);
  route.target = shards[state->slotOf.at(owner)];
  if (!state->window) return route;
  const std::string& prevOwner = state->prev.ownerForObject(object);
  if (prevOwner == owner) return route;
  const std::shared_ptr<Shard>& prev = shards[state->slotOf.at(prevOwner)];
  if (ingestPath) {
    // Mid-window writes go to the PREVIOUS owner: its handoff session
    // buffers or forwards them to the joiner in per-object order, which a
    // direct write to the joiner (racing the log replay) would break.
    route.target = prev;
    route.fallback = nullptr;
  } else {
    // Reads try the new owner, but until the logs have moved it may not
    // know the object — the previous owner still does.
    route.fallback = prev;
  }
  return route;
}

std::shared_ptr<core::RemoteLocationClient> ClusterLocationService::clientFor(Shard& shard) {
  std::shared_ptr<core::RemoteLocationClient> fresh;
  {
    std::lock_guard lock(shard.connectMutex);
    if (shard.client) return shard.client;
    if (!shard.endpoint) return nullptr;
    try {
      std::shared_ptr<orb::Transport> transport;
      if (!shard.endpoint->shmName.empty()) {
        // Colocated lane: the shard announced a shared-memory listener. The
        // name only resolves on the shard's own host — elsewhere (or when
        // the region is gone) fall back to TCP.
        try {
          transport = orb::shmConnect(shard.endpoint->shmName);
        } catch (const util::TransportError&) {
          util::logWarn("ClusterLocationService", "shard ", shard.index,
                        ": shm lane ", shard.endpoint->shmName,
                        " unreachable; falling back to tcp");
        }
      }
      if (!transport) {
        transport = orb::tcpConnect(shard.endpoint->host, shard.endpoint->port);
      }
      auto rpc = std::make_shared<orb::RpcClient>(std::move(transport));
      rpc->setCallTimeout(options_.retry.callDeadline);
      fresh = std::make_shared<core::RemoteLocationClient>(std::move(rpc));
      shard.client = fresh;
      shard.health.recordReconnect();
    } catch (const util::TransportError&) {
      return nullptr;
    }
  }
  // Outside the connect lock: a fresh connection carries none of the
  // cluster's subscriptions — replay them before traffic flows.
  replaySubscriptions(shard, *fresh);
  return fresh;
}

void ClusterLocationService::dropClient(Shard& shard) {
  {
    std::lock_guard lock(shard.connectMutex);
    shard.client.reset();
  }
  clearShardSubscriptions(shard);
}

void ClusterLocationService::clearShardSubscriptions(Shard& shard) {
  // The connection is gone, and with it every subscription registered on
  // it; zero the slots so the next reconnect replays them.
  std::lock_guard lock(subsMutex_);
  for (auto& [id, sub] : subs_) {
    std::uint64_t& slot = subSlot(sub->shardSubIds, shard.index);
    if (slot != kSubPending) slot = 0;
  }
}

template <typename R>
std::optional<R> ClusterLocationService::callShard(
    Shard& shard, const std::function<R(core::RemoteLocationClient&)>& fn) {
  if (shard.health.down() && !shard.health.tryClaimProbe()) return std::nullopt;
  const std::size_t attempts = 1 + options_.retry.maxRetries;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      shard.health.recordRetry();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.retry.backoffDelay(attempt - 1).count()));
    }
    auto client = clientFor(shard);
    if (!client) {
      shard.health.recordFailure(/*timedOut=*/false);
      if (shard.health.down() && attempt + 1 < attempts && !shard.health.tryClaimProbe()) {
        return std::nullopt;  // went down mid-budget; stop hammering
      }
      continue;
    }
    shard.health.recordCall();
    try {
      R result = fn(*client);
      shard.health.recordSuccess();
      return result;
    } catch (const util::TimeoutError&) {
      // Slow, not provably dead: keep the connection (a late reply is
      // discarded by the RpcClient), back off, retry.
      shard.health.recordFailure(/*timedOut=*/true);
    } catch (const util::TransportError&) {
      // Connection gone: reconnect on the next attempt.
      shard.health.recordFailure(/*timedOut=*/false);
      dropClient(shard);
    }
    // util::MwError (an Error reply) propagates: the shard is healthy and
    // answered — the error belongs to the caller, not the failure policy.
  }
  return std::nullopt;
}

void ClusterLocationService::probeDownShards() {
  auto shards = shardsSnapshot();
  for (const auto& shard : *shards) {
    if (!shard->health.down()) continue;
    callShard<bool>(*shard, [](core::RemoteLocationClient& client) {
      client.ping();
      return true;
    });
  }
}

// --- object-routed calls ------------------------------------------------------

void ClusterLocationService::ingest(const db::SensorReading& reading) {
  auto shards = shardsSnapshot();
  auto state = ringSnapshot();
  Route route = routeFor(*shards, state.get(), reading.mobileObjectId, /*ingestPath=*/true);
  auto ok = callShard<bool>(*route.target, [&](core::RemoteLocationClient& client) {
    client.ingest(reading);
    return true;
  });
  if (!ok) {
    failedRoutedCalls_.fetch_add(1, std::memory_order_relaxed);
    droppedIngestReadings_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ClusterLocationService::ingestBatch(std::span<const db::SensorReading> readings) {
  if (readings.empty()) return;
  auto shards = shardsSnapshot();
  auto state = ringSnapshot();
  // Partition by target shard; a stable partition keeps each object's
  // readings in their original relative order inside its sub-batch.
  std::vector<std::vector<db::SensorReading>> parts(shards->size());
  for (const auto& reading : readings) {
    Route route = routeFor(*shards, state.get(), reading.mobileObjectId, /*ingestPath=*/true);
    parts[route.target->index].push_back(reading);
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].empty()) continue;
    Shard& shard = *(*shards)[i];
    auto ok = callShard<bool>(shard, [&](core::RemoteLocationClient& client) {
      client.ingestBatch(parts[i]);
      return true;
    });
    if (!ok) {
      failedRoutedCalls_.fetch_add(1, std::memory_order_relaxed);
      droppedIngestReadings_.fetch_add(parts[i].size(), std::memory_order_relaxed);
    }
  }
}

std::optional<fusion::LocationEstimate> ClusterLocationService::locate(
    const util::MobileObjectId& object) {
  auto shards = shardsSnapshot();
  auto state = ringSnapshot();
  Route route = routeFor(*shards, state.get(), object, /*ingestPath=*/false);
  auto result = callShard<std::optional<fusion::LocationEstimate>>(
      *route.target, [&](core::RemoteLocationClient& client) { return client.locate(object); });
  if (result && result->has_value()) return *result;
  if (route.fallback) {
    // Dual-read window: the new owner has no evidence yet — the previous
    // owner is still authoritative for this object.
    auto fallback = callShard<std::optional<fusion::LocationEstimate>>(
        *route.fallback,
        [&](core::RemoteLocationClient& client) { return client.locate(object); });
    if (fallback && fallback->has_value()) return *fallback;
    if (!result && !fallback) failedRoutedCalls_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (!result) failedRoutedCalls_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

std::string ClusterLocationService::locateSymbolic(const util::MobileObjectId& object) {
  auto shards = shardsSnapshot();
  auto state = ringSnapshot();
  Route route = routeFor(*shards, state.get(), object, /*ingestPath=*/false);
  auto result = callShard<std::string>(*route.target, [&](core::RemoteLocationClient& client) {
    return client.locateSymbolic(object);
  });
  if (result && !result->empty()) return *result;
  if (route.fallback) {
    auto fallback =
        callShard<std::string>(*route.fallback, [&](core::RemoteLocationClient& client) {
          return client.locateSymbolic(object);
        });
    if (fallback && !fallback->empty()) return *fallback;
    if (!result && !fallback) failedRoutedCalls_.fetch_add(1, std::memory_order_relaxed);
    return "";
  }
  if (!result) failedRoutedCalls_.fetch_add(1, std::memory_order_relaxed);
  return result ? *result : "";
}

// --- scatter-gather -----------------------------------------------------------

template <typename R>
std::vector<std::optional<R>> ClusterLocationService::scatter(
    const std::vector<std::shared_ptr<Shard>>& shards,
    const std::function<R(core::RemoteLocationClient&)>& fn) {
  std::vector<std::optional<R>> results(shards.size());
  std::vector<std::thread> workers;
  workers.reserve(shards.size());
  std::mutex errorMutex;
  std::exception_ptr error;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    workers.emplace_back([&, i] {
      try {
        results[i] = callShard<R>(*shards[i], fn);
      } catch (...) {
        // A remote application error (util::MwError) — keep the first.
        std::lock_guard lock(errorMutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (error) std::rethrow_exception(error);
  return results;
}

double ClusterLocationService::probabilityInRegion(const util::MobileObjectId& object,
                                                   const geo::Rect& region) {
  auto shards = shardsSnapshot();
  scatterGathers_.fetch_add(1, std::memory_order_relaxed);
  auto replies = scatter<core::RemoteLocationClient::RegionProbability>(
      *shards, [&](core::RemoteLocationClient& client) {
        return client.probabilityInRegionEx(object, region);
      });

  std::size_t answered = 0;
  bool anyEvidence = false;
  double best = 0;
  double bestPrior = 0;
  for (const auto& reply : replies) {
    if (!reply) continue;
    ++answered;
    if (reply->hasEvidence) {
      best = anyEvidence ? std::max(best, reply->probability) : reply->probability;
      anyEvidence = true;
    } else {
      bestPrior = std::max(bestPrior, reply->probability);
    }
  }
  if (answered == 0) {
    throw mw::util::TransportError(
        "ClusterLocationService::probabilityInRegion: no shard answered");
  }
  if (answered < shards->size()) degradedQueries_.fetch_add(1, std::memory_order_relaxed);
  // The owning shard's fused answer wins; with no evidence anywhere every
  // shard reported the same prior mass, so any of them is THE answer.
  return anyEvidence ? best : bestPrior;
}

ClusterLocationService::RegionQueryResult ClusterLocationService::objectsInRegionDetailed(
    const geo::Rect& region, double minProbability) {
  auto shards = shardsSnapshot();
  scatterGathers_.fetch_add(1, std::memory_order_relaxed);
  using Members = std::vector<std::pair<util::MobileObjectId, double>>;
  auto replies = scatter<Members>(*shards, [&](core::RemoteLocationClient& client) {
    return client.objectsInRegion(region, minProbability);
  });

  RegionQueryResult result;
  // Objects are disjoint across shards by construction; the map guards the
  // transient overlap a stale shard map could produce (keep the higher-
  // probability sighting).
  std::unordered_map<std::string, double> merged;
  for (const auto& reply : replies) {
    if (!reply) continue;
    ++result.shardsAnswered;
    for (const auto& [object, probability] : *reply) {
      auto [it, inserted] = merged.emplace(object.str(), probability);
      if (!inserted && probability > it->second) it->second = probability;
    }
  }
  if (result.shardsAnswered == 0) {
    throw mw::util::TransportError("ClusterLocationService::objectsInRegion: no shard answered");
  }
  result.degraded = result.shardsAnswered < shards->size();
  if (result.degraded) degradedQueries_.fetch_add(1, std::memory_order_relaxed);

  result.members.reserve(merged.size());
  for (auto& [object, probability] : merged) {
    result.members.emplace_back(util::MobileObjectId{object}, probability);
  }
  // The LocationService's own answer ordering: descending probability, ties
  // by id — so a healthy cluster's merge is byte-for-byte the oracle's.
  std::sort(result.members.begin(), result.members.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return result;
}

std::vector<std::pair<util::MobileObjectId, double>> ClusterLocationService::objectsInRegion(
    const geo::Rect& region, double minProbability) {
  return objectsInRegionDetailed(region, minProbability).members;
}

// --- push: cluster-wide subscriptions ----------------------------------------

util::SubscriptionId ClusterLocationService::subscribe(
    const geo::Rect& region, std::optional<util::MobileObjectId> subject, double threshold,
    std::function<void(const core::Notification&)> callback) {
  auto shards = shardsSnapshot();
  auto sub = std::make_shared<ClusterSub>();
  sub->region = region;
  sub->subject = std::move(subject);
  sub->threshold = threshold;
  sub->callback = std::move(callback);
  sub->shardSubIds.assign(shards->size(), 0);

  util::SubscriptionId clusterId;
  {
    std::lock_guard lock(subsMutex_);
    clusterId = subIds_.next();
    subs_.emplace(clusterId.value(), sub);
  }
  for (const auto& shard : *shards) {
    subscribeOnShard(*shard, clusterId, *sub);
  }
  return clusterId;
}

void ClusterLocationService::subscribeOnShard(Shard& shard, util::SubscriptionId clusterId,
                                              ClusterSub& sub) {
  {
    // Claim the slot: either the initial fan-out or a reconnect replay
    // registers on a given shard, never both.
    std::lock_guard lock(subsMutex_);
    std::uint64_t& slot = subSlot(sub.shardSubIds, shard.index);
    if (slot != 0) return;
    slot = kSubPending;
  }
  auto emit = [callback = sub.callback, clusterId](const core::Notification& n) {
    core::Notification out = n;
    out.id = clusterId;  // one client-facing id, whichever shard matched
    callback(out);
  };
  auto shardSubId = callShard<std::uint64_t>(shard, [&](core::RemoteLocationClient& client) {
        return client.subscribe(sub.region, sub.subject, sub.threshold, emit).value();
      });
  std::unique_lock lock(subsMutex_);
  const bool live = subs_.contains(clusterId.value());
  subSlot(sub.shardSubIds, shard.index) = (shardSubId && live) ? *shardSubId : 0;
  if (shardSubId && !live) {
    // unsubscribe() won the race while registration was in flight; take the
    // orphan back down (best effort).
    lock.unlock();
    callShard<bool>(shard, [&](core::RemoteLocationClient& client) {
      return client.unsubscribe(util::SubscriptionId{*shardSubId});
    });
  }
}

void ClusterLocationService::replaySubscriptions(Shard& shard, core::RemoteLocationClient& client) {
  // Collect the subscriptions missing on this shard, then register each
  // directly on the fresh client (single attempt — a failure leaves the
  // slot empty for the next reconnect).
  std::vector<std::pair<util::SubscriptionId, std::shared_ptr<ClusterSub>>> missing;
  {
    std::lock_guard lock(subsMutex_);
    for (auto& [id, sub] : subs_) {
      std::uint64_t& slot = subSlot(sub->shardSubIds, shard.index);
      if (slot != 0) continue;
      slot = kSubPending;
      missing.emplace_back(util::SubscriptionId{id}, sub);
    }
  }
  for (auto& [clusterId, sub] : missing) {
    std::uint64_t shardSubId = 0;
    try {
      auto emit = [callback = sub->callback, clusterId = clusterId](const core::Notification& n) {
        core::Notification out = n;
        out.id = clusterId;
        callback(out);
      };
      shardSubId = client.subscribe(sub->region, sub->subject, sub->threshold, emit).value();
    } catch (const util::TransportError&) {
      // Fresh connection already gone; the next reconnect replays again.
    }
    std::lock_guard lock(subsMutex_);
    subSlot(sub->shardSubIds, shard.index) = subs_.contains(clusterId.value()) ? shardSubId : 0;
  }
}

bool ClusterLocationService::unsubscribe(util::SubscriptionId id) {
  std::shared_ptr<ClusterSub> sub;
  {
    std::lock_guard lock(subsMutex_);
    auto it = subs_.find(id.value());
    if (it == subs_.end()) return false;
    sub = it->second;
    subs_.erase(it);
  }
  auto shards = shardsSnapshot();
  for (const auto& shard : *shards) {
    std::uint64_t shardSubId;
    {
      std::lock_guard lock(subsMutex_);
      shardSubId = subSlot(sub->shardSubIds, shard->index);
    }
    if (shardSubId == 0 || shardSubId == kSubPending) continue;
    callShard<bool>(*shard, [&](core::RemoteLocationClient& client) {
      return client.unsubscribe(util::SubscriptionId{shardSubId});
    });
  }
  return true;
}

ClusterLocationService::Stats ClusterLocationService::stats() const {
  Stats stats;
  auto shards = shardsSnapshot();
  stats.shards.reserve(shards->size());
  for (const auto& shard : *shards) {
    ShardStats s;
    {
      std::lock_guard lock(shard->connectMutex);
      s.announced = shard->endpoint.has_value();
    }
    s.down = shard->health.down();
    s.calls = shard->health.calls();
    s.failures = shard->health.failures();
    s.timeouts = shard->health.timeouts();
    s.retries = shard->health.retries();
    s.reconnects = shard->health.reconnects();
    stats.shards.push_back(s);
  }
  stats.scatterGathers = scatterGathers_.load(std::memory_order_relaxed);
  stats.degradedQueries = degradedQueries_.load(std::memory_order_relaxed);
  stats.failedRoutedCalls = failedRoutedCalls_.load(std::memory_order_relaxed);
  stats.droppedIngestReadings = droppedIngestReadings_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mw::cluster
