// Shard naming and object partitioning for the location-service cluster.
//
// A cluster of N LocationService processes partitions the mobile-object
// space by hash: shard i owns every object with shardForObject(o, N) == i.
// Each shard announces itself in the RegistryServer under the name
// "location.shard.<i>/<N>" — the index and the total are both in the name,
// so a router can resolve the whole topology from a bare registry.list()
// (discovery-then-route, the Gaia Space Repository pattern of §7 stretched
// over the rendezvous-style service location of PAPERS.md).
//
// Ordering invariant: the router sends every reading for object o to shard
// shardForObject(o, N); inside the shard the RpcServer's "ingest" lane
// selector routes by hash(object) again. One object therefore flows through
// one TCP ordering domain into one executor lane into one reading-store
// stripe — per-object ordering holds end-to-end, so a sharded replay is
// byte-identical to a sequential one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/remote_registry.hpp"
#include "util/ids.hpp"

namespace mw::cluster {

/// Registry-name prefix shared by every shard announcement.
inline constexpr const char* kShardNamePrefix = "location.shard.";

/// "location.shard.<index>/<total>".
[[nodiscard]] std::string shardName(std::size_t index, std::size_t total);

struct ParsedShardName {
  std::size_t index = 0;
  std::size_t total = 0;
};

/// Inverse of shardName(); nullopt for anything malformed (wrong prefix,
/// non-numeric fields, index >= total, total == 0).
[[nodiscard]] std::optional<ParsedShardName> parseShardName(const std::string& name);

/// The owning shard for an object: FNV-1a over the id bytes, finished with
/// the splitmix64 mix (the same finalizer the RpcServer lane selector uses
/// for connection keys), modulo the shard count. Deterministic across
/// processes and platforms — a router restart routes every object exactly
/// where its readings already live.
[[nodiscard]] std::size_t shardForObject(const util::MobileObjectId& object, std::size_t total);

/// A resolved cluster topology: `endpoints[i]` is shard i's announced
/// endpoint, nullopt while unannounced (never started, crashed and expired
/// from the registry, ...).
struct ShardMap {
  std::size_t total = 0;
  std::vector<std::optional<core::Endpoint>> endpoints;

  [[nodiscard]] std::size_t announcedCount() const noexcept;
  [[nodiscard]] bool complete() const noexcept { return announcedCount() == total; }
};

/// Resolves the shard map from a live registry: lists every
/// "location.shard.*" entry, checks that all announcements agree on the
/// total, and looks each one up. Throws util::ContractError on inconsistent
/// totals (two clusters sharing one registry is a deployment error) and
/// returns an empty map (total 0) when no shard is announced.
[[nodiscard]] ShardMap resolveShardMap(core::RegistryClient& registry);

}  // namespace mw::cluster
