// Shard naming and object partitioning for the location-service cluster.
//
// A cluster of N LocationService processes partitions the mobile-object
// space by hash: shard i owns every object with shardForObject(o, N) == i.
// Each shard announces itself in the RegistryServer under the name
// "location.shard.<i>/<N>" — the index and the total are both in the name,
// so a router can resolve the whole topology from a bare registry.list()
// (discovery-then-route, the Gaia Space Repository pattern of §7 stretched
// over the rendezvous-style service location of PAPERS.md).
//
// Ordering invariant: the router sends every reading for object o to shard
// shardForObject(o, N); inside the shard the RpcServer's "ingest" lane
// selector routes by hash(object) again. One object therefore flows through
// one TCP ordering domain into one executor lane into one reading-store
// stripe — per-object ordering holds end-to-end, so a sharded replay is
// byte-identical to a sequential one.
//
// Ring partitioning: the modulo map above reshuffles nearly every object
// when N changes, so it cannot support online membership change. HashRing
// places `vnodes` points per member on a 64-bit circle (same FNV-1a +
// splitmix64 mix) and assigns each object to the first point at or after
// its key. A joining member takes only the arcs its points cut out of the
// existing ones — bounded movement, everyone else's objects stay put. Ring
// members announce under "location.ring.<token>" (no total in the name:
// membership IS the registry listing, which is what makes it dynamic).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/remote_registry.hpp"
#include "util/ids.hpp"

namespace mw::cluster {

/// Registry-name prefix shared by every shard announcement.
inline constexpr const char* kShardNamePrefix = "location.shard.";

/// "location.shard.<index>/<total>".
[[nodiscard]] std::string shardName(std::size_t index, std::size_t total);

struct ParsedShardName {
  std::size_t index = 0;
  std::size_t total = 0;
};

/// Inverse of shardName(); nullopt for anything malformed (wrong prefix,
/// non-numeric fields, index >= total, total == 0).
[[nodiscard]] std::optional<ParsedShardName> parseShardName(const std::string& name);

/// The owning shard for an object: FNV-1a over the id bytes, finished with
/// the splitmix64 mix (the same finalizer the RpcServer lane selector uses
/// for connection keys), modulo the shard count. Deterministic across
/// processes and platforms — a router restart routes every object exactly
/// where its readings already live.
[[nodiscard]] std::size_t shardForObject(const util::MobileObjectId& object, std::size_t total);

/// A resolved cluster topology: `endpoints[i]` is shard i's announced
/// endpoint, nullopt while unannounced (never started, crashed and expired
/// from the registry, ...).
struct ShardMap {
  std::size_t total = 0;
  std::vector<std::optional<core::Endpoint>> endpoints;

  [[nodiscard]] std::size_t announcedCount() const noexcept;
  [[nodiscard]] bool complete() const noexcept { return announcedCount() == total; }
};

/// Resolves the shard map from a live registry: lists every
/// "location.shard.*" entry, checks that all announcements agree on the
/// total, and looks each one up. Throws util::ContractError on inconsistent
/// totals (two clusters sharing one registry is a deployment error) and
/// returns an empty map (total 0) when no shard is announced.
[[nodiscard]] ShardMap resolveShardMap(core::RegistryClient& registry);

/// FNV-1a over the bytes, finished with the splitmix64 mix — the key and
/// ring-point hash. Exposed so tests can predict placement.
[[nodiscard]] std::uint64_t mixHash64(std::string_view bytes);

/// An object's position on the 64-bit ring (mixHash64 of its id).
[[nodiscard]] std::uint64_t objectRingKey(const util::MobileObjectId& object);

/// Registry-name prefix for consistent-hash ring members.
inline constexpr const char* kRingNamePrefix = "location.ring.";

/// "location.ring.<token>".
[[nodiscard]] std::string ringMemberName(const std::string& token);

/// Inverse of ringMemberName(); nullopt for other names (wrong prefix,
/// empty token, or a ".backup" standby announcement — standbys are not
/// ring members until they promote).
[[nodiscard]] std::optional<std::string> parseRingMemberName(const std::string& name);

/// Half-open arc (lo, hi] on the 64-bit circle, wrapping through zero when
/// lo >= hi. lo == hi means the full circle (a single-point ring).
struct RingArc {
  std::uint64_t lo = 0;  ///< exclusive
  std::uint64_t hi = 0;  ///< inclusive

  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    if (lo == hi) return true;
    if (lo < hi) return key > lo && key <= hi;
    return key > lo || key <= hi;  // wraps through zero
  }
  friend bool operator==(const RingArc&, const RingArc&) = default;
};

/// Consistent-hash ring: `vnodes` points per member token, each key owned
/// by the member of the first point at or after it (wrapping). Deterministic
/// across processes: same members => same ring, regardless of join order.
class HashRing {
 public:
  static constexpr std::size_t kDefaultVnodes = 64;

  HashRing() = default;
  explicit HashRing(std::vector<std::string> members, std::size_t vnodes = kDefaultVnodes);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t vnodes() const noexcept { return vnodes_; }
  [[nodiscard]] const std::vector<std::string>& members() const noexcept { return members_; }
  [[nodiscard]] bool hasMember(const std::string& token) const;

  /// Owning member for a ring position / object. Throws util::ContractError
  /// on an empty ring.
  [[nodiscard]] const std::string& ownerForKey(std::uint64_t key) const;
  [[nodiscard]] const std::string& ownerForObject(const util::MobileObjectId& object) const;

  /// Every arc `token` owns, in ring order. Empty when not a member.
  [[nodiscard]] std::vector<RingArc> arcsOf(const std::string& token) const;

  /// One arc a joining member takes, plus who owned it before the join
  /// (empty loser when the old ring was empty — genesis, nothing to move).
  struct Claim {
    RingArc arc;
    std::string loser;
  };

  /// The arcs `joiner` owns in `after` that it did not own in `before`,
  /// each with its previous owner. Correct whenever before's members are a
  /// subset of after's (then no before-point lies strictly inside an
  /// after-arc, so each claimed arc had exactly one previous owner).
  [[nodiscard]] static std::vector<Claim> claimsFor(const HashRing& before,
                                                   const HashRing& after,
                                                   const std::string& joiner);

 private:
  struct Point {
    std::uint64_t pos = 0;
    std::uint32_t member = 0;  ///< index into members_
  };

  std::vector<std::string> members_;  ///< sorted, unique
  std::vector<Point> points_;         ///< sorted by pos
  std::size_t vnodes_ = kDefaultVnodes;
};

/// Announced ring members resolved from a live registry: tokens sorted,
/// endpoints parallel (nullopt when the entry expired between list and
/// lookup).
struct RingMemberMap {
  std::vector<std::string> tokens;
  std::vector<std::optional<core::Endpoint>> endpoints;
};

[[nodiscard]] RingMemberMap resolveRingMembers(core::RegistryClient& registry);

}  // namespace mw::cluster
