#include "cluster/replication.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::cluster {

// --- ReplicationLink ----------------------------------------------------------

ReplicationLink::ReplicationLink(std::string backupName,
                                 std::shared_ptr<core::RemoteLocationClient> client)
    : backupName_(std::move(backupName)), client_(std::move(client)) {
  mw::util::require(client_ != nullptr, "ReplicationLink: null client");
}

void ReplicationLink::markDead(const char* what) {
  dead_.store(true, std::memory_order_release);
  live_.store(false, std::memory_order_release);
  failures_.fetch_add(1, std::memory_order_relaxed);
  util::logWarn("ReplicationLink", " backup ", backupName_, " failed during ", what,
                "; continuing unreplicated");
}

bool ReplicationLink::syncFrom(db::SpatialDatabase& db) {
  // The caller holds the service's ingest pause: the store is a consistent
  // cut and nothing is mirrored concurrently, so replaying every object's
  // log leaves the backup byte-level equal to the primary.
  for (const auto& object : db.knownMobileObjects()) {
    const std::vector<db::SensorReading> log = db.exportObjectLog(object);
    if (log.empty()) continue;
    try {
      std::lock_guard lock(sendMutex_);
      client_->ingestBatch(log);
    } catch (const util::MwError&) {
      markDead("initial sync");
      return false;
    }
    syncedReadings_.fetch_add(log.size(), std::memory_order_relaxed);
  }
  live_.store(true, std::memory_order_release);
  return true;
}

void ReplicationLink::mirror(std::span<const db::SensorReading> batch) {
  if (batch.empty() || !live()) return;
  try {
    std::lock_guard lock(sendMutex_);
    client_->ingestBatch(batch);
    mirroredReadings_.fetch_add(batch.size(), std::memory_order_relaxed);
  } catch (const util::MwError&) {
    // The batch still applies locally — availability over durability; the
    // primary now runs unreplicated until a new backup announces.
    markDead("mirror");
  }
}

// --- HandoffSession -----------------------------------------------------------

HandoffSession::HandoffSession(std::string joinerToken, std::vector<RingArc> arcs,
                               std::shared_ptr<core::RemoteLocationClient> client)
    : joinerToken_(std::move(joinerToken)), arcs_(std::move(arcs)), client_(std::move(client)) {
  mw::util::require(client_ != nullptr, "HandoffSession: null client");
  mw::util::require(!arcs_.empty(), "HandoffSession: no arcs");
}

HandoffSession::HandoffSession(std::string joinerToken,
                               std::vector<util::MobileObjectId> objects,
                               std::shared_ptr<core::RemoteLocationClient> client)
    : joinerToken_(std::move(joinerToken)),
      objects_(std::make_move_iterator(objects.begin()),
               std::make_move_iterator(objects.end())),
      client_(std::move(client)) {
  mw::util::require(client_ != nullptr, "HandoffSession: null client");
}

bool HandoffSession::covers(const util::MobileObjectId& object) const {
  std::shared_lock lock(coverMutex_);
  if (removed_.contains(object)) return false;
  if (arcs_.empty()) return objects_.contains(object);
  const std::uint64_t key = objectRingKey(object);
  return std::any_of(arcs_.begin(), arcs_.end(),
                     [&](const RingArc& arc) { return arc.contains(key); });
}

void HandoffSession::removeObjects(std::span<const util::MobileObjectId> objects) {
  std::unique_lock lock(coverMutex_);
  for (const auto& object : objects) removed_.insert(object);
}

std::vector<db::SensorReading> HandoffSession::filter(std::vector<db::SensorReading> batch) {
  std::vector<db::SensorReading> mine;
  std::vector<db::SensorReading> rest;
  rest.reserve(batch.size());
  for (auto& reading : batch) {
    (covers(reading.mobileObjectId) ? mine : rest).push_back(std::move(reading));
  }
  if (mine.empty()) return rest;
  std::lock_guard lock(mutex_);
  if (!forwarding_.load(std::memory_order_relaxed)) {
    bufferedReadings_.fetch_add(mine.size(), std::memory_order_relaxed);
    buffer_.insert(buffer_.end(), std::make_move_iterator(mine.begin()),
                   std::make_move_iterator(mine.end()));
    return rest;
  }
  try {
    client_->ingestBatch(mine);
    forwardedReadings_.fetch_add(mine.size(), std::memory_order_relaxed);
  } catch (const util::MwError&) {
    failures_.fetch_add(mine.size(), std::memory_order_relaxed);
    util::logWarn("HandoffSession", " forward to ", joinerToken_, " failed; ", mine.size(),
                  " reading(s) lost to the joiner");
  }
  return rest;
}

bool HandoffSession::flush() {
  std::lock_guard lock(mutex_);
  if (!buffer_.empty()) {
    try {
      client_->ingestBatch(buffer_);
    } catch (const util::MwError&) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      util::logWarn("HandoffSession", " flush to ", joinerToken_,
                    " failed; keeping buffer for retry");
      return false;
    }
    forwardedReadings_.fetch_add(buffer_.size(), std::memory_order_relaxed);
    buffer_.clear();
  }
  // Same lock as the buffering branch of filter(): no reading can observe
  // "buffering" after the drain — the order at the joiner is exactly
  // buffer FIFO then forward FIFO.
  forwarding_.store(true, std::memory_order_release);
  return true;
}

// --- wire helpers -------------------------------------------------------------

void encodeArcs(util::ByteWriter& w, std::span<const RingArc> arcs) {
  w.u32(static_cast<std::uint32_t>(arcs.size()));
  for (const RingArc& arc : arcs) {
    w.u64(arc.lo);
    w.u64(arc.hi);
  }
}

std::vector<RingArc> decodeArcs(util::ByteReader& r) {
  std::vector<RingArc> arcs;
  const std::uint32_t count = r.u32();
  arcs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RingArc arc;
    arc.lo = r.u64();
    arc.hi = r.u64();
    arcs.push_back(arc);
  }
  return arcs;
}

}  // namespace mw::cluster
