// Spatial partitioning of the lattice's MBR space among cluster members.
//
// The object-hash partitionings (modulo, ring) spread objects evenly but
// scatter every region query across all shards. A TerritoryMap instead
// carves the universe rectangle into kd-split leaves, each owned by one
// member: a region query touches only the owners whose leaves intersect it,
// and a reading is ingested by the owner of its evidence box — the
// zone-ownership model of "Towards a Scalable Dynamic Spatial Database
// System" with the query-to-owner routing of "Rendezvous Regions"
// (PAPERS.md).
//
// Determinism: uniform() is a pure function of (universe, member set) —
// members are sorted, the kd tree halves the space proportionally, so every
// router that resolves the same registry builds byte-identical leaf
// geometry. Mutations (splitLeaf, reassignLeaf) return a NEW map with the
// version bumped; the current map is published through the registry's
// versioned metadata (putMeta), so a stale balancer republishing an old
// split loses and every reader converges on the highest version.
//
// Point ownership is half-open: a leaf owns [lo, hi) on each axis, except
// along the universe's own upper edges, which stay inclusive. Leaves tile
// the universe exactly (split coordinates are shared bit-for-bit between
// the two halves), so every point in the universe has exactly one owner —
// the property ingest routing needs. Region intersection tests are the
// ordinary closed-set Rect::intersects: a conservative superset is fine for
// query fan-out, where the merge comparator absorbs duplicates.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geometry/rect.hpp"
#include "util/bytes.hpp"

namespace mw::cluster {

/// One owned rectangle of the kd split. Ids are stable across splits: a
/// split keeps the original id on the low half and mints a fresh one for
/// the high half, so per-leaf load counters survive unrelated re-splits.
struct TerritoryLeaf {
  std::uint32_t id = 0;
  geo::Rect rect;
  std::string owner;

  friend bool operator==(const TerritoryLeaf&, const TerritoryLeaf&) = default;
};

class TerritoryMap {
 public:
  /// Empty map (version 0, no universe) — the state before any member
  /// published one.
  TerritoryMap() = default;

  /// The initial split: recursively halve `universe` along the long axis
  /// into exactly one equal-area leaf per member, members sorted first so
  /// the result is a pure function of the member *set*. Version 1.
  /// Throws util::ContractError on an empty universe or no members.
  [[nodiscard]] static TerritoryMap uniform(const geo::Rect& universe,
                                           std::vector<std::string> members);

  [[nodiscard]] bool empty() const noexcept { return leaves_.empty(); }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] const geo::Rect& universe() const noexcept { return universe_; }
  [[nodiscard]] const std::vector<TerritoryLeaf>& leaves() const noexcept { return leaves_; }
  [[nodiscard]] const TerritoryLeaf* leafById(std::uint32_t id) const;

  /// The unique leaf owning `p` (clamped into the universe first, so
  /// readings straying outside still route deterministically). Throws
  /// util::ContractError on an empty map.
  [[nodiscard]] const TerritoryLeaf& leafForPoint(geo::Point2 p) const;
  [[nodiscard]] const std::string& ownerForPoint(geo::Point2 p) const;

  /// Sorted, unique owners whose leaves intersect `region` (closed-set
  /// test — a conservative superset of the owners that can answer).
  [[nodiscard]] std::vector<std::string> ownersIntersecting(const geo::Rect& region) const;

  /// Every owner appearing in the map, sorted and unique.
  [[nodiscard]] std::vector<std::string> owners() const;

  /// Every leaf owned by `owner`, in leaf order.
  [[nodiscard]] std::vector<TerritoryLeaf> leavesOf(const std::string& owner) const;

  /// A new map (version + 1) with leaf `id` halved along its long axis:
  /// the low half keeps the id and owner, the high half gets a fresh id
  /// owned by `newOwner`. Throws util::ContractError when the leaf does
  /// not exist or is too thin to split.
  [[nodiscard]] TerritoryMap splitLeaf(std::uint32_t id, const std::string& newOwner) const;

  /// A new map (version + 1) with leaf `id` handed to `newOwner`.
  [[nodiscard]] TerritoryMap reassignLeaf(std::uint32_t id, const std::string& newOwner) const;

  /// The inverse of splitLeaf — re-coarsening after load subsides, so splits
  /// do not accumulate forever. The two leaves must tile an exact rectangle
  /// (they share one full edge — the shape every kd split produces); the
  /// merged leaf keeps `keepId`'s id and owner and `dropId` disappears.
  /// Version + 1. Throws util::ContractError on unknown ids or when the
  /// union is not a rectangle.
  [[nodiscard]] TerritoryMap mergeLeaves(std::uint32_t keepId, std::uint32_t dropId) const;

  /// A leaf whose rect forms an exact rectangle with `id`'s (a mergeLeaves
  /// candidate), preferring one with the same owner; nullopt when no
  /// neighbour tiles cleanly. The balancer uses this to pick re-coarsening
  /// pairs without re-deriving kd-tree structure.
  [[nodiscard]] std::optional<std::uint32_t> mergeableSibling(std::uint32_t id) const;

  /// Wire format for the registry's versioned metadata.
  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static TerritoryMap decode(const util::Bytes& bytes);

  friend bool operator==(const TerritoryMap&, const TerritoryMap&) = default;

 private:
  /// Half-open containment against the universe's upper edges.
  [[nodiscard]] bool leafContains(const TerritoryLeaf& leaf, geo::Point2 p) const;

  std::uint64_t version_ = 0;
  std::uint32_t nextId_ = 0;
  geo::Rect universe_;
  std::vector<TerritoryLeaf> leaves_;
};

/// Registry metadata key the current territory map is published under.
inline constexpr const char* kTerritoryMetaName = "location.territory";

/// Registry-name prefix for spatial-partitioning members (parallel to the
/// ring's "location.ring.<token>": membership IS the registry listing).
inline constexpr const char* kSpaceNamePrefix = "location.space.";

/// "location.space.<token>".
[[nodiscard]] std::string spaceMemberName(const std::string& token);

/// Inverse of spaceMemberName(); nullopt for other names (wrong prefix,
/// empty token, ".backup" standby announcements).
[[nodiscard]] std::optional<std::string> parseSpaceMemberName(const std::string& name);

}  // namespace mw::cluster
