#include "cluster/shard_host.hpp"

#include <unistd.h>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::cluster {

ShardHost::ShardHost(const util::Clock& clock, geo::Rect universe, const std::string& rootFrame,
                     const std::string& registryHost, std::uint16_t registryPort,
                     Options options)
    : core_(std::make_unique<core::Middlewhere>(clock, universe, rootFrame)),
      registry_(registryHost, registryPort),
      options_(options),
      name_(shardName(options.index, options.total)) {
  mw::util::require(options_.announceTtl.count() == 0 ||
                        options_.heartbeatPeriod < options_.announceTtl,
                    "ShardHost: heartbeatPeriod must undercut announceTtl");
}

ShardHost::~ShardHost() { stop(); }

void ShardHost::start() {
  mw::util::require(!running_, "ShardHost::start: already running");
  port_ = core_->listen(options_.port);
  if (options_.enableShm) {
    if (orb::shmAvailable()) {
      // The lane name must be unique per process (parallel test runs share
      // /dev/shm) and registry-safe; '/' in the shard name becomes '.'.
      std::string lane = "mw." + name_ + "." + std::to_string(::getpid());
      for (auto& c : lane) {
        if (c == '/') c = '.';
      }
      shmListener_ = std::make_unique<orb::ShmListener>(
          lane, [this](std::shared_ptr<orb::Transport> t) {
            core_->rpcServer().serve(std::move(t));
          });
      shmName_ = lane;
    } else {
      util::logWarn("ShardHost", name_, ": POSIX shm unavailable; serving TCP only");
    }
  }
  announceOnce();
  running_ = true;
  if (options_.announceTtl.count() > 0) {
    heartbeat_ = std::thread([this] { heartbeatLoop(); });
  }
  util::logInfo("ShardHost", name_, " serving on port ", port_);
}

void ShardHost::stop() {
  if (!running_) return;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  stopCv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  try {
    registry_.withdraw(name_);
  } catch (const util::TransportError&) {
    // Registry gone; the TTL expires the entry on its own.
  }
  shmListener_.reset();
  shmName_.clear();
  running_ = false;
}

void ShardHost::announceOnce() {
  registry_.announce(name_, core::Endpoint{"127.0.0.1", port_, shmName_}, options_.announceTtl);
}

void ShardHost::heartbeatLoop() {
  std::unique_lock lock(mutex_);
  while (!stopCv_.wait_for(lock, std::chrono::milliseconds(options_.heartbeatPeriod.count()),
                           [&] { return stopping_; })) {
    lock.unlock();
    try {
      announceOnce();
    } catch (const util::TransportError&) {
      // Registry unreachable this tick: the entry may expire (and the
      // cluster will treat this shard as unannounced) until a later
      // heartbeat gets through.
      heartbeatFailures_.fetch_add(1, std::memory_order_relaxed);
      util::logWarn("ShardHost", name_, ": heartbeat failed (registry unreachable)");
    }
    lock.lock();
  }
}

}  // namespace mw::cluster
