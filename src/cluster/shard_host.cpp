#include "cluster/shard_host.hpp"

#include <unistd.h>

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "cluster/placement.hpp"
#include "cluster/territory_map.hpp"
#include "orb/tcp.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::cluster {

namespace {

/// Peer-to-peer calls (replication mirror, handoff forward, log export)
/// block an ingest ack; a wedged peer must not wedge the caller forever.
constexpr auto kPeerCallTimeout = util::sec(5);

}  // namespace

ShardHost::ShardHost(const util::Clock& clock, geo::Rect universe, const std::string& rootFrame,
                     const std::string& registryHost, std::uint16_t registryPort,
                     Options options)
    : core_(std::make_unique<core::Middlewhere>(clock, universe, rootFrame)),
      registry_(registryHost, registryPort),
      options_(std::move(options)),
      primaryName_(!options_.spaceToken.empty() ? spaceMemberName(options_.spaceToken)
                   : options_.ringToken.empty() ? shardName(options_.index, options_.total)
                                                : ringMemberName(options_.ringToken)),
      name_(options_.role == Role::Backup ? primaryName_ + kBackupSuffix : primaryName_),
      role_(options_.role),
      generation_(options_.generation) {
  mw::util::require(options_.announceTtl.count() == 0 ||
                        options_.heartbeatPeriod < options_.announceTtl,
                    "ShardHost: heartbeatPeriod must undercut announceTtl");
  mw::util::require(options_.ringToken.empty() || options_.spaceToken.empty(),
                    "ShardHost: ringToken and spaceToken are mutually exclusive");
  mw::util::require(!options_.deferAnnounce || !options_.ringToken.empty(),
                    "ShardHost: deferAnnounce is for ring joiners");
  mw::util::require(options_.role != Role::Backup || options_.announceTtl.count() > 0,
                    "ShardHost: a backup needs the heartbeat (announceTtl > 0) to "
                    "watch its primary");
  announceName_ = name_;
}

ShardHost::~ShardHost() { stop(); }

void ShardHost::start() {
  mw::util::require(!running_, "ShardHost::start: already running");
  port_ = core_->listen(options_.port);
  if (options_.enableShm) {
    if (orb::shmAvailable()) {
      // The lane name must be unique per process (parallel test runs share
      // /dev/shm) and registry-safe; '/' in the shard name becomes '.'.
      std::string lane = "mw." + name_ + "." + std::to_string(::getpid());
      for (auto& c : lane) {
        if (c == '/') c = '.';
      }
      shmListener_ = std::make_unique<orb::ShmListener>(
          lane, [this](std::shared_ptr<orb::Transport> t) {
            core_->rpcServer().serve(std::move(t));
          });
      shmName_ = lane;
    } else {
      util::logWarn("ShardHost", name_, ": POSIX shm unavailable; serving TCP only");
    }
  }
  installTap();
  registerHandoffMethods();
  if (!options_.deferAnnounce) {
    announceOnce();
    announced_.store(true, std::memory_order_release);
  }
  running_ = true;
  if (options_.announceTtl.count() > 0) {
    heartbeat_ = std::thread([this] { heartbeatLoop(); });
  }
  util::logInfo("ShardHost", name_, " serving on port ", port_);
}

void ShardHost::stop() {
  if (!running_) return;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  stopCv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  std::string who;
  {
    std::lock_guard lock(mutex_);
    who = announceName_;
  }
  // A fenced host no longer owns its name — a successor promoted into it,
  // and withdrawing here would delete the SUCCESSOR's entry.
  if (announced_.load(std::memory_order_acquire) && !fenced_.load(std::memory_order_acquire)) {
    try {
      registry_.withdraw(who);
    } catch (const util::TransportError&) {
      // Registry gone; the TTL expires the entry on its own.
    }
  }
  core_->locationService().setIngestTap(nullptr);
  {
    std::lock_guard lock(mutex_);
    link_.reset();
    linkedBackup_.reset();
    sessions_.clear();
    territorySessions_.clear();
  }
  shmListener_.reset();
  shmName_.clear();
  running_ = false;
}

core::Endpoint ShardHost::selfEndpoint() const {
  return core::Endpoint{"127.0.0.1", port_, shmName_};
}

bool ShardHost::announceOnce() {
  if (fenced_.load(std::memory_order_acquire)) return false;
  std::string who;
  {
    std::lock_guard lock(mutex_);
    who = announceName_;
  }
  // The serving name is fenced by generation; the backup standby name is
  // uncontended (generation 0 = legacy unfenced announce).
  const std::uint64_t generation =
      who == primaryName_ ? generation_.load(std::memory_order_acquire) : 0;
  const bool accepted = registry_.announce(who, selfEndpoint(), options_.announceTtl, generation);
  if (!accepted) {
    fenced_.store(true, std::memory_order_release);
    fencedHeartbeats_.fetch_add(1, std::memory_order_relaxed);
    util::logWarn("ShardHost", who, ": announce rejected (generation ", generation,
                  " fenced by a promoted successor); demoting to bystander");
  }
  return accepted;
}

void ShardHost::heartbeatLoop() {
  std::unique_lock lock(mutex_);
  while (!stopCv_.wait_for(lock, std::chrono::milliseconds(options_.heartbeatPeriod.count()),
                           [&] { return stopping_; })) {
    lock.unlock();
    try {
      if (announced_.load(std::memory_order_acquire)) {
        announceOnce();
        if (role() == Role::Primary) {
          maintainReplication();
        } else {
          monitorPrimary();
        }
      }
    } catch (const util::TransportError&) {
      // Registry unreachable this tick: the entry may expire (and the
      // cluster will treat this shard as unannounced) until a later
      // heartbeat gets through.
      heartbeatFailures_.fetch_add(1, std::memory_order_relaxed);
      util::logWarn("ShardHost", name_, ": heartbeat failed (registry unreachable)");
    }
    lock.lock();
  }
}

ShardHost::LoadStats ShardHost::loadStats() const {
  LoadStats stats;
  const auto& service = core_->locationService();
  stats.ingestedReadings = service.ingestedReadings();
  stats.importedReadings = service.importedReadings();
  stats.regionQueries = service.regionQueries();
  stats.residentObjects = core_->database().knownMobileObjects().size();
  return stats;
}

std::shared_ptr<ReplicationLink> ShardHost::replicationLink() const {
  std::lock_guard lock(mutex_);
  return link_;
}

std::vector<std::shared_ptr<HandoffSession>> ShardHost::handoffSnapshot() const {
  std::lock_guard lock(mutex_);
  return sessions_;
}

void ShardHost::installTap() {
  core_->locationService().setIngestTap(
      [this](std::span<const db::SensorReading> batch) -> std::vector<db::SensorReading> {
        std::vector<db::SensorReading> kept(batch.begin(), batch.end());
        // Handoff first: readings in an arc being handed off belong to the
        // joiner — they must be neither applied here nor mirrored to the
        // backup (the joiner's own replication covers them from now on).
        for (const auto& session : handoffSnapshot()) {
          if (kept.empty()) break;
          kept = session->filter(std::move(kept));
        }
        std::shared_ptr<ReplicationLink> link;
        {
          std::lock_guard lock(mutex_);
          link = link_;
        }
        if (link) link->mirror(kept);
        return kept;
      });
}

bool ShardHost::backupPlacementAcceptable(const core::Endpoint& backup) {
  // Resolve the published territory map and the announced members' hosts;
  // registry blindness (or no map yet) means no basis to refuse — accept.
  TerritoryMap map;
  std::unordered_map<std::string, std::string> memberHosts;
  try {
    auto meta = registry_.getMeta(kTerritoryMetaName);
    if (!meta) return true;
    map = TerritoryMap::decode(meta->value);
    for (const std::string& name : registry_.list()) {
      auto token = parseSpaceMemberName(name);
      if (!token) continue;
      if (auto peer = registry_.lookupEntry(name)) {
        memberHosts.emplace(std::move(*token), peer->endpoint.host);
      }
    }
  } catch (const util::TransportError&) {
    return true;
  }
  PlacementDecision decision =
      evaluateBackupPlacement(map, options_.spaceToken, backup.host, memberHosts);
  if (decision.accepted) return true;
  placementConflicts_.fetch_add(1, std::memory_order_relaxed);
  std::string conflicts;
  for (const std::string& token : decision.conflicts) {
    if (!conflicts.empty()) conflicts += ", ";
    conflicts += token;
  }
  const bool strict = options_.backupPlacement == Options::BackupPlacement::Strict;
  util::logWarn("ShardHost", primaryName_, ": backup host ", backup.host,
                " is colocated with territory neighbour(s) [", conflicts, "]; ",
                strict ? "refusing the standby (strict placement)"
                       : "replicating anyway (permissive placement)");
  return !strict;
}

void ShardHost::maintainReplication() {
  const std::string backupName = primaryName_ + kBackupSuffix;
  {
    std::lock_guard lock(mutex_);
    if (link_ && link_->dead()) {
      link_.reset();
      linkedBackup_.reset();
    }
  }
  std::optional<core::RegistryClient::ResolvedEntry> entry;
  try {
    entry = registry_.lookupEntry(backupName);
  } catch (const util::TransportError&) {
    return;  // registry blind this tick; keep the link we have
  }
  if (!entry) {
    // Backup gone (expired or withdrew): run unreplicated until one returns.
    std::lock_guard lock(mutex_);
    if (link_) {
      util::logWarn("ShardHost", primaryName_, ": backup ", backupName,
                    " disappeared from the registry; dropping replication link");
      link_.reset();
      linkedBackup_.reset();
    }
    return;
  }
  {
    std::lock_guard lock(mutex_);
    if (link_ && linkedBackup_ == entry->endpoint) return;  // already mirroring there
  }
  if (!options_.spaceToken.empty() && !backupPlacementAcceptable(entry->endpoint)) {
    return;  // Strict placement refused the colocated standby
  }
  std::shared_ptr<core::RemoteLocationClient> client;
  try {
    client = connectPeer(entry->endpoint);
  } catch (const util::TransportError&) {
    util::logWarn("ShardHost", primaryName_, ": backup ", backupName,
                  " announced but unreachable; will retry next heartbeat");
    return;
  }
  auto fresh = std::make_shared<ReplicationLink>(backupName, std::move(client));
  {
    // Quiesce ingest: the store is a consistent cut for the initial sync,
    // and publishing the link inside the same window means every reading
    // after the cut flows through mirror() — nothing falls in between.
    auto pause = core_->locationService().pauseIngest();
    if (!fresh->syncFrom(core_->database())) return;
    std::lock_guard lock(mutex_);
    link_ = fresh;
    linkedBackup_ = entry->endpoint;
  }
  util::logInfo("ShardHost", primaryName_, ": replicating to ", backupName, " (",
                fresh->syncedReadings(), " readings synced)");
}

void ShardHost::monitorPrimary() {
  std::optional<core::RegistryClient::ResolvedEntry> entry;
  try {
    entry = registry_.lookupEntry(primaryName_);
  } catch (const util::TransportError&) {
    return;  // blind, not dead — never promote on a registry outage
  }
  if (entry) {
    sawPrimary_.store(true, std::memory_order_release);
    std::uint64_t seen = lastSeenGeneration_.load(std::memory_order_relaxed);
    while (entry->generation > seen &&
           !lastSeenGeneration_.compare_exchange_weak(seen, entry->generation)) {
    }
    return;
  }
  if (!sawPrimary_.load(std::memory_order_acquire)) return;  // primary never lived
  // The primary's TTL expired: claim its name one generation up. The
  // registry's fence makes the claim atomic — of two racing backups, or a
  // slow old primary re-announcing, exactly one write under the higher
  // generation wins and the rest are rejected.
  const std::uint64_t claimGeneration = lastSeenGeneration_.load(std::memory_order_acquire) + 1;
  bool accepted = false;
  try {
    accepted =
        registry_.announce(primaryName_, selfEndpoint(), options_.announceTtl, claimGeneration);
  } catch (const util::TransportError&) {
    return;
  }
  if (!accepted) {
    // Someone already holds a higher generation; observe it next tick.
    return;
  }
  generation_.store(claimGeneration, std::memory_order_release);
  role_.store(Role::Primary, std::memory_order_release);
  promotions_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    announceName_ = primaryName_;
  }
  try {
    registry_.withdraw(name_);  // the standby slot is open again
  } catch (const util::TransportError&) {
  }
  util::logInfo("ShardHost", name_, ": primary ", primaryName_,
                " expired; promoted to primary at generation ", claimGeneration);
}

std::shared_ptr<core::RemoteLocationClient> ShardHost::connectPeer(
    const core::Endpoint& endpoint, std::shared_ptr<orb::RpcClient>* rawOut) {
  std::shared_ptr<orb::Transport> transport;
  if (!endpoint.shmName.empty()) {
    try {
      transport = orb::shmConnect(endpoint.shmName);
    } catch (const util::TransportError&) {
      util::logWarn("ShardHost", name_, ": peer shm lane ", endpoint.shmName,
                    " unreachable; falling back to tcp");
    }
  }
  if (!transport) transport = orb::tcpConnect(endpoint.host, endpoint.port);
  auto rpc = std::make_shared<orb::RpcClient>(std::move(transport));
  rpc->setCallTimeout(kPeerCallTimeout);
  if (rawOut) *rawOut = rpc;
  return std::make_shared<core::RemoteLocationClient>(std::move(rpc));
}

// --- handoff: losing-owner side ----------------------------------------------

void ShardHost::registerHandoffMethods() {
  auto& server = core_->rpcServer();

  // handoff.begin(joinerToken, joinerEndpoint, arcs) -> affected objects.
  // Installed under pauseIngest so the split is exact: every reading acked
  // before this instant is in the local store (the joiner will export it),
  // every later one hits the session's filter.
  server.registerMethod("handoff.begin", [this](const util::Bytes& args) -> util::Bytes {
    util::ByteReader r(args);
    std::string joinerToken = r.str();
    core::Endpoint joiner;
    joiner.host = r.str();
    joiner.port = r.u16();
    joiner.shmName = r.str();
    std::vector<RingArc> arcs = decodeArcs(r);
    auto session = std::make_shared<HandoffSession>(std::move(joinerToken), std::move(arcs),
                                                    connectPeer(joiner));
    std::vector<util::MobileObjectId> affected;
    {
      auto pause = core_->locationService().pauseIngest();
      {
        std::lock_guard lock(mutex_);
        sessions_.push_back(session);
      }
      for (const auto& object : core_->database().knownMobileObjects()) {
        if (session->covers(object)) affected.push_back(object);
      }
    }
    util::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(affected.size()));
    for (const auto& object : affected) w.str(object.str());
    return w.take();
  });

  // handoff.flush(joinerToken) -> ok. Drains the buffered arc readings to
  // the joiner and switches the session to live forwarding.
  server.registerMethod("handoff.flush", [this](const util::Bytes& args) -> util::Bytes {
    util::ByteReader r(args);
    const std::string joinerToken = r.str();
    bool ok = false;
    for (const auto& session : handoffSnapshot()) {
      if (session->joinerToken() == joinerToken) ok = session->flush();
    }
    util::ByteWriter w;
    w.boolean(ok);
    return w.take();
  });

  // handoff.end(joinerToken) -> ok. Drops the moved objects' local state;
  // the session stays installed and forwarding, so a straggler reading from
  // a router still closing its dual-read window is proxied, not lost.
  server.registerMethod("handoff.end", [this](const util::Bytes& args) -> util::Bytes {
    util::ByteReader r(args);
    const std::string joinerToken = r.str();
    std::shared_ptr<HandoffSession> session;
    for (const auto& candidate : handoffSnapshot()) {
      if (candidate->joinerToken() == joinerToken) session = candidate;
    }
    util::ByteWriter w;
    if (!session || !session->forwarding()) {
      w.boolean(false);  // unknown session, or end before flush
      return w.take();
    }
    for (const auto& object : core_->database().knownMobileObjects()) {
      if (session->covers(object)) core_->database().dropMobileObject(object);
    }
    w.boolean(true);
    return w.take();
  });

  // --- territory migration (spatial partitioning, territory_map.hpp) ----------
  // Same buffer-then-forward protocol as handoff.*, but coverage is an
  // explicit OBJECT SET and sessions are keyed by a fresh id, not the peer
  // token — one shard pair can run many migrations over its lifetime and a
  // token key would alias them.

  // territory.migrateBegin(gainerToken, gainerEndpoint, objects, rects)
  //   -> (sessionId, affected objects).
  // The moving set is the union of the router's explicit list (its homed
  // residents) and every local resident whose evidence box centers in a
  // migrated rect (belt and braces for objects the router never homed).
  // Installed under pauseIngest; existing sessions are pruned of the moving
  // objects first, so an object migrating BACK to a shard it once left is
  // not eaten by the stale forwarding session of that earlier migration.
  server.registerMethod("territory.migrateBegin", [this](const util::Bytes& args) -> util::Bytes {
    util::ByteReader r(args);
    std::string gainerToken = r.str();
    core::Endpoint gainer;
    gainer.host = r.str();
    gainer.port = r.u16();
    gainer.shmName = r.str();
    std::vector<util::MobileObjectId> affected;
    const std::uint32_t objectCount = r.u32();
    affected.reserve(objectCount);
    for (std::uint32_t i = 0; i < objectCount; ++i) {
      affected.emplace_back(util::MobileObjectId{r.str()});
    }
    std::vector<geo::Rect> rects;
    const std::uint32_t rectCount = r.u32();
    rects.reserve(rectCount);
    for (std::uint32_t i = 0; i < rectCount; ++i) {
      const double lx = r.f64();
      const double ly = r.f64();
      const double hx = r.f64();
      const double hy = r.f64();
      rects.push_back(geo::Rect::fromCorners({lx, ly}, {hx, hy}));
    }
    auto client = connectPeer(gainer);
    std::uint64_t sessionId = 0;
    {
      auto pause = core_->locationService().pauseIngest();
      std::unordered_set<util::MobileObjectId> moving(affected.begin(), affected.end());
      if (!rects.empty()) {
        for (const auto& object : core_->database().knownMobileObjects()) {
          if (moving.contains(object)) continue;
          const auto box = core_->database().evidenceBoxOf(object);
          if (!box) continue;
          const geo::Point2 center = box->center();
          if (std::any_of(rects.begin(), rects.end(),
                          [&](const geo::Rect& rect) { return rect.contains(center); })) {
            affected.push_back(object);
            moving.insert(object);
          }
        }
      }
      auto session = std::make_shared<HandoffSession>(std::move(gainerToken), affected,
                                                      std::move(client));
      std::lock_guard lock(mutex_);
      for (const auto& existing : sessions_) existing->removeObjects(affected);
      sessionId = nextTerritorySession_++;
      territorySessions_[sessionId] = session;
      sessions_.push_back(std::move(session));
    }
    util::ByteWriter w;
    w.u64(sessionId);
    w.u32(static_cast<std::uint32_t>(affected.size()));
    for (const auto& object : affected) w.str(object.str());
    return w.take();
  });

  // territory.adopt(objects) -> ok. Gaining-side prune: this shard is about
  // to become the objects' home again, so any forwarding session a PAST
  // migration left here must stop consuming their readings (else a reading
  // routed here would bounce to the old gainer and chase its own tail).
  server.registerMethod("territory.adopt", [this](const util::Bytes& args) -> util::Bytes {
    util::ByteReader r(args);
    std::vector<util::MobileObjectId> objects;
    const std::uint32_t count = r.u32();
    objects.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      objects.emplace_back(util::MobileObjectId{r.str()});
    }
    {
      auto pause = core_->locationService().pauseIngest();
      for (const auto& session : handoffSnapshot()) session->removeObjects(objects);
    }
    util::ByteWriter w;
    w.boolean(true);
    return w.take();
  });

  // territory.flush(sessionId) -> ok. Buffer drain + switch to forwarding.
  server.registerMethod("territory.flush", [this](const util::Bytes& args) -> util::Bytes {
    util::ByteReader r(args);
    const std::uint64_t sessionId = r.u64();
    std::shared_ptr<HandoffSession> session;
    {
      std::lock_guard lock(mutex_);
      if (auto it = territorySessions_.find(sessionId); it != territorySessions_.end()) {
        session = it->second;
      }
    }
    util::ByteWriter w;
    w.boolean(session != nullptr && session->flush());
    return w.take();
  });

  // territory.end(sessionId) -> ok. Drops the moved objects' local state;
  // the session keeps forwarding stragglers like handoff.end.
  server.registerMethod("territory.end", [this](const util::Bytes& args) -> util::Bytes {
    util::ByteReader r(args);
    const std::uint64_t sessionId = r.u64();
    std::shared_ptr<HandoffSession> session;
    {
      std::lock_guard lock(mutex_);
      if (auto it = territorySessions_.find(sessionId); it != territorySessions_.end()) {
        session = it->second;
      }
    }
    util::ByteWriter w;
    if (!session || !session->forwarding()) {
      w.boolean(false);  // unknown session, or end before flush
      return w.take();
    }
    for (const auto& object : core_->database().knownMobileObjects()) {
      if (session->covers(object)) core_->database().dropMobileObject(object);
    }
    w.boolean(true);
    return w.take();
  });

  // territory.stats() -> cumulative load counters (see LoadStats) — what the
  // balancer polls to find hot and cold shards.
  server.registerMethod("territory.stats", [this](const util::Bytes&) -> util::Bytes {
    const LoadStats stats = loadStats();
    util::ByteWriter w;
    w.u64(stats.ingestedReadings);
    w.u64(stats.importedReadings);
    w.u64(stats.regionQueries);
    w.u64(stats.residentObjects);
    return w.take();
  });
}

// --- handoff: joining side ----------------------------------------------------

void ShardHost::joinRing() {
  mw::util::require(running_, "ShardHost::joinRing: start() first");
  mw::util::require(!options_.ringToken.empty(), "ShardHost::joinRing: not a ring member");
  mw::util::require(!announced_.load(std::memory_order_acquire),
                    "ShardHost::joinRing: already announced (start with deferAnnounce)");
  RingMemberMap members = resolveRingMembers(registry_);
  HashRing before(members.tokens);
  std::vector<std::string> afterTokens = members.tokens;
  afterTokens.push_back(options_.ringToken);
  HashRing after(std::move(afterTokens));
  // Group this member's claimed arcs by the owner losing them: one handoff
  // session (one connection, one FIFO) per loser.
  std::map<std::string, std::vector<RingArc>> byLoser;
  for (auto& claim : HashRing::claimsFor(before, after, options_.ringToken)) {
    if (claim.loser.empty()) continue;  // genesis: nothing to move
    byLoser[claim.loser].push_back(claim.arc);
  }
  pendingJoin_.clear();
  for (auto& [loser, arcs] : byLoser) {
    const auto slot =
        std::lower_bound(members.tokens.begin(), members.tokens.end(), loser);
    const std::size_t index = static_cast<std::size_t>(slot - members.tokens.begin());
    if (slot == members.tokens.end() || *slot != loser || !members.endpoints[index]) {
      // Expired between list and lookup: its readings are already lost to
      // the cluster; claim the arcs without a transfer.
      util::logWarn("ShardHost", name_, ": losing owner ", loser,
                    " unresolvable; joining its arcs without handoff");
      continue;
    }
    PendingHandoff pending;
    pending.loserToken = loser;
    pending.typed = connectPeer(*members.endpoints[index], &pending.rpc);
    util::ByteWriter w;
    w.str(options_.ringToken);
    w.str("127.0.0.1");
    w.u16(port_);
    w.str(shmName_);
    encodeArcs(w, arcs);
    util::Bytes reply = pending.rpc->call("handoff.begin", w.take());
    util::ByteReader r(reply);
    const std::uint32_t count = r.u32();
    pending.objects.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      pending.objects.emplace_back(util::MobileObjectId{r.str()});
    }
    pendingJoin_.push_back(std::move(pending));
  }
  // Every loser is now capturing the claimed arcs; announcing makes fresh
  // routers route them here (and stale ones still reach the losers, whose
  // sessions forward). Heartbeats keep the entry alive from here on.
  announceOnce();
  announced_.store(true, std::memory_order_release);
  util::logInfo("ShardHost", name_, ": joined the ring (", pendingJoin_.size(),
                " handoff session(s) open)");
}

void ShardHost::completeJoin() {
  mw::util::require(announced_.load(std::memory_order_acquire),
                    "ShardHost::completeJoin: joinRing() first");
  auto& service = core_->locationService();
  for (auto& pending : pendingJoin_) {
    // Replay the frozen logs first, then flush: the joiner's store sees each
    // object as export, then buffered FIFO, then live forwards — the same
    // total order the loser would have applied. Imported, not ingested: the
    // readings already fired their triggers where they were first observed,
    // so the replay must not fire them again here.
    for (const auto& object : pending.objects) {
      std::vector<db::SensorReading> log = pending.typed->exportReadings(object);
      if (!log.empty()) service.importBatch(log);
    }
    util::ByteWriter flushArgs;
    flushArgs.str(options_.ringToken);
    const util::Bytes flushBytes = pending.rpc->call("handoff.flush", flushArgs.take());
    util::ByteReader flushReply(flushBytes);
    if (!flushReply.boolean()) {
      util::logWarn("ShardHost", name_, ": handoff flush on ", pending.loserToken,
                    " failed; leaving its session buffering for a retry");
      continue;
    }
    util::ByteWriter endArgs;
    endArgs.str(options_.ringToken);
    const util::Bytes endBytes = pending.rpc->call("handoff.end", endArgs.take());
    util::ByteReader endReply(endBytes);
    if (!endReply.boolean()) {
      util::logWarn("ShardHost", name_, ": handoff end on ", pending.loserToken, " rejected");
    }
  }
  pendingJoin_.clear();
}

void ShardHost::leaveRing() {
  mw::util::require(running_, "ShardHost::leaveRing: start() first");
  mw::util::require(!options_.ringToken.empty(), "ShardHost::leaveRing: not a ring member");
  mw::util::require(announced_.load(std::memory_order_acquire),
                    "ShardHost::leaveRing: not announced");
  RingMemberMap members = resolveRingMembers(registry_);
  HashRing before(members.tokens);
  std::vector<std::string> afterTokens;
  for (const auto& token : members.tokens) {
    if (token != options_.ringToken) afterTokens.push_back(token);
  }
  mw::util::require(!afterTokens.empty(),
                    "ShardHost::leaveRing: last ring member has nobody to inherit its data");
  HashRing after(afterTokens);
  // Each of this member's arcs has exactly one inheritor: the arc's interior
  // holds no other ring point, so once this member's points are gone every
  // key in it maps to the first surviving point at or past arc.hi.
  std::map<std::string, std::vector<RingArc>> byGainer;
  for (const RingArc& arc : before.arcsOf(options_.ringToken)) {
    byGainer[after.ownerForKey(arc.hi)].push_back(arc);
  }
  struct Drain {
    std::string gainer;
    std::shared_ptr<core::RemoteLocationClient> typed;
    std::shared_ptr<HandoffSession> session;
    std::vector<util::MobileObjectId> objects;
  };
  std::vector<Drain> drains;
  for (auto& [gainer, arcs] : byGainer) {
    const auto slot = std::lower_bound(members.tokens.begin(), members.tokens.end(), gainer);
    const std::size_t index = static_cast<std::size_t>(slot - members.tokens.begin());
    if (slot == members.tokens.end() || *slot != gainer || !members.endpoints[index]) {
      util::logWarn("ShardHost", name_, ": arc inheritor ", gainer,
                    " unresolvable; leaving its arcs without handoff");
      continue;
    }
    Drain drain;
    drain.gainer = gainer;
    drain.typed = connectPeer(*members.endpoints[index]);
    drain.session = std::make_shared<HandoffSession>(gainer, std::move(arcs), drain.typed);
    drains.push_back(std::move(drain));
  }
  {
    // From this pause on, the leaving arcs' readings are consumed by the
    // sessions (buffered, later forwarded) — the local store is a frozen cut
    // for the export below.
    auto pause = core_->locationService().pauseIngest();
    {
      std::lock_guard lock(mutex_);
      for (const auto& drain : drains) sessions_.push_back(drain.session);
    }
    for (auto& drain : drains) {
      for (const auto& object : core_->database().knownMobileObjects()) {
        if (drain.session->covers(object)) drain.objects.push_back(object);
      }
    }
  }
  // Leave the ring: stop re-announcing, withdraw the entry. Routers that
  // refresh now recompute ownership and open their dual-read window; readings
  // still routed here land in the sessions.
  announced_.store(false, std::memory_order_release);
  try {
    registry_.withdraw(primaryName_);
  } catch (const util::TransportError&) {
    // Registry gone; the TTL expires the entry on its own.
  }
  std::size_t moved = 0;
  for (auto& drain : drains) {
    try {
      // Imported, not ingested: the readings fired their triggers here when
      // first observed; the inheritor must store them without re-firing.
      for (const auto& object : drain.objects) {
        std::vector<db::SensorReading> log = core_->database().exportObjectLog(object);
        if (!log.empty()) drain.typed->importBatch(log);
      }
    } catch (const util::MwError&) {
      util::logWarn("ShardHost", name_, ": export to ", drain.gainer,
                    " failed; its arcs stay buffered for a retry");
      continue;
    }
    if (!drain.session->flush()) {
      util::logWarn("ShardHost", name_, ": drain flush to ", drain.gainer,
                    " failed; keeping its buffer");
      continue;
    }
    for (const auto& object : drain.objects) core_->database().dropMobileObject(object);
    moved += drain.objects.size();
  }
  util::logInfo("ShardHost", name_, ": left the ring (", moved, " object(s) drained into ",
                drains.size(), " inheritor(s)); still forwarding stragglers");
}

}  // namespace mw::cluster
