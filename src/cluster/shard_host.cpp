#include "cluster/shard_host.hpp"

#include <unistd.h>

#include <algorithm>
#include <map>
#include <utility>

#include "orb/tcp.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::cluster {

namespace {

/// Peer-to-peer calls (replication mirror, handoff forward, log export)
/// block an ingest ack; a wedged peer must not wedge the caller forever.
constexpr auto kPeerCallTimeout = util::sec(5);

}  // namespace

ShardHost::ShardHost(const util::Clock& clock, geo::Rect universe, const std::string& rootFrame,
                     const std::string& registryHost, std::uint16_t registryPort,
                     Options options)
    : core_(std::make_unique<core::Middlewhere>(clock, universe, rootFrame)),
      registry_(registryHost, registryPort),
      options_(std::move(options)),
      primaryName_(options_.ringToken.empty() ? shardName(options_.index, options_.total)
                                              : ringMemberName(options_.ringToken)),
      name_(options_.role == Role::Backup ? primaryName_ + kBackupSuffix : primaryName_),
      role_(options_.role),
      generation_(options_.generation) {
  mw::util::require(options_.announceTtl.count() == 0 ||
                        options_.heartbeatPeriod < options_.announceTtl,
                    "ShardHost: heartbeatPeriod must undercut announceTtl");
  mw::util::require(!options_.deferAnnounce || !options_.ringToken.empty(),
                    "ShardHost: deferAnnounce is for ring joiners");
  mw::util::require(options_.role != Role::Backup || options_.announceTtl.count() > 0,
                    "ShardHost: a backup needs the heartbeat (announceTtl > 0) to "
                    "watch its primary");
  announceName_ = name_;
}

ShardHost::~ShardHost() { stop(); }

void ShardHost::start() {
  mw::util::require(!running_, "ShardHost::start: already running");
  port_ = core_->listen(options_.port);
  if (options_.enableShm) {
    if (orb::shmAvailable()) {
      // The lane name must be unique per process (parallel test runs share
      // /dev/shm) and registry-safe; '/' in the shard name becomes '.'.
      std::string lane = "mw." + name_ + "." + std::to_string(::getpid());
      for (auto& c : lane) {
        if (c == '/') c = '.';
      }
      shmListener_ = std::make_unique<orb::ShmListener>(
          lane, [this](std::shared_ptr<orb::Transport> t) {
            core_->rpcServer().serve(std::move(t));
          });
      shmName_ = lane;
    } else {
      util::logWarn("ShardHost", name_, ": POSIX shm unavailable; serving TCP only");
    }
  }
  installTap();
  registerHandoffMethods();
  if (!options_.deferAnnounce) {
    announceOnce();
    announced_.store(true, std::memory_order_release);
  }
  running_ = true;
  if (options_.announceTtl.count() > 0) {
    heartbeat_ = std::thread([this] { heartbeatLoop(); });
  }
  util::logInfo("ShardHost", name_, " serving on port ", port_);
}

void ShardHost::stop() {
  if (!running_) return;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  stopCv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  std::string who;
  {
    std::lock_guard lock(mutex_);
    who = announceName_;
  }
  // A fenced host no longer owns its name — a successor promoted into it,
  // and withdrawing here would delete the SUCCESSOR's entry.
  if (announced_.load(std::memory_order_acquire) && !fenced_.load(std::memory_order_acquire)) {
    try {
      registry_.withdraw(who);
    } catch (const util::TransportError&) {
      // Registry gone; the TTL expires the entry on its own.
    }
  }
  core_->locationService().setIngestTap(nullptr);
  {
    std::lock_guard lock(mutex_);
    link_.reset();
    linkedBackup_.reset();
    sessions_.clear();
  }
  shmListener_.reset();
  shmName_.clear();
  running_ = false;
}

core::Endpoint ShardHost::selfEndpoint() const {
  return core::Endpoint{"127.0.0.1", port_, shmName_};
}

bool ShardHost::announceOnce() {
  if (fenced_.load(std::memory_order_acquire)) return false;
  std::string who;
  {
    std::lock_guard lock(mutex_);
    who = announceName_;
  }
  // The serving name is fenced by generation; the backup standby name is
  // uncontended (generation 0 = legacy unfenced announce).
  const std::uint64_t generation =
      who == primaryName_ ? generation_.load(std::memory_order_acquire) : 0;
  const bool accepted = registry_.announce(who, selfEndpoint(), options_.announceTtl, generation);
  if (!accepted) {
    fenced_.store(true, std::memory_order_release);
    fencedHeartbeats_.fetch_add(1, std::memory_order_relaxed);
    util::logWarn("ShardHost", who, ": announce rejected (generation ", generation,
                  " fenced by a promoted successor); demoting to bystander");
  }
  return accepted;
}

void ShardHost::heartbeatLoop() {
  std::unique_lock lock(mutex_);
  while (!stopCv_.wait_for(lock, std::chrono::milliseconds(options_.heartbeatPeriod.count()),
                           [&] { return stopping_; })) {
    lock.unlock();
    try {
      if (announced_.load(std::memory_order_acquire)) {
        announceOnce();
        if (role() == Role::Primary) {
          maintainReplication();
        } else {
          monitorPrimary();
        }
      }
    } catch (const util::TransportError&) {
      // Registry unreachable this tick: the entry may expire (and the
      // cluster will treat this shard as unannounced) until a later
      // heartbeat gets through.
      heartbeatFailures_.fetch_add(1, std::memory_order_relaxed);
      util::logWarn("ShardHost", name_, ": heartbeat failed (registry unreachable)");
    }
    lock.lock();
  }
}

std::shared_ptr<ReplicationLink> ShardHost::replicationLink() const {
  std::lock_guard lock(mutex_);
  return link_;
}

std::vector<std::shared_ptr<HandoffSession>> ShardHost::handoffSnapshot() const {
  std::lock_guard lock(mutex_);
  return sessions_;
}

void ShardHost::installTap() {
  core_->locationService().setIngestTap(
      [this](std::span<const db::SensorReading> batch) -> std::vector<db::SensorReading> {
        std::vector<db::SensorReading> kept(batch.begin(), batch.end());
        // Handoff first: readings in an arc being handed off belong to the
        // joiner — they must be neither applied here nor mirrored to the
        // backup (the joiner's own replication covers them from now on).
        for (const auto& session : handoffSnapshot()) {
          if (kept.empty()) break;
          kept = session->filter(std::move(kept));
        }
        std::shared_ptr<ReplicationLink> link;
        {
          std::lock_guard lock(mutex_);
          link = link_;
        }
        if (link) link->mirror(kept);
        return kept;
      });
}

void ShardHost::maintainReplication() {
  const std::string backupName = primaryName_ + kBackupSuffix;
  {
    std::lock_guard lock(mutex_);
    if (link_ && link_->dead()) {
      link_.reset();
      linkedBackup_.reset();
    }
  }
  std::optional<core::RegistryClient::ResolvedEntry> entry;
  try {
    entry = registry_.lookupEntry(backupName);
  } catch (const util::TransportError&) {
    return;  // registry blind this tick; keep the link we have
  }
  if (!entry) {
    // Backup gone (expired or withdrew): run unreplicated until one returns.
    std::lock_guard lock(mutex_);
    if (link_) {
      util::logWarn("ShardHost", primaryName_, ": backup ", backupName,
                    " disappeared from the registry; dropping replication link");
      link_.reset();
      linkedBackup_.reset();
    }
    return;
  }
  {
    std::lock_guard lock(mutex_);
    if (link_ && linkedBackup_ == entry->endpoint) return;  // already mirroring there
  }
  std::shared_ptr<core::RemoteLocationClient> client;
  try {
    client = connectPeer(entry->endpoint);
  } catch (const util::TransportError&) {
    util::logWarn("ShardHost", primaryName_, ": backup ", backupName,
                  " announced but unreachable; will retry next heartbeat");
    return;
  }
  auto fresh = std::make_shared<ReplicationLink>(backupName, std::move(client));
  {
    // Quiesce ingest: the store is a consistent cut for the initial sync,
    // and publishing the link inside the same window means every reading
    // after the cut flows through mirror() — nothing falls in between.
    auto pause = core_->locationService().pauseIngest();
    if (!fresh->syncFrom(core_->database())) return;
    std::lock_guard lock(mutex_);
    link_ = fresh;
    linkedBackup_ = entry->endpoint;
  }
  util::logInfo("ShardHost", primaryName_, ": replicating to ", backupName, " (",
                fresh->syncedReadings(), " readings synced)");
}

void ShardHost::monitorPrimary() {
  std::optional<core::RegistryClient::ResolvedEntry> entry;
  try {
    entry = registry_.lookupEntry(primaryName_);
  } catch (const util::TransportError&) {
    return;  // blind, not dead — never promote on a registry outage
  }
  if (entry) {
    sawPrimary_.store(true, std::memory_order_release);
    std::uint64_t seen = lastSeenGeneration_.load(std::memory_order_relaxed);
    while (entry->generation > seen &&
           !lastSeenGeneration_.compare_exchange_weak(seen, entry->generation)) {
    }
    return;
  }
  if (!sawPrimary_.load(std::memory_order_acquire)) return;  // primary never lived
  // The primary's TTL expired: claim its name one generation up. The
  // registry's fence makes the claim atomic — of two racing backups, or a
  // slow old primary re-announcing, exactly one write under the higher
  // generation wins and the rest are rejected.
  const std::uint64_t claimGeneration = lastSeenGeneration_.load(std::memory_order_acquire) + 1;
  bool accepted = false;
  try {
    accepted =
        registry_.announce(primaryName_, selfEndpoint(), options_.announceTtl, claimGeneration);
  } catch (const util::TransportError&) {
    return;
  }
  if (!accepted) {
    // Someone already holds a higher generation; observe it next tick.
    return;
  }
  generation_.store(claimGeneration, std::memory_order_release);
  role_.store(Role::Primary, std::memory_order_release);
  promotions_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    announceName_ = primaryName_;
  }
  try {
    registry_.withdraw(name_);  // the standby slot is open again
  } catch (const util::TransportError&) {
  }
  util::logInfo("ShardHost", name_, ": primary ", primaryName_,
                " expired; promoted to primary at generation ", claimGeneration);
}

std::shared_ptr<core::RemoteLocationClient> ShardHost::connectPeer(
    const core::Endpoint& endpoint, std::shared_ptr<orb::RpcClient>* rawOut) {
  std::shared_ptr<orb::Transport> transport;
  if (!endpoint.shmName.empty()) {
    try {
      transport = orb::shmConnect(endpoint.shmName);
    } catch (const util::TransportError&) {
      util::logWarn("ShardHost", name_, ": peer shm lane ", endpoint.shmName,
                    " unreachable; falling back to tcp");
    }
  }
  if (!transport) transport = orb::tcpConnect(endpoint.host, endpoint.port);
  auto rpc = std::make_shared<orb::RpcClient>(std::move(transport));
  rpc->setCallTimeout(kPeerCallTimeout);
  if (rawOut) *rawOut = rpc;
  return std::make_shared<core::RemoteLocationClient>(std::move(rpc));
}

// --- handoff: losing-owner side ----------------------------------------------

void ShardHost::registerHandoffMethods() {
  auto& server = core_->rpcServer();

  // handoff.begin(joinerToken, joinerEndpoint, arcs) -> affected objects.
  // Installed under pauseIngest so the split is exact: every reading acked
  // before this instant is in the local store (the joiner will export it),
  // every later one hits the session's filter.
  server.registerMethod("handoff.begin", [this](const util::Bytes& args) -> util::Bytes {
    util::ByteReader r(args);
    std::string joinerToken = r.str();
    core::Endpoint joiner;
    joiner.host = r.str();
    joiner.port = r.u16();
    joiner.shmName = r.str();
    std::vector<RingArc> arcs = decodeArcs(r);
    auto session = std::make_shared<HandoffSession>(std::move(joinerToken), std::move(arcs),
                                                    connectPeer(joiner));
    std::vector<util::MobileObjectId> affected;
    {
      auto pause = core_->locationService().pauseIngest();
      {
        std::lock_guard lock(mutex_);
        sessions_.push_back(session);
      }
      for (const auto& object : core_->database().knownMobileObjects()) {
        if (session->covers(object)) affected.push_back(object);
      }
    }
    util::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(affected.size()));
    for (const auto& object : affected) w.str(object.str());
    return w.take();
  });

  // handoff.flush(joinerToken) -> ok. Drains the buffered arc readings to
  // the joiner and switches the session to live forwarding.
  server.registerMethod("handoff.flush", [this](const util::Bytes& args) -> util::Bytes {
    util::ByteReader r(args);
    const std::string joinerToken = r.str();
    bool ok = false;
    for (const auto& session : handoffSnapshot()) {
      if (session->joinerToken() == joinerToken) ok = session->flush();
    }
    util::ByteWriter w;
    w.boolean(ok);
    return w.take();
  });

  // handoff.end(joinerToken) -> ok. Drops the moved objects' local state;
  // the session stays installed and forwarding, so a straggler reading from
  // a router still closing its dual-read window is proxied, not lost.
  server.registerMethod("handoff.end", [this](const util::Bytes& args) -> util::Bytes {
    util::ByteReader r(args);
    const std::string joinerToken = r.str();
    std::shared_ptr<HandoffSession> session;
    for (const auto& candidate : handoffSnapshot()) {
      if (candidate->joinerToken() == joinerToken) session = candidate;
    }
    util::ByteWriter w;
    if (!session || !session->forwarding()) {
      w.boolean(false);  // unknown session, or end before flush
      return w.take();
    }
    for (const auto& object : core_->database().knownMobileObjects()) {
      if (session->covers(object)) core_->database().dropMobileObject(object);
    }
    w.boolean(true);
    return w.take();
  });
}

// --- handoff: joining side ----------------------------------------------------

void ShardHost::joinRing() {
  mw::util::require(running_, "ShardHost::joinRing: start() first");
  mw::util::require(!options_.ringToken.empty(), "ShardHost::joinRing: not a ring member");
  mw::util::require(!announced_.load(std::memory_order_acquire),
                    "ShardHost::joinRing: already announced (start with deferAnnounce)");
  RingMemberMap members = resolveRingMembers(registry_);
  HashRing before(members.tokens);
  std::vector<std::string> afterTokens = members.tokens;
  afterTokens.push_back(options_.ringToken);
  HashRing after(std::move(afterTokens));
  // Group this member's claimed arcs by the owner losing them: one handoff
  // session (one connection, one FIFO) per loser.
  std::map<std::string, std::vector<RingArc>> byLoser;
  for (auto& claim : HashRing::claimsFor(before, after, options_.ringToken)) {
    if (claim.loser.empty()) continue;  // genesis: nothing to move
    byLoser[claim.loser].push_back(claim.arc);
  }
  pendingJoin_.clear();
  for (auto& [loser, arcs] : byLoser) {
    const auto slot =
        std::lower_bound(members.tokens.begin(), members.tokens.end(), loser);
    const std::size_t index = static_cast<std::size_t>(slot - members.tokens.begin());
    if (slot == members.tokens.end() || *slot != loser || !members.endpoints[index]) {
      // Expired between list and lookup: its readings are already lost to
      // the cluster; claim the arcs without a transfer.
      util::logWarn("ShardHost", name_, ": losing owner ", loser,
                    " unresolvable; joining its arcs without handoff");
      continue;
    }
    PendingHandoff pending;
    pending.loserToken = loser;
    pending.typed = connectPeer(*members.endpoints[index], &pending.rpc);
    util::ByteWriter w;
    w.str(options_.ringToken);
    w.str("127.0.0.1");
    w.u16(port_);
    w.str(shmName_);
    encodeArcs(w, arcs);
    util::Bytes reply = pending.rpc->call("handoff.begin", w.take());
    util::ByteReader r(reply);
    const std::uint32_t count = r.u32();
    pending.objects.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      pending.objects.emplace_back(util::MobileObjectId{r.str()});
    }
    pendingJoin_.push_back(std::move(pending));
  }
  // Every loser is now capturing the claimed arcs; announcing makes fresh
  // routers route them here (and stale ones still reach the losers, whose
  // sessions forward). Heartbeats keep the entry alive from here on.
  announceOnce();
  announced_.store(true, std::memory_order_release);
  util::logInfo("ShardHost", name_, ": joined the ring (", pendingJoin_.size(),
                " handoff session(s) open)");
}

void ShardHost::completeJoin() {
  mw::util::require(announced_.load(std::memory_order_acquire),
                    "ShardHost::completeJoin: joinRing() first");
  auto& service = core_->locationService();
  for (auto& pending : pendingJoin_) {
    // Replay the frozen logs first, then flush: the joiner's store sees each
    // object as export, then buffered FIFO, then live forwards — the same
    // total order the loser would have applied.
    for (const auto& object : pending.objects) {
      std::vector<db::SensorReading> log = pending.typed->exportReadings(object);
      if (!log.empty()) service.ingestBatch(log);
    }
    util::ByteWriter flushArgs;
    flushArgs.str(options_.ringToken);
    const util::Bytes flushBytes = pending.rpc->call("handoff.flush", flushArgs.take());
    util::ByteReader flushReply(flushBytes);
    if (!flushReply.boolean()) {
      util::logWarn("ShardHost", name_, ": handoff flush on ", pending.loserToken,
                    " failed; leaving its session buffering for a retry");
      continue;
    }
    util::ByteWriter endArgs;
    endArgs.str(options_.ringToken);
    const util::Bytes endBytes = pending.rpc->call("handoff.end", endArgs.take());
    util::ByteReader endReply(endBytes);
    if (!endReply.boolean()) {
      util::logWarn("ShardHost", name_, ": handoff end on ", pending.loserToken, " rejected");
    }
  }
  pendingJoin_.clear();
}

}  // namespace mw::cluster
