// The cluster router: presents the LocationService API over N shard
// processes resolved from the registry, so applications talk to "the
// location service" without knowing the partition exists.
//
// Routing: object-keyed calls (ingest, ingestBatch, locate, locateSymbolic)
// go to shardForObject(o, N) — one object, one shard, one ordering domain
// (see shard_map.hpp for the end-to-end ordering argument). Region-keyed
// calls (probabilityInRegion, objectsInRegion) scatter to every live shard
// in parallel and merge: populations concatenate (objects are disjoint
// across shards) and re-sort with the service's own comparator, region
// probabilities prefer the evidence-bearing answer over the bare priors
// evidence-free shards report. subscribe() fans the trigger out to every
// shard and re-emits each shard's notifications through the caller's single
// callback under one cluster-wide subscription id.
//
// Failure model: every call carries a deadline (util::TimeoutError) and a
// bounded retry budget with exponential backoff (health.hpp). A transport
// error drops the shard's connection (the next attempt reconnects — and
// replays the cluster's live subscriptions onto the fresh connection); a
// shard failing `downAfterFailures` times in a row is marked down and fails
// fast until a probe re-admits it. Scatter-gather over a cluster with down
// or failing shards still answers — partially, carrying a `degraded` flag —
// and routed calls to a down shard return "unknown" instead of blocking.
// Per-shard error counters surface in stats().
//
// Ring mode (Partitioning::Ring): members are resolved from
// "location.ring.*" announcements instead of the fixed-width modulo names,
// and membership may CHANGE between refreshes — that is the point. When a
// refresh observes a changed member set, the router keeps both rings and
// opens a dual-read window: ingest for a moved arc still routes to the
// PREVIOUS owner (whose handoff session buffers or forwards it to the
// joiner — see replication.hpp), while reads try the new owner first and
// fall back to the previous one when the new owner doesn't know the object
// yet. The next refresh that sees the same member set closes the window —
// by then the operator has run completeJoin(), so the joiner holds every
// moved object's full log and answers are exact throughout. Promotion of a
// backup does not change membership (same name, new endpoint), so failover
// needs no window at all. A planned departure (ShardHost::leaveRing) is the
// same window in reverse: the leaver withdraws but keeps serving, so while
// the window is open the router keeps routing moved-arc ingest to it even
// though it no longer appears in the registry.
//
// Spatial mode (Partitioning::Spatial): members are "location.space.*"
// announcements and the partition key is WHERE, not WHO — a kd-split
// territory map (territory_map.hpp, published through the registry's
// versioned metadata) assigns each shard a set of rectangles, and an object
// lives on the shard whose territory contains its evidence-box center. The
// payoff is on the region side: region queries and trigger subscriptions go
// only to the shards whose territory intersects the (slack-inflated) region
// instead of scattering to all N — O(intersecting shards) instead of O(N).
// A reading whose evidence box centers outside its object's home territory
// is a boundary crossing: it is applied at the OLD home first (order), then
// the router migrates the object's whole log to the new owner over the same
// buffer-then-forward handoff sessions as a ring join (territory.* methods
// on ShardHost), reads double-routing new-then-old until the flip.
// rebalanceOnce() is the load balancer: it splits the hottest leaf and
// migrates the new half to the coldest shard under live traffic, keeping
// every answer byte-identical to the object-hash oracle for quiescent
// objects throughout. One router drives migrations and the balancer at a
// time — concurrent routers may route (the map is shared via the registry)
// but must not both migrate.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/health.hpp"
#include "cluster/shard_map.hpp"
#include "cluster/territory_map.hpp"
#include "core/location_service.hpp"
#include "core/remote.hpp"
#include "core/remote_registry.hpp"

namespace mw::cluster {

class ClusterLocationService {
 public:
  enum class Partitioning {
    Modulo,   ///< fixed width N from "location.shard.<i>/<N>" names
    Ring,     ///< consistent-hash ring over "location.ring.<token>" members
    Spatial,  ///< kd-split territory map over "location.space.<token>" members
  };

  struct Options {
    RetryPolicy retry;
    Partitioning partitioning = Partitioning::Modulo;
    /// Spatial mode: the world rectangle the territory map tiles. Required
    /// (non-empty) for Partitioning::Spatial; used to bootstrap the uniform
    /// map when the registry holds none yet.
    geo::Rect universe;
    /// Spatial mode: margin added around a region before intersecting it
    /// with shard territories, for region queries and subscription
    /// placement. An object homed on a shard can still carry evidence up to
    /// its sensors' detection radius PAST the territory edge, so this must
    /// be at least the largest detection radius in play — too small silently
    /// misses boundary answers, too large only degrades toward full
    /// scatter (never wrong).
    double regionSlack = 8.0;
  };

  /// Per-shard view of stats(): health + cumulative error counters.
  struct ShardStats {
    bool announced = false;  ///< endpoint known from the registry
    bool down = false;
    std::uint64_t calls = 0;
    std::uint64_t failures = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t reconnects = 0;
  };
  struct Stats {
    std::vector<ShardStats> shards;
    std::uint64_t scatterGathers = 0;
    /// Scatter-gathers that answered from a strict subset of the shards.
    std::uint64_t degradedQueries = 0;
    /// Object-routed calls that exhausted their retry budget (the caller
    /// got "unknown" / a dropped reading instead of an answer).
    std::uint64_t failedRoutedCalls = 0;
    std::uint64_t droppedIngestReadings = 0;
    /// Spatial mode: region queries answered from a territory-intersecting
    /// subset of the shards, and how many shard calls they cost in total
    /// (the scatter-vs-targeted economy: subset-size vs N per query).
    std::uint64_t targetedRegionQueries = 0;
    std::uint64_t regionShardsQueried = 0;
    /// Spatial mode: objects whose logs were migrated across a territory
    /// boundary (crossings and balancer moves), and balancer leaf splits.
    std::uint64_t objectMigrations = 0;
    std::uint64_t territorySplits = 0;
  };

  /// Resolves the shard map from the registry. Throws util::TransportError
  /// when the registry is unreachable and util::NotFoundError when no shard
  /// is announced.
  ClusterLocationService(const std::string& registryHost, std::uint16_t registryPort,
                         Options options);
  // Not a default argument: gcc can't evaluate Options{} (whose nested
  // member initializers live in this class) inside the class body.
  ClusterLocationService(const std::string& registryHost, std::uint16_t registryPort);

  ClusterLocationService(const ClusterLocationService&) = delete;
  ClusterLocationService& operator=(const ClusterLocationService&) = delete;

  [[nodiscard]] std::size_t shardCount() const;
  [[nodiscard]] std::size_t shardFor(const util::MobileObjectId& object) const;

  /// Re-resolves the shard map from the registry: newly announced shards
  /// become routable, changed endpoints drop their stale connections. In
  /// modulo mode the cluster width N must not change (that is a
  /// repartition, not a refresh; util::ContractError otherwise). In ring
  /// mode a membership change opens the dual-read window (see the file
  /// header) and an unchanged refresh closes it.
  void refreshShardMap();

  /// Ring mode: a membership change is being straddled — moved arcs are
  /// double-routed until the next unchanged refresh. Always false in
  /// modulo mode.
  [[nodiscard]] bool dualReadWindowOpen() const;

  /// Attempts one probe on every down shard whose probe timer has lapsed
  /// (routed calls also probe lazily; this is for impatient callers).
  void probeDownShards();

  // --- object-routed calls -----------------------------------------------------

  /// Routed to the owning shard. A reading the shard cluster cannot accept
  /// (owner down, retries exhausted) is dropped and counted — push-model
  /// semantics, like oneway ingest at a restarting service.
  void ingest(const db::SensorReading& reading);

  /// Splits the batch by owning shard (preserving each object's relative
  /// order) and ships one sub-batch per shard.
  void ingestBatch(std::span<const db::SensorReading> readings);

  /// nullopt when the object is unknown — or when its owning shard is
  /// unreachable (counted in stats().failedRoutedCalls; availability over
  /// an exception on the query path).
  [[nodiscard]] std::optional<fusion::LocationEstimate> locate(const util::MobileObjectId& object);

  /// "" when unknown or the owning shard is unreachable.
  [[nodiscard]] std::string locateSymbolic(const util::MobileObjectId& object);

  // --- scatter-gather calls ----------------------------------------------------

  /// Scatter to all shards; the owning shard's evidence-bearing answer wins
  /// over the bare priors the others report. Throws util::TransportError
  /// when NO shard answered.
  [[nodiscard]] double probabilityInRegion(const util::MobileObjectId& object,
                                           const geo::Rect& region);

  struct RegionQueryResult {
    std::vector<std::pair<util::MobileObjectId, double>> members;
    /// True when at least one shard did not answer: `members` is a correct
    /// answer for the shards that did, but may miss the silent shards'
    /// objects.
    bool degraded = false;
    std::size_t shardsAnswered = 0;
  };

  /// Scatter-gather population query with the partial-result contract made
  /// explicit. Throws util::TransportError when NO shard answered.
  [[nodiscard]] RegionQueryResult objectsInRegionDetailed(const geo::Rect& region,
                                                          double minProbability);

  /// Convenience wrapper discarding the degraded flag (still visible via
  /// stats().degradedQueries).
  [[nodiscard]] std::vector<std::pair<util::MobileObjectId, double>> objectsInRegion(
      const geo::Rect& region, double minProbability);

  // --- push: cluster-wide subscriptions ---------------------------------------

  /// Fans the subscription out to every shard; matching notifications from
  /// any shard arrive on `callback` carrying the single cluster-wide id
  /// this returns. Shards that are down at subscribe time (or that drop
  /// their connection later) get the subscription replayed when they
  /// reconnect.
  util::SubscriptionId subscribe(const geo::Rect& region,
                                 std::optional<util::MobileObjectId> subject, double threshold,
                                 std::function<void(const core::Notification&)> callback);

  /// Cluster-wide aggregate (density) standing rule: each covering shard
  /// maintains its own region count incrementally (an object ingests on
  /// exactly one shard, so shard populations are disjoint), and the router
  /// sums the per-shard counts, firing `callback` on every total change with
  /// limit-crossing edges computed against the cluster-wide total. Shard
  /// registrations seed their initial counts as they attach, so the first
  /// notifications walk the total up to the standing crowd.
  util::SubscriptionId subscribeDensity(const geo::Rect& region, double minProbability,
                                        std::size_t limit,
                                        std::function<void(const core::DensityNotification&)> callback);

  bool unsubscribe(util::SubscriptionId id);

  // --- spatial partitioning ----------------------------------------------------

  /// Spatial mode: the territory map this router currently routes by.
  [[nodiscard]] TerritoryMap territorySnapshot() const;
  /// Spatial mode: objects currently mid-migration (reads double-routed).
  [[nodiscard]] std::size_t movingObjects() const;

  /// Spatial mode: one balancer pass. Finds the hottest and coldest shard
  /// by per-leaf ingest counts; when the hottest carries at least
  /// `hotColdRatio` times the coldest's load (and at least `minReadings`),
  /// splits the hottest leaf at the midpoint of its long axis, migrates the
  /// new half's residents to the coldest shard (live handoff — ingest keeps
  /// flowing), publishes the new map through the registry and returns true.
  /// Returns false when the cluster is balanced enough (or the migration
  /// could not run). Call from ONE place per cluster (see file header).
  bool rebalanceOnce(double hotColdRatio = 2.0, std::uint64_t minReadings = 64);

  /// Spatial mode: starts the balancer daemon — a background thread invoking
  /// rebalanceOnce(hotColdRatio, minReadings) every `period` — so deployments
  /// do not have to drive the balancer by hand. Idempotent while running
  /// (the new parameters take effect on the next pass). Run it on ONE router
  /// per cluster, like manual rebalanceOnce calls.
  void startBalancer(std::chrono::milliseconds period, double hotColdRatio = 2.0,
                     std::uint64_t minReadings = 64);
  /// Stops the daemon and joins its thread; a pass already in flight
  /// completes first. No-op when not running. Also called by the destructor.
  void stopBalancer();
  [[nodiscard]] bool balancerRunning() const;
  /// Daemon passes completed so far (whether or not they split anything —
  /// splits show in stats().territorySplits).
  [[nodiscard]] std::uint64_t balancerPasses() const noexcept {
    return balancerPasses_.load(std::memory_order_relaxed);
  }

  ~ClusterLocationService();

  [[nodiscard]] Stats stats() const;

 private:
  struct Shard {
    explicit Shard(const RetryPolicy& policy) : health(policy) {}

    std::size_t index = 0;
    std::string token;  ///< ring member token; empty in modulo mode
    ShardHealth health;
    /// Guards endpoint + client (re)creation; never held across an RPC.
    std::mutex connectMutex;
    std::optional<core::Endpoint> endpoint;
    std::shared_ptr<core::RemoteLocationClient> client;
  };

  /// Router-side aggregation state for one density subscription: disjoint
  /// per-shard counts merged into a cluster total with its own limit-edge
  /// memory. Guarded by its own mutex — shard notifications arrive on
  /// independent event-reader threads. May be locked with subsMutex_ held
  /// (clearShardSubscriptions); never take subsMutex_ under it.
  struct DensityAgg {
    std::mutex mutex;
    std::unordered_map<std::size_t, std::uint64_t> countOf;  ///< shard index -> count
    std::uint64_t lastTotal = 0;
    bool lastOver = false;
  };

  /// The subscription spec kept for fan-out and reconnect replay.
  struct ClusterSub {
    geo::Rect region;
    std::optional<util::MobileObjectId> subject;
    double threshold = 0;  ///< plain: probability threshold; density: minProbability
    std::function<void(const core::Notification&)> callback;
    /// Per-shard subscription id (0 = not registered on that shard).
    std::vector<std::uint64_t> shardSubIds;
    /// Density subscriptions: limit + callback + aggregation state (null for
    /// plain region-entry subscriptions).
    std::size_t limit = 0;
    std::function<void(const core::DensityNotification&)> densityCallback;
    std::shared_ptr<DensityAgg> agg;
  };

  /// Ring-mode topology snapshot, published together with shards_ (null in
  /// modulo mode). Shard slots are stable across refreshes — a new member
  /// appends, a lapsed one keeps its slot with endpoint reset — so
  /// subscription id vectors only ever grow.
  struct RingState {
    HashRing ring;  ///< current membership
    HashRing prev;  ///< membership before the last change
    bool window = false;  ///< dual-read window open (ring != prev semantics)
    std::unordered_map<std::string, std::size_t> slotOf;  ///< token -> shard index
  };

  /// Where an object's traffic goes this instant: `target` for the call,
  /// `fallback` (reads only, during the dual-read window) when the target
  /// doesn't know the object yet.
  struct Route {
    std::shared_ptr<Shard> target;
    std::shared_ptr<Shard> fallback;
  };
  [[nodiscard]] Route routeFor(const std::vector<std::shared_ptr<Shard>>& shards,
                               const RingState* state, const util::MobileObjectId& object,
                               bool ingestPath) const;

  /// Merges freshly resolved ring members into the shard list + ring state
  /// (constructor and every ring-mode refresh).
  void applyRingMembers(const RingMemberMap& members);

  /// Spatial mode: merges freshly resolved space members into the shard
  /// list and adopts (or bootstraps and publishes) the territory map from
  /// the registry's versioned metadata.
  void applySpaceMembers(const RingMemberMap& members);

  /// Spatial route for one object. `ingestPoint` (ingest path only) homes a
  /// first-seen object at its evidence-box center's territory owner and
  /// bumps that leaf's load counter. Mid-migration reads get target=new
  /// home, fallback=old (the old home still serves until the flip); ingest
  /// keeps targeting the OLD home, whose handoff session buffers/forwards.
  [[nodiscard]] Route spatialRouteFor(const std::vector<std::shared_ptr<Shard>>& shards,
                                      const util::MobileObjectId& object,
                                      const geo::Point2* ingestPoint, bool ingestPath);

  /// Called after a spatial-mode ingest lands: when the reading's evidence
  /// center fell outside the object's home territory, migrates the object's
  /// log to the new owner (the reading itself was applied at the OLD home
  /// first, preserving per-object order).
  void maybeMigrateAfterIngest(const util::MobileObjectId& object, const geo::Point2& center);

  /// Migrates `explicitObjects` plus every resident of `rects` from member
  /// `from` to member `to` over a territory handoff session (begin → adopt
  /// → export/import → [newMap adopt + subscription spill] → flush → end →
  /// home flip). When `newMap` is set it is adopted locally before the
  /// flush and published to the registry after the flip. Returns false when
  /// any step failed (homes stay put; the loser's session keeps the moved
  /// readings buffered and a later migration attempt re-covers them).
  bool migrateObjects(const std::string& from, const std::string& to,
                      std::vector<util::MobileObjectId> explicitObjects,
                      const std::vector<geo::Rect>& rects,
                      const std::optional<TerritoryMap>& newMap);

  /// Registers every cluster subscription whose (slack-inflated) region
  /// intersects `token`'s territory IN `map` and is not yet on that shard —
  /// the subscription spill that keeps targeted placement correct as
  /// territory migrates onto a shard. `map` is the coverage the shard is
  /// about to have (a balancer move spills against the post-split map
  /// BEFORE flushing, so replayed buffered readings find their triggers).
  void spillSubscriptionsOnto(Shard& shard, const std::string& token, const TerritoryMap& map);

  /// Does `token`'s territory in `map` intersect the slack-inflated region?
  /// (Which shards a region query / subscription must reach.)
  [[nodiscard]] bool territoryCovers(const TerritoryMap& map, const std::string& token,
                                     const geo::Rect& region) const;
  /// Same against the live map (takes spatialMutex_; never call with
  /// subsMutex_ held — the two must not nest).
  [[nodiscard]] bool territoryCovers(const std::string& token, const geo::Rect& region) const;

  [[nodiscard]] std::shared_ptr<std::vector<std::shared_ptr<Shard>>> shardsSnapshot() const;
  [[nodiscard]] std::shared_ptr<const RingState> ringSnapshot() const;

  /// Connected client for the shard, creating (and replaying subscriptions
  /// onto) a fresh connection if needed; null when the shard has no
  /// endpoint or connecting failed.
  [[nodiscard]] std::shared_ptr<core::RemoteLocationClient> clientFor(Shard& shard);
  /// Drops the connection and zeroes the shard's subscription slots (they
  /// died with the connection; the next reconnect replays them).
  void dropClient(Shard& shard);
  void clearShardSubscriptions(Shard& shard);

  /// Runs `fn` against the shard under the retry/backoff/deadline policy.
  /// Returns nullopt after the budget is exhausted (or immediately for a
  /// down shard between probes). util::MwError from the remote side (the
  /// shard answered with an application error) propagates.
  template <typename R>
  std::optional<R> callShard(Shard& shard, const std::function<R(core::RemoteLocationClient&)>& fn);

  /// Runs `fn` against every shard concurrently (one thread per shard);
  /// results[i] is nullopt where shard i's budget was exhausted.
  template <typename R>
  std::vector<std::optional<R>> scatter(
      const std::vector<std::shared_ptr<Shard>>& shards,
      const std::function<R(core::RemoteLocationClient&)>& fn);

  /// Registers one cluster subscription on one shard under the claim
  /// protocol (either the initial fan-out or a reconnect replay registers,
  /// never both; failures leave the slot empty for the next replay).
  void subscribeOnShard(Shard& shard, util::SubscriptionId clusterId,
                        const std::shared_ptr<ClusterSub>& sub);
  /// Replays every missing subscription onto a freshly connected shard.
  void replaySubscriptions(Shard& shard, core::RemoteLocationClient& client);

  /// Folds one shard's density count report (live notification or
  /// registration seed) into the cluster total and fires the user callback
  /// when the total changed. Seeds only fill an absent slot — a live report
  /// racing the registration reply is fresher and wins.
  static void reportDensityCount(ClusterSub& sub, util::SubscriptionId clusterId,
                                 std::size_t shardIndex, std::uint64_t count, bool seed,
                                 const util::MobileObjectId& object, util::TimePoint when);

  const Options options_;
  core::RegistryClient registry_;
  /// Modulo mode: the fixed cluster width N. Ring mode: 0 (the snapshot's
  /// size is the width, and it may change between refreshes).
  std::size_t total_ = 0;

  /// Snapshot-published shard list (repo idiom: pointer swap under a mutex,
  /// readers pin the snapshot and never hold the lock during RPCs).
  /// ringState_ is published under the same lock so a reader's shard list
  /// and ring always agree.
  mutable std::mutex shardsMutex_;
  std::shared_ptr<std::vector<std::shared_ptr<Shard>>> shards_;
  std::shared_ptr<const RingState> ringState_;

  std::mutex subsMutex_;
  util::IdSequencer<util::SubscriptionId> subIds_;
  std::unordered_map<std::uint64_t, std::shared_ptr<ClusterSub>> subs_;

  /// Spatial-mode routing state, all under spatialMutex_ (held only for
  /// map/table access, never across an RPC).
  mutable std::mutex spatialMutex_;
  TerritoryMap territory_;
  std::unordered_map<std::string, std::size_t> spaceSlotOf_;  ///< token -> shard index
  /// Object -> home member token. Grown at first sighting (evidence-box
  /// center's territory owner), flipped only when a migration completes —
  /// so mid-migration ingest keeps feeding the old home's handoff session.
  std::unordered_map<util::MobileObjectId, std::string> homeOf_;
  struct Move {
    std::string from;
    std::string to;
  };
  /// Objects mid-migration: reads try `to` first and fall back to `from`.
  std::unordered_map<util::MobileObjectId, Move> moving_;
  /// Per-leaf cumulative routed-reading counts — the balancer's heat map.
  std::unordered_map<std::uint32_t, std::uint64_t> leafReadings_;
  /// Serializes migrations (boundary crossings and balancer moves); held
  /// across the whole handoff protocol.
  std::mutex migrationMutex_;

  std::atomic<std::uint64_t> scatterGathers_{0};
  std::atomic<std::uint64_t> degradedQueries_{0};
  std::atomic<std::uint64_t> failedRoutedCalls_{0};
  std::atomic<std::uint64_t> droppedIngestReadings_{0};
  std::atomic<std::uint64_t> targetedRegionQueries_{0};
  std::atomic<std::uint64_t> regionShardsQueried_{0};
  std::atomic<std::uint64_t> objectMigrations_{0};
  std::atomic<std::uint64_t> territorySplits_{0};

  /// Balancer daemon state: the thread sleeps on balancerCv_ so stop wakes
  /// it immediately instead of waiting out the period.
  mutable std::mutex balancerMutex_;
  std::condition_variable balancerCv_;
  std::thread balancerThread_;
  bool balancerStop_ = false;
  double balancerRatio_ = 2.0;
  std::uint64_t balancerMinReadings_ = 64;
  std::chrono::milliseconds balancerPeriod_{0};
  std::atomic<std::uint64_t> balancerPasses_{0};
};

}  // namespace mw::cluster
