// Shard replication and arc handoff — the two data-movement protocols of
// the cluster (ROADMAP: "Shard replication and online resharding").
//
// ReplicationLink is the primary's handle to its warm-standby backup. The
// primary's ingest tap calls mirror() BEFORE the local apply, inside the
// ingest RPC handler, so the caller's ack means "applied on primary AND
// backup" — synchronous replication, which is what makes kill-one-shard
// lose no acknowledged reading. The initial sync (syncFrom) runs under the
// service's pauseIngest() window: with ingest quiesced the export is a
// consistent cut, every earlier reading is in it and every later reading
// flows through the live mirror — no sequence numbers needed.
//
// HandoffSession is the LOSING owner's side of a ring join. Its filter()
// sits in the same ingest tap and consumes readings whose objects fall in
// the arcs being handed off: buffered while the joiner replays the exported
// logs, then (after flush()) forwarded synchronously. Per-object order at
// the joiner is export, then buffered FIFO, then forwarded FIFO over one
// connection — exact, because the buffer drain and the mode switch happen
// under one session lock, and the session is installed under pauseIngest()
// so no reading is ever half-applied on the losing side.
//
// Failure policy (both): a dead peer marks the link/session failed, counts
// and warns, and the local service keeps serving — availability over
// durability, the same contract as the router's dropped-ingest accounting.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "cluster/shard_map.hpp"
#include "core/remote.hpp"
#include "spatialdb/database.hpp"
#include "util/bytes.hpp"

namespace mw::cluster {

/// Primary-side synchronous mirror to one backup.
class ReplicationLink {
 public:
  /// `client` must be connected to the backup's LocationService endpoint.
  ReplicationLink(std::string backupName, std::shared_ptr<core::RemoteLocationClient> client);

  [[nodiscard]] const std::string& backupName() const noexcept { return backupName_; }
  /// Initial sync completed; mirror() forwards.
  [[nodiscard]] bool live() const noexcept { return live_.load(std::memory_order_acquire); }
  /// The backup stopped answering; the link is abandoned (the owner tears
  /// it down and may rebuild one when the backup re-announces).
  [[nodiscard]] bool dead() const noexcept { return dead_.load(std::memory_order_acquire); }

  /// Replays every object's stored log to the backup, then goes live. MUST
  /// run under the service's pauseIngest() window (see file header); the
  /// live_ flip is only safe because no ingest is in flight across it.
  /// Returns false (and marks the link dead) when the backup fails mid-sync.
  bool syncFrom(db::SpatialDatabase& db);

  /// Mirrors one batch to the backup (no-op unless live). Called from the
  /// ingest tap before the local apply; blocking here is what delays the
  /// ack until the backup has the readings.
  void mirror(std::span<const db::SensorReading> batch);

  [[nodiscard]] std::uint64_t mirroredReadings() const noexcept {
    return mirroredReadings_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t syncedReadings() const noexcept {
    return syncedReadings_.load(std::memory_order_relaxed);
  }
  /// Mirror/sync calls that failed (the batch was applied locally anyway).
  [[nodiscard]] std::uint64_t failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  void markDead(const char* what);

  const std::string backupName_;
  const std::shared_ptr<core::RemoteLocationClient> client_;
  /// Serializes wire sends so the backup applies batches in mirror order.
  std::mutex sendMutex_;
  std::atomic<bool> live_{false};
  std::atomic<bool> dead_{false};
  std::atomic<std::uint64_t> mirroredReadings_{0};
  std::atomic<std::uint64_t> syncedReadings_{0};
  std::atomic<std::uint64_t> failures_{0};
};

/// Losing-owner side of one handoff. Coverage comes in two flavors: ring
/// ARCS (a join's claimed key ranges — any object hashing into them, present
/// or future) or an explicit OBJECT SET (a territory migration's residents —
/// exactly the objects whose logs are being exported). Both run the same
/// buffer-then-forward protocol.
class HandoffSession {
 public:
  /// Arc coverage (ring join). `client` must be connected to the gaining
  /// shard's service endpoint.
  HandoffSession(std::string joinerToken, std::vector<RingArc> arcs,
                 std::shared_ptr<core::RemoteLocationClient> client);

  /// Object-set coverage (territory migration). The set may be empty — the
  /// session then consumes nothing but still anchors the protocol.
  HandoffSession(std::string joinerToken, std::vector<util::MobileObjectId> objects,
                 std::shared_ptr<core::RemoteLocationClient> client);

  [[nodiscard]] const std::string& joinerToken() const noexcept { return joinerToken_; }
  [[nodiscard]] const std::vector<RingArc>& arcs() const noexcept { return arcs_; }
  /// Does this session cover the object (arc containment or set membership,
  /// minus any removed objects)?
  [[nodiscard]] bool covers(const util::MobileObjectId& object) const;

  /// Excludes objects from this session's coverage from now on — a later
  /// migration taking an object away from the gaining side must stop this
  /// session from eating the object's readings. Call only while ingest is
  /// paused (no filter() in flight).
  void removeObjects(std::span<const util::MobileObjectId> objects);

  /// Tap fragment: removes and consumes the readings this session covers
  /// (buffered before flush(), forwarded after), returns the rest.
  [[nodiscard]] std::vector<db::SensorReading> filter(std::vector<db::SensorReading> batch);

  /// Drains the buffer to the joiner and switches to live forwarding —
  /// atomically, under the session lock, so no reading can slip between
  /// the drained buffer and the forward stream. Returns false (session
  /// failed) when the joiner connection died; buffered readings are kept
  /// for a retry.
  bool flush();

  [[nodiscard]] bool forwarding() const noexcept {
    return forwarding_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t bufferedReadings() const noexcept {
    return bufferedReadings_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t forwardedReadings() const noexcept {
    return forwardedReadings_.load(std::memory_order_relaxed);
  }
  /// Forward attempts that failed; those readings are lost to the joiner
  /// (counted, logged — the router's retry against the new owner is the
  /// recovery path).
  [[nodiscard]] std::uint64_t failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  const std::string joinerToken_;
  const std::vector<RingArc> arcs_;
  /// Object-set coverage (empty in arc mode). Guarded by coverMutex_: reads
  /// are per-reading on the ingest path (shared), removeObjects is rare and
  /// runs under an ingest pause (exclusive).
  mutable std::shared_mutex coverMutex_;
  std::unordered_set<util::MobileObjectId> objects_;
  std::unordered_set<util::MobileObjectId> removed_;
  const std::shared_ptr<core::RemoteLocationClient> client_;
  /// Guards buffer_ + the buffering->forwarding switch, and serializes
  /// forwards so the joiner sees them in consume order.
  std::mutex mutex_;
  std::vector<db::SensorReading> buffer_;
  std::atomic<bool> forwarding_{false};
  std::atomic<std::uint64_t> bufferedReadings_{0};
  std::atomic<std::uint64_t> forwardedReadings_{0};
  std::atomic<std::uint64_t> failures_{0};
};

// --- wire helpers for the handoff.* methods -----------------------------------

void encodeArcs(util::ByteWriter& w, std::span<const RingArc> arcs);
[[nodiscard]] std::vector<RingArc> decodeArcs(util::ByteReader& r);

}  // namespace mw::cluster
