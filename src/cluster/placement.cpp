#include "cluster/placement.hpp"

#include <algorithm>

namespace mw::cluster {

std::vector<std::string> territoryNeighbours(const TerritoryMap& map, const std::string& token) {
  std::vector<const TerritoryLeaf*> own;
  for (const TerritoryLeaf& leaf : map.leaves()) {
    if (leaf.owner == token) own.push_back(&leaf);
  }
  std::vector<std::string> neighbours;
  for (const TerritoryLeaf& leaf : map.leaves()) {
    if (leaf.owner == token) continue;
    for (const TerritoryLeaf* mine : own) {
      if (leaf.rect.intersects(mine->rect)) {
        neighbours.push_back(leaf.owner);
        break;
      }
    }
  }
  std::sort(neighbours.begin(), neighbours.end());
  neighbours.erase(std::unique(neighbours.begin(), neighbours.end()), neighbours.end());
  return neighbours;
}

PlacementDecision evaluateBackupPlacement(
    const TerritoryMap& map, const std::string& primaryToken, const std::string& backupHost,
    const std::unordered_map<std::string, std::string>& memberHosts) {
  PlacementDecision decision;
  for (const std::string& neighbour : territoryNeighbours(map, primaryToken)) {
    auto it = memberHosts.find(neighbour);
    if (it != memberHosts.end() && it->second == backupHost) {
      decision.conflicts.push_back(neighbour);
    }
  }
  decision.accepted = decision.conflicts.empty();
  return decision;
}

}  // namespace mw::cluster
