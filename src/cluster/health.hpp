// Failure handling policy for the cluster router: per-call deadlines,
// bounded retry with exponential backoff, and a per-shard health state
// machine (up -> down after consecutive failures -> probed back up).
//
// The policy distinguishes the two failure flavors util::TimeoutError vs
// util::TransportError expose: a timeout means "slow — the shard may still
// be working; keep the connection, back off, retry", a transport error
// means "gone — drop the connection and reconnect". Both count toward the
// consecutive-failure threshold that marks a shard down; once down, calls
// fail fast (no deadline burned) until the probe interval elapses, at which
// point the next call doubles as a health probe and a success re-admits the
// shard.
//
// All health state is lock-free (atomics): the router's hot path reads
// down()/probeDue() on every routed call from any number of threads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/clock.hpp"

namespace mw::cluster {

/// Knobs for one router instance; applied uniformly to every shard.
struct RetryPolicy {
  /// Per-call deadline (RpcClient::setCallTimeout). A dead shard costs at
  /// most attempts * (deadline + backoff), never a hung caller.
  util::Duration callDeadline = util::sec(2);
  /// Re-attempts after the first try (total attempts = 1 + maxRetries).
  std::size_t maxRetries = 2;
  /// Backoff before retry r (0-based): backoffBase * 2^r, capped at
  /// backoffMax. Wall-clock (wire pacing, like BatchingIngestClient).
  util::Duration backoffBase = util::msec(10);
  util::Duration backoffMax = util::msec(500);
  /// Consecutive failures after which the shard is marked down.
  std::size_t downAfterFailures = 3;
  /// While down, one call per interval is let through as a probe.
  util::Duration probeInterval = util::msec(250);

  [[nodiscard]] util::Duration backoffDelay(std::size_t retry) const noexcept {
    auto delay = backoffBase;
    for (std::size_t i = 0; i < retry && delay < backoffMax; ++i) delay += delay;
    return delay < backoffMax ? delay : backoffMax;
  }
};

/// Per-shard health tracker + error counters (all cumulative). Thread-safe.
class ShardHealth {
 public:
  explicit ShardHealth(const RetryPolicy& policy) : policy_(policy) {}

  /// An attempt was sent (before knowing the outcome).
  void recordCall() noexcept { calls_.fetch_add(1, std::memory_order_relaxed); }
  /// A retry attempt (attempt > 0) is about to run.
  void recordRetry() noexcept { retries_.fetch_add(1, std::memory_order_relaxed); }
  /// The connection was (re)established.
  void recordReconnect() noexcept { reconnects_.fetch_add(1, std::memory_order_relaxed); }

  /// The shard answered: clears the consecutive-failure streak and re-admits
  /// a down shard.
  void recordSuccess() noexcept {
    streak_.store(0, std::memory_order_relaxed);
    down_.store(false, std::memory_order_relaxed);
  }

  /// One failed attempt; `timedOut` selects the counter. Crossing the
  /// consecutive-failure threshold marks the shard down and arms the probe
  /// timer.
  void recordFailure(bool timedOut) noexcept {
    failures_.fetch_add(1, std::memory_order_relaxed);
    if (timedOut) timeouts_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t streak = streak_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (streak >= policy_.downAfterFailures) {
      down_.store(true, std::memory_order_relaxed);
      armProbe();
    }
  }

  [[nodiscard]] bool down() const noexcept { return down_.load(std::memory_order_relaxed); }

  /// Down and the probe interval has elapsed: the next call should go
  /// through as a health probe. Claims the probe slot (resets the timer) so
  /// concurrent callers don't all storm the dead shard at once.
  [[nodiscard]] bool tryClaimProbe() noexcept {
    if (!down()) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
    auto due = probeAt_.load(std::memory_order_relaxed);
    const auto interval =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(policy_.probeInterval)
            .count();
    return now >= due &&
           probeAt_.compare_exchange_strong(due, now + interval, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t calls() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t timeouts() const noexcept {
    return timeouts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t retries() const noexcept {
    return retries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_.load(std::memory_order_relaxed);
  }

 private:
  void armProbe() noexcept {
    const auto interval =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(policy_.probeInterval)
            .count();
    probeAt_.store(std::chrono::steady_clock::now().time_since_epoch().count() + interval,
                   std::memory_order_relaxed);
  }

  const RetryPolicy policy_;
  std::atomic<bool> down_{false};
  std::atomic<std::uint64_t> streak_{0};
  std::atomic<std::chrono::steady_clock::rep> probeAt_{0};
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> reconnects_{0};
};

}  // namespace mw::cluster
