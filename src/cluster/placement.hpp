// Territory-aware backup placement.
//
// A spatial shard's standby must not share a host with the shards whose
// territories border its primary's: a single host failure there takes out a
// shard AND the standby of an adjacent shard — exactly the pair most likely
// to inherit each other's load (boundary-crossing movers hand off between
// neighbours, and the balancer splits hot leaves onto them). The placement
// functions here are pure — (map, tokens, hosts) in, decision out — so
// policy is unit-testable without a registry or live hosts; ShardHost
// consults them in maintainReplication() before accepting an announced
// backup (Options::backupPlacement selects warn-only or strict refusal).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/territory_map.hpp"

namespace mw::cluster {

/// The owners (other than `token`) holding at least one leaf that touches a
/// leaf of `token` in `map` — edge-adjacency counts (leaves tile the
/// universe, so the closed-set Rect::intersects sees shared borders).
/// Sorted, deduplicated; empty when the token owns nothing or has the whole
/// universe to itself.
[[nodiscard]] std::vector<std::string> territoryNeighbours(const TerritoryMap& map,
                                                           const std::string& token);

struct PlacementDecision {
  bool accepted = true;
  /// The neighbour tokens colocated with the candidate backup host (empty
  /// when accepted).
  std::vector<std::string> conflicts;
};

/// Evaluates a candidate backup host for `primaryToken`'s standby against
/// the territory map and the current member-host assignment: refused when
/// the candidate host also hosts a territory neighbour of the primary.
/// `memberHosts` maps member tokens to the hosts their primaries serve
/// from; the primary's own entry (and unknown members) are ignored.
[[nodiscard]] PlacementDecision evaluateBackupPlacement(
    const TerritoryMap& map, const std::string& primaryToken, const std::string& backupHost,
    const std::unordered_map<std::string, std::string>& memberHosts);

}  // namespace mw::cluster
