#include "cluster/territory_map.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "util/error.hpp"

namespace mw::cluster {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;

namespace {

void encodeRect(ByteWriter& w, const geo::Rect& r) {
  w.f64(r.lo().x);
  w.f64(r.lo().y);
  w.f64(r.hi().x);
  w.f64(r.hi().y);
}

geo::Rect decodeRect(ByteReader& r) {
  const double lox = r.f64();
  const double loy = r.f64();
  const double hix = r.f64();
  const double hiy = r.f64();
  // fromCorners normalizes, which would turn the empty sentinel into a real
  // rect; decode empty back to the canonical empty instead.
  if (lox > hix || loy > hiy) return geo::Rect();
  return geo::Rect::fromCorners({lox, loy}, {hix, hiy});
}

/// Recursively halves `rect` into `count` equal-area leaves, assigning the
/// sorted members [first, first+count) in order. Splits along the long axis,
/// proportionally (count is odd at interior nodes), so the tree is balanced
/// and deterministic.
void buildUniform(const geo::Rect& rect, const std::vector<std::string>& members,
                  std::size_t first, std::size_t count, std::uint32_t& nextId,
                  std::vector<TerritoryLeaf>& out) {
  if (count == 1) {
    out.push_back({nextId++, rect, members[first]});
    return;
  }
  const std::size_t loCount = (count + 1) / 2;
  const double frac = static_cast<double>(loCount) / static_cast<double>(count);
  geo::Rect lo;
  geo::Rect hi;
  if (rect.width() >= rect.height()) {
    const double cut = rect.lo().x + rect.width() * frac;
    lo = geo::Rect::fromCorners(rect.lo(), {cut, rect.hi().y});
    hi = geo::Rect::fromCorners({cut, rect.lo().y}, rect.hi());
  } else {
    const double cut = rect.lo().y + rect.height() * frac;
    lo = geo::Rect::fromCorners(rect.lo(), {rect.hi().x, cut});
    hi = geo::Rect::fromCorners({rect.lo().x, cut}, rect.hi());
  }
  buildUniform(lo, members, first, loCount, nextId, out);
  buildUniform(hi, members, first + loCount, count - loCount, nextId, out);
}

}  // namespace

TerritoryMap TerritoryMap::uniform(const geo::Rect& universe,
                                   std::vector<std::string> members) {
  mw::util::require(!universe.empty(), "TerritoryMap::uniform: empty universe");
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  mw::util::require(!members.empty(), "TerritoryMap::uniform: no members");
  for (const auto& m : members) {
    mw::util::require(!m.empty(), "TerritoryMap::uniform: empty member token");
  }
  TerritoryMap map;
  map.version_ = 1;
  map.universe_ = universe;
  buildUniform(universe, members, 0, members.size(), map.nextId_, map.leaves_);
  return map;
}

const TerritoryLeaf* TerritoryMap::leafById(std::uint32_t id) const {
  for (const auto& leaf : leaves_) {
    if (leaf.id == id) return &leaf;
  }
  return nullptr;
}

bool TerritoryMap::leafContains(const TerritoryLeaf& leaf, geo::Point2 p) const {
  const geo::Rect& r = leaf.rect;
  if (p.x < r.lo().x || p.y < r.lo().y) return false;
  // Half-open upper edges, EXCEPT where the leaf's edge is the universe's
  // own edge — there the closed universe would otherwise lose its boundary.
  const bool xOk = p.x < r.hi().x || (r.hi().x == universe_.hi().x && p.x <= r.hi().x);
  const bool yOk = p.y < r.hi().y || (r.hi().y == universe_.hi().y && p.y <= r.hi().y);
  return xOk && yOk;
}

const TerritoryLeaf& TerritoryMap::leafForPoint(geo::Point2 p) const {
  mw::util::require(!leaves_.empty(), "TerritoryMap::leafForPoint: empty map");
  p.x = std::clamp(p.x, universe_.lo().x, universe_.hi().x);
  p.y = std::clamp(p.y, universe_.lo().y, universe_.hi().y);
  for (const auto& leaf : leaves_) {
    if (leafContains(leaf, p)) return leaf;
  }
  // Unreachable while the leaves tile the universe; fail loudly if a decode
  // ever produces a gapped map rather than routing arbitrarily.
  throw mw::util::ContractError("TerritoryMap::leafForPoint: point in no leaf");
}

const std::string& TerritoryMap::ownerForPoint(geo::Point2 p) const {
  return leafForPoint(p).owner;
}

std::vector<std::string> TerritoryMap::ownersIntersecting(const geo::Rect& region) const {
  std::vector<std::string> out;
  for (const auto& leaf : leaves_) {
    if (leaf.rect.intersects(region)) out.push_back(leaf.owner);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> TerritoryMap::owners() const {
  std::vector<std::string> out;
  out.reserve(leaves_.size());
  for (const auto& leaf : leaves_) out.push_back(leaf.owner);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<TerritoryLeaf> TerritoryMap::leavesOf(const std::string& owner) const {
  std::vector<TerritoryLeaf> out;
  for (const auto& leaf : leaves_) {
    if (leaf.owner == owner) out.push_back(leaf);
  }
  return out;
}

TerritoryMap TerritoryMap::splitLeaf(std::uint32_t id, const std::string& newOwner) const {
  mw::util::require(!newOwner.empty(), "TerritoryMap::splitLeaf: empty owner");
  TerritoryMap next = *this;
  next.version_ = version_ + 1;
  for (auto& leaf : next.leaves_) {
    if (leaf.id != id) continue;
    const geo::Rect rect = leaf.rect;
    mw::util::require(rect.width() > 0 || rect.height() > 0,
                      "TerritoryMap::splitLeaf: leaf too thin to split");
    geo::Rect lo;
    geo::Rect hi;
    if (rect.width() >= rect.height()) {
      const double cut = rect.lo().x + rect.width() / 2;
      lo = geo::Rect::fromCorners(rect.lo(), {cut, rect.hi().y});
      hi = geo::Rect::fromCorners({cut, rect.lo().y}, rect.hi());
    } else {
      const double cut = rect.lo().y + rect.height() / 2;
      lo = geo::Rect::fromCorners(rect.lo(), {rect.hi().x, cut});
      hi = geo::Rect::fromCorners({rect.lo().x, cut}, rect.hi());
    }
    leaf.rect = lo;
    next.leaves_.push_back({next.nextId_++, hi, newOwner});
    return next;
  }
  throw mw::util::ContractError("TerritoryMap::splitLeaf: no leaf " + std::to_string(id));
}

namespace {

/// True when a ∪ b is an exact rectangle: the rects share one full edge
/// bit-for-bit (the only adjacency kd splits produce, and the only one whose
/// merge loses no territory and gains none).
bool tilesRectangle(const geo::Rect& a, const geo::Rect& b) {
  const bool sameY = a.lo().y == b.lo().y && a.hi().y == b.hi().y;
  const bool sameX = a.lo().x == b.lo().x && a.hi().x == b.hi().x;
  if (sameY && (a.hi().x == b.lo().x || b.hi().x == a.lo().x)) return true;
  if (sameX && (a.hi().y == b.lo().y || b.hi().y == a.lo().y)) return true;
  return false;
}

}  // namespace

TerritoryMap TerritoryMap::mergeLeaves(std::uint32_t keepId, std::uint32_t dropId) const {
  mw::util::require(keepId != dropId, "TerritoryMap::mergeLeaves: a leaf cannot merge with itself");
  const TerritoryLeaf* keep = leafById(keepId);
  const TerritoryLeaf* drop = leafById(dropId);
  mw::util::require(keep != nullptr, "TerritoryMap::mergeLeaves: no leaf " + std::to_string(keepId));
  mw::util::require(drop != nullptr, "TerritoryMap::mergeLeaves: no leaf " + std::to_string(dropId));
  mw::util::require(tilesRectangle(keep->rect, drop->rect),
                    "TerritoryMap::mergeLeaves: leaves do not tile a rectangle");
  TerritoryMap next = *this;
  next.version_ = version_ + 1;
  const geo::Rect merged = keep->rect.unionWith(drop->rect);
  std::erase_if(next.leaves_, [dropId](const TerritoryLeaf& l) { return l.id == dropId; });
  for (auto& leaf : next.leaves_) {
    if (leaf.id == keepId) leaf.rect = merged;
  }
  return next;
}

std::optional<std::uint32_t> TerritoryMap::mergeableSibling(std::uint32_t id) const {
  const TerritoryLeaf* leaf = leafById(id);
  if (leaf == nullptr) return std::nullopt;
  std::optional<std::uint32_t> fallback;
  for (const auto& other : leaves_) {
    if (other.id == id || !tilesRectangle(leaf->rect, other.rect)) continue;
    if (other.owner == leaf->owner) return other.id;  // same-owner merge: no data moves
    if (!fallback) fallback = other.id;
  }
  return fallback;
}

TerritoryMap TerritoryMap::reassignLeaf(std::uint32_t id, const std::string& newOwner) const {
  mw::util::require(!newOwner.empty(), "TerritoryMap::reassignLeaf: empty owner");
  TerritoryMap next = *this;
  next.version_ = version_ + 1;
  for (auto& leaf : next.leaves_) {
    if (leaf.id != id) continue;
    leaf.owner = newOwner;
    return next;
  }
  throw mw::util::ContractError("TerritoryMap::reassignLeaf: no leaf " + std::to_string(id));
}

util::Bytes TerritoryMap::encode() const {
  ByteWriter w;
  w.u64(version_);
  w.u32(nextId_);
  encodeRect(w, universe_);
  w.u32(static_cast<std::uint32_t>(leaves_.size()));
  for (const auto& leaf : leaves_) {
    w.u32(leaf.id);
    encodeRect(w, leaf.rect);
    w.str(leaf.owner);
  }
  return w.take();
}

TerritoryMap TerritoryMap::decode(const util::Bytes& bytes) {
  ByteReader r(bytes);
  TerritoryMap map;
  map.version_ = r.u64();
  map.nextId_ = r.u32();
  map.universe_ = decodeRect(r);
  const std::uint32_t n = r.u32();
  map.leaves_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TerritoryLeaf leaf;
    leaf.id = r.u32();
    leaf.rect = decodeRect(r);
    leaf.owner = r.str();
    map.leaves_.push_back(std::move(leaf));
  }
  return map;
}

std::string spaceMemberName(const std::string& token) {
  mw::util::require(!token.empty(), "spaceMemberName: empty token");
  return kSpaceNamePrefix + token;
}

std::optional<std::string> parseSpaceMemberName(const std::string& name) {
  const std::string_view prefix = kSpaceNamePrefix;
  if (name.rfind(prefix, 0) != 0) return std::nullopt;
  std::string token = name.substr(prefix.size());
  if (token.empty()) return std::nullopt;
  // "location.space.<token>.backup" is a standby announcement, not a member.
  const std::string_view backup = ".backup";
  if (token.size() >= backup.size() &&
      std::string_view(token).substr(token.size() - backup.size()) == backup) {
    return std::nullopt;
  }
  return token;
}

}  // namespace mw::cluster
