#include "cluster/shard_map.hpp"

#include <algorithm>
#include <charconv>

#include "util/error.hpp"

namespace mw::cluster {

std::string shardName(std::size_t index, std::size_t total) {
  mw::util::require(total > 0, "shardName: total must be positive");
  mw::util::require(index < total, "shardName: index out of range");
  return kShardNamePrefix + std::to_string(index) + "/" + std::to_string(total);
}

std::optional<ParsedShardName> parseShardName(const std::string& name) {
  const std::string_view prefix = kShardNamePrefix;
  if (name.rfind(prefix, 0) != 0) return std::nullopt;
  const std::string_view rest = std::string_view(name).substr(prefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const std::string_view indexPart = rest.substr(0, slash);
  const std::string_view totalPart = rest.substr(slash + 1);
  ParsedShardName parsed;
  auto [ip, iec] = std::from_chars(indexPart.data(), indexPart.data() + indexPart.size(),
                                   parsed.index);
  auto [tp, tec] = std::from_chars(totalPart.data(), totalPart.data() + totalPart.size(),
                                   parsed.total);
  if (iec != std::errc{} || ip != indexPart.data() + indexPart.size()) return std::nullopt;
  if (tec != std::errc{} || tp != totalPart.data() + totalPart.size()) return std::nullopt;
  if (parsed.total == 0 || parsed.index >= parsed.total) return std::nullopt;
  return parsed;
}

std::uint64_t mixHash64(std::string_view bytes) {
  // FNV-1a, 64-bit: platform-independent, unlike std::hash<std::string>.
  std::uint64_t x = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    x ^= static_cast<std::uint8_t>(c);
    x *= 0x100000001b3ULL;
  }
  // splitmix64 finalizer — the same mix the RpcServer applies to connection
  // keys — so short ids with shared prefixes still spread over every shard.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t objectRingKey(const util::MobileObjectId& object) {
  return mixHash64(object.str());
}

std::size_t shardForObject(const util::MobileObjectId& object, std::size_t total) {
  mw::util::require(total > 0, "shardForObject: total must be positive");
  return static_cast<std::size_t>(objectRingKey(object) % total);
}

std::size_t ShardMap::announcedCount() const noexcept {
  std::size_t n = 0;
  for (const auto& ep : endpoints) {
    if (ep) ++n;
  }
  return n;
}

ShardMap resolveShardMap(core::RegistryClient& registry) {
  ShardMap map;
  for (const std::string& name : registry.list()) {
    auto parsed = parseShardName(name);
    if (!parsed) continue;  // unrelated service sharing the registry
    if (map.total == 0) {
      map.total = parsed->total;
      map.endpoints.resize(map.total);
    } else if (map.total != parsed->total) {
      throw mw::util::ContractError("resolveShardMap: inconsistent shard totals in registry (" +
                                    std::to_string(map.total) + " vs " +
                                    std::to_string(parsed->total) + ")");
    }
    // The entry can expire between list() and lookup(); a nullopt lookup
    // just leaves the slot unannounced.
    map.endpoints[parsed->index] = registry.lookup(name);
  }
  return map;
}

std::string ringMemberName(const std::string& token) {
  mw::util::require(!token.empty(), "ringMemberName: empty token");
  return kRingNamePrefix + token;
}

std::optional<std::string> parseRingMemberName(const std::string& name) {
  const std::string_view prefix = kRingNamePrefix;
  if (name.rfind(prefix, 0) != 0) return std::nullopt;
  std::string token = name.substr(prefix.size());
  if (token.empty()) return std::nullopt;
  // "location.ring.<token>.backup" is a ring member's standby (shard_host),
  // not a member: a router resolving it as one would route live traffic to
  // a shard that only mirrors.
  const std::string_view backup = ".backup";
  if (token.size() >= backup.size() &&
      std::string_view(token).substr(token.size() - backup.size()) == backup) {
    return std::nullopt;
  }
  return token;
}

HashRing::HashRing(std::vector<std::string> members, std::size_t vnodes)
    : members_(std::move(members)), vnodes_(vnodes) {
  mw::util::require(vnodes_ > 0, "HashRing: vnodes must be positive");
  // Sorted-unique membership makes the ring a pure function of the member
  // *set* — two routers that resolve the same registry build the same ring.
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()), members_.end());
  points_.reserve(members_.size() * vnodes_);
  for (std::uint32_t m = 0; m < members_.size(); ++m) {
    mw::util::require(!members_[m].empty(), "HashRing: empty member token");
    for (std::size_t v = 0; v < vnodes_; ++v) {
      points_.push_back({mixHash64(members_[m] + '#' + std::to_string(v)), m});
    }
  }
  std::sort(points_.begin(), points_.end(), [this](const Point& a, const Point& b) {
    // Tie-break colliding positions by token so ownership stays deterministic.
    if (a.pos != b.pos) return a.pos < b.pos;
    return members_[a.member] < members_[b.member];
  });
}

bool HashRing::hasMember(const std::string& token) const {
  return std::binary_search(members_.begin(), members_.end(), token);
}

const std::string& HashRing::ownerForKey(std::uint64_t key) const {
  mw::util::require(!points_.empty(), "HashRing::ownerForKey: empty ring");
  auto it = std::lower_bound(points_.begin(), points_.end(), key,
                             [](const Point& p, std::uint64_t k) { return p.pos < k; });
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return members_[it->member];
}

const std::string& HashRing::ownerForObject(const util::MobileObjectId& object) const {
  return ownerForKey(objectRingKey(object));
}

std::vector<RingArc> HashRing::arcsOf(const std::string& token) const {
  std::vector<RingArc> arcs;
  if (points_.empty()) return arcs;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (members_[points_[i].member] != token) continue;
    // The arc a point owns runs from its predecessor (cyclically) to it.
    const std::uint64_t lo = points_[(i + points_.size() - 1) % points_.size()].pos;
    arcs.push_back({lo, points_[i].pos});
  }
  return arcs;
}

std::vector<HashRing::Claim> HashRing::claimsFor(const HashRing& before,
                                                 const HashRing& after,
                                                 const std::string& joiner) {
  std::vector<Claim> claims;
  for (const RingArc& arc : after.arcsOf(joiner)) {
    Claim claim;
    claim.arc = arc;
    // before ⊆ after means no before-point lies strictly inside this arc,
    // so every key in it had the same previous owner: the owner of the
    // first before-point at or after arc.hi.
    if (!before.empty()) {
      claim.loser = before.ownerForKey(arc.hi);
      if (claim.loser == joiner) continue;  // rejoin of an existing member
    }
    claims.push_back(std::move(claim));
  }
  return claims;
}

RingMemberMap resolveRingMembers(core::RegistryClient& registry) {
  RingMemberMap map;
  for (const std::string& name : registry.list()) {
    auto token = parseRingMemberName(name);
    if (!token) continue;  // unrelated service sharing the registry
    map.tokens.push_back(std::move(*token));
  }
  std::sort(map.tokens.begin(), map.tokens.end());
  map.endpoints.reserve(map.tokens.size());
  for (const std::string& token : map.tokens) {
    map.endpoints.push_back(registry.lookup(ringMemberName(token)));
  }
  return map;
}

}  // namespace mw::cluster
