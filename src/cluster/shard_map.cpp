#include "cluster/shard_map.hpp"

#include <charconv>

#include "util/error.hpp"

namespace mw::cluster {

std::string shardName(std::size_t index, std::size_t total) {
  mw::util::require(total > 0, "shardName: total must be positive");
  mw::util::require(index < total, "shardName: index out of range");
  return kShardNamePrefix + std::to_string(index) + "/" + std::to_string(total);
}

std::optional<ParsedShardName> parseShardName(const std::string& name) {
  const std::string_view prefix = kShardNamePrefix;
  if (name.rfind(prefix, 0) != 0) return std::nullopt;
  const std::string_view rest = std::string_view(name).substr(prefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const std::string_view indexPart = rest.substr(0, slash);
  const std::string_view totalPart = rest.substr(slash + 1);
  ParsedShardName parsed;
  auto [ip, iec] = std::from_chars(indexPart.data(), indexPart.data() + indexPart.size(),
                                   parsed.index);
  auto [tp, tec] = std::from_chars(totalPart.data(), totalPart.data() + totalPart.size(),
                                   parsed.total);
  if (iec != std::errc{} || ip != indexPart.data() + indexPart.size()) return std::nullopt;
  if (tec != std::errc{} || tp != totalPart.data() + totalPart.size()) return std::nullopt;
  if (parsed.total == 0 || parsed.index >= parsed.total) return std::nullopt;
  return parsed;
}

std::size_t shardForObject(const util::MobileObjectId& object, std::size_t total) {
  mw::util::require(total > 0, "shardForObject: total must be positive");
  // FNV-1a, 64-bit: platform-independent, unlike std::hash<std::string>.
  std::uint64_t x = 0xcbf29ce484222325ULL;
  for (const char c : object.str()) {
    x ^= static_cast<std::uint8_t>(c);
    x *= 0x100000001b3ULL;
  }
  // splitmix64 finalizer — the same mix the RpcServer applies to connection
  // keys — so short ids with shared prefixes still spread over every shard.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % total);
}

std::size_t ShardMap::announcedCount() const noexcept {
  std::size_t n = 0;
  for (const auto& ep : endpoints) {
    if (ep) ++n;
  }
  return n;
}

ShardMap resolveShardMap(core::RegistryClient& registry) {
  ShardMap map;
  for (const std::string& name : registry.list()) {
    auto parsed = parseShardName(name);
    if (!parsed) continue;  // unrelated service sharing the registry
    if (map.total == 0) {
      map.total = parsed->total;
      map.endpoints.resize(map.total);
    } else if (map.total != parsed->total) {
      throw mw::util::ContractError("resolveShardMap: inconsistent shard totals in registry (" +
                                    std::to_string(map.total) + " vs " +
                                    std::to_string(parsed->total) + ")");
    }
    // The entry can expire between list() and lookup(); a nullopt lookup
    // just leaves the slot unannounced.
    map.endpoints[parsed->index] = registry.lookup(name);
  }
  return map;
}

}  // namespace mw::cluster
