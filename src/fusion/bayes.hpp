// Bayesian multi-sensor location fusion (§4.1.2, Eqs 1-7).
//
// The general region-probability formula follows the paper's derivation of
// Eq. (4): with n readings s_i reporting regions A_i, the probability that
// the person is in region R is
//
//                      Π_i f_i / a_R^(n-1)
//   P(person_R | s) = ---------------------------------------------
//                      Π_i f_i / a_R^(n-1) + Π_i g_i / (a_U-a_R)^(n-1)
//
//   f_i = p_i·a(A_i∩R) + q_i·(a_R − a(A_i∩R))
//   g_i = p_i·(a_Ai − a(A_i∩R)) + q_i·(a_U − a_R − a_Ai + a(A_i∩R))
//
// which is Bayes' rule with a uniform spatial prior P(person_R) = a_R/a_U
// and conditional independence of sensors given the person's location,
// decomposing each likelihood over whether the person is inside A_i∩R.
//
// NOTE ON FIDELITY: the paper's printed Eq. (7) (and Eq. (6)) omit the
// (a_U − a_R) normalization in the ¬R branch and write the g_i tail as
// (a_U − a_Ai + a_int) instead of (a_U − a_R − a_Ai + a_int). Those printed
// forms are dimensionally inconsistent with the fully-derived Eq. (4): they
// do not reduce to it for the contained-rectangle case. We therefore use
// the derivation-consistent formula above as the default — it reproduces
// Eqs (4) and (5) exactly — and expose the verbatim printed Eq. (7) as
// `regionProbabilityPaperEq7` so the discrepancy can be measured (see
// EXPERIMENTS.md).
#pragma once

#include "fusion/fusion_input.hpp"
#include "fusion/prior.hpp"
#include "geometry/rect.hpp"

namespace mw::fusion {

/// General region probability (derivation-consistent Eq. 7; reduces to the
/// paper's Eqs 4/5/6-derivation for their special cases). Inputs that do not
/// intersect the universe are ignored; `region` is clipped to the universe.
/// Returns a value in [0, 1].
double regionProbability(const geo::Rect& region, const FusionInputs& inputs,
                         const geo::Rect& universe);

/// The same formula under an arbitrary spatial prior (§4.1.2's "movement
/// patterns" extension): every area ratio in the derivation becomes a prior
/// mass ratio. With UniformPrior this is identical to regionProbability.
double regionProbabilityWithPrior(const geo::Rect& region, const FusionInputs& inputs,
                                  const geo::Rect& universe, const SpatialPrior& prior);

/// The paper's Eq. (7) exactly as printed, for comparison experiments.
double regionProbabilityPaperEq7(const geo::Rect& region, const FusionInputs& inputs,
                                 const geo::Rect& universe);

/// Eq. (5): single-sensor probability that the person is in the sensor's own
/// region B:  a_B·p / (a_B·p + q·(a_U − a_B)).
double singleSensorProbability(const FusionInput& input, const geo::Rect& universe);

/// Eq. (4): two sensors, rectangle A contained in rectangle B; probability
/// the person is in B. Provided as a direct transliteration for testing the
/// general formula against the paper's closed form.
double containedPairProbability(double p1, double q1, double areaA, double p2, double q2,
                                double areaB, double areaU);

}  // namespace mw::fusion
