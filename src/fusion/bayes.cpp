#include "fusion/bayes.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mw::fusion {

namespace {

double intersectionArea(const geo::Rect& a, const geo::Rect& b) {
  auto i = a.intersection(b);
  return i ? i->area() : 0.0;
}

void checkUniverse(const geo::Rect& universe) {
  mw::util::require(!universe.empty() && universe.area() > 0,
                    "fusion: universe must have positive area");
}

}  // namespace

double regionProbabilityWithPrior(const geo::Rect& region, const FusionInputs& inputs,
                                  const geo::Rect& universe, const SpatialPrior& prior) {
  checkUniverse(universe);
  auto clipped = universe.intersection(region);
  if (!clipped || clipped->area() <= 0) return 0.0;
  const geo::Rect r = *clipped;

  // Every area ratio of the Eq.-4 derivation becomes a prior-mass ratio;
  // with the uniform prior, mass == area / a_U and the classic formula
  // falls out.
  const double mR = prior.mass(r);
  if (mR <= 0) return 0.0;
  if (mR >= 1) return 1.0;
  const double mNotR = 1.0 - mR;

  double logF = 0.0;  // log Π f_i
  double logG = 0.0;  // log Π g_i
  std::size_t n = 0;
  for (const FusionInput& in : inputs) {
    auto clippedA = universe.intersection(in.rect);
    if (!clippedA || clippedA->area() <= 0) continue;
    const double mA = prior.mass(*clippedA);
    auto inter = clippedA->intersection(r);
    const double mInt = inter ? prior.mass(*inter) : 0.0;

    const double f = in.p * mInt + in.q * std::max(0.0, mR - mInt);
    const double g = in.p * std::max(0.0, mA - mInt) +
                     in.q * std::max(0.0, mNotR - mA + mInt);
    if (f <= 0) return 0.0;  // a sensor makes R impossible
    if (g <= 0) return 1.0;  // a sensor makes ¬R impossible
    logF += std::log(f);
    logG += std::log(g);
    ++n;
  }
  if (n == 0) {
    return mR;  // no sensor evidence: the prior itself
  }

  // P = F/mR^(n-1) / (F/mR^(n-1) + G/mNotR^(n-1))
  //   = 1 / (1 + exp(logG - logF + (n-1)(log mR - log mNotR)))
  const double expo =
      logG - logF + static_cast<double>(n - 1) * (std::log(mR) - std::log(mNotR));
  if (expo > 700) return 0.0;
  if (expo < -700) return 1.0;
  return 1.0 / (1.0 + std::exp(expo));
}

double regionProbability(const geo::Rect& region, const FusionInputs& inputs,
                         const geo::Rect& universe) {
  checkUniverse(universe);
  return regionProbabilityWithPrior(region, inputs, universe, UniformPrior{universe});
}

double regionProbabilityPaperEq7(const geo::Rect& region, const FusionInputs& inputs,
                                 const geo::Rect& universe) {
  checkUniverse(universe);
  auto clipped = universe.intersection(region);
  if (!clipped || clipped->area() <= 0) return 0.0;
  const geo::Rect r = *clipped;

  const double aU = universe.area();
  const double aR = r.area() / aU;

  double num = 1.0;
  double alt = 1.0;
  std::size_t n = 0;
  for (const FusionInput& in : inputs) {
    auto clippedA = universe.intersection(in.rect);
    if (!clippedA || clippedA->area() <= 0) continue;
    const double aA = clippedA->area() / aU;
    const double aInt = intersectionArea(*clippedA, r) / aU;
    // Verbatim Eq. (7) factors (areas normalized by a_U, a_U itself = 1).
    num *= in.p * aInt + in.q * (aR - aInt);
    alt *= in.p * (aA - aInt) + in.q * (1.0 - aA + aInt);
    ++n;
  }
  if (n == 0) return aR;
  if (num + alt <= 0) return 0.0;
  return num / (num + alt);
}

double singleSensorProbability(const FusionInput& input, const geo::Rect& universe) {
  checkUniverse(universe);
  auto clipped = universe.intersection(input.rect);
  if (!clipped || clipped->area() <= 0) return 0.0;
  const double aU = universe.area();
  const double aB = clipped->area();
  const double num = aB * input.p;
  const double den = num + input.q * (aU - aB);
  if (den <= 0) return 0.0;
  return num / den;
}

double containedPairProbability(double p1, double q1, double areaA, double p2, double q2,
                                double areaB, double areaU) {
  mw::util::require(areaA >= 0 && areaA <= areaB && areaB <= areaU && areaU > 0,
                    "containedPairProbability: need 0 <= areaA <= areaB <= areaU");
  const double bracket = p1 * areaA + q1 * (areaB - areaA);
  const double num = bracket * p2;
  const double den = num + q1 * q2 * (areaU - areaB);
  if (den <= 0) return 0.0;
  return num / den;
}

}  // namespace mw::fusion
