#include "fusion/engine.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace mw::fusion {

FusionEngine::FusionEngine(geo::Rect universe) : universe_(universe) {
  mw::util::require(!universe.empty() && universe.area() > 0,
                    "FusionEngine: universe must have positive area");
}

double FusionEngine::priorAwareProbability(const geo::Rect& region,
                                           const FusionInputs& inputs) const {
  if (prior_) return regionProbabilityWithPrior(region, inputs, universe_, *prior_);
  return regionProbability(region, inputs, universe_);
}

FusionInputs FusionEngine::informative(const FusionInputs& inputs) const {
  FusionInputs out;
  out.reserve(inputs.size());
  for (const FusionInput& in : inputs) {
    if (!in.informative()) continue;
    auto clipped = universe_.intersection(in.rect);
    if (!clipped || clipped->area() <= 0) continue;
    FusionInput copy = in;
    copy.rect = *clipped;
    out.push_back(std::move(copy));
  }
  return out;
}

lattice::RectLattice FusionEngine::buildLattice(const FusionInputs& inputs) const {
  lattice::RectLattice lat(universe_);
  for (const FusionInput& in : informative(inputs)) {
    lat.insert(in.rect, in.sensorId.str());
  }
  return lat;
}

namespace {

// Ranks the parents of Bottom per §4.1.2 case 3 / §4.2: rule 1 prefers
// regions backed by moving rectangles (the paper's Fig 5/6 walkthrough picks
// S4 — itself a moving source — over derived regions with fewer moving
// contributors); rule 2 breaks ties by the best single-sensor probability of
// a supporting reading.
struct RankedRegion {
  std::size_t node;
  geo::Rect rect;
  int movingSupport;
  double prob;
};

std::vector<RankedRegion> rankBottomParents(const lattice::RectLattice& lat,
                                            const FusionInputs& active,
                                            const geo::Rect& universe) {
  std::vector<RankedRegion> out;
  for (std::size_t p : lat.bottomParents()) {
    const geo::Rect rect = lat.node(p).rect;
    int movingSupport = 0;
    double bestSingle = 0;
    for (const FusionInput& in : active) {
      if (!in.rect.contains(rect)) continue;
      if (in.moving) ++movingSupport;
      bestSingle = std::max(bestSingle, singleSensorProbability(in, universe));
    }
    out.push_back(RankedRegion{p, rect, movingSupport, bestSingle});
  }
  std::sort(out.begin(), out.end(), [](const RankedRegion& a, const RankedRegion& b) {
    if (a.movingSupport != b.movingSupport) return a.movingSupport > b.movingSupport;
    return a.prob > b.prob;
  });
  return out;
}

}  // namespace

FusionInputs FusionEngine::resolveConflicts(FusionInputs inputs,
                                            std::vector<util::SensorId>* discarded) const {
  FusionInputs active = informative(inputs);
  if (active.size() <= 1) return active;

  // Iterate until the lattice has a single Bottom parent: each round picks
  // the most credible minimal region and drops the sensors that reported
  // regions disjoint from it (§4.1.2 case 3, §4.2).
  for (int round = 0; round < 64; ++round) {
    lattice::RectLattice lat(universe_);
    for (const FusionInput& in : active) lat.insert(in.rect, in.sensorId.str());
    auto candidates = rankBottomParents(lat, active, universe_);
    if (candidates.size() <= 1) break;
    const RankedRegion& winner = candidates.front();

    // Discard every sensor whose rect is disjoint from the winning region.
    FusionInputs surviving;
    bool removedAny = false;
    for (FusionInput& in : active) {
      if (in.rect.intersects(winner.rect)) {
        surviving.push_back(std::move(in));
      } else {
        removedAny = true;
        if (discarded != nullptr) discarded->push_back(in.sensorId);
      }
    }
    active = std::move(surviving);
    if (!removedAny) break;  // defensive: avoid livelock on degenerate input
  }
  return active;
}

FusedState FusionEngine::fuse(const FusionInputs& inputs) const {
  FusedState state{inputs, {}, {}, lattice::RectLattice(universe_), std::nullopt};
  state.active = resolveConflicts(inputs, &state.discarded);
  for (const FusionInput& in : state.active) state.lattice.insert(in.rect, in.sensorId.str());
  if (state.active.empty()) return state;

  // After conflict resolution usually one minimal region remains; if several
  // do (touching rects cannot be resolved away), pick by the same ranking the
  // conflict rules use.
  auto candidates = rankBottomParents(state.lattice, state.active, universe_);
  const std::size_t best = candidates.front().node;

  LocationEstimate est;
  est.region = state.lattice.node(best).rect;
  est.probability = priorAwareProbability(est.region, state.active);
  std::vector<double> ps;
  for (const FusionInput& in : state.active) {
    ps.push_back(in.p);
    if (in.rect.contains(est.region)) est.supporting.push_back(in.sensorId);
  }
  est.cls = classify(est.probability, computeThresholds(std::move(ps)));
  est.discarded = state.discarded;
  state.estimate = std::move(est);
  return state;
}

std::optional<LocationEstimate> FusionEngine::infer(const FusionInputs& inputs) const {
  return fuse(inputs).estimate;
}

double FusionEngine::probabilityInRegion(const geo::Rect& region,
                                         const FusedState& state) const {
  return priorAwareProbability(region, state.active);
}

double FusionEngine::probabilityInRegion(const geo::Rect& region,
                                         const FusionInputs& inputs) const {
  FusionInputs active = resolveConflicts(inputs, nullptr);
  return priorAwareProbability(region, active);
}

std::vector<RegionProbability> FusionEngine::distribution(const FusedState& state,
                                                          bool normalize) const {
  const lattice::RectLattice& lat = state.lattice;
  std::vector<RegionProbability> out;
  out.reserve(lat.size());
  for (std::size_t i = 0; i < lat.size(); ++i) {
    const auto& node = lat.node(i);
    out.push_back(RegionProbability{node.rect, priorAwareProbability(node.rect, state.active),
                                    node.isSource});
  }
  if (normalize && !out.empty()) {
    // Normalize over the minimal regions (the partition the paper reports):
    // scale all probabilities so the Bottom parents sum to 1.
    double sum = 0;
    for (std::size_t p : lat.bottomParents()) sum += out[p].probability;
    if (sum > 0) {
      for (auto& rp : out) rp.probability = std::min(1.0, rp.probability / sum);
    }
  }
  return out;
}

std::vector<RegionProbability> FusionEngine::distribution(const FusionInputs& inputs,
                                                          bool normalize) const {
  return distribution(fuse(inputs), normalize);
}

}  // namespace mw::fusion
