#include "fusion/prior.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mw::fusion {

using mw::util::require;

UniformPrior::UniformPrior(geo::Rect universe) : universe_(universe) {
  require(!universe.empty() && universe.area() > 0, "UniformPrior: empty universe");
}

double UniformPrior::mass(const geo::Rect& region) const {
  auto clipped = universe_.intersection(region);
  if (!clipped) return 0.0;
  return clipped->area() / universe_.area();
}

RegionDwellPrior::RegionDwellPrior(geo::Rect universe, std::vector<Cell> cells,
                                   double smoothingSeconds)
    : universe_(universe), cells_(std::move(cells)) {
  require(!universe.empty() && universe.area() > 0, "RegionDwellPrior: empty universe");
  require(smoothingSeconds > 0, "RegionDwellPrior: smoothing must be positive");
  double covered = 0;
  for (const auto& cell : cells_) {
    require(!cell.rect.empty() && cell.rect.area() > 0,
            "RegionDwellPrior: cell '" + cell.name + "' has no area");
    require(universe_.contains(cell.rect),
            "RegionDwellPrior: cell '" + cell.name + "' outside the universe");
    covered += cell.rect.area();
  }
  dwellSeconds_.assign(cells_.size(), smoothingSeconds);
  backgroundSeconds_ = smoothingSeconds;
  backgroundArea_ = std::max(universe_.area() - covered, 0.0);
}

void RegionDwellPrior::observe(geo::Point2 where, util::Duration dwell) {
  require(dwell >= util::Duration::zero(), "RegionDwellPrior::observe: negative dwell");
  double seconds = static_cast<double>(dwell.count()) / 1000.0;
  // Attribute to the smallest containing cell; background otherwise.
  std::size_t best = cells_.size();
  double bestArea = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (!cells_[i].rect.contains(where)) continue;
    if (best == cells_.size() || cells_[i].rect.area() < bestArea) {
      best = i;
      bestArea = cells_[i].rect.area();
    }
  }
  if (best == cells_.size()) {
    backgroundSeconds_ += seconds;
  } else {
    dwellSeconds_[best] += seconds;
  }
}

void RegionDwellPrior::observe(const std::string& cellName, util::Duration dwell) {
  require(dwell >= util::Duration::zero(), "RegionDwellPrior::observe: negative dwell");
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name == cellName) {
      dwellSeconds_[i] += static_cast<double>(dwell.count()) / 1000.0;
      return;
    }
  }
  throw mw::util::NotFoundError("RegionDwellPrior: unknown cell '" + cellName + "'");
}

double RegionDwellPrior::totalSeconds() const {
  double total = backgroundSeconds_;
  for (double s : dwellSeconds_) total += s;
  return total;
}

double RegionDwellPrior::mass(const geo::Rect& region) const {
  auto clipped = universe_.intersection(region);
  if (!clipped || clipped->area() <= 0) return 0.0;
  const double total = totalSeconds();
  double mass = 0;
  double coveredOverlap = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    auto inter = cells_[i].rect.intersection(*clipped);
    if (!inter) continue;
    double frac = inter->area() / cells_[i].rect.area();
    mass += (dwellSeconds_[i] / total) * frac;
    coveredOverlap += inter->area();
  }
  if (backgroundArea_ > 0) {
    double uncovered = std::max(clipped->area() - coveredOverlap, 0.0);
    mass += (backgroundSeconds_ / total) * (uncovered / backgroundArea_);
  }
  return std::min(mass, 1.0);
}

double RegionDwellPrior::cellFraction(const std::string& cellName) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name == cellName) return dwellSeconds_[i] / totalSeconds();
  }
  throw mw::util::NotFoundError("RegionDwellPrior: unknown cell '" + cellName + "'");
}

}  // namespace mw::fusion
