// The fusion engine: lattice construction, conflict resolution and location
// inference (§4.1.2 case 3, §4.2).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "fusion/bayes.hpp"
#include "fusion/classify.hpp"
#include "fusion/fusion_input.hpp"
#include "geometry/rect.hpp"
#include "lattice/rect_lattice.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace mw::fusion {

/// The single location value most applications want (§4.2: "most
/// location-sensitive applications just require a single value for the
/// location of a person and do not want to deal with a spatial probability
/// distribution").
struct LocationEstimate {
  geo::Rect region;                             ///< inferred MBR, universe frame
  double probability = 0;                       ///< P(person in region)
  ProbabilityClass cls = ProbabilityClass::Low; ///< §4.4 bucket
  std::vector<util::SensorId> supporting;       ///< sensors whose rect contains region
  std::vector<util::SensorId> discarded;        ///< sensors dropped by conflict resolution
};

/// One region of the fused spatial probability distribution.
struct RegionProbability {
  geo::Rect region;
  double probability = 0;
  bool isSource = false;  ///< a sensor rect (vs a derived intersection)
};

/// Everything the §4.2 pipeline derives from one set of fusion inputs: the
/// conflict-resolution survivors, the containment lattice built over them,
/// and the single most-likely location. Computed once by fuse() and shared
/// by every query type — the Location Service memoizes one FusedState per
/// (object, readings-epoch) so repeated queries rebuild nothing.
struct FusedState {
  FusionInputs inputs;                     ///< as supplied (thresholds classify over these)
  FusionInputs active;                     ///< informative survivors of conflict resolution
  std::vector<util::SensorId> discarded;   ///< sensors dropped by conflict resolution
  lattice::RectLattice lattice;            ///< containment lattice over `active`
  std::optional<LocationEstimate> estimate;///< nullopt when no informative reading

  /// Cache stamps, set by the memoizing layer (not by fuse()): the readings
  /// epoch and clock tick the inputs were gathered at. Both cache levels —
  /// the per-object fusion cache and the region population cache — share
  /// this one staleness test instead of re-deriving it.
  std::uint64_t epoch = 0;
  util::TimePoint computedAt{};

  /// Cheap staleness check: the state is reusable iff the object's readings
  /// epoch has not moved and `now` is within `tolerance` of the tick the
  /// state was computed at (sensor confidences decay continuously with age,
  /// so a later tick means different inputs even at the same epoch).
  [[nodiscard]] bool freshAt(std::uint64_t currentEpoch, util::TimePoint now,
                             util::Duration tolerance) const noexcept {
    return epoch == currentEpoch && now >= computedAt && now - computedAt <= tolerance;
  }
};

class FusionEngine {
 public:
  explicit FusionEngine(geo::Rect universe);

  [[nodiscard]] const geo::Rect& universe() const noexcept { return universe_; }

  /// Installs a non-uniform spatial prior (learned movement patterns,
  /// §4.1.2/§11); nullptr restores the paper's uniform-area prior.
  void setPrior(std::shared_ptr<const SpatialPrior> prior) { prior_ = std::move(prior); }
  [[nodiscard]] bool hasPrior() const noexcept { return prior_ != nullptr; }

  /// Region probability under the engine's current prior.
  [[nodiscard]] double priorAwareProbability(const geo::Rect& region,
                                             const FusionInputs& inputs) const;

  /// Builds the containment lattice from the informative inputs (Figs 5-6).
  [[nodiscard]] lattice::RectLattice buildLattice(const FusionInputs& inputs) const;

  /// Runs the full pipeline ONCE — conflict resolution, one lattice build,
  /// single-location inference — and returns the reusable state that
  /// infer/probabilityInRegion/distribution all derive from. Callers that
  /// issue more than one query against the same inputs should fuse() once
  /// and use the FusedState overloads below.
  [[nodiscard]] FusedState fuse(const FusionInputs& inputs) const;

  /// Region query against an already-fused state (no lattice rebuild).
  [[nodiscard]] double probabilityInRegion(const geo::Rect& region,
                                           const FusedState& state) const;

  /// Distribution read off an already-fused state's lattice.
  [[nodiscard]] std::vector<RegionProbability> distribution(const FusedState& state,
                                                            bool normalize = false) const;

  /// Full §4.2 pipeline: build lattice, resolve conflicts among the parents
  /// of Bottom (rule 1: prefer moving rectangles; rule 2: prefer the higher
  /// single-sensor probability), and return the single most likely location.
  /// Returns nullopt when no informative reading is available.
  [[nodiscard]] std::optional<LocationEstimate> infer(const FusionInputs& inputs) const;

  /// Region-based query (§4.2): the probability that the person is inside
  /// `region`, fusing all informative readings (after conflict resolution).
  [[nodiscard]] double probabilityInRegion(const geo::Rect& region,
                                           const FusionInputs& inputs) const;

  /// The full spatial probability distribution: probability of every lattice
  /// node (normalized over the Bottom parents' partition is NOT applied; the
  /// values are per-region posteriors as the paper computes them, §4.1.2:
  /// "The probabilities of all regions are finally normalized" — pass
  /// `normalize = true` to scale the minimal regions to sum to 1).
  [[nodiscard]] std::vector<RegionProbability> distribution(const FusionInputs& inputs,
                                                            bool normalize = false) const;

  /// Conflict resolution in isolation: returns the surviving inputs and
  /// appends the losers to `discarded` (exposed for tests and benches).
  [[nodiscard]] FusionInputs resolveConflicts(FusionInputs inputs,
                                              std::vector<util::SensorId>* discarded) const;

 private:
  /// Drops inputs that are expired/uninformative or outside the universe.
  [[nodiscard]] FusionInputs informative(const FusionInputs& inputs) const;

  geo::Rect universe_;
  std::shared_ptr<const SpatialPrior> prior_;  ///< nullptr = uniform
};

}  // namespace mw::fusion
