// The fusion engine: lattice construction, conflict resolution and location
// inference (§4.1.2 case 3, §4.2).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "fusion/bayes.hpp"
#include "fusion/classify.hpp"
#include "fusion/fusion_input.hpp"
#include "geometry/rect.hpp"
#include "lattice/rect_lattice.hpp"
#include "util/ids.hpp"

namespace mw::fusion {

/// The single location value most applications want (§4.2: "most
/// location-sensitive applications just require a single value for the
/// location of a person and do not want to deal with a spatial probability
/// distribution").
struct LocationEstimate {
  geo::Rect region;                             ///< inferred MBR, universe frame
  double probability = 0;                       ///< P(person in region)
  ProbabilityClass cls = ProbabilityClass::Low; ///< §4.4 bucket
  std::vector<util::SensorId> supporting;       ///< sensors whose rect contains region
  std::vector<util::SensorId> discarded;        ///< sensors dropped by conflict resolution
};

/// One region of the fused spatial probability distribution.
struct RegionProbability {
  geo::Rect region;
  double probability = 0;
  bool isSource = false;  ///< a sensor rect (vs a derived intersection)
};

class FusionEngine {
 public:
  explicit FusionEngine(geo::Rect universe);

  [[nodiscard]] const geo::Rect& universe() const noexcept { return universe_; }

  /// Installs a non-uniform spatial prior (learned movement patterns,
  /// §4.1.2/§11); nullptr restores the paper's uniform-area prior.
  void setPrior(std::shared_ptr<const SpatialPrior> prior) { prior_ = std::move(prior); }
  [[nodiscard]] bool hasPrior() const noexcept { return prior_ != nullptr; }

  /// Region probability under the engine's current prior.
  [[nodiscard]] double priorAwareProbability(const geo::Rect& region,
                                             const FusionInputs& inputs) const;

  /// Builds the containment lattice from the informative inputs (Figs 5-6).
  [[nodiscard]] lattice::RectLattice buildLattice(const FusionInputs& inputs) const;

  /// Full §4.2 pipeline: build lattice, resolve conflicts among the parents
  /// of Bottom (rule 1: prefer moving rectangles; rule 2: prefer the higher
  /// single-sensor probability), and return the single most likely location.
  /// Returns nullopt when no informative reading is available.
  [[nodiscard]] std::optional<LocationEstimate> infer(const FusionInputs& inputs) const;

  /// Region-based query (§4.2): the probability that the person is inside
  /// `region`, fusing all informative readings (after conflict resolution).
  [[nodiscard]] double probabilityInRegion(const geo::Rect& region,
                                           const FusionInputs& inputs) const;

  /// The full spatial probability distribution: probability of every lattice
  /// node (normalized over the Bottom parents' partition is NOT applied; the
  /// values are per-region posteriors as the paper computes them, §4.1.2:
  /// "The probabilities of all regions are finally normalized" — pass
  /// `normalize = true` to scale the minimal regions to sum to 1).
  [[nodiscard]] std::vector<RegionProbability> distribution(const FusionInputs& inputs,
                                                            bool normalize = false) const;

  /// Conflict resolution in isolation: returns the surviving inputs and
  /// appends the losers to `discarded` (exposed for tests and benches).
  [[nodiscard]] FusionInputs resolveConflicts(FusionInputs inputs,
                                              std::vector<util::SensorId>* discarded) const;

 private:
  /// Drops inputs that are expired/uninformative or outside the universe.
  [[nodiscard]] FusionInputs informative(const FusionInputs& inputs) const;

  geo::Rect universe_;
  std::shared_ptr<const SpatialPrior> prior_;  ///< nullptr = uniform
};

}  // namespace mw::fusion
