// Probability-space classification (§4.4).
//
// "To make it more convenient for application developers, we divide the
// probability space into 4 regions based on the accuracy of various sensors:
//   (0, min(p_i)]                 low
//   (min(p_i), median(p_i)]      medium
//   (median(p_i), max(p_i)]      high
//   (max(p_i), 1]                very high"
#pragma once

#include <string_view>
#include <vector>

namespace mw::fusion {

enum class ProbabilityClass { Low = 0, Medium = 1, High = 2, VeryHigh = 3 };

std::string_view toString(ProbabilityClass c);

/// The three thresholds dividing the probability space, derived from the
/// detection confidences of the sensors that participated in fusion.
struct ClassThresholds {
  double low = 0;     ///< min of the p_i's
  double medium = 0;  ///< median of the p_i's
  double high = 0;    ///< max of the p_i's
};

/// Computes thresholds from the participating sensors' p values. With no
/// sensors, every probability classifies as Low. Median of an even count is
/// the mean of the two middle values.
ClassThresholds computeThresholds(std::vector<double> sensorPs);

/// Classifies a probability against thresholds (boundaries are inclusive on
/// the upper end, matching the paper's half-open-from-below intervals).
ProbabilityClass classify(double probability, const ClassThresholds& thresholds);

}  // namespace mw::fusion
