#include "fusion/classify.hpp"

#include <algorithm>

namespace mw::fusion {

std::string_view toString(ProbabilityClass c) {
  switch (c) {
    case ProbabilityClass::Low: return "low";
    case ProbabilityClass::Medium: return "medium";
    case ProbabilityClass::High: return "high";
    case ProbabilityClass::VeryHigh: return "very high";
  }
  return "?";
}

ClassThresholds computeThresholds(std::vector<double> sensorPs) {
  if (sensorPs.empty()) {
    // No sensors: everything is Low; thresholds collapse at 1.
    return ClassThresholds{1.0, 1.0, 1.0};
  }
  std::sort(sensorPs.begin(), sensorPs.end());
  ClassThresholds t;
  t.low = sensorPs.front();
  t.high = sensorPs.back();
  const std::size_t n = sensorPs.size();
  t.medium = (n % 2 == 1) ? sensorPs[n / 2] : (sensorPs[n / 2 - 1] + sensorPs[n / 2]) / 2.0;
  return t;
}

ProbabilityClass classify(double probability, const ClassThresholds& t) {
  if (probability <= t.low) return ProbabilityClass::Low;
  if (probability <= t.medium) return ProbabilityClass::Medium;
  if (probability <= t.high) return ProbabilityClass::High;
  return ProbabilityClass::VeryHigh;
}

}  // namespace mw::fusion
