// The fusion engine's view of one sensor observation.
//
// By the time a reading reaches fusion it has been (1) converted into the
// universe frame, (2) approximated by its MBR, and (3) calibrated into a
// (p, q) confidence pair with temporal degradation already applied ("all
// p_i's are net probabilities obtained after applying the temporal
// degradation function", §4.1.2).
#pragma once

#include <vector>

#include "geometry/rect.hpp"
#include "util/ids.hpp"

namespace mw::fusion {

struct FusionInput {
  util::SensorId sensorId;
  geo::Rect rect;      ///< reported region A_i, universe frame
  double p = 0;        ///< P(sensor says A_i | person in A_i), tdf-degraded
  double q = 0;        ///< P(sensor says A_i | person not in A_i)
  bool moving = false; ///< region moved since the sensor's previous report

  [[nodiscard]] bool informative() const noexcept { return p > q; }
};

using FusionInputs = std::vector<FusionInput>;

}  // namespace mw::fusion
