// Spatial priors for fusion — the paper's stated extension point.
//
// §4.1.2: "Now, P(person_B) is the probability that the person is in the
// rectangle B. The value of this depends on the movement patterns of B. In
// order to calculate this, we would need to measure how much time a person
// spends in different regions. However, in the absence of such data, we
// assume that the person is equally likely to be in any region." And §11
// (future work): "user studies ... these probability values can then be
// used by the middleware and location-aware applications to improve their
// reliability and accuracy."
//
// A SpatialPrior maps any rectangle to its prior probability mass. The
// uniform prior reproduces the paper's area-ratio assumption exactly; the
// RegionDwellPrior learns per-region dwell fractions from observations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geometry/rect.hpp"
#include "util/clock.hpp"

namespace mw::fusion {

/// Prior probability that the person is inside a given region of the
/// universe. Implementations must be additive (mass of disjoint unions sums)
/// and normalized: mass(universe) == 1.
class SpatialPrior {
 public:
  virtual ~SpatialPrior() = default;
  [[nodiscard]] virtual double mass(const geo::Rect& region) const = 0;
};

/// The paper's default: mass proportional to area.
class UniformPrior final : public SpatialPrior {
 public:
  explicit UniformPrior(geo::Rect universe);
  [[nodiscard]] double mass(const geo::Rect& region) const override;

 private:
  geo::Rect universe_;
};

/// A prior learned from dwell observations over a set of pairwise
/// interior-disjoint named cells (rooms + corridors partitioning the floor).
/// Mass inside a cell is spread uniformly over that cell; space covered by
/// no cell shares the unobserved "background" mass. Laplace smoothing keeps
/// every cell reachable.
class RegionDwellPrior final : public SpatialPrior {
 public:
  struct Cell {
    std::string name;
    geo::Rect rect;
  };

  /// `cells` should partition (most of) the universe without interior
  /// overlap; `smoothing` is the pseudo-dwell (seconds) granted to every
  /// cell and to the background.
  RegionDwellPrior(geo::Rect universe, std::vector<Cell> cells, double smoothingSeconds = 1.0);

  /// Records that the person spent `dwell` at `where` (attributed to the
  /// cell containing the point, or to the background).
  void observe(geo::Point2 where, util::Duration dwell);
  /// Records dwell directly against a named cell.
  void observe(const std::string& cellName, util::Duration dwell);

  [[nodiscard]] double mass(const geo::Rect& region) const override;

  /// Learned dwell fraction of a cell (for inspection/tests).
  [[nodiscard]] double cellFraction(const std::string& cellName) const;
  [[nodiscard]] std::size_t cellCount() const noexcept { return cells_.size(); }

 private:
  [[nodiscard]] double totalSeconds() const;

  geo::Rect universe_;
  std::vector<Cell> cells_;
  std::vector<double> dwellSeconds_;  // parallel to cells_
  double backgroundSeconds_;
  double backgroundArea_;
};

}  // namespace mw::fusion
