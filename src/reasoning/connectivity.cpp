#include "reasoning/connectivity.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace mw::reasoning {

using mw::util::NotFoundError;
using mw::util::require;

void ConnectivityGraph::addRegion(const std::string& name, const geo::Rect& rect) {
  require(!name.empty(), "ConnectivityGraph::addRegion: empty name");
  require(!rect.empty() && rect.area() > 0, "ConnectivityGraph::addRegion: empty rect");
  require(!byName_.contains(name), "ConnectivityGraph::addRegion: duplicate region " + name);
  byName_.emplace(name, regions_.size());
  regions_.push_back(Region{name, rect, {}});
}

std::size_t ConnectivityGraph::addPassage(const Passage& passage) {
  std::size_t connections = 0;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    for (std::size_t j = i + 1; j < regions_.size(); ++j) {
      if (!passageConnects(passage, regions_[i].rect, regions_[j].rect)) continue;
      geo::Point2 via = passage.segment.midpoint();
      regions_[i].edges.push_back(Edge{j, via, passage.kind});
      regions_[j].edges.push_back(Edge{i, via, passage.kind});
      edges_ += 2;
      ++connections;
    }
  }
  return connections;
}

void ConnectivityGraph::connect(const std::string& a, const std::string& b, geo::Point2 via,
                                PassageKind kind) {
  std::size_t ia = indexOf(a);
  std::size_t ib = indexOf(b);
  require(ia != ib, "ConnectivityGraph::connect: cannot connect a region to itself");
  regions_[ia].edges.push_back(Edge{ib, via, kind});
  regions_[ib].edges.push_back(Edge{ia, via, kind});
  edges_ += 2;
}

bool ConnectivityGraph::hasRegion(const std::string& name) const { return byName_.contains(name); }

const geo::Rect& ConnectivityGraph::regionRect(const std::string& name) const {
  return regions_[indexOf(name)].rect;
}

std::optional<std::string> ConnectivityGraph::regionAt(geo::Point2 p) const {
  const Region* best = nullptr;
  for (const Region& r : regions_) {
    if (!r.rect.contains(p)) continue;
    if (best == nullptr || r.rect.area() < best->rect.area()) best = &r;
  }
  if (best == nullptr) return std::nullopt;
  return best->name;
}

std::size_t ConnectivityGraph::indexOf(const std::string& name) const {
  auto it = byName_.find(name);
  if (it == byName_.end()) {
    throw NotFoundError("ConnectivityGraph: unknown region '" + name + "'");
  }
  return it->second;
}

double ConnectivityGraph::euclideanDistance(const std::string& a, const std::string& b) const {
  return geo::distance(regions_[indexOf(a)].rect.center(), regions_[indexOf(b)].rect.center());
}

std::optional<double> ConnectivityGraph::pathDistance(const std::string& a, const std::string& b,
                                                      bool includeRestricted) const {
  auto r = route(a, b, includeRestricted);
  if (!r) return std::nullopt;
  return r->length;
}

std::optional<Route> ConnectivityGraph::route(const std::string& a, const std::string& b,
                                              bool includeRestricted) const {
  return search(a, b, includeRestricted, /*useHeuristic=*/false);
}

std::optional<Route> ConnectivityGraph::routeAStar(const std::string& a, const std::string& b,
                                                   bool includeRestricted) const {
  return search(a, b, includeRestricted, /*useHeuristic=*/true);
}

std::optional<Route> ConnectivityGraph::search(const std::string& a, const std::string& b,
                                               bool includeRestricted,
                                               bool useHeuristic) const {
  const std::size_t start = indexOf(a);
  const std::size_t goal = indexOf(b);
  if (start == goal) return Route{{regions_[start].name}, {}, 0.0};
  const geo::Point2 goalCenter = regions_[goal].rect.center();

  // Exact search over (door, region-entered) states. Collapsing states to
  // regions would lose the entry-point dependence of traversal costs (the
  // first door settled is not always on the cheapest overall path), so each
  // directed door crossing is its own node. Node 0 is the start (standing at
  // the start region's center); node 1+k is "just crossed flat edge k".
  struct EdgeRef {
    std::size_t fromRegion;
    const Edge* edge;
  };
  std::vector<EdgeRef> flat;
  std::vector<std::vector<std::size_t>> outgoing(regions_.size());  // region -> flat ids
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    for (const Edge& e : regions_[r].edges) {
      if (!includeRestricted && e.kind == PassageKind::Restricted) continue;
      outgoing[r].push_back(flat.size());
      flat.push_back(EdgeRef{r, &e});
    }
  }

  const std::size_t nodeCount = flat.size() + 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodeCount, kInf);
  std::vector<std::size_t> prev(nodeCount, SIZE_MAX);

  auto nodeRegion = [&](std::size_t n) {
    return n == 0 ? start : flat[n - 1].edge->to;
  };
  auto nodePoint = [&](std::size_t n) {
    return n == 0 ? regions_[start].rect.center() : flat[n - 1].edge->via;
  };
  // Admissible, consistent heuristic: straight line to the goal center
  // (0 in Dijkstra mode). Both modes are exact on this state graph.
  auto h = [&](std::size_t n) {
    return useHeuristic ? geo::distance(nodePoint(n), goalCenter) : 0.0;
  };

  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[0] = 0;
  pq.push({h(0), 0});

  double bestGoal = kInf;
  std::size_t bestGoalNode = SIZE_MAX;
  while (!pq.empty()) {
    auto [f, n] = pq.top();
    pq.pop();
    if (f - h(n) > dist[n] + 1e-12) continue;  // stale queue entry
    if (dist[n] >= bestGoal) break;            // cannot improve further
    std::size_t r = nodeRegion(n);
    geo::Point2 p = nodePoint(n);
    if (r == goal) {
      double total = dist[n] + geo::distance(p, goalCenter);
      if (total < bestGoal) {
        bestGoal = total;
        bestGoalNode = n;
      }
      continue;
    }
    for (std::size_t k : outgoing[r]) {
      double nd = dist[n] + geo::distance(p, flat[k].edge->via);
      if (nd < dist[k + 1]) {
        dist[k + 1] = nd;
        prev[k + 1] = n;
        pq.push({nd + h(k + 1), k + 1});
      }
    }
  }
  if (bestGoalNode == SIZE_MAX) return std::nullopt;

  Route out;
  out.length = bestGoal;
  // Walk the door chain backwards; regions = start + each region entered.
  std::vector<std::size_t> chain;
  for (std::size_t n = bestGoalNode; n != SIZE_MAX && n != 0; n = prev[n]) chain.push_back(n);
  std::reverse(chain.begin(), chain.end());
  out.regions.push_back(regions_[start].name);
  for (std::size_t n : chain) {
    out.vias.push_back(flat[n - 1].edge->via);
    out.regions.push_back(regions_[flat[n - 1].edge->to].name);
  }
  return out;
}

}  // namespace mw::reasoning
