// Probabilistic spatial relationships between objects and regions (§4.6.2,
// §4.6.3).
//
// "We also associate probabilities with spatial relations, which are derived
// from the probabilities of locations of the objects in the relation."
//
// Object locations arrive as fusion::LocationEstimate values (an MBR plus
// the probability the person is inside it); within the MBR the location is
// taken as uniformly distributed, matching the uniform-prior assumption of
// §4.1.2.
#pragma once

#include <optional>
#include <string>

#include "fusion/engine.hpp"
#include "geometry/rect.hpp"
#include "reasoning/connectivity.hpp"

namespace mw::reasoning {

// --- object ↔ region relations (§4.6.2) ---------------------------------------

/// P(object inside `region`): estimate probability scaled by the fraction of
/// the estimate's MBR that lies inside the region.
double containmentProbability(const fusion::LocationEstimate& object, const geo::Rect& region);

/// Usage regions (§4.6.2b): "if a person has to use these objects for some
/// purpose, he has to be within the usage region of the object." Alias of
/// containment with intent-revealing naming.
double usageProbability(const fusion::LocationEstimate& person, const geo::Rect& usageRegion);

/// Euclidean distance between the object estimate's center and the region
/// center, with the min/max bounds induced by the MBR uncertainty.
struct DistanceBounds {
  double expected = 0;  ///< center-to-center
  double min = 0;       ///< closest compatible placement
  double max = 0;       ///< farthest compatible placement
};
DistanceBounds distanceToRegion(const fusion::LocationEstimate& object, const geo::Rect& region);

// --- object ↔ object relations (§4.6.3) ----------------------------------------

/// P(distance(a,b) <= threshold), treating each object's location as uniform
/// over its estimate MBR. Evaluated by deterministic grid quadrature
/// (`gridResolution` cells per axis), scaled by both estimates' confidences.
double proximityProbability(const fusion::LocationEstimate& a, const fusion::LocationEstimate& b,
                            double threshold, int gridResolution = 8);

/// P(a and b are in the same region): product of both containment
/// probabilities in the given symbolic region's rectangle.
double coLocationProbability(const fusion::LocationEstimate& a,
                             const fusion::LocationEstimate& b, const geo::Rect& region);

/// Center-to-center Euclidean distance with uncertainty bounds.
DistanceBounds objectDistance(const fusion::LocationEstimate& a,
                              const fusion::LocationEstimate& b);

/// Path-distance between the regions containing the two estimates' centers,
/// using the connectivity graph; nullopt when either center lies in no
/// region or no route exists.
std::optional<double> objectPathDistance(const fusion::LocationEstimate& a,
                                         const fusion::LocationEstimate& b,
                                         const ConnectivityGraph& graph,
                                         bool includeRestricted = true);

}  // namespace mw::reasoning
