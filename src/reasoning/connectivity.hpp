// Region connectivity graph and path distance (§4.6.1).
//
// "Two kinds of distance measures are used: Euclidean, which is the shortest
// straight line distance between the centers of the regions, and
// path-distance, which is the length of a path from the center of one region
// to the center of the other region."
//
// Regions (rooms, corridors) are graph nodes; passages (doors) are edges.
// A path alternates region centers and door midpoints; its length is the sum
// of straight-line hops, computed with Dijkstra.
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geometry/rect.hpp"
#include "reasoning/passages.hpp"

namespace mw::reasoning {

/// Result of a route query: the region sequence and total length.
struct Route {
  std::vector<std::string> regions;  ///< names, start to goal inclusive
  /// Crossing points (door midpoints) between consecutive regions; size is
  /// regions.size() - 1. Walking simulators follow these to avoid cutting
  /// through walls.
  std::vector<geo::Point2> vias;
  double length = 0;                 ///< path-distance
};

class ConnectivityGraph {
 public:
  /// Registers a region by unique name. Throws ContractError on duplicates.
  void addRegion(const std::string& name, const geo::Rect& rect);

  /// Registers a passage and connects the (exactly two expected) regions
  /// whose boundaries contain it. Returns the number of region pairs the
  /// passage connected (0 when it lies on no shared boundary).
  std::size_t addPassage(const Passage& passage);

  /// Explicitly connects two regions (for stitched maps, stairs, elevators).
  /// `via` is the crossing point; `kind` tags restricted passages.
  void connect(const std::string& a, const std::string& b, geo::Point2 via,
               PassageKind kind = PassageKind::Free);

  [[nodiscard]] bool hasRegion(const std::string& name) const;
  [[nodiscard]] std::size_t regionCount() const noexcept { return regions_.size(); }
  [[nodiscard]] std::size_t edgeCount() const noexcept { return edges_ / 2; }
  [[nodiscard]] const geo::Rect& regionRect(const std::string& name) const;
  /// The name of a region containing the point (smallest-area match), if any.
  [[nodiscard]] std::optional<std::string> regionAt(geo::Point2 p) const;

  /// Straight-line distance between region centers.
  [[nodiscard]] double euclideanDistance(const std::string& a, const std::string& b) const;

  /// Shortest path-distance from the center of `a` to the center of `b`.
  /// `includeRestricted` controls whether locked doors may be used.
  /// Returns nullopt when no route exists.
  [[nodiscard]] std::optional<double> pathDistance(const std::string& a, const std::string& b,
                                                   bool includeRestricted = true) const;

  /// The full route (region sequence); nullopt when unreachable.
  [[nodiscard]] std::optional<Route> route(const std::string& a, const std::string& b,
                                           bool includeRestricted = true) const;

  /// A*-accelerated variant of route(): same result, guided by the
  /// (admissible) Euclidean distance to the goal's center, so large graphs
  /// expand fewer nodes. Prefer this for interactive route queries.
  [[nodiscard]] std::optional<Route> routeAStar(const std::string& a, const std::string& b,
                                                bool includeRestricted = true) const;

 private:
  struct Edge {
    std::size_t to;
    geo::Point2 via;  // door midpoint
    PassageKind kind;
  };
  struct Region {
    std::string name;
    geo::Rect rect;
    std::vector<Edge> edges;
  };

  [[nodiscard]] std::size_t indexOf(const std::string& name) const;
  [[nodiscard]] std::optional<Route> search(const std::string& a, const std::string& b,
                                            bool includeRestricted, bool useHeuristic) const;

  std::vector<Region> regions_;
  std::unordered_map<std::string, std::size_t> byName_;
  std::size_t edges_ = 0;
};

}  // namespace mw::reasoning
