#include "reasoning/relations.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mw::reasoning {

double containmentProbability(const fusion::LocationEstimate& object, const geo::Rect& region) {
  if (object.region.empty() || region.empty()) return 0.0;
  double area = object.region.area();
  if (area <= 0) {
    // Degenerate (point) estimate: inside or not.
    return region.contains(object.region.center()) ? object.probability : 0.0;
  }
  auto inter = object.region.intersection(region);
  double frac = inter ? inter->area() / area : 0.0;
  return object.probability * frac;
}

double usageProbability(const fusion::LocationEstimate& person, const geo::Rect& usageRegion) {
  return containmentProbability(person, usageRegion);
}

DistanceBounds distanceToRegion(const fusion::LocationEstimate& object, const geo::Rect& region) {
  DistanceBounds out;
  out.expected = geo::distance(object.region.center(), region.center());
  out.min = object.region.distanceTo(region);
  // Farthest compatible placement: corner of the estimate farthest from the
  // nearest point of the region — bounded by corner-to-corner distance.
  double far = 0;
  const geo::Rect& a = object.region;
  geo::Point2 ca[4] = {a.lo(), {a.hi().x, a.lo().y}, a.hi(), {a.lo().x, a.hi().y}};
  geo::Point2 cb[4] = {region.lo(), {region.hi().x, region.lo().y}, region.hi(),
                       {region.lo().x, region.hi().y}};
  for (const auto& pa : ca) {
    for (const auto& pb : cb) far = std::max(far, geo::distance(pa, pb));
  }
  out.max = far;
  return out;
}

double proximityProbability(const fusion::LocationEstimate& a, const fusion::LocationEstimate& b,
                            double threshold, int gridResolution) {
  mw::util::require(threshold >= 0, "proximityProbability: negative threshold");
  mw::util::require(gridResolution >= 1, "proximityProbability: grid resolution must be >= 1");
  if (a.region.empty() || b.region.empty()) return 0.0;

  // Quick bounds: if even the farthest placements are within the threshold
  // the geometric factor is 1; if the closest placements are beyond it, 0.
  if (a.region.distanceTo(b.region) > threshold) return 0.0;

  const int n = gridResolution;
  auto sample = [&](const geo::Rect& r, int i, int j) -> geo::Point2 {
    double fx = (i + 0.5) / n;
    double fy = (j + 0.5) / n;
    return {r.lo().x + fx * r.width(), r.lo().y + fy * r.height()};
  };
  long hits = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      geo::Point2 pa = sample(a.region, i, j);
      for (int k = 0; k < n; ++k) {
        for (int l = 0; l < n; ++l) {
          if (geo::distance(pa, sample(b.region, k, l)) <= threshold) ++hits;
        }
      }
    }
  }
  double geomFraction = static_cast<double>(hits) / (static_cast<double>(n) * n * n * n);
  return a.probability * b.probability * geomFraction;
}

double coLocationProbability(const fusion::LocationEstimate& a,
                             const fusion::LocationEstimate& b, const geo::Rect& region) {
  return containmentProbability(a, region) * containmentProbability(b, region);
}

DistanceBounds objectDistance(const fusion::LocationEstimate& a,
                              const fusion::LocationEstimate& b) {
  return distanceToRegion(a, b.region);
}

std::optional<double> objectPathDistance(const fusion::LocationEstimate& a,
                                         const fusion::LocationEstimate& b,
                                         const ConnectivityGraph& graph,
                                         bool includeRestricted) {
  auto ra = graph.regionAt(a.region.center());
  auto rb = graph.regionAt(b.region.center());
  if (!ra || !rb) return std::nullopt;
  return graph.pathDistance(*ra, *rb, includeRestricted);
}

}  // namespace mw::reasoning
