#include "reasoning/datalog.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mw::reasoning {

using mw::util::require;

bool Atom::ground() const {
  return std::none_of(args.begin(), args.end(), [](const Term& t) { return t.isVar; });
}

std::ostream& operator<<(std::ostream& os, const Atom& a) {
  os << a.predicate << '(';
  for (std::size_t i = 0; i < a.args.size(); ++i) {
    if (i) os << ',';
    os << (a.args[i].isVar ? "?" : "") << a.args[i].text;
  }
  return os << ')';
}

bool Rule::rangeRestricted() const {
  for (const Term& t : head.args) {
    if (!t.isVar) continue;
    bool found = false;
    for (const Atom& b : body) {
      for (const Term& bt : b.args) {
        if (bt.isVar && bt.text == t.text) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (!found) return false;
  }
  return true;
}

std::string Datalog::key(const std::vector<std::string>& args) {
  std::string out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out.push_back('\x1f');
    out += args[i];
  }
  return out;
}

std::string Datalog::keyOf(const Atom& fact) {
  std::vector<std::string> args;
  args.reserve(fact.args.size());
  for (const Term& t : fact.args) args.push_back(t.text);
  return key(args);
}

std::vector<std::string> Datalog::unkey(const std::string& k) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : k) {
    if (c == '\x1f') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

bool Datalog::FactStore::insert(const std::string& predicate, const std::string& k) {
  return byPredicate[predicate].insert(k).second;
}

bool Datalog::FactStore::contains(const std::string& predicate, const std::string& k) const {
  auto it = byPredicate.find(predicate);
  return it != byPredicate.end() && it->second.contains(k);
}

bool Datalog::FactStore::erase(const std::string& predicate, const std::string& k) {
  auto it = byPredicate.find(predicate);
  if (it == byPredicate.end()) return false;
  return it->second.erase(k) > 0;
}

std::size_t Datalog::FactStore::size() const {
  std::size_t n = 0;
  for (const auto& [_, set] : byPredicate) n += set.size();
  return n;
}

// --- mutation entry points -----------------------------------------------------

bool Datalog::addFact(const Atom& fact) {
  require(fact.ground(), "Datalog::addFact: fact must be ground");
  require(!fact.predicate.empty(), "Datalog::addFact: empty predicate");
  const std::string k = keyOf(fact);
  if (!base_.insert(fact.predicate, k)) return false;
  if (!needsRebuild_) {
    pendingOps_.push_back(PendingOp{false, fact.predicate, k});
    saturated_ = false;
  }
  return true;
}

bool Datalog::addFact(const std::string& predicate, const std::vector<std::string>& args) {
  Atom a{predicate, {}};
  a.args.reserve(args.size());
  for (const auto& s : args) a.args.push_back(Term::atom(s));
  return addFact(a);
}

bool Datalog::retractFact(const Atom& fact) {
  require(fact.ground(), "Datalog::retractFact: fact must be ground");
  const std::string k = keyOf(fact);
  if (!base_.erase(fact.predicate, k)) return false;
  if (!needsRebuild_) {
    pendingOps_.push_back(PendingOp{true, fact.predicate, k});
    saturated_ = false;
  }
  return true;
}

bool Datalog::retractFact(const std::string& predicate, const std::vector<std::string>& args) {
  Atom a{predicate, {}};
  a.args.reserve(args.size());
  for (const auto& s : args) a.args.push_back(Term::atom(s));
  return retractFact(a);
}

RuleId Datalog::addRule(Rule rule) {
  require(rule.rangeRestricted(), "Datalog::addRule: head variable not bound in body");
  require(!rule.body.empty(), "Datalog::addRule: rules need a non-empty body (use addFact)");
  const std::size_t slot = rules_.size();
  for (std::size_t pos = 0; pos < rule.body.size(); ++pos) {
    deltaIndex_[rule.body[pos].predicate].emplace_back(slot, pos);
  }
  rules_.push_back(std::move(rule));
  ++liveRules_;
  if (!needsRebuild_) {
    pendingNewRules_.push_back(slot);
    saturated_ = false;
  }
  return static_cast<RuleId>(slot);
}

bool Datalog::removeRule(RuleId id) {
  const auto slot = static_cast<std::size_t>(id);
  if (slot >= rules_.size() || !rules_[slot]) return false;
  rules_[slot].reset();
  --liveRules_;
  rebuildDeltaIndex();
  // Derivations that flowed through the removed rule are not tracked per
  // rule; re-derive the closure from base at the next saturation.
  needsRebuild_ = true;
  saturated_ = false;
  pendingOps_.clear();
  pendingNewRules_.clear();
  return true;
}

void Datalog::rebuildDeltaIndex() {
  deltaIndex_.clear();
  for (std::size_t slot = 0; slot < rules_.size(); ++slot) {
    if (!rules_[slot]) continue;
    const Rule& rule = *rules_[slot];
    for (std::size_t pos = 0; pos < rule.body.size(); ++pos) {
      deltaIndex_[rule.body[pos].predicate].emplace_back(slot, pos);
    }
  }
}

// --- joins ----------------------------------------------------------------------

std::optional<Bindings> Datalog::match(const Atom& pattern, const std::vector<std::string>& tuple,
                                       const Bindings& bindings) {
  if (pattern.args.size() != tuple.size()) return std::nullopt;
  Bindings out = bindings;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    const Term& t = pattern.args[i];
    if (t.isVar) {
      auto it = out.find(t.text);
      if (it == out.end()) {
        out.emplace(t.text, tuple[i]);
      } else if (it->second != tuple[i]) {
        return std::nullopt;
      }
    } else if (t.text != tuple[i]) {
      return std::nullopt;
    }
  }
  return out;
}

std::pair<std::string, std::string> Datalog::instantiate(const Atom& atom, const Bindings& b) {
  std::vector<std::string> args;
  args.reserve(atom.args.size());
  for (const Term& t : atom.args) {
    args.push_back(t.isVar ? b.at(t.text) : t.text);
  }
  return {atom.predicate, key(args)};
}

void Datalog::joinWithPinned(const Rule& rule, std::size_t pos, const Tuple& tuple,
                             const FactStore& store,
                             std::vector<std::pair<std::string, std::string>>& out) {
  auto seed = match(rule.body[pos], tuple, Bindings{});
  if (!seed) return;
  std::vector<Bindings> frontier{std::move(*seed)};
  for (std::size_t i = 0; i < rule.body.size() && !frontier.empty(); ++i) {
    if (i == pos) continue;
    const Atom& literal = rule.body[i];
    auto predIt = store.byPredicate.find(literal.predicate);
    if (predIt == store.byPredicate.end()) return;
    std::vector<Bindings> next;
    for (const Bindings& b : frontier) {
      for (const std::string& tupleKey : predIt->second) {
        ++stats_.joinProbes;
        if (auto extended = match(literal, unkey(tupleKey), b)) {
          next.push_back(std::move(*extended));
        }
      }
    }
    frontier = std::move(next);
  }
  for (const Bindings& b : frontier) out.push_back(instantiate(rule.head, b));
}

void Datalog::evaluateRule(const Rule& rule, const FactStore& store,
                           std::vector<std::pair<std::string, std::string>>& out) {
  std::vector<Bindings> frontier{Bindings{}};
  for (const Atom& literal : rule.body) {
    auto predIt = store.byPredicate.find(literal.predicate);
    if (predIt == store.byPredicate.end()) return;
    std::vector<Bindings> next;
    for (const Bindings& b : frontier) {
      for (const std::string& tupleKey : predIt->second) {
        ++stats_.joinProbes;
        if (auto extended = match(literal, unkey(tupleKey), b)) {
          next.push_back(std::move(*extended));
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) return;
  }
  for (const Bindings& b : frontier) out.push_back(instantiate(rule.head, b));
}

bool Datalog::derivable(const std::string& predicate, const std::string& keyStr) {
  const Tuple tuple = unkey(keyStr);
  for (const auto& maybeRule : rules_) {
    if (!maybeRule || maybeRule->head.predicate != predicate) continue;
    const Rule& rule = *maybeRule;
    // Unify the head with the target fact to pre-bind body variables.
    auto seed = match(rule.head, tuple, Bindings{});
    if (!seed) continue;
    std::vector<Bindings> frontier{std::move(*seed)};
    bool dead = false;
    for (const Atom& literal : rule.body) {
      auto predIt = all_.byPredicate.find(literal.predicate);
      if (predIt == all_.byPredicate.end()) {
        dead = true;
        break;
      }
      std::vector<Bindings> next;
      for (const Bindings& b : frontier) {
        for (const std::string& tupleKey : predIt->second) {
          ++stats_.joinProbes;
          if (auto extended = match(literal, unkey(tupleKey), b)) {
            next.push_back(std::move(*extended));
          }
        }
      }
      frontier = std::move(next);
      if (frontier.empty()) {
        dead = true;
        break;
      }
    }
    if (!dead) return true;
  }
  return false;
}

// --- incremental maintenance ----------------------------------------------------

void Datalog::propagateInserts(std::deque<std::pair<std::string, std::string>> work) {
  // Semi-naive: each popped fact is new to all_; joining it against every
  // rule body position that mentions its predicate (other literals over the
  // full store) enumerates exactly the derivations that involve it.
  std::vector<std::pair<std::string, std::string>> derived;
  while (!work.empty()) {
    auto [predicate, factKey] = std::move(work.front());
    work.pop_front();
    auto idxIt = deltaIndex_.find(predicate);
    if (idxIt == deltaIndex_.end()) continue;
    const Tuple tuple = unkey(factKey);
    derived.clear();
    for (const auto& [slot, pos] : idxIt->second) {
      if (!rules_[slot]) continue;
      joinWithPinned(*rules_[slot], pos, tuple, all_, derived);
    }
    for (auto& [headPred, headKey] : derived) {
      if (all_.insert(headPred, headKey)) {
        ++stats_.deltaInsertions;
        work.emplace_back(std::move(headPred), std::move(headKey));
      }
    }
  }
}

void Datalog::deleteAndRederive(const std::string& predicate, const std::string& keyStr) {
  if (!all_.contains(predicate, keyStr)) return;

  // Phase 1 — over-delete: everything whose derivation may pass through the
  // retracted fact. Enumeration joins run over the PRE-deletion store (all_
  // is left intact until the worklist drains) — erasing eagerly would hide
  // a consequence both of whose premises are already in the deleted set.
  FactStore deletedSet;
  std::vector<std::pair<std::string, std::string>> deleted;
  std::deque<std::pair<std::string, std::string>> work;
  deletedSet.insert(predicate, keyStr);
  deleted.emplace_back(predicate, keyStr);
  work.emplace_back(predicate, keyStr);
  std::vector<std::pair<std::string, std::string>> consequences;
  while (!work.empty()) {
    auto [pred, factKey] = std::move(work.front());
    work.pop_front();
    auto idxIt = deltaIndex_.find(pred);
    if (idxIt == deltaIndex_.end()) continue;
    const Tuple tuple = unkey(factKey);
    consequences.clear();
    for (const auto& [slot, pos] : idxIt->second) {
      if (!rules_[slot]) continue;
      joinWithPinned(*rules_[slot], pos, tuple, all_, consequences);
    }
    for (auto& [headPred, headKey] : consequences) {
      if (!all_.contains(headPred, headKey)) continue;
      if (deletedSet.insert(headPred, headKey)) {
        ++stats_.deltaDeletions;
        deleted.emplace_back(headPred, headKey);
        work.emplace_back(headPred, headKey);
      }
    }
  }
  for (const auto& [pred, factKey] : deleted) all_.erase(pred, factKey);

  // Phase 2 — re-derive: a deleted fact survives when it is a base fact or
  // still has a derivation from the surviving store. Survivors propagate
  // like fresh inserts (which can resurrect other deleted facts downstream).
  std::deque<std::pair<std::string, std::string>> resurrect;
  for (auto& [pred, factKey] : deleted) {
    if (all_.contains(pred, factKey)) continue;  // already resurrected
    if (base_.contains(pred, factKey) || derivable(pred, factKey)) {
      all_.insert(pred, factKey);
      ++stats_.rederivations;
      resurrect.emplace_back(pred, factKey);
    }
  }
  if (!resurrect.empty()) propagateInserts(std::move(resurrect));
}

void Datalog::rebuildFromBase() {
  ++stats_.fullRecomputes;
  all_ = base_;
  std::deque<std::pair<std::string, std::string>> work;
  for (const auto& [pred, set] : base_.byPredicate) {
    for (const auto& k : set) work.emplace_back(pred, k);
  }
  propagateInserts(std::move(work));
}

void Datalog::saturate() {
  if (saturated_ && !needsRebuild_) return;
  if (needsRebuild_) {
    pendingOps_.clear();
    pendingNewRules_.clear();
    rebuildFromBase();
    needsRebuild_ = false;
    saturated_ = true;
    return;
  }
  // Replay the queue in call order: an add/retract/add sequence on one fact
  // must land exactly where a sequential application would.
  while (!pendingOps_.empty()) {
    PendingOp op = std::move(pendingOps_.front());
    pendingOps_.pop_front();
    if (op.retract) {
      deleteAndRederive(op.predicate, op.key);
    } else if (!all_.contains(op.predicate, op.key)) {
      all_.insert(op.predicate, op.key);
      std::deque<std::pair<std::string, std::string>> work;
      work.emplace_back(std::move(op.predicate), std::move(op.key));
      propagateInserts(std::move(work));
    }
  }
  // Newly installed rules: evaluate once over the saturated store and
  // propagate their consequences.
  for (std::size_t slot : pendingNewRules_) {
    if (!rules_[slot]) continue;
    std::vector<std::pair<std::string, std::string>> derived;
    evaluateRule(*rules_[slot], all_, derived);
    std::deque<std::pair<std::string, std::string>> work;
    for (auto& [pred, k] : derived) {
      if (all_.insert(pred, k)) {
        ++stats_.deltaInsertions;
        work.emplace_back(std::move(pred), std::move(k));
      }
    }
    if (!work.empty()) propagateInserts(std::move(work));
  }
  pendingNewRules_.clear();
  saturated_ = true;
}

// --- queries --------------------------------------------------------------------

std::vector<Bindings> Datalog::query(const Atom& pattern) {
  saturate();
  std::vector<Bindings> out;
  auto predIt = all_.byPredicate.find(pattern.predicate);
  if (predIt == all_.byPredicate.end()) return out;
  for (const std::string& tupleKey : predIt->second) {
    if (auto b = match(pattern, unkey(tupleKey), Bindings{})) out.push_back(std::move(*b));
  }
  return out;
}

bool Datalog::holds(const Atom& pattern) { return !query(pattern).empty(); }

std::size_t Datalog::factCount() {
  saturate();
  return all_.size();
}

std::size_t Datalog::baseFactCount() const { return base_.size(); }

}  // namespace mw::reasoning
