#include "reasoning/datalog.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace mw::reasoning {

using mw::util::require;

bool Atom::ground() const {
  return std::none_of(args.begin(), args.end(), [](const Term& t) { return t.isVar; });
}

std::ostream& operator<<(std::ostream& os, const Atom& a) {
  os << a.predicate << '(';
  for (std::size_t i = 0; i < a.args.size(); ++i) {
    if (i) os << ',';
    os << (a.args[i].isVar ? "?" : "") << a.args[i].text;
  }
  return os << ')';
}

bool Rule::rangeRestricted() const {
  for (const Term& t : head.args) {
    if (!t.isVar) continue;
    bool found = false;
    for (const Atom& b : body) {
      for (const Term& bt : b.args) {
        if (bt.isVar && bt.text == t.text) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (!found) return false;
  }
  return true;
}

std::string Datalog::key(const std::vector<std::string>& args) {
  std::string out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out.push_back('\x1f');
    out += args[i];
  }
  return out;
}

std::vector<std::string> Datalog::unkey(const std::string& k) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : k) {
    if (c == '\x1f') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

bool Datalog::FactStore::insert(const Atom& fact) {
  std::vector<std::string> args;
  args.reserve(fact.args.size());
  for (const Term& t : fact.args) args.push_back(t.text);
  return byPredicate[fact.predicate].insert(key(args)).second;
}

std::size_t Datalog::FactStore::size() const {
  std::size_t n = 0;
  for (const auto& [_, set] : byPredicate) n += set.size();
  return n;
}

void Datalog::addFact(const Atom& fact) {
  require(fact.ground(), "Datalog::addFact: fact must be ground");
  require(!fact.predicate.empty(), "Datalog::addFact: empty predicate");
  if (facts_.insert(fact)) saturated_ = false;
}

void Datalog::addFact(const std::string& predicate, const std::vector<std::string>& args) {
  Atom a{predicate, {}};
  a.args.reserve(args.size());
  for (const auto& s : args) a.args.push_back(Term::atom(s));
  addFact(a);
}

void Datalog::addRule(Rule rule) {
  require(rule.rangeRestricted(), "Datalog::addRule: head variable not bound in body");
  require(!rule.body.empty(), "Datalog::addRule: rules need a non-empty body (use addFact)");
  rules_.push_back(std::move(rule));
  saturated_ = false;
}

std::optional<Bindings> Datalog::match(const Atom& pattern, const std::vector<std::string>& tuple,
                                       const Bindings& bindings) {
  if (pattern.args.size() != tuple.size()) return std::nullopt;
  Bindings out = bindings;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    const Term& t = pattern.args[i];
    if (t.isVar) {
      auto it = out.find(t.text);
      if (it == out.end()) {
        out.emplace(t.text, tuple[i]);
      } else if (it->second != tuple[i]) {
        return std::nullopt;
      }
    } else if (t.text != tuple[i]) {
      return std::nullopt;
    }
  }
  return out;
}

void Datalog::applyRules() {
  // Naive-to-fixpoint evaluation: iterate all rules until no new facts.
  // Rule bodies are joined left to right by backtracking over bindings.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : rules_) {
      std::vector<Bindings> frontier{Bindings{}};
      for (const Atom& literal : rule.body) {
        std::vector<Bindings> next;
        auto predIt = facts_.byPredicate.find(literal.predicate);
        if (predIt == facts_.byPredicate.end()) {
          next.clear();
          frontier.clear();
          break;
        }
        for (const Bindings& b : frontier) {
          for (const std::string& tupleKey : predIt->second) {
            if (auto extended = match(literal, unkey(tupleKey), b)) {
              next.push_back(std::move(*extended));
            }
          }
        }
        frontier = std::move(next);
        if (frontier.empty()) break;
      }
      for (const Bindings& b : frontier) {
        Atom derived{rule.head.predicate, {}};
        derived.args.reserve(rule.head.args.size());
        for (const Term& t : rule.head.args) {
          derived.args.push_back(Term::atom(t.isVar ? b.at(t.text) : t.text));
        }
        if (facts_.insert(derived)) changed = true;
      }
    }
  }
}

void Datalog::saturate() {
  if (saturated_) return;
  applyRules();
  saturated_ = true;
}

std::vector<Bindings> Datalog::query(const Atom& pattern) {
  saturate();
  std::vector<Bindings> out;
  auto predIt = facts_.byPredicate.find(pattern.predicate);
  if (predIt == facts_.byPredicate.end()) return out;
  for (const std::string& tupleKey : predIt->second) {
    if (auto b = match(pattern, unkey(tupleKey), Bindings{})) out.push_back(std::move(*b));
  }
  return out;
}

bool Datalog::holds(const Atom& pattern) { return !query(pattern).empty(); }

std::size_t Datalog::factCount() {
  saturate();
  return facts_.size();
}

}  // namespace mw::reasoning
