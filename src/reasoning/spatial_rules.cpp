#include "reasoning/spatial_rules.hpp"

#include <algorithm>
#include <cctype>

namespace mw::reasoning {

namespace {
std::string lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}
}  // namespace

void assertSpatialFacts(Datalog& db, const std::vector<NamedRegion>& regions,
                        const std::vector<Passage>& passages) {
  for (std::size_t i = 0; i < regions.size(); ++i) {
    for (std::size_t j = 0; j < regions.size(); ++j) {
      if (i == j) continue;
      Rcc8 rel = rcc8(regions[i].rect, regions[j].rect);
      db.addFact(lower(toString(rel)), {regions[i].name, regions[j].name});
      if (rel == Rcc8::EC) {
        EcKind kind = classifyEc(regions[i].rect, regions[j].rect, passages);
        db.addFact(lower(toString(kind)), {regions[i].name, regions[j].name});
      }
    }
  }
}

void installReachabilityRules(Datalog& db) {
  auto v = [](const char* name) { return Term::var(name); };

  // connected(X,Y) :- ecfp(X,Y).    (ecfp is asserted symmetrically)
  db.addRule(Rule{{"connected", {v("X"), v("Y")}}, {{"ecfp", {v("X"), v("Y")}}}});
  // reachable(X,Y) :- connected(X,Y).
  db.addRule(Rule{{"reachable", {v("X"), v("Y")}}, {{"connected", {v("X"), v("Y")}}}});
  // reachable(X,Y) :- connected(X,Z), reachable(Z,Y).
  db.addRule(Rule{{"reachable", {v("X"), v("Y")}},
                  {{"connected", {v("X"), v("Z")}}, {"reachable", {v("Z"), v("Y")}}}});

  // openable(X,Y) :- ecfp(X,Y).  openable(X,Y) :- ecrp(X,Y).
  db.addRule(Rule{{"openable", {v("X"), v("Y")}}, {{"ecfp", {v("X"), v("Y")}}}});
  db.addRule(Rule{{"openable", {v("X"), v("Y")}}, {{"ecrp", {v("X"), v("Y")}}}});
  // accessible(X,Y): reachable when restricted passages may be used.
  db.addRule(Rule{{"accessible", {v("X"), v("Y")}}, {{"openable", {v("X"), v("Y")}}}});
  db.addRule(Rule{{"accessible", {v("X"), v("Y")}},
                  {{"openable", {v("X"), v("Z")}}, {"accessible", {v("Z"), v("Y")}}}});
}

}  // namespace mw::reasoning
