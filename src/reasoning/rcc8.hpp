// Region Connection Calculus (RCC-8) relations between regions (§4.6.1).
//
// "RCC-8 defines various topological relationships: Dis-Connection (DC),
// External Connection (EC), Partial Overlap (PO), Tangential Proper Part
// (TPP), Non-Tangential Proper Part (NTPP) and Equality (EQ). Any two
// regions are related by exactly one of these relations."
//
// We implement the full 8-relation set (including the TPPi/NTPPi converses)
// over minimum bounding rectangles — "Evaluating the relation between 2
// regions is just O(1) given the vertices of the two regions."
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/rect.hpp"

namespace mw::reasoning {

enum class Rcc8 {
  DC,     ///< disconnected: no shared points
  EC,     ///< externally connected: boundaries touch, interiors disjoint
  PO,     ///< partial overlap
  TPP,    ///< tangential proper part: a inside b, touching b's boundary
  NTPP,   ///< non-tangential proper part: a strictly inside b
  TPPi,   ///< converse of TPP (b is a tangential proper part of a)
  NTPPi,  ///< converse of NTPP
  EQ,     ///< equal regions
};

std::string_view toString(Rcc8 r);

/// The unique RCC-8 relation between two non-empty rectangles. O(1).
/// Coordinates within `eps` are considered touching.
Rcc8 rcc8(const geo::Rect& a, const geo::Rect& b, double eps = 1e-9);

/// RCC-8 over exact polygon outlines (§5.1: "once a certain condition is
/// satisfied by a MBR, more accurate processing of the operation is
/// performed taking the actual region boundaries"). The MBR relation is
/// used as a fast filter; boundary-touch detection uses edge proximity
/// within `eps`. Polygons must be simple; non-convex shapes are supported.
Rcc8 rcc8(const geo::Polygon& a, const geo::Polygon& b, double eps = 1e-9);

/// The converse relation: rcc8(b, a) == converse(rcc8(a, b)).
Rcc8 converse(Rcc8 r);

/// True for the relations where the regions share at least one point.
bool connected(Rcc8 r);

/// True when a is a (proper or improper) part of b: TPP, NTPP or EQ.
bool partOf(Rcc8 r);

// --- composition (RCC-8 as a relation algebra, Cohn et al. [2]) -----------------

/// A set of RCC-8 relations as a bitmask (bit i = relation with enum value i).
using Rcc8Set = std::uint8_t;

constexpr Rcc8Set rcc8Bit(Rcc8 r) { return static_cast<Rcc8Set>(1u << static_cast<int>(r)); }
constexpr bool rcc8SetContains(Rcc8Set set, Rcc8 r) { return (set & rcc8Bit(r)) != 0; }
constexpr Rcc8Set kRcc8All = 0xFF;

/// The standard RCC-8 composition table: given R1(a,b) and R2(b,c), the set
/// of relations possible between a and c. Sound for arbitrary regions (and
/// therefore for our rectangles); enables constraint propagation ("if the
/// badge is in the room and the room is inside the wing, the badge cannot
/// be disconnected from the wing").
Rcc8Set compose(Rcc8 r1, Rcc8 r2);

/// Relations in a set, in enum order (for display and tests).
std::vector<Rcc8> rcc8SetElements(Rcc8Set set);

}  // namespace mw::reasoning
