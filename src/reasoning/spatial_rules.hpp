// Bridges geometric facts into the Datalog engine and installs the standard
// rule set for route/reachability reasoning (§4.6.1: "The various relations
// between regions are useful for a number of applications such as
// route-finding applications").
#pragma once

#include <string>
#include <vector>

#include "geometry/rect.hpp"
#include "reasoning/datalog.hpp"
#include "reasoning/passages.hpp"

namespace mw::reasoning {

struct NamedRegion {
  std::string name;
  geo::Rect rect;
};

/// Asserts the pairwise RCC-8 relation of every region pair (predicate named
/// after the relation, lower-cased: dc/ec/po/tpp/ntpp/tppi/ntppi/eq) and the
/// EC refinements ecfp/ecrp/ecnp where applicable.
void assertSpatialFacts(Datalog& db, const std::vector<NamedRegion>& regions,
                        const std::vector<Passage>& passages);

/// Installs the derived-relation rules:
///   connected(X,Y)  :- ecfp(X,Y).              (symmetric closure asserted)
///   reachable(X,Y)  :- connected(X,Y).
///   reachable(X,Y)  :- connected(X,Z), reachable(Z,Y).
///   accessible(X,Y) :- ecfp or ecrp edge, transitively (locked doors OK).
void installReachabilityRules(Datalog& db);

}  // namespace mw::reasoning
