#include "reasoning/passages.hpp"

namespace mw::reasoning {

std::string_view toString(EcKind k) {
  switch (k) {
    case EcKind::NotEc: return "notEC";
    case EcKind::ECFP: return "ECFP";
    case EcKind::ECRP: return "ECRP";
    case EcKind::ECNP: return "ECNP";
  }
  return "?";
}

bool passageConnects(const Passage& p, const geo::Rect& a, const geo::Rect& b, double eps) {
  return geo::segmentOnRectBoundary(p.segment, a, eps) &&
         geo::segmentOnRectBoundary(p.segment, b, eps);
}

EcKind classifyEc(const geo::Rect& a, const geo::Rect& b, const std::vector<Passage>& passages,
                  double eps) {
  if (rcc8(a, b, eps) != Rcc8::EC) return EcKind::NotEc;
  bool restricted = false;
  for (const Passage& p : passages) {
    if (!passageConnects(p, a, b, eps)) continue;
    if (p.kind == PassageKind::Free) return EcKind::ECFP;
    restricted = true;
  }
  return restricted ? EcKind::ECRP : EcKind::ECNP;
}

}  // namespace mw::reasoning
