// A small forward-chaining Datalog engine — the XSB Prolog substitute.
//
// §4.6.1: "The Location Service reasons further about these relations using
// XSB Prolog." The rules MiddleWhere needs are positive Horn clauses over
// ground spatial facts (ecfp/ecrp/rcc8 relations), for which bottom-up
// semi-naive evaluation to a fixed point is sound and complete.
//
// Terms are either constants or variables; by convention a term is a
// variable when constructed with Term::var (no uppercase heuristics).
#pragma once

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mw::reasoning {

struct Term {
  bool isVar = false;
  std::string text;

  static Term var(std::string name) { return Term{true, std::move(name)}; }
  static Term atom(std::string value) { return Term{false, std::move(value)}; }

  friend bool operator==(const Term&, const Term&) = default;
};

/// A predicate applied to terms, e.g. ecfp(3105, corridor).
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  [[nodiscard]] bool ground() const;
  friend bool operator==(const Atom&, const Atom&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Atom& a);
};

/// head :- body[0], body[1], ... (all positive literals).
struct Rule {
  Atom head;
  std::vector<Atom> body;

  /// Range restriction: every variable in the head must occur in the body
  /// (otherwise derived facts would not be ground). Checked on addRule.
  [[nodiscard]] bool rangeRestricted() const;
};

using Bindings = std::unordered_map<std::string, std::string>;

class Datalog {
 public:
  /// Adds a ground fact. Throws ContractError when the atom is not ground.
  void addFact(const Atom& fact);
  /// Convenience: predicate with constant arguments.
  void addFact(const std::string& predicate, const std::vector<std::string>& args);

  /// Adds a rule (invalidates the current fixpoint). Throws ContractError on
  /// range-restriction violations.
  void addRule(Rule rule);

  /// Runs semi-naive evaluation to the fixed point. Called lazily by query();
  /// exposed for benchmarks.
  void saturate();

  /// All ground facts matching the pattern (variables in the pattern bind
  /// freely). Each result is one binding of the pattern's variables; for an
  /// all-constant pattern, an empty Bindings signals a hit.
  [[nodiscard]] std::vector<Bindings> query(const Atom& pattern);

  /// True if at least one fact matches the (possibly non-ground) pattern.
  [[nodiscard]] bool holds(const Atom& pattern);

  [[nodiscard]] std::size_t factCount();

 private:
  struct FactStore {
    // predicate -> set of argument tuples (joined with '\x1f').
    std::unordered_map<std::string, std::unordered_set<std::string>> byPredicate;
    bool insert(const Atom& fact);
    [[nodiscard]] std::size_t size() const;
  };

  static std::string key(const std::vector<std::string>& args);
  static std::vector<std::string> unkey(const std::string& k);

  /// Tries to unify a pattern atom against a ground tuple under existing
  /// bindings; returns the extended bindings on success.
  static std::optional<Bindings> match(const Atom& pattern, const std::vector<std::string>& tuple,
                                       const Bindings& bindings);

  void applyRules();

  FactStore facts_;
  std::vector<Rule> rules_;
  bool saturated_ = true;
};

}  // namespace mw::reasoning
