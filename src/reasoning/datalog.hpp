// A small incremental forward-chaining Datalog engine — the XSB Prolog
// substitute, grown into the continuous-query evaluator.
//
// §4.6.1: "The Location Service reasons further about these relations using
// XSB Prolog." The rules MiddleWhere needs are positive Horn clauses over
// ground spatial facts (ecfp/ecrp/rcc8 relations), for which bottom-up
// semi-naive evaluation to a fixed point is sound and complete.
//
// Maintenance is incremental in both directions:
//   * insert: semi-naive delta propagation — a new fact joins only the rule
//     bodies that mention its predicate, so saturation after an insert costs
//     O(affected derivations), never a recompute of the closure;
//   * retract: DRed (delete-and-re-derive) — over-delete everything whose
//     derivation could depend on the retracted fact, then re-derive the
//     members of the deleted set that still have an independent derivation.
//     DRed is chosen over support counting because the reachability rules
//     are recursive: cyclic derivations keep mutual support counts positive
//     forever, while DRed's re-derivation pass grounds out in base facts.
// Rule installation is also incremental (the new rule is evaluated once and
// its consequences propagate); rule REMOVAL falls back to re-deriving the
// closure from base facts — it is a control-plane operation, not something
// the per-update hot path does.
//
// Terms are either constants or variables; by convention a term is a
// variable when constructed with Term::var (no uppercase heuristics).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mw::reasoning {

struct Term {
  bool isVar = false;
  std::string text;

  static Term var(std::string name) { return Term{true, std::move(name)}; }
  static Term atom(std::string value) { return Term{false, std::move(value)}; }

  friend bool operator==(const Term&, const Term&) = default;
};

/// A predicate applied to terms, e.g. ecfp(3105, corridor).
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  [[nodiscard]] bool ground() const;
  friend bool operator==(const Atom&, const Atom&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Atom& a);
};

/// head :- body[0], body[1], ... (all positive literals).
struct Rule {
  Atom head;
  std::vector<Atom> body;

  /// Range restriction: every variable in the head must occur in the body
  /// (otherwise derived facts would not be ground). Checked on addRule.
  [[nodiscard]] bool rangeRestricted() const;
};

using Bindings = std::unordered_map<std::string, std::string>;

/// Stable handle for an installed rule (removeRule).
using RuleId = std::uint64_t;

class Datalog {
 public:
  /// Adds a ground fact. Throws ContractError when the atom is not ground.
  /// After the first saturation, later inserts are propagated semi-naively
  /// from the new fact alone. Returns false when the fact was already
  /// present (base or derived).
  bool addFact(const Atom& fact);
  /// Convenience: predicate with constant arguments.
  bool addFact(const std::string& predicate, const std::vector<std::string>& args);

  /// Retracts a base fact (one added with addFact). Derived facts that lose
  /// their last derivation disappear with it (DRed). Returns false when the
  /// atom was never asserted as a base fact — retracting a fact that is
  /// only derived is not allowed (it would reappear at the next
  /// saturation), and retracting a base fact that is ALSO derivable leaves
  /// it in the store as a derived fact.
  bool retractFact(const Atom& fact);
  bool retractFact(const std::string& predicate, const std::vector<std::string>& args);

  /// Adds a rule. Throws ContractError on range-restriction violations.
  /// Installing a rule mid-stream is incremental: its new derivations (and
  /// theirs) propagate at the next saturation without touching the rest of
  /// the closure.
  RuleId addRule(Rule rule);

  /// Uninstalls a rule. The derived closure is re-derived from base facts at
  /// the next saturation (O(closure) — acceptable for a control-plane
  /// operation). Returns false for unknown ids.
  bool removeRule(RuleId id);

  /// Brings the fixed point up to date with every pending insert/retract.
  /// Called lazily by query(); exposed for benchmarks.
  void saturate();

  /// All ground facts matching the pattern (variables in the pattern bind
  /// freely). Each result is one binding of the pattern's variables; for an
  /// all-constant pattern, an empty Bindings signals a hit.
  [[nodiscard]] std::vector<Bindings> query(const Atom& pattern);

  /// True if at least one fact matches the (possibly non-ground) pattern.
  [[nodiscard]] bool holds(const Atom& pattern);

  /// Base + derived facts in the saturated store.
  [[nodiscard]] std::size_t factCount();
  /// Facts explicitly asserted (and not retracted), regardless of
  /// saturation state.
  [[nodiscard]] std::size_t baseFactCount() const;
  [[nodiscard]] std::size_t ruleCount() const noexcept { return liveRules_; }

  /// Maintenance-cost observability, for the incremental-vs-scratch tests
  /// and the standing-rule benches.
  struct Stats {
    std::uint64_t deltaInsertions = 0;   ///< facts added by semi-naive propagation
    std::uint64_t deltaDeletions = 0;    ///< facts over-deleted by DRed
    std::uint64_t rederivations = 0;     ///< over-deleted facts DRed re-derived
    std::uint64_t fullRecomputes = 0;    ///< closures rebuilt from base (rule removal)
    std::uint64_t joinProbes = 0;        ///< body-literal probes during any join
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  using Tuple = std::vector<std::string>;

  struct FactStore {
    // predicate -> set of argument tuples (joined with '\x1f').
    std::unordered_map<std::string, std::unordered_set<std::string>> byPredicate;
    bool insert(const std::string& predicate, const std::string& key);
    bool contains(const std::string& predicate, const std::string& key) const;
    bool erase(const std::string& predicate, const std::string& key);
    [[nodiscard]] std::size_t size() const;
  };

  static std::string key(const std::vector<std::string>& args);
  static std::string keyOf(const Atom& fact);
  static std::vector<std::string> unkey(const std::string& k);

  /// Tries to unify a pattern atom against a ground tuple under existing
  /// bindings; returns the extended bindings on success.
  static std::optional<Bindings> match(const Atom& pattern, const std::vector<std::string>& tuple,
                                       const Bindings& bindings);

  /// Instantiates `atom` under full bindings (every variable bound).
  static std::pair<std::string, std::string> instantiate(const Atom& atom, const Bindings& b);

  /// All (headPredicate, headKey) rule-head instantiations of `rule` whose
  /// body literal `pos` is bound to exactly `tuple` and whose remaining
  /// literals match facts in `store`.
  void joinWithPinned(const Rule& rule, std::size_t pos, const Tuple& tuple,
                      const FactStore& store,
                      std::vector<std::pair<std::string, std::string>>& out);

  /// Evaluates `rule` over `store` (no pinned literal), appending head
  /// instantiations.
  void evaluateRule(const Rule& rule, const FactStore& store,
                    std::vector<std::pair<std::string, std::string>>& out);

  /// True when (predicate, key) has at least one derivation from the
  /// current `all_` store under the live rules.
  bool derivable(const std::string& predicate, const std::string& keyStr);

  /// Semi-naive insertion closure over the worklist of new facts.
  void propagateInserts(std::deque<std::pair<std::string, std::string>> work);

  /// DRed: over-delete starting at `predicate`/`key`, then re-derive the
  /// over-deleted facts that still have an independent derivation.
  void deleteAndRederive(const std::string& predicate, const std::string& keyStr);

  void rebuildFromBase();
  void rebuildDeltaIndex();

  /// Rules in stable slots; removed entries become nullopt so RuleIds and
  /// the delta index stay valid.
  std::vector<std::optional<Rule>> rules_;
  std::size_t liveRules_ = 0;
  /// predicate -> [(rule slot, body position)] — which rule bodies a delta
  /// fact of this predicate can feed.
  std::unordered_map<std::string, std::vector<std::pair<std::size_t, std::size_t>>> deltaIndex_;

  FactStore base_;  ///< facts explicitly asserted
  FactStore all_;   ///< saturated closure: base + derived (valid when saturated_)

  /// Pending work consumed by the next saturate(), in call order (an
  /// add/retract/add sequence on one fact must replay faithfully). Base-set
  /// mutations apply eagerly in addFact/retractFact; the queue carries the
  /// closure maintenance. A pending full rebuild (rule removal, first
  /// saturation) trumps the queue.
  struct PendingOp {
    bool retract = false;
    std::string predicate;
    std::string key;
  };
  std::deque<PendingOp> pendingOps_;
  /// Rule slots installed since the last saturation (their derivations are
  /// evaluated once and propagated).
  std::vector<std::size_t> pendingNewRules_;
  bool needsRebuild_ = true;  ///< first saturation builds the closure
  bool saturated_ = false;

  Stats stats_;
};

}  // namespace mw::reasoning
