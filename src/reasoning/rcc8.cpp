#include "reasoning/rcc8.hpp"

#include <cmath>
#include <optional>

#include "util/error.hpp"

namespace mw::reasoning {

std::string_view toString(Rcc8 r) {
  switch (r) {
    case Rcc8::DC: return "DC";
    case Rcc8::EC: return "EC";
    case Rcc8::PO: return "PO";
    case Rcc8::TPP: return "TPP";
    case Rcc8::NTPP: return "NTPP";
    case Rcc8::TPPi: return "TPPi";
    case Rcc8::NTPPi: return "NTPPi";
    case Rcc8::EQ: return "EQ";
  }
  return "?";
}

namespace {

/// Containment with eps slack: every edge of `inner` within or on `outer`.
bool containsEps(const geo::Rect& outer, const geo::Rect& inner, double eps) {
  return inner.lo().x >= outer.lo().x - eps && inner.hi().x <= outer.hi().x + eps &&
         inner.lo().y >= outer.lo().y - eps && inner.hi().y <= outer.hi().y + eps;
}

/// Strict containment with eps: inner strictly inside, no boundary contact.
bool containsStrictEps(const geo::Rect& outer, const geo::Rect& inner, double eps) {
  return inner.lo().x > outer.lo().x + eps && inner.hi().x < outer.hi().x - eps &&
         inner.lo().y > outer.lo().y + eps && inner.hi().y < outer.hi().y - eps;
}

bool equalEps(const geo::Rect& a, const geo::Rect& b, double eps) {
  return std::abs(a.lo().x - b.lo().x) <= eps && std::abs(a.lo().y - b.lo().y) <= eps &&
         std::abs(a.hi().x - b.hi().x) <= eps && std::abs(a.hi().y - b.hi().y) <= eps;
}

/// Closed-set intersection with eps slack.
bool intersectsEps(const geo::Rect& a, const geo::Rect& b, double eps) {
  return a.lo().x <= b.hi().x + eps && b.lo().x <= a.hi().x + eps &&
         a.lo().y <= b.hi().y + eps && b.lo().y <= a.hi().y + eps;
}

/// Open-set (interior) intersection with eps slack.
bool interiorsOverlapEps(const geo::Rect& a, const geo::Rect& b, double eps) {
  return a.lo().x < b.hi().x - eps && b.lo().x < a.hi().x - eps &&
         a.lo().y < b.hi().y - eps && b.lo().y < a.hi().y - eps;
}

}  // namespace

Rcc8 rcc8(const geo::Rect& a, const geo::Rect& b, double eps) {
  mw::util::require(!a.empty() && !b.empty(), "rcc8: regions must be non-empty");
  if (equalEps(a, b, eps)) return Rcc8::EQ;
  if (!intersectsEps(a, b, eps)) return Rcc8::DC;
  const bool interiors = interiorsOverlapEps(a, b, eps);
  if (!interiors) return Rcc8::EC;
  if (containsEps(b, a, eps)) {
    return containsStrictEps(b, a, eps) ? Rcc8::NTPP : Rcc8::TPP;
  }
  if (containsEps(a, b, eps)) {
    return containsStrictEps(a, b, eps) ? Rcc8::NTPPi : Rcc8::TPPi;
  }
  return Rcc8::PO;
}

namespace {

/// Any vertex of `inner` lies (within eps) on an edge of `outer`.
bool touchesBoundary(const geo::Polygon& inner, const geo::Polygon& outer, double eps) {
  for (const auto& v : inner.vertices()) {
    for (std::size_t e = 0; e < outer.size(); ++e) {
      if (geo::distanceToSegment(v, outer.edge(e)) <= eps) return true;
    }
  }
  return false;
}

/// Edges of a and b cross or touch.
bool edgesMeet(const geo::Polygon& a, const geo::Polygon& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (geo::segmentsIntersect(a.edge(i), b.edge(j))) return true;
    }
  }
  return false;
}

/// A point strictly interior to `poly` (inside, off the boundary): the
/// centroid when it is interior, otherwise a midpoint probe near a vertex.
std::optional<geo::Point2> interiorPoint(const geo::Polygon& poly, double eps) {
  auto offBoundary = [&](geo::Point2 p) {
    for (std::size_t e = 0; e < poly.size(); ++e) {
      if (geo::distanceToSegment(p, poly.edge(e)) <= eps) return false;
    }
    return poly.contains(p);
  };
  geo::Point2 c = poly.centroid();
  if (offBoundary(c)) return c;
  // Probe points nudged inwards from edge midpoints.
  for (std::size_t e = 0; e < poly.size(); ++e) {
    geo::Point2 m = poly.edge(e).midpoint();
    geo::Point2 towards = m + (c - m) * 0.01;
    if (offBoundary(towards)) return towards;
  }
  return std::nullopt;
}

/// Interiors of two simple polygons overlap: either one holds an interior
/// point of the other, or their edges properly cross.
bool interiorsOverlap(const geo::Polygon& a, const geo::Polygon& b, double eps) {
  if (auto pa = interiorPoint(a, eps); pa && b.contains(*pa)) {
    // pa might sit exactly on b's boundary; require clear interior.
    bool onB = false;
    for (std::size_t e = 0; e < b.size(); ++e) {
      if (geo::distanceToSegment(*pa, b.edge(e)) <= eps) onB = true;
    }
    if (!onB) return true;
  }
  if (auto pb = interiorPoint(b, eps); pb && a.contains(*pb)) {
    bool onA = false;
    for (std::size_t e = 0; e < a.size(); ++e) {
      if (geo::distanceToSegment(*pb, a.edge(e)) <= eps) onA = true;
    }
    if (!onA) return true;
  }
  // Proper edge crossings imply interior overlap; grazing touches do not.
  // Detect by testing midpoints of sub-segments: sample each edge of a and
  // check for points inside b away from its boundary.
  for (std::size_t i = 0; i < a.size(); ++i) {
    geo::Segment s = a.edge(i);
    for (double t : {0.25, 0.5, 0.75}) {
      geo::Point2 p = s.a + (s.b - s.a) * t;
      if (!b.contains(p)) continue;
      bool onB = false;
      for (std::size_t e = 0; e < b.size(); ++e) {
        if (geo::distanceToSegment(p, b.edge(e)) <= eps) onB = true;
      }
      bool onA = geo::distanceToSegment(p, s) <= eps;  // p is ON a's edge
      if (!onB && onA) return true;  // a's boundary runs through b's interior
    }
  }
  return false;
}

bool sameOutline(const geo::Polygon& a, const geo::Polygon& b, double eps) {
  if (std::abs(a.area() - b.area()) > eps) return false;
  return a.contains(b) && b.contains(a);
}

}  // namespace

Rcc8 rcc8(const geo::Polygon& a, const geo::Polygon& b, double eps) {
  mw::util::require(a.valid() && b.valid(), "rcc8(polygon): regions need >= 3 vertices");
  // MBR fast filter: disjoint boxes settle it immediately.
  if (rcc8(a.mbr(), b.mbr(), eps) == Rcc8::DC) return Rcc8::DC;
  if (sameOutline(a, b, eps)) return Rcc8::EQ;

  const bool aInB = b.contains(a);
  const bool bInA = a.contains(b);
  if (aInB && !bInA) return touchesBoundary(a, b, eps) ? Rcc8::TPP : Rcc8::NTPP;
  if (bInA && !aInB) return touchesBoundary(b, a, eps) ? Rcc8::TPPi : Rcc8::NTPPi;

  const bool meet = edgesMeet(a, b);
  if (!meet && !a.contains(b.vertices()[0]) && !b.contains(a.vertices()[0])) return Rcc8::DC;
  return interiorsOverlap(a, b, eps) ? Rcc8::PO : Rcc8::EC;
}

Rcc8 converse(Rcc8 r) {
  switch (r) {
    case Rcc8::TPP: return Rcc8::TPPi;
    case Rcc8::NTPP: return Rcc8::NTPPi;
    case Rcc8::TPPi: return Rcc8::TPP;
    case Rcc8::NTPPi: return Rcc8::NTPP;
    default: return r;  // DC, EC, PO, EQ are symmetric
  }
}

namespace {

constexpr Rcc8Set set(std::initializer_list<Rcc8> relations) {
  Rcc8Set out = 0;
  for (Rcc8 r : relations) out |= rcc8Bit(r);
  return out;
}

// The standard RCC-8 composition table (Cohn, Bennett, Gooday & Gotts 1997),
// rows = R1(a,b), columns = R2(b,c) in enum order
// DC, EC, PO, TPP, NTPP, TPPi, NTPPi, EQ.
constexpr Rcc8 DC = Rcc8::DC, EC = Rcc8::EC, PO = Rcc8::PO, TPP = Rcc8::TPP,
               NTPP = Rcc8::NTPP, TPPi = Rcc8::TPPi, NTPPi = Rcc8::NTPPi, EQ = Rcc8::EQ;

const Rcc8Set kComposition[8][8] = {
    // R1 = DC
    {kRcc8All,                                  // DC ∘ DC
     set({DC, EC, PO, TPP, NTPP}),              // DC ∘ EC
     set({DC, EC, PO, TPP, NTPP}),              // DC ∘ PO
     set({DC, EC, PO, TPP, NTPP}),              // DC ∘ TPP
     set({DC, EC, PO, TPP, NTPP}),              // DC ∘ NTPP
     set({DC}),                                 // DC ∘ TPPi
     set({DC}),                                 // DC ∘ NTPPi
     set({DC})},                                // DC ∘ EQ
    // R1 = EC
    {set({DC, EC, PO, TPPi, NTPPi}),            // EC ∘ DC
     set({DC, EC, PO, TPP, TPPi, EQ}),          // EC ∘ EC
     set({DC, EC, PO, TPP, NTPP}),              // EC ∘ PO
     set({EC, PO, TPP, NTPP}),                  // EC ∘ TPP
     set({PO, TPP, NTPP}),                      // EC ∘ NTPP
     set({DC, EC}),                             // EC ∘ TPPi
     set({DC}),                                 // EC ∘ NTPPi
     set({EC})},                                // EC ∘ EQ
    // R1 = PO
    {set({DC, EC, PO, TPPi, NTPPi}),            // PO ∘ DC
     set({DC, EC, PO, TPPi, NTPPi}),            // PO ∘ EC
     kRcc8All,                                  // PO ∘ PO
     set({PO, TPP, NTPP}),                      // PO ∘ TPP
     set({PO, TPP, NTPP}),                      // PO ∘ NTPP
     set({DC, EC, PO, TPPi, NTPPi}),            // PO ∘ TPPi
     set({DC, EC, PO, TPPi, NTPPi}),            // PO ∘ NTPPi
     set({PO})},                                // PO ∘ EQ
    // R1 = TPP
    {set({DC}),                                 // TPP ∘ DC
     set({DC, EC}),                             // TPP ∘ EC
     set({DC, EC, PO, TPP, NTPP}),              // TPP ∘ PO
     set({TPP, NTPP}),                          // TPP ∘ TPP
     set({NTPP}),                               // TPP ∘ NTPP
     set({DC, EC, PO, TPP, TPPi, EQ}),          // TPP ∘ TPPi
     set({DC, EC, PO, TPPi, NTPPi}),            // TPP ∘ NTPPi
     set({TPP})},                               // TPP ∘ EQ
    // R1 = NTPP
    {set({DC}),                                 // NTPP ∘ DC
     set({DC}),                                 // NTPP ∘ EC
     set({DC, EC, PO, TPP, NTPP}),              // NTPP ∘ PO
     set({NTPP}),                               // NTPP ∘ TPP
     set({NTPP}),                               // NTPP ∘ NTPP
     set({DC, EC, PO, TPP, NTPP}),              // NTPP ∘ TPPi
     kRcc8All,                                  // NTPP ∘ NTPPi
     set({NTPP})},                              // NTPP ∘ EQ
    // R1 = TPPi
    {set({DC, EC, PO, TPPi, NTPPi}),            // TPPi ∘ DC
     set({EC, PO, TPPi, NTPPi}),                // TPPi ∘ EC
     set({PO, TPPi, NTPPi}),                    // TPPi ∘ PO
     set({PO, TPP, TPPi, EQ}),                  // TPPi ∘ TPP
     set({PO, TPP, NTPP}),                      // TPPi ∘ NTPP
     set({TPPi, NTPPi}),                        // TPPi ∘ TPPi
     set({NTPPi}),                              // TPPi ∘ NTPPi
     set({TPPi})},                              // TPPi ∘ EQ
    // R1 = NTPPi
    {set({DC, EC, PO, TPPi, NTPPi}),            // NTPPi ∘ DC
     set({PO, TPPi, NTPPi}),                    // NTPPi ∘ EC
     set({PO, TPPi, NTPPi}),                    // NTPPi ∘ PO
     set({PO, TPPi, NTPPi}),                    // NTPPi ∘ TPP
     set({PO, TPP, NTPP, TPPi, NTPPi, EQ}),     // NTPPi ∘ NTPP
     set({NTPPi}),                              // NTPPi ∘ TPPi
     set({NTPPi}),                              // NTPPi ∘ NTPPi
     set({NTPPi})},                             // NTPPi ∘ EQ
    // R1 = EQ: composition is R2 itself
    {set({DC}), set({EC}), set({PO}), set({TPP}), set({NTPP}), set({TPPi}), set({NTPPi}),
     set({EQ})},
};

}  // namespace

Rcc8Set compose(Rcc8 r1, Rcc8 r2) {
  return kComposition[static_cast<int>(r1)][static_cast<int>(r2)];
}

std::vector<Rcc8> rcc8SetElements(Rcc8Set setMask) {
  std::vector<Rcc8> out;
  for (int i = 0; i < 8; ++i) {
    Rcc8 r = static_cast<Rcc8>(i);
    if (rcc8SetContains(setMask, r)) out.push_back(r);
  }
  return out;
}

bool connected(Rcc8 r) { return r != Rcc8::DC; }

bool partOf(Rcc8 r) { return r == Rcc8::TPP || r == Rcc8::NTPP || r == Rcc8::EQ; }

}  // namespace mw::reasoning
