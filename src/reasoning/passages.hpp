// Passage-refined external connection (§4.6.1).
//
// "If two regions are externally connected, it means that it MAY be possible
// to go from one region to another. ... To make this distinction, we define
// three additional relations:
//   ECFP(a,b): EC(a,b) and there is a free passage from a to b
//   ECRP(a,b): EC(a,b) and there is a restricted passage from a to b
//   ECNP(a,b): EC(a,b) and there is no passage from a to b"
//
// A passage is a door (free or restricted — "a door that is normally locked
// and which requires either a card swipe or a key") modeled as a line
// segment lying on the shared boundary of the two regions.
#pragma once

#include <string>
#include <vector>

#include "geometry/rect.hpp"
#include "geometry/segment.hpp"
#include "reasoning/rcc8.hpp"

namespace mw::reasoning {

enum class PassageKind { Free, Restricted };

struct Passage {
  std::string name;  ///< e.g. "Door2"
  geo::Segment segment;
  PassageKind kind = PassageKind::Free;
};

/// The EC refinement relating two externally connected regions.
enum class EcKind {
  NotEc,  ///< regions are not externally connected at all
  ECFP,   ///< free passage
  ECRP,   ///< restricted passage (no free one)
  ECNP,   ///< no passage (a plain wall)
};

std::string_view toString(EcKind k);

/// True if the passage lies on the shared boundary of a and b (i.e. on the
/// boundary of both rectangles).
bool passageConnects(const Passage& p, const geo::Rect& a, const geo::Rect& b,
                     double eps = 1e-9);

/// Classifies the external connection between a and b given the known
/// passages. A free passage dominates a restricted one.
EcKind classifyEc(const geo::Rect& a, const geo::Rect& b, const std::vector<Passage>& passages,
                  double eps = 1e-9);

}  // namespace mw::reasoning
