#include "sim/scenario.hpp"

#include "util/error.hpp"

namespace mw::sim {

Scenario::Scenario(util::VirtualClock& clock, World& world,
                   adapters::LocationAdapter::Sink sink)
    : clock_(clock), world_(world), sink_(std::move(sink)) {
  mw::util::require(static_cast<bool>(sink_), "Scenario: null sink");
}

void Scenario::addAdapter(std::shared_ptr<adapters::SamplingAdapter> adapter,
                          util::Duration period) {
  mw::util::require(static_cast<bool>(adapter), "Scenario::addAdapter: null adapter");
  mw::util::require(period > util::Duration::zero(), "Scenario::addAdapter: period must be > 0");
  adapter->connect(sink_);
  adapters_.push_back(Timed{std::move(adapter), period, clock_.now()});
}

std::size_t Scenario::run(util::Duration duration, util::Duration tick) {
  mw::util::require(tick > util::Duration::zero(), "Scenario::run: tick must be > 0");
  std::size_t emitted = 0;
  const util::TimePoint end = clock_.now() + duration;
  while (clock_.now() < end) {
    clock_.advance(tick);
    world_.step(tick);
    for (auto& timed : adapters_) {
      if (clock_.now() < timed.nextDue) continue;
      emitted += timed.adapter->sample(world_, clock_, world_.rng());
      timed.nextDue = clock_.now() + timed.period;
    }
  }
  return emitted;
}

}  // namespace mw::sim
