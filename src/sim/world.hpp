// The simulated world: ground truth for people, their devices and movement.
//
// Implements adapters::GroundTruth. People move between rooms along routes
// from the blueprint's connectivity graph at walking speed; whether a person
// carries each device kind is sampled from the paper's carry probability x
// ("the value of x can be determined by observing user behavior", §4.1.1)
// and can be overridden for failure-injection tests.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "adapters/adapter.hpp"
#include "sim/blueprint.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace mw::sim {

struct PersonConfig {
  util::MobileObjectId id;
  std::string startRoom;          ///< name of the starting room
  double walkingSpeed = 4.0;      ///< feet per second
  /// Carry probability per device kind; sampled once at spawn.
  double carryTag = 0.9;          ///< Ubisense tag
  double carryBadge = 0.8;        ///< RFID badge
  double carryGps = 0.5;          ///< GPS receiver
  double carryPhone = 0.9;        ///< Bluetooth-discoverable phone
};

class World final : public adapters::GroundTruth {
 public:
  World(const Blueprint& blueprint, std::uint64_t seed = 42);

  void addPerson(const PersonConfig& config);
  [[nodiscard]] std::size_t personCount() const noexcept { return people_.size(); }

  /// Advances the world: every person walks toward their current goal and
  /// picks a new random room when they arrive.
  void step(util::Duration dt);

  /// Sends a person walking to a specific room (overrides the random goal).
  void sendTo(const util::MobileObjectId& person, const std::string& roomName);
  /// Instantly relocates a person (scenario setup).
  void teleport(const util::MobileObjectId& person, geo::Point2 where);
  void setOutdoors(const util::MobileObjectId& person, bool outdoors);
  void setCarrying(const util::MobileObjectId& person, const std::string& deviceKind,
                   bool carrying);
  /// The room the person is actually in right now (ground truth).
  [[nodiscard]] std::optional<std::string> currentRoom(
      const util::MobileObjectId& person) const;

  // --- adapters::GroundTruth --------------------------------------------------
  [[nodiscard]] std::vector<util::MobileObjectId> people() const override;
  [[nodiscard]] std::optional<geo::Point2> position(
      const util::MobileObjectId& person) const override;
  [[nodiscard]] bool carrying(const util::MobileObjectId& person,
                              const std::string& deviceKind) const override;
  [[nodiscard]] bool outdoors(const util::MobileObjectId& person) const override;

  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] const Blueprint& blueprint() const noexcept { return blueprint_; }

 private:
  struct Person {
    PersonConfig config;
    geo::Point2 position;
    bool outdoors = false;
    std::unordered_map<std::string, bool> carrying;
    std::vector<geo::Point2> waypoints;  ///< remaining route, front = next
    util::Duration dwell{0};             ///< time left lingering at the goal
  };

  Person& personRef(const util::MobileObjectId& id);
  const Person& personRef(const util::MobileObjectId& id) const;
  void planRouteTo(Person& person, const std::string& roomName);
  void pickRandomGoal(Person& person);

  Blueprint blueprint_;
  reasoning::ConnectivityGraph graph_;
  util::Rng rng_;
  std::unordered_map<util::MobileObjectId, Person> people_;
  std::vector<util::MobileObjectId> order_;  ///< insertion order for determinism
};

}  // namespace mw::sim
