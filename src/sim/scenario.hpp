// Scenario driver: ties the virtual clock, the world, the adapters and a
// reading sink into a deterministic sensing loop — the simulation stand-in
// for the paper's live deployment ("at this time, the location sensors cover
// four different rooms", §7).
#pragma once

#include <memory>
#include <vector>

#include "adapters/adapter.hpp"
#include "sim/world.hpp"
#include "util/clock.hpp"

namespace mw::sim {

class Scenario {
 public:
  /// The sink is typically LocationService::ingest (bound) or a remote
  /// client's ingest.
  Scenario(util::VirtualClock& clock, World& world, adapters::LocationAdapter::Sink sink);

  /// Registers a periodic sampling adapter; it is connected to the sink.
  void addAdapter(std::shared_ptr<adapters::SamplingAdapter> adapter, util::Duration period);

  /// Advances the scenario by `duration` in steps of `tick`: the world moves
  /// each tick and each adapter samples whenever its period elapses.
  /// Returns the total number of readings emitted.
  std::size_t run(util::Duration duration, util::Duration tick = util::msec(500));

  [[nodiscard]] util::VirtualClock& clock() noexcept { return clock_; }
  [[nodiscard]] World& world() noexcept { return world_; }

 private:
  struct Timed {
    std::shared_ptr<adapters::SamplingAdapter> adapter;
    util::Duration period;
    util::TimePoint nextDue;
  };

  util::VirtualClock& clock_;
  World& world_;
  adapters::LocationAdapter::Sink sink_;
  std::vector<Timed> adapters_;
};

}  // namespace mw::sim
