#include "sim/blueprint.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mw::sim {

using mw::util::require;

std::vector<const BlueprintRoom*> Blueprint::properRooms() const {
  std::vector<const BlueprintRoom*> out;
  for (const auto& r : rooms) {
    if (!r.isCorridor) out.push_back(&r);
  }
  return out;
}

const BlueprintRoom* Blueprint::roomNamed(const std::string& name) const {
  for (const auto& r : rooms) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

glob::FrameTree Blueprint::frames() const {
  glob::FrameTree tree;
  tree.addRoot(building);
  for (std::size_t f = 0; f < floorOutlines.size(); ++f) {
    std::string floorName = building + "/" + std::to_string(f + 1);
    tree.addFrame(floorName, building, glob::Transform2{floorOutlines[f].lo(), 0});
    for (const auto& room : rooms) {
      if (room.floor != static_cast<int>(f)) continue;
      // Room origin relative to the floor origin.
      geo::Point2 local = room.rect.lo() - floorOutlines[f].lo();
      tree.addFrame(floorName + "/" + room.name, floorName, glob::Transform2{local, 0});
    }
  }
  return tree;
}

void Blueprint::populate(db::SpatialDatabase& database) const {
  for (std::size_t f = 0; f < floorOutlines.size(); ++f) {
    std::string floorName = std::to_string(f + 1);
    std::string floorFrame = building + "/" + floorName;
    const geo::Rect& outline = floorOutlines[f];
    // Floor row, in building coordinates.
    db::SpatialObjectRow floorRow;
    floorRow.id = util::SpatialObjectId{floorName};
    floorRow.globPrefix = building;
    floorRow.objectType = db::ObjectType::Floor;
    floorRow.geometryType = db::GeometryType::Polygon;
    floorRow.points = {outline.lo(),
                       {outline.hi().x, outline.lo().y},
                       outline.hi(),
                       {outline.lo().x, outline.hi().y}};
    database.addObject(floorRow);

    for (const auto& room : rooms) {
      if (room.floor != static_cast<int>(f)) continue;
      // Room row in the floor's local frame (§5.1: rows carry a GlobPrefix).
      geo::Rect local = geo::Rect::fromCorners(room.rect.lo() - outline.lo(),
                                               room.rect.hi() - outline.lo());
      db::SpatialObjectRow row;
      row.id = util::SpatialObjectId{room.name};
      row.globPrefix = floorFrame;
      row.objectType = room.isCorridor ? db::ObjectType::Corridor : db::ObjectType::Room;
      row.geometryType = db::GeometryType::Polygon;
      row.points = {local.lo(), {local.hi().x, local.lo().y}, local.hi(),
                    {local.lo().x, local.hi().y}};
      database.addObject(row);
    }
  }
  // Doors as line rows in building coordinates.
  for (std::size_t d = 0; d < doors.size(); ++d) {
    db::SpatialObjectRow row;
    row.id = util::SpatialObjectId{doors[d].name};
    row.globPrefix = building;
    row.objectType = db::ObjectType::Door;
    row.geometryType = db::GeometryType::Line;
    row.points = {doors[d].segment.a, doors[d].segment.b};
    row.properties["passage"] =
        doors[d].kind == reasoning::PassageKind::Free ? "free" : "restricted";
    database.addObject(row);
  }
}

reasoning::ConnectivityGraph Blueprint::connectivity() const {
  reasoning::ConnectivityGraph graph;
  for (const auto& room : rooms) graph.addRegion(room.name, room.rect);
  for (const auto& door : doors) graph.addPassage(door);
  // Stairwells: consecutive floors connect through their corridors (the 2D
  // plane lays floors side by side, so this is an explicit edge).
  for (std::size_t f = 1; f < floorOutlines.size(); ++f) {
    std::string below = std::to_string(f) + "00";
    std::string above = std::to_string(f + 1) + "00";
    if (graph.hasRegion(below) && graph.hasRegion(above)) {
      graph.connect(below, above, graph.regionRect(below).center());
    }
  }
  return graph;
}

geo::Point2 Blueprint::centerOf(const std::string& roomName) const {
  const BlueprintRoom* room = roomNamed(roomName);
  require(room != nullptr, "Blueprint::centerOf: unknown room " + roomName);
  return room->rect.center();
}

Blueprint generateBlueprint(const BlueprintConfig& config) {
  require(config.floors >= 1, "generateBlueprint: need at least one floor");
  require(config.roomsPerSide >= 1, "generateBlueprint: need at least one room per side");
  require(config.doorWidth < config.roomWidth, "generateBlueprint: door wider than room");

  Blueprint bp;
  bp.building = config.building;

  const double floorWidth = config.roomsPerSide * config.roomWidth;
  const double floorHeight = 2 * config.roomDepth + config.corridorWidth;

  for (int f = 0; f < config.floors; ++f) {
    const double x0 = f * (floorWidth + config.floorGap);
    geo::Rect outline = geo::Rect::fromOrigin({x0, 0}, floorWidth, floorHeight);
    bp.floorOutlines.push_back(outline);

    const double corridorY = config.roomDepth;
    std::string floorNo = std::to_string(f + 1);

    // Central corridor.
    BlueprintRoom corridor;
    corridor.name = floorNo + "00";
    corridor.rect = geo::Rect::fromOrigin({x0, corridorY}, floorWidth, config.corridorWidth);
    corridor.floor = f;
    corridor.isCorridor = true;
    bp.rooms.push_back(corridor);

    for (int i = 0; i < config.roomsPerSide; ++i) {
      const double rx = x0 + i * config.roomWidth;
      // South room (below corridor), door on its north wall.
      BlueprintRoom south;
      south.name = floorNo + "0" + std::to_string(i + 1);
      south.rect = geo::Rect::fromOrigin({rx, 0}, config.roomWidth, config.roomDepth);
      south.floor = f;
      bp.rooms.push_back(south);
      double doorX = rx + (config.roomWidth - config.doorWidth) / 2;
      bp.doors.push_back(reasoning::Passage{
          "door-" + south.name,
          {{doorX, corridorY}, {doorX + config.doorWidth, corridorY}},
          reasoning::PassageKind::Free});

      // North room (above corridor), door on its south wall.
      BlueprintRoom north;
      north.name = floorNo + "5" + std::to_string(i + 1);
      north.rect = geo::Rect::fromOrigin({rx, corridorY + config.corridorWidth},
                                         config.roomWidth, config.roomDepth);
      north.floor = f;
      bp.rooms.push_back(north);
      const double northDoorY = corridorY + config.corridorWidth;
      bp.doors.push_back(reasoning::Passage{
          "door-" + north.name,
          {{doorX, northDoorY}, {doorX + config.doorWidth, northDoorY}},
          reasoning::PassageKind::Free});
    }
  }

  geo::Rect universe;
  for (const auto& outline : bp.floorOutlines) universe = universe.unionWith(outline);
  bp.universe = universe;
  return bp;
}

Blueprint paperFloor() {
  // Table 1: Floor3 (0,0)-(500,100); 3105 (330,0)-(350,30); NetLab
  // (360,0)-(380,30); LabCorridor (310,0)-(330,30). HCILab placed at
  // (380,0)-(400,30). The corridor column connects to the rooms; doors
  // inferred on shared walls where rooms touch the corridor (3105 touches
  // the corridor at x=330).
  Blueprint bp;
  bp.building = "CS";
  geo::Rect outline = geo::Rect::fromOrigin({0, 0}, 500, 100);
  bp.floorOutlines.push_back(outline);
  bp.universe = outline;

  auto addRoom = [&](const char* name, geo::Rect rect, bool corridor) {
    BlueprintRoom r;
    r.name = name;
    r.rect = rect;
    r.floor = 0;
    r.isCorridor = corridor;
    bp.rooms.push_back(r);
  };
  addRoom("LabCorridor", geo::Rect::fromOrigin({310, 0}, 20, 30), true);
  addRoom("3105", geo::Rect::fromOrigin({330, 0}, 20, 30), false);
  addRoom("NetLab", geo::Rect::fromOrigin({360, 0}, 20, 30), false);
  addRoom("HCILab", geo::Rect::fromOrigin({380, 0}, 20, 30), false);
  // A hallway strip above the rooms ties the floor together (Fig 8 shows the
  // rooms opening onto the floor's circulation space).
  addRoom("Hallway", geo::Rect::fromOrigin({0, 30}, 500, 20), true);

  bp.doors.push_back(reasoning::Passage{
      "door-3105", {{330, 10}, {330, 13}}, reasoning::PassageKind::Free});  // to LabCorridor
  bp.doors.push_back(reasoning::Passage{
      "door-NetLab-HCILab", {{380, 10}, {380, 13}}, reasoning::PassageKind::Restricted});
  for (const char* room : {"LabCorridor", "3105", "NetLab", "HCILab"}) {
    const BlueprintRoom* r = bp.roomNamed(room);
    double doorX = r->rect.center().x;
    bp.doors.push_back(reasoning::Passage{std::string("door-hall-") + room,
                                          {{doorX - 1.5, 30}, {doorX + 1.5, 30}},
                                          reasoning::PassageKind::Free});
  }
  return bp;
}

}  // namespace mw::sim
