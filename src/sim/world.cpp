#include "sim/world.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mw::sim {

using mw::util::NotFoundError;
using mw::util::require;

World::World(const Blueprint& blueprint, std::uint64_t seed)
    : blueprint_(blueprint), graph_(blueprint.connectivity()), rng_(seed) {}

void World::addPerson(const PersonConfig& config) {
  require(!config.id.empty(), "World::addPerson: empty id");
  require(!people_.contains(config.id), "World::addPerson: duplicate person");
  const BlueprintRoom* start = blueprint_.roomNamed(config.startRoom);
  require(start != nullptr, "World::addPerson: unknown start room " + config.startRoom);

  Person p;
  p.config = config;
  p.position = start->rect.center();
  p.carrying["tag"] = rng_.chance(config.carryTag);
  p.carrying["badge"] = rng_.chance(config.carryBadge);
  p.carrying["gps"] = rng_.chance(config.carryGps);
  p.carrying["phone"] = rng_.chance(config.carryPhone);
  people_.emplace(config.id, std::move(p));
  order_.push_back(config.id);
}

World::Person& World::personRef(const util::MobileObjectId& id) {
  auto it = people_.find(id);
  if (it == people_.end()) throw NotFoundError("World: unknown person " + id.str());
  return it->second;
}

const World::Person& World::personRef(const util::MobileObjectId& id) const {
  auto it = people_.find(id);
  if (it == people_.end()) throw NotFoundError("World: unknown person " + id.str());
  return it->second;
}

void World::planRouteTo(Person& person, const std::string& roomName) {
  person.waypoints.clear();
  auto from = graph_.regionAt(person.position);
  if (!from) {
    // Outside every region (teleported outdoors): walk straight there.
    person.waypoints.push_back(blueprint_.centerOf(roomName));
    return;
  }
  auto route = graph_.route(*from, roomName);
  if (!route) return;  // unreachable: stay put
  // Waypoints: the door midpoints crossed along the route, then the goal
  // room's center — so people walk through doors, not through walls.
  for (const auto& via : route->vias) person.waypoints.push_back(via);
  person.waypoints.push_back(graph_.regionRect(roomName).center());
}

void World::pickRandomGoal(Person& person) {
  auto rooms = blueprint_.properRooms();
  if (rooms.empty()) return;
  const auto* goal = rooms[static_cast<std::size_t>(
      rng_.uniformInt(0, static_cast<std::int64_t>(rooms.size()) - 1))];
  planRouteTo(person, goal->name);
}

void World::step(util::Duration dt) {
  double seconds = static_cast<double>(dt.count()) / 1000.0;
  for (const auto& id : order_) {
    Person& p = people_.at(id);
    if (p.outdoors) continue;  // outdoor people idle (GPS scenarios move them manually)
    // People dwell at their goal before wandering on.
    if (p.waypoints.empty() && p.dwell > util::Duration::zero()) {
      p.dwell -= std::min(p.dwell, dt);
      continue;
    }
    double budget = p.config.walkingSpeed * seconds;
    while (budget > 0) {
      if (p.waypoints.empty()) {
        pickRandomGoal(p);
        if (p.waypoints.empty()) break;
      }
      geo::Point2 target = p.waypoints.front();
      double d = geo::distance(p.position, target);
      if (d <= budget) {
        p.position = target;
        p.waypoints.erase(p.waypoints.begin());
        budget -= d;
        if (p.waypoints.empty()) {
          // Arrived: linger 30-120 s before the next trip.
          p.dwell = util::sec(rng_.uniformInt(30, 120));
          break;
        }
      } else {
        geo::Point2 dir = (target - p.position) * (1.0 / d);
        p.position = p.position + dir * budget;
        budget = 0;
      }
    }
  }
}

void World::sendTo(const util::MobileObjectId& person, const std::string& roomName) {
  require(blueprint_.roomNamed(roomName) != nullptr, "World::sendTo: unknown room " + roomName);
  planRouteTo(personRef(person), roomName);
}

void World::teleport(const util::MobileObjectId& person, geo::Point2 where) {
  Person& p = personRef(person);
  p.position = where;
  p.waypoints.clear();
}

void World::setOutdoors(const util::MobileObjectId& person, bool outdoors) {
  personRef(person).outdoors = outdoors;
}

void World::setCarrying(const util::MobileObjectId& person, const std::string& deviceKind,
                        bool carrying) {
  personRef(person).carrying[deviceKind] = carrying;
}

std::optional<std::string> World::currentRoom(const util::MobileObjectId& person) const {
  return graph_.regionAt(personRef(person).position);
}

std::vector<util::MobileObjectId> World::people() const { return order_; }

std::optional<geo::Point2> World::position(const util::MobileObjectId& person) const {
  auto it = people_.find(person);
  if (it == people_.end()) return std::nullopt;
  return it->second.position;
}

bool World::carrying(const util::MobileObjectId& person, const std::string& deviceKind) const {
  auto it = people_.find(person);
  if (it == people_.end()) return false;
  auto kindIt = it->second.carrying.find(deviceKind);
  return kindIt != it->second.carrying.end() && kindIt->second;
}

bool World::outdoors(const util::MobileObjectId& person) const {
  auto it = people_.find(person);
  return it != people_.end() && it->second.outdoors;
}

}  // namespace mw::sim
