// Building blueprint generation (§5.1, Fig 8).
//
// "The vertices of all the rooms and corridors in the building are obtained
// from the blueprints of the building." With no real blueprints available,
// this module generates synthetic ones — floors of rooms flanking a central
// corridor, with doors on the shared walls — and also reproduces the
// paper's own Table-1 floor verbatim. A blueprint knows how to populate the
// spatial database (Table-1 rows), build the coordinate-frame tree (§3) and
// derive the connectivity graph (§4.6.1).
#pragma once

#include <string>
#include <vector>

#include "geometry/rect.hpp"
#include "glob/frame.hpp"
#include "reasoning/connectivity.hpp"
#include "reasoning/passages.hpp"
#include "spatialdb/database.hpp"

namespace mw::sim {

struct BlueprintConfig {
  std::string building = "SC";
  int floors = 1;
  int roomsPerSide = 4;       ///< rooms on each side of the corridor
  double roomWidth = 20;      ///< feet, along the corridor
  double roomDepth = 28;      ///< feet, away from the corridor
  double corridorWidth = 10;  ///< feet
  double doorWidth = 3;       ///< feet
  double floorGap = 50;       ///< feet between floor outlines in the 2D plane
};

struct BlueprintRoom {
  std::string name;       ///< e.g. "3101" (floor 3, room 101)
  geo::Rect rect;         ///< universe frame
  int floor = 0;
  bool isCorridor = false;
};

/// A generated building. All rects are in the universe (building) frame; the
/// frame tree and database rows express per-floor/per-room local frames.
struct Blueprint {
  std::string building;
  geo::Rect universe;
  std::vector<BlueprintRoom> rooms;          ///< rooms and corridors
  std::vector<reasoning::Passage> doors;     ///< universe frame
  std::vector<geo::Rect> floorOutlines;      ///< one per floor

  /// Rooms only (no corridors).
  [[nodiscard]] std::vector<const BlueprintRoom*> properRooms() const;
  [[nodiscard]] const BlueprintRoom* roomNamed(const std::string& name) const;

  /// Frame tree: building -> floor -> room, translations only.
  [[nodiscard]] glob::FrameTree frames() const;

  /// Inserts Table-1 rows for floors, rooms, corridors and doors. Rows are
  /// expressed in their floor's local frame, exercising frame conversion.
  void populate(db::SpatialDatabase& database) const;

  /// Region connectivity graph with one node per room/corridor and one edge
  /// per door.
  [[nodiscard]] reasoning::ConnectivityGraph connectivity() const;

  /// A random point inside a named room (for placing people/devices).
  [[nodiscard]] geo::Point2 centerOf(const std::string& roomName) const;
};

/// Generates a synthetic building per the config.
Blueprint generateBlueprint(const BlueprintConfig& config);

/// The paper's own floor: Table 1 / Fig 8 — rooms 3105, NetLab, HCILab and
/// the LabCorridor on floor CS/Floor3 (HCILab's vertices are not given in
/// the paper; we place it adjacent to NetLab).
Blueprint paperFloor();

}  // namespace mw::sim
