#include "quality/tdf.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mw::quality {

using mw::util::Duration;
using mw::util::require;

double NoDegradation::apply(double confidence, Duration /*age*/) const { return confidence; }

LinearDegradation::LinearDegradation(Duration horizon) : horizon_(horizon) {
  require(horizon > Duration::zero(), "LinearDegradation: horizon must be positive");
}

double LinearDegradation::apply(double confidence, Duration age) const {
  if (age <= Duration::zero()) return confidence;
  double frac = 1.0 - static_cast<double>(age.count()) / static_cast<double>(horizon_.count());
  return confidence * std::max(0.0, frac);
}

ExponentialDegradation::ExponentialDegradation(Duration halfLife) : halfLife_(halfLife) {
  require(halfLife > Duration::zero(), "ExponentialDegradation: half-life must be positive");
}

double ExponentialDegradation::apply(double confidence, Duration age) const {
  if (age <= Duration::zero()) return confidence;
  double halves = static_cast<double>(age.count()) / static_cast<double>(halfLife_.count());
  return confidence * std::exp2(-halves);
}

StepDegradation::StepDegradation(std::vector<Step> steps) : steps_(std::move(steps)) {
  Duration prev = Duration::zero();
  for (const auto& [age, factor] : steps_) {
    require(age > prev, "StepDegradation: steps must have increasing ages");
    require(factor > 0 && factor <= 1, "StepDegradation: factor must be in (0,1]");
    prev = age;
  }
}

double StepDegradation::apply(double confidence, Duration age) const {
  double factor = 1.0;
  for (const auto& [threshold, f] : steps_) {
    if (age >= threshold) {
      factor = f;
    } else {
      break;
    }
  }
  return confidence * factor;
}

double QualityProfile::confidenceAt(double confidence, Duration age) const {
  if (expiredAt(age)) return 0.0;
  return std::max(0.0, tdf->apply(confidence, age));
}

}  // namespace mw::quality
