#include "quality/calibration.hpp"

namespace mw::quality {

void Calibrator::recordTrial(bool devicePresent, bool sensorReported) {
  if (devicePresent) {
    ++presentTrials_;
    if (sensorReported) ++presentDetections_;
  } else {
    ++absentTrials_;
    if (sensorReported) ++absentReports_;
  }
}

void Calibrator::recordCarry(bool carried) {
  ++carryTrials_;
  if (carried) ++carryYes_;
}

double Calibrator::detectEstimate() const {
  return static_cast<double>(presentDetections_ + 1) / static_cast<double>(presentTrials_ + 2);
}

double Calibrator::misidentifyEstimate() const {
  return static_cast<double>(absentReports_ + 1) / static_cast<double>(absentTrials_ + 2);
}

double Calibrator::carryEstimate() const {
  if (carryTrials_ == 0) return 1.0;  // "a finger is always carried"
  return static_cast<double>(carryYes_ + 1) / static_cast<double>(carryTrials_ + 2);
}

SensorErrorSpec Calibrator::estimate() const {
  return SensorErrorSpec{carryEstimate(), detectEstimate(), misidentifyEstimate()};
}

}  // namespace mw::quality
