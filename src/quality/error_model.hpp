// Sensor error model (§4.1.1).
//
// Every location technology is characterized by three primitive
// probabilities:
//   x — P(person is carrying the sensed device)           ("carry")
//   y — P(sensor detects device | device present in A)     ("detect")
//   z — P(sensor reports device in A | device not in A)    ("misidentify")
//
// From these the paper derives the two working confidences used by fusion:
//   p = P(sensor says person is IN A | person is in A)
//   q = P(sensor says person is IN A | person is NOT in A)
//
// NOTE on the paper's algebra: §4.1.1 derives the *miss* probability
// p_miss = (1-y)x + (1-z)(1-x) and the false-positive q = zx + (y+z)(1-x)
// (simplified in the paper to z + y(1-x)). The fusion equations (Eqs 1-7)
// then use p as a *detection* probability — P(s_{1,A} | person_A) = p_1 —
// so we expose p = 1 - p_miss, which reduces to the intuitive y·x + z·(1-x)
// ... the paper's own simplification of q is kept verbatim. Both are clamped
// to [0,1] because the paper's q expression can exceed 1 for small x.
#pragma once

#include <string>

namespace mw::quality {

/// Primitive per-technology probabilities, estimated during adapter
/// calibration (§6).
struct SensorErrorSpec {
  double carry = 1.0;        ///< x: probability the person carries the device
  double detect = 0.95;      ///< y: detection probability given presence
  double misidentify = 0.05; ///< z: misidentification probability

  /// Validates 0 <= x,y,z <= 1; throws ContractError otherwise.
  void validate() const;
};

/// The (p, q) pair consumed by the fusion engine: p is the probability the
/// sensor reports region A when the person is in A; q when they are not.
struct ConfidencePair {
  double p = 0;
  double q = 0;

  /// A reading is informative only while p > q (§4.1.2: "p1 > q1, which will
  /// be true if there is a greater chance of the sensor giving the correct
  /// reading than a wrong reading").
  [[nodiscard]] bool informative() const noexcept { return p > q; }
};

/// Derives (p, q) from (x, y, z) per §4.1.1 (see the header comment for the
/// detection-vs-miss convention).
ConfidencePair deriveConfidence(const SensorErrorSpec& spec);

/// Area-aware refinement of §4.1.1 for technologies whose false positives
/// scale with the reported region's share of the coverage universe
/// (areaFraction = area(A)/area(U), §6.1/§6.2). Both false-positive sources
/// are proportional to areaFraction: misidentification (z · areaFraction, as
/// the paper states) AND the "device left behind" term — an uncarried badge
/// lies somewhere uniform in the universe, so it is detected *inside A*
/// with probability y · areaFraction, not y (the paper's q = z + y(1-x)
/// omits this scaling, which makes any small reading uninformative once
/// x < 1). At areaFraction = 1 this reduces to the paper's formulas.
///
///   p = x·y + (1-x)·(y·f + z·f)
///   q = z·f + (1-x)·y·f              with f = areaFraction
ConfidencePair deriveConfidenceAreaScaled(const SensorErrorSpec& spec, double areaFraction);

/// Many technologies state z proportional to the reported region's share of
/// the coverage universe: z = zBase * area(A) / area(U) (Ubisense and RFID
/// in §6). Returns the scaled z clamped to [0, 1].
double scaleMisidentifyByArea(double zBase, double areaA, double areaU);

/// Named technology presets straight out of §6, for convenience and for the
/// Table-2 reproduction. Areas are handled by the adapters at reading time.
SensorErrorSpec ubisenseSpec(double carry);    // y=0.95, z base 0.05
SensorErrorSpec rfidBadgeSpec(double carry);   // y=0.75, z base 0.25
SensorErrorSpec biometricSpec();               // y=0.99, z=0.01, x=1
SensorErrorSpec gpsSpec(double carry);         // y=0.99, z=0.01

}  // namespace mw::quality
