// Temporal degradation functions (§3.2).
//
// "Our location model employs a temporal degradation function (tdf) that
// reduces the confidence of the location information from a particular
// sensor with time: tdf_sensor-type : conf x time -> conf. The tdf may
// degrade the confidence in a continuous or in a discrete manner."
//
// Degradation applies to the detection confidence p of a reading; q (the
// false-positive rate) is a property of the technology, not of the reading's
// age, so it is left untouched. A reading whose degraded p has fallen to q
// carries no information and is discarded by the fusion engine.
//
// Independently of the tdf, every reading has a hard time-to-live after
// which it expires outright (§5.2: "A card reader location value that is
// older than 10 seconds is considered stale").
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "util/clock.hpp"

namespace mw::quality {

/// Maps (initial confidence, age) -> degraded confidence. Implementations
/// must be monotonically non-increasing in age and must never increase the
/// confidence. Thread-compatible (immutable after construction).
class TemporalDegradation {
 public:
  virtual ~TemporalDegradation() = default;
  [[nodiscard]] virtual double apply(double confidence, util::Duration age) const = 0;
};

/// Identity tdf: confidence never degrades (suitable for continuously
/// re-asserted signals like Ubisense whose staleness is handled by TTL).
class NoDegradation final : public TemporalDegradation {
 public:
  [[nodiscard]] double apply(double confidence, util::Duration age) const override;
};

/// Continuous linear decay: conf * max(0, 1 - age/horizon).
class LinearDegradation final : public TemporalDegradation {
 public:
  explicit LinearDegradation(util::Duration horizon);
  [[nodiscard]] double apply(double confidence, util::Duration age) const override;
  [[nodiscard]] util::Duration horizon() const noexcept { return horizon_; }

 private:
  util::Duration horizon_;
};

/// Continuous exponential decay: conf * 2^(-age/halfLife).
class ExponentialDegradation final : public TemporalDegradation {
 public:
  explicit ExponentialDegradation(util::Duration halfLife);
  [[nodiscard]] double apply(double confidence, util::Duration age) const override;
  [[nodiscard]] util::Duration halfLife() const noexcept { return halfLife_; }

 private:
  util::Duration halfLife_;
};

/// Discrete step decay: confidence is multiplied by the factor of the last
/// step whose age threshold has been reached. Steps must be given in
/// increasing age order with factors in (0, 1].
class StepDegradation final : public TemporalDegradation {
 public:
  using Step = std::pair<util::Duration, double>;
  explicit StepDegradation(std::vector<Step> steps);
  [[nodiscard]] double apply(double confidence, util::Duration age) const override;
  [[nodiscard]] const std::vector<Step>& steps() const noexcept { return steps_; }

 private:
  std::vector<Step> steps_;
};

/// Quality profile of a sensor type: how its confidence ages and when its
/// readings expire outright.
struct QualityProfile {
  std::shared_ptr<const TemporalDegradation> tdf = std::make_shared<NoDegradation>();
  util::Duration ttl = util::minutes(5);

  /// Degraded confidence at `age`, or 0 when the reading has outlived its
  /// TTL. Confidence never drops below zero.
  [[nodiscard]] double confidenceAt(double confidence, util::Duration age) const;
  [[nodiscard]] bool expiredAt(util::Duration age) const { return age > ttl; }
};

}  // namespace mw::quality
