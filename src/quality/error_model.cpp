#include "quality/error_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mw::quality {

void SensorErrorSpec::validate() const {
  mw::util::require(carry >= 0 && carry <= 1, "SensorErrorSpec: carry out of [0,1]");
  mw::util::require(detect >= 0 && detect <= 1, "SensorErrorSpec: detect out of [0,1]");
  mw::util::require(misidentify >= 0 && misidentify <= 1,
                    "SensorErrorSpec: misidentify out of [0,1]");
}

ConfidencePair deriveConfidence(const SensorErrorSpec& spec) {
  spec.validate();
  const double x = spec.carry, y = spec.detect, z = spec.misidentify;
  // p_miss from the paper: (1-y)x + (1-z)(1-x); fusion uses p = 1 - p_miss.
  const double pMiss = (1 - y) * x + (1 - z) * (1 - x);
  // q kept as the paper simplifies it: z + y(1-x).
  const double q = z + y * (1 - x);
  return ConfidencePair{std::clamp(1 - pMiss, 0.0, 1.0), std::clamp(q, 0.0, 1.0)};
}

ConfidencePair deriveConfidenceAreaScaled(const SensorErrorSpec& spec, double areaFraction) {
  spec.validate();
  mw::util::require(areaFraction >= 0 && areaFraction <= 1,
                    "deriveConfidenceAreaScaled: areaFraction out of [0,1]");
  const double x = spec.carry, y = spec.detect, f = areaFraction;
  const double z = std::clamp(spec.misidentify * f, 0.0, 1.0);
  const double p = x * y + (1 - x) * std::clamp(y * f + z, 0.0, 1.0);
  const double q = z + (1 - x) * y * f;
  return ConfidencePair{std::clamp(p, 0.0, 1.0), std::clamp(q, 0.0, 1.0)};
}

double scaleMisidentifyByArea(double zBase, double areaA, double areaU) {
  mw::util::require(areaU > 0, "scaleMisidentifyByArea: universe area must be positive");
  mw::util::require(areaA >= 0, "scaleMisidentifyByArea: negative region area");
  return std::clamp(zBase * areaA / areaU, 0.0, 1.0);
}

SensorErrorSpec ubisenseSpec(double carry) { return {carry, 0.95, 0.05}; }
SensorErrorSpec rfidBadgeSpec(double carry) { return {carry, 0.75, 0.25}; }
SensorErrorSpec biometricSpec() { return {1.0, 0.99, 0.01}; }
SensorErrorSpec gpsSpec(double carry) { return {carry, 0.99, 0.01}; }

}  // namespace mw::quality
