// Sensor calibration from observed trials (§6: "upon installing a new
// location technology, a calibration process needs to be undertaken" and
// §11 future work: "we plan to conduct user studies to get accurate values
// of various parameters of our system like the probability of carrying
// location devices").
//
// The Calibrator accumulates labelled trials — ground truth of whether the
// device was present in the sensor's region, versus whether the sensor
// reported it there — and carry observations, and estimates the (x, y, z)
// error spec with Laplace (add-one) smoothing so that a freshly installed
// sensor never reports certainty.
#pragma once

#include <cstddef>

#include "quality/error_model.hpp"

namespace mw::quality {

class Calibrator {
 public:
  /// One detection trial: the device really was (or was not) present in the
  /// sensor's region A, and the sensor did (or did not) report it in A.
  void recordTrial(bool devicePresent, bool sensorReported);

  /// One carry observation: whether the person had the device with them.
  void recordCarry(bool carried);

  [[nodiscard]] std::size_t trialCount() const noexcept { return presentTrials_ + absentTrials_; }
  [[nodiscard]] std::size_t carryCount() const noexcept { return carryTrials_; }

  /// Estimated y = P(report | present), Laplace-smoothed.
  [[nodiscard]] double detectEstimate() const;
  /// Estimated z = P(report | absent), Laplace-smoothed.
  [[nodiscard]] double misidentifyEstimate() const;
  /// Estimated x = P(carrying); defaults to 1 with no observations (the
  /// biometric assumption) and is Laplace-smoothed otherwise.
  [[nodiscard]] double carryEstimate() const;

  /// The full spec in one call.
  [[nodiscard]] SensorErrorSpec estimate() const;

 private:
  std::size_t presentTrials_ = 0;
  std::size_t presentDetections_ = 0;
  std::size_t absentTrials_ = 0;
  std::size_t absentReports_ = 0;
  std::size_t carryTrials_ = 0;
  std::size_t carryYes_ = 0;
};

}  // namespace mw::quality
