#include "orb/message.hpp"

#include "util/error.hpp"

namespace mw::orb {

namespace {
constexpr std::uint16_t kMagic = 0x4D57;  // "MW"
}

util::Bytes Message::encode() const {
  util::ByteWriter w;
  w.u16(kMagic);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(requestId);
  w.str(target);
  w.blob(payload);
  return w.take();
}

util::Bytes Message::encodeHeader() const {
  util::ByteWriter w;
  w.u16(kMagic);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(requestId);
  w.str(target);
  w.u32(static_cast<std::uint32_t>(payload.size()));  // blob prefix, data follows on the wire
  return w.take();
}

Message Message::decode(util::ByteView frame) {
  util::ByteReader r(frame);
  if (r.u16() != kMagic) throw util::ParseError("Message: bad magic");
  Message m;
  std::uint8_t t = r.u8();
  if (t < 1 || t > 4) throw util::ParseError("Message: bad type " + std::to_string(t));
  m.type = static_cast<MessageType>(t);
  m.requestId = r.u64();
  m.target = r.str();
  m.payload = r.blob();
  if (!r.exhausted()) throw util::ParseError("Message: trailing bytes");
  return m;
}

}  // namespace mw::orb
