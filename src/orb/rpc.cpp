#include "orb/rpc.hpp"

#include <chrono>

#include "util/error.hpp"

namespace mw::orb {

using mw::util::MwError;
using mw::util::TransportError;

void RpcServer::registerMethod(const std::string& name, Method method) {
  mw::util::require(!name.empty(), "RpcServer::registerMethod: empty name");
  mw::util::require(static_cast<bool>(method), "RpcServer::registerMethod: null method");
  std::lock_guard lock(mutex_);
  methods_[name] = std::move(method);
}

void RpcServer::serve(std::shared_ptr<Transport> transport) {
  {
    std::lock_guard lock(mutex_);
    connections_.push_back(transport);
  }
  // The handler deliberately captures a raw pointer, NOT a shared_ptr: a
  // transport's own reader thread must never hold (and thus never drop the
  // last) reference to it, or the destructor would join the thread from
  // itself. The server's connection list owns the transport, and
  // ~RpcServer destroys connections_ (joining reader threads) before the
  // method table, so the raw pointer stays valid for every delivery.
  Transport* raw = transport.get();
  transport->onReceive([this, raw](const util::Bytes& frame) { handleFrame(raw, frame); });
}

void RpcServer::handleFrame(Transport* transport, const util::Bytes& frame) {
  Message request;
  try {
    request = Message::decode(frame);
  } catch (const MwError&) {
    return;  // drop undecodable frames, like an ORB would drop junk
  }
  if (request.type != MessageType::Request) return;

  Method method;
  {
    std::lock_guard lock(mutex_);
    auto it = methods_.find(request.target);
    if (it != methods_.end()) method = it->second;
  }

  // Oneway invocation (requestId 0): execute, send nothing back.
  if (request.requestId == 0) {
    if (method) {
      try {
        method(request.payload);
      } catch (const std::exception&) {
        // Oneway semantics: the caller asked not to hear about it.
      }
    }
    return;
  }

  Message reply;
  reply.requestId = request.requestId;
  reply.target = request.target;
  if (!method) {
    reply.type = MessageType::Error;
    util::ByteWriter w;
    w.str("unknown method: " + request.target);
    reply.payload = w.take();
  } else {
    try {
      reply.payload = method(request.payload);
      reply.type = MessageType::Reply;
    } catch (const std::exception& e) {
      reply.type = MessageType::Error;
      util::ByteWriter w;
      w.str(e.what());
      reply.payload = w.take();
    }
  }
  try {
    transport->send(reply.encode());
  } catch (const TransportError&) {
    // Client went away between request and reply; nothing to do.
  }
}

void RpcServer::publish(const std::string& topic, const util::Bytes& payload) {
  Message event;
  event.type = MessageType::Event;
  event.target = topic;
  event.payload = payload;
  util::Bytes frame = event.encode();

  std::vector<std::shared_ptr<Transport>> snapshot;
  {
    std::lock_guard lock(mutex_);
    std::erase_if(connections_, [](const auto& t) { return !t->isOpen(); });
    snapshot = connections_;
  }
  for (const auto& t : snapshot) {
    try {
      t->send(frame);
    } catch (const TransportError&) {
      // Connection died mid-publish; it will be pruned next round.
    }
  }
}

std::size_t RpcServer::connectionCount() const {
  std::lock_guard lock(mutex_);
  return connections_.size();
}

RpcClient::RpcClient(std::shared_ptr<Transport> transport) : transport_(std::move(transport)) {
  mw::util::require(static_cast<bool>(transport_), "RpcClient: null transport");
  transport_->onReceive([this](const util::Bytes& frame) { handleFrame(frame); });
}

RpcClient::~RpcClient() {
  // Stop deliveries and (if we hold the last reference) join the transport's
  // reader thread before any other member is destroyed — otherwise a frame
  // arriving during destruction would touch a dead mutex.
  transport_->onReceive([](const util::Bytes&) {});  // detach this client
  transport_->close();
  transport_.reset();
}

void RpcClient::handleFrame(const util::Bytes& frame) {
  Message m;
  try {
    m = Message::decode(frame);
  } catch (const MwError&) {
    return;
  }
  if (m.type == MessageType::Event) {
    EventHandler handler;
    {
      std::lock_guard lock(mutex_);
      handler = eventHandler_;
    }
    if (handler) handler(m.target, m.payload);
    return;
  }
  std::lock_guard lock(mutex_);
  auto it = pending_.find(m.requestId);
  if (it == pending_.end()) return;  // late reply after timeout
  it->second.done = true;
  it->second.isError = (m.type == MessageType::Error);
  it->second.payload = m.payload;
  cv_.notify_all();
}

util::Bytes RpcClient::call(const std::string& method, const util::Bytes& args,
                            util::Duration timeout) {
  std::uint64_t id;
  {
    std::lock_guard lock(mutex_);
    id = ++nextId_;
    pending_.emplace(id, Pending{});
  }
  Message request;
  request.type = MessageType::Request;
  request.requestId = id;
  request.target = method;
  request.payload = args;
  try {
    transport_->send(request.encode());
  } catch (const TransportError&) {
    std::lock_guard lock(mutex_);
    pending_.erase(id);
    throw;
  }

  std::unique_lock lock(mutex_);
  bool ok = cv_.wait_for(lock, std::chrono::milliseconds(timeout.count()),
                         [&] { return pending_.at(id).done; });
  Pending result = std::move(pending_.at(id));
  pending_.erase(id);
  if (!ok) throw TransportError("RpcClient::call: timeout on " + method);
  if (result.isError) {
    util::ByteReader r(result.payload);
    throw MwError("RpcClient::call: remote error: " + r.str());
  }
  return result.payload;
}

void RpcClient::notify(const std::string& method, const util::Bytes& args) {
  Message request;
  request.type = MessageType::Request;
  request.requestId = 0;  // oneway marker
  request.target = method;
  request.payload = args;
  transport_->send(request.encode());
}

void RpcClient::onEvent(EventHandler handler) {
  std::lock_guard lock(mutex_);
  eventHandler_ = std::move(handler);
}

}  // namespace mw::orb
