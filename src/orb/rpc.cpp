#include "orb/rpc.hpp"

#include <chrono>
#include <utility>

#include "util/error.hpp"

namespace mw::orb {

using mw::util::MwError;
using mw::util::TransportError;

namespace {

/// Finalizer of splitmix64. Connection keys are pointer values, whose low
/// bits are constant under alignment — mixed, they spread evenly over any
/// lane count.
std::size_t mixConnectionKey(std::uintptr_t key) {
  std::uint64_t x = static_cast<std::uint64_t>(key);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

}  // namespace

RpcServer::~RpcServer() {
  // Quiesce every connection first: after close() returns the transport's
  // handler is never invoked again (an in-flight handleFrame completes —
  // and may still enqueue onto the dispatcher — before close() returns).
  // Dropping the references alone would not do it: a queued dispatch pins
  // its transport, keeping a reactor connection's deliveries live.
  std::vector<std::shared_ptr<Transport>> conns;
  {
    std::lock_guard lock(mutex_);
    conns.swap(connections_);
  }
  for (const auto& t : conns) t->close();
  conns.clear();
  // No delivery is left; drain and join the lanes. Queued requests still
  // execute (their owners pin the transports), and late frames from
  // still-open in-process peers fall back to inline execution.
  std::unique_ptr<util::WorkerPool> lanes;
  {
    std::lock_guard lock(mutex_);
    lanes = std::move(dispatcher_);
  }
  lanes.reset();
}

void RpcServer::registerMethod(const std::string& name, Method method) {
  registerMethod(name, std::move(method), nullptr);
}

void RpcServer::registerMethod(const std::string& name, Method method, LaneSelector lane) {
  mw::util::require(!name.empty(), "RpcServer::registerMethod: empty name");
  mw::util::require(static_cast<bool>(method), "RpcServer::registerMethod: null method");
  std::lock_guard lock(mutex_);
  methods_[name] = {std::move(method), std::move(lane)};
}

void RpcServer::enableDispatcher(std::size_t lanes) {
  std::unique_ptr<util::WorkerPool> old;
  {
    std::lock_guard lock(mutex_);
    old = std::move(dispatcher_);
    if (lanes > 0) dispatcher_ = std::make_unique<util::WorkerPool>(lanes);
  }
  // The old pool drains outside the lock: its queued requests may publish
  // events, which re-enter the server mutex.
  old.reset();
}

std::size_t RpcServer::dispatchLanes() const {
  std::lock_guard lock(mutex_);
  return dispatcher_ ? dispatcher_->threadCount() : 0;
}

RpcServer::LaneSelector RpcServer::roundRobinLanes() {
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  return [next](const util::Bytes&, std::uintptr_t) {
    return next->fetch_add(1, std::memory_order_relaxed);
  };
}

void RpcServer::serve(std::shared_ptr<Transport> transport) {
  {
    std::lock_guard lock(mutex_);
    connections_.push_back(transport);
  }
  // The handler captures a raw pointer for the inline path, NOT a
  // shared_ptr: a delivery must never hold (and thus never drop the last)
  // reference to its own transport, or the destructor would tear the
  // transport down from inside its delivery path. The connection list owns
  // the transport and ~RpcServer close()s every connection (quiescing
  // deliveries) before anything else dies, so the raw pointer stays valid
  // for every inline delivery. Dispatched requests instead lock the
  // weak_ptr at enqueue time, pinning the transport until their lane
  // executes them (a pruned connection's queued requests find the weak_ptr
  // expired and are dropped).
  Transport* raw = transport.get();
  std::weak_ptr<Transport> weak = transport;
  transport->onReceive([this, raw, weak = std::move(weak)](util::ByteView frame) {
    handleFrame(raw, weak, frame);
  });
}

void RpcServer::handleFrame(Transport* transport, const std::weak_ptr<Transport>& weak,
                            util::ByteView frame) {
  Message request;
  try {
    request = Message::decode(frame);
  } catch (const MwError&) {
    undecodableFrames_.fetch_add(1, std::memory_order_relaxed);
    return;  // drop undecodable frames, like an ORB would drop junk
  }
  if (request.type != MessageType::Request) return;

  Method method;
  {
    std::lock_guard lock(mutex_);
    LaneSelector* selector = nullptr;
    auto it = methods_.find(request.target);
    if (it != methods_.end()) {
      method = it->second.first;
      if (it->second.second) selector = &it->second.second;
    }
    if (dispatcher_) {
      // Decode-and-enqueue path: pick the lane, pin the transport, hand off.
      const auto connection = reinterpret_cast<std::uintptr_t>(transport);
      std::size_t lane = mixConnectionKey(connection);
      if (selector) {
        try {
          lane = (*selector)(request.payload, connection);
        } catch (...) {
          // Malformed payload: keep the connection default; the method
          // itself will produce the decode error for the caller.
        }
      }
      std::shared_ptr<Transport> owner = weak.lock();
      if (!owner) return;  // connection already dismantled
      dispatchedRequests_.fetch_add(1, std::memory_order_relaxed);
      dispatcher_->post(lane % dispatcher_->threadCount(),
                        [this, owner = std::move(owner), request = std::move(request),
                         method = std::move(method)] { execute(owner.get(), request, method); });
      return;
    }
  }
  // Inline path (no dispatcher): execute on the reader thread, outside the
  // server lock so methods may publish events.
  inlineRequests_.fetch_add(1, std::memory_order_relaxed);
  execute(transport, request, method);
}

void RpcServer::execute(Transport* transport, const Message& request, const Method& method) {
  // Oneway invocation (requestId 0): execute, send nothing back.
  if (request.requestId == 0) {
    if (!method) {
      unknownMethodErrors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    try {
      method(request.payload);
    } catch (const std::exception&) {
      // Oneway semantics: the caller asked not to hear about it.
      onewayExceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  Message reply;
  reply.requestId = request.requestId;
  reply.target = request.target;
  if (!method) {
    unknownMethodErrors_.fetch_add(1, std::memory_order_relaxed);
    reply.type = MessageType::Error;
    util::ByteWriter w;
    w.str("unknown method: " + request.target);
    reply.payload = w.take();
  } else {
    try {
      reply.payload = method(request.payload);
      reply.type = MessageType::Reply;
    } catch (const std::exception& e) {
      reply.type = MessageType::Error;
      util::ByteWriter w;
      w.str(e.what());
      reply.payload = w.take();
    }
  }
  try {
    // Gather-send: header and payload go out as one frame without being
    // concatenated first — on reactor transports, a single writev.
    transport->sendv(reply.encodeHeader(), reply.payload);
  } catch (const TransportError&) {
    // Client went away between request and reply; nothing to do.
  }
}

void RpcServer::publish(const std::string& topic, const util::Bytes& payload) {
  Message event;
  event.type = MessageType::Event;
  event.target = topic;
  event.payload = payload;
  util::Bytes frame = event.encode();

  std::vector<std::shared_ptr<Transport>> snapshot;
  {
    std::lock_guard lock(mutex_);
    std::erase_if(connections_, [this](const auto& t) {
      if (t->isOpen()) return false;
      prunedOversized_.fetch_add(t->oversizedFrames(), std::memory_order_relaxed);
      return true;
    });
    snapshot = connections_;
  }
  for (const auto& t : snapshot) {
    try {
      // Non-blocking fan-out: a subscriber whose send backlog is full gets
      // this event dropped (and counted) instead of stalling delivery to
      // every subscriber after it in the snapshot.
      if (!t->trySend(frame)) {
        droppedEvents_.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (const TransportError&) {
      // Connection died mid-publish; it will be pruned next round.
    }
  }
}

std::size_t RpcServer::connectionCount() const {
  std::lock_guard lock(mutex_);
  return connections_.size();
}

RpcServer::Stats RpcServer::stats() const {
  Stats s;
  s.undecodableFrames = undecodableFrames_.load(std::memory_order_relaxed);
  s.unknownMethodErrors = unknownMethodErrors_.load(std::memory_order_relaxed);
  s.onewayExceptions = onewayExceptions_.load(std::memory_order_relaxed);
  s.dispatchedRequests = dispatchedRequests_.load(std::memory_order_relaxed);
  s.inlineRequests = inlineRequests_.load(std::memory_order_relaxed);
  s.oversizedFrames = prunedOversized_.load(std::memory_order_relaxed);
  s.droppedEvents = droppedEvents_.load(std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  for (const auto& t : connections_) s.oversizedFrames += t->oversizedFrames();
  return s;
}

RpcClient::RpcClient(std::shared_ptr<Transport> transport) : transport_(std::move(transport)) {
  mw::util::require(static_cast<bool>(transport_), "RpcClient: null transport");
  transport_->onReceive([this](util::ByteView frame) { handleFrame(frame); });
}

RpcClient::~RpcClient() {
  // close() guarantees the handler is not invoked again once it returns, so
  // no frame arriving during destruction can touch a dead mutex.
  transport_->close();
  transport_.reset();
}

void RpcClient::handleFrame(util::ByteView frame) {
  Message m;
  try {
    m = Message::decode(frame);
  } catch (const MwError&) {
    return;
  }
  if (m.type == MessageType::Event) {
    // Invoked while holding eventMutex_ so onEvent() can quiesce: once a
    // handler swap returns, the previous handler is guaranteed not to be
    // mid-invocation (callers uninstall this-capturing handlers on teardown).
    std::lock_guard lock(eventMutex_);
    if (eventHandler_) eventHandler_(m.target, m.payload);
    return;
  }
  std::lock_guard lock(mutex_);
  auto it = pending_.find(m.requestId);
  if (it == pending_.end()) return;  // late reply after timeout
  it->second.done = true;
  it->second.isError = (m.type == MessageType::Error);
  it->second.payload = m.payload;
  cv_.notify_all();
}

util::Bytes RpcClient::call(const std::string& method, const util::Bytes& args) {
  return call(method, args, callTimeout());
}

void RpcClient::setCallTimeout(util::Duration timeout) {
  mw::util::require(timeout.count() > 0, "RpcClient::setCallTimeout: timeout must be positive");
  callTimeoutMs_.store(timeout.count(), std::memory_order_relaxed);
}

util::Duration RpcClient::callTimeout() const {
  return util::Duration{callTimeoutMs_.load(std::memory_order_relaxed)};
}

util::Bytes RpcClient::call(const std::string& method, const util::Bytes& args,
                            util::Duration timeout) {
  std::uint64_t id;
  {
    std::lock_guard lock(mutex_);
    id = ++nextId_;
    pending_.emplace(id, Pending{});
  }
  Message request;
  request.type = MessageType::Request;
  request.requestId = id;
  request.target = method;
  request.payload = args;
  try {
    transport_->sendv(request.encodeHeader(), request.payload);
  } catch (const TransportError&) {
    std::lock_guard lock(mutex_);
    pending_.erase(id);
    throw;
  }

  std::unique_lock lock(mutex_);
  bool ok = cv_.wait_for(lock, std::chrono::milliseconds(timeout.count()),
                         [&] { return pending_.at(id).done; });
  Pending result = std::move(pending_.at(id));
  pending_.erase(id);
  if (!ok) throw mw::util::TimeoutError("RpcClient::call: timeout on " + method);
  if (result.isError) {
    util::ByteReader r(result.payload);
    throw MwError("RpcClient::call: remote error: " + r.str());
  }
  return result.payload;
}

void RpcClient::notify(const std::string& method, const util::Bytes& args) {
  Message request;
  request.type = MessageType::Request;
  request.requestId = 0;  // oneway marker
  request.target = method;
  request.payload = args;
  transport_->sendv(request.encodeHeader(), request.payload);
}

void RpcClient::onEvent(EventHandler handler) {
  std::lock_guard lock(eventMutex_);
  eventHandler_ = std::move(handler);
}

}  // namespace mw::orb
