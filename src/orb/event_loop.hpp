// Epoll reactor for the MicroOrb: N event loops, each owning M non-blocking
// connections.
//
// The thread-per-connection TcpTransport scaled reader threads O(connections)
// — a thread explosion at the connection counts the cluster roadmap targets.
// The reactor inverts that: a small fixed group of event loops (default
// clamp(cores, 1, 4)) multiplexes every TCP connection through epoll. A
// connection is pinned to exactly one loop for its lifetime, so frames on one
// connection are decoded and delivered in arrival order by a single thread —
// the same ordering domain the reader thread used to provide, preserved for
// the RpcServer's lane selectors and the per-object stripe invariant
// downstream.
//
// Zero-copy framing: received frames are handed to the Transport handler as
// util::ByteView slices of the loop's per-connection receive buffer (no
// util::Bytes materialized per frame); sends gather the 4-byte length prefix,
// message header and payload with one writev. When the socket would block,
// the remainder lands in a bounded per-connection backlog flushed by the loop
// on EPOLLOUT; senders beyond the backlog cap block (the flow control the
// old blocking sendAll provided implicitly).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "orb/transport.hpp"

namespace mw::orb {

/// Reactor-wide counters (cumulative across every connection of the group,
/// including connections already closed).
struct EventLoopStats {
  std::uint64_t framesIn = 0;
  std::uint64_t framesOut = 0;
  std::uint64_t bytesIn = 0;
  std::uint64_t bytesOut = 0;
  /// Frames whose length prefix exceeded the 64 MiB sanity cap; the
  /// offending connection is closed and the event logged at warn.
  std::uint64_t oversizedFrames = 0;
};

class EventLoopGroup {
 public:
  /// Spawns `loops` event-loop threads (0 = defaultLoopCount()).
  explicit EventLoopGroup(std::size_t loops = 0);
  ~EventLoopGroup();

  EventLoopGroup(const EventLoopGroup&) = delete;
  EventLoopGroup& operator=(const EventLoopGroup&) = delete;

  /// clamp(hardware_concurrency, 1, 4).
  [[nodiscard]] static std::size_t defaultLoopCount();

  /// The process-wide group every TCP transport registers with unless an
  /// explicit group is passed. Created on first use, lives until exit.
  [[nodiscard]] static const std::shared_ptr<EventLoopGroup>& shared();

  [[nodiscard]] std::size_t loopCount() const noexcept;

  /// Adopts a connected socket: switches it to non-blocking, pins it to the
  /// least-recently-assigned loop and returns the framed transport. `peer`
  /// labels the connection in logs ("host:port"). Takes ownership of `fd`.
  [[nodiscard]] std::shared_ptr<Transport> adopt(int fd, std::string peer);

  /// Open connections currently registered across all loops.
  [[nodiscard]] std::size_t connectionCount() const;

  [[nodiscard]] EventLoopStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mw::orb
