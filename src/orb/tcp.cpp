#include "orb/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace mw::orb {

using mw::util::TransportError;

namespace {

void closeFd(int fd) {
  if (fd >= 0) ::close(fd);
}

bool sendAll(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent <= 0) return false;
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool recvAll(int fd, std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    ssize_t got = ::recv(fd, data, n, 0);
    if (got <= 0) return false;
    data += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

/// A connected socket with a reader thread delivering framed messages.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    reader_ = std::thread([this] { readLoop(); });
  }

  ~TcpTransport() override {
    close();
    if (reader_.joinable()) reader_.join();
    closeFd(fd_);
  }

  void send(const util::Bytes& frame) override {
    std::lock_guard lock(sendMutex_);
    if (!open_.load()) throw TransportError("TcpTransport: closed");
    std::uint8_t header[4];
    std::uint32_t len = static_cast<std::uint32_t>(frame.size());
    for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
    if (!sendAll(fd_, header, 4) || !sendAll(fd_, frame.data(), frame.size())) {
      open_.store(false);
      throw TransportError("TcpTransport: send failed");
    }
  }

  void onReceive(Handler handler) override {
    std::deque<util::Bytes> backlog;
    {
      std::lock_guard lock(handlerMutex_);
      handler_ = std::move(handler);
      backlog.swap(pending_);
    }
    for (const auto& frame : backlog) dispatch(frame);
  }

  void close() override {
    bool was = open_.exchange(false);
    if (was) ::shutdown(fd_, SHUT_RDWR);
  }

  [[nodiscard]] bool isOpen() const override { return open_.load(); }

 private:
  void readLoop() {
    while (open_.load()) {
      std::uint8_t header[4];
      if (!recvAll(fd_, header, 4)) break;
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
      if (len > 64 * 1024 * 1024) break;  // sanity cap: refuse absurd frames
      util::Bytes frame(len);
      if (len > 0 && !recvAll(fd_, frame.data(), len)) break;
      dispatch(frame);
    }
    open_.store(false);
    // The fd stays open until destruction: send()/close() on other threads
    // still read it, and the number must not be recycled by the kernel
    // while they can. The destructor closes it after joining this thread.
  }

  void dispatch(const util::Bytes& frame) {
    Handler handler;
    {
      std::lock_guard lock(handlerMutex_);
      if (!handler_) {
        pending_.push_back(frame);
        return;
      }
      handler = handler_;
    }
    handler(frame);
  }

  const int fd_;  ///< immutable while any thread can reach the transport
  std::atomic<bool> open_{true};
  std::mutex sendMutex_;
  std::mutex handlerMutex_;
  Handler handler_;
  std::deque<util::Bytes> pending_;
  std::thread reader_;
};

}  // namespace

std::shared_ptr<Transport> tcpConnect(const std::string& host, std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("tcpConnect: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    closeFd(fd);
    throw TransportError("tcpConnect: bad address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    closeFd(fd);
    throw TransportError("tcpConnect: connect to " + host + ":" + std::to_string(port) +
                         " failed");
  }
  return std::make_shared<TcpTransport>(fd);
}

struct TcpListener::Impl {
  int fd = -1;
  std::atomic<bool> running{true};
  std::thread acceptor;
  AcceptHandler onAccept;

  ~Impl() {
    running.store(false);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    if (acceptor.joinable()) acceptor.join();
    closeFd(fd);
  }
};

TcpListener::TcpListener(std::uint16_t port, AcceptHandler onAccept)
    : impl_(std::make_unique<Impl>()) {
  impl_->onAccept = std::move(onAccept);
  impl_->fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->fd < 0) throw TransportError("TcpListener: socket() failed");
  int one = 1;
  ::setsockopt(impl_->fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(impl_->fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw TransportError("TcpListener: bind failed");
  }
  if (::listen(impl_->fd, 16) != 0) throw TransportError("TcpListener: listen failed");
  socklen_t len = sizeof(addr);
  ::getsockname(impl_->fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  impl_->acceptor = std::thread([impl = impl_.get()] {
    while (impl->running.load()) {
      int client = ::accept(impl->fd, nullptr, nullptr);
      if (client < 0) break;
      if (!impl->running.load()) {
        closeFd(client);
        break;
      }
      impl->onAccept(std::make_shared<TcpTransport>(client));
    }
  });
}

TcpListener::~TcpListener() = default;

void TcpListener::stop() {
  impl_->running.store(false);
  if (impl_->fd >= 0) ::shutdown(impl_->fd, SHUT_RDWR);
}

}  // namespace mw::orb
