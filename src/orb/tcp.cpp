#include "orb/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace mw::orb {

using mw::util::TransportError;

namespace {

void closeFd(int fd) {
  if (fd >= 0) ::close(fd);
}

void setNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

std::shared_ptr<Transport> tcpConnect(const std::string& host, std::uint16_t port,
                                      const std::shared_ptr<EventLoopGroup>& group) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("tcpConnect: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    closeFd(fd);
    throw TransportError("tcpConnect: bad address " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    closeFd(fd);
    throw TransportError("tcpConnect: connect to " + host + ":" + std::to_string(port) +
                         " failed");
  }
  setNoDelay(fd);
  const auto& loops = group ? group : EventLoopGroup::shared();
  return loops->adopt(fd, host + ":" + std::to_string(port));
}

struct TcpListener::Impl {
  int fd = -1;
  std::atomic<bool> running{true};
  std::thread acceptor;
  AcceptHandler onAccept;
  std::shared_ptr<EventLoopGroup> group;

  ~Impl() {
    running.store(false);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    if (acceptor.joinable()) acceptor.join();
    closeFd(fd);
  }
};

TcpListener::TcpListener(std::uint16_t port, AcceptHandler onAccept, Options options)
    : impl_(std::make_unique<Impl>()) {
  impl_->onAccept = std::move(onAccept);
  impl_->group = options.group ? options.group : EventLoopGroup::shared();
  impl_->fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->fd < 0) throw TransportError("TcpListener: socket() failed");
  int one = 1;
  ::setsockopt(impl_->fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(impl_->fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw TransportError("TcpListener: bind failed");
  }
  if (::listen(impl_->fd, options.backlog) != 0) {
    throw TransportError("TcpListener: listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(impl_->fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  impl_->acceptor = std::thread([impl = impl_.get()] {
    while (impl->running.load()) {
      sockaddr_in peer{};
      socklen_t peerLen = sizeof(peer);
      int client = ::accept(impl->fd, reinterpret_cast<sockaddr*>(&peer), &peerLen);
      if (client < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;  // not listener death
        break;
      }
      if (!impl->running.load()) {
        closeFd(client);
        break;
      }
      setNoDelay(client);
      char ip[INET_ADDRSTRLEN] = "?";
      ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
      impl->onAccept(impl->group->adopt(
          client, std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port))));
    }
  });
}

TcpListener::~TcpListener() = default;

void TcpListener::stop() {
  impl_->running.store(false);
  if (impl_->fd >= 0) ::shutdown(impl_->fd, SHUT_RDWR);
}

}  // namespace mw::orb
