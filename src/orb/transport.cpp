#include "orb/transport.hpp"

#include <deque>
#include <mutex>

#include "util/error.hpp"

namespace mw::orb {

void Transport::sendv(util::ByteView header, util::ByteView payload) {
  util::Bytes frame;
  frame.reserve(header.size() + payload.size());
  frame.insert(frame.end(), header.data(), header.data() + header.size());
  frame.insert(frame.end(), payload.data(), payload.data() + payload.size());
  send(frame);
}

namespace {

/// One endpoint of an in-process pair. Sending locks only the peer's state,
/// so a handler on side A may send back to side B without self-deadlock.
class InProcTransport final : public Transport,
                              public std::enable_shared_from_this<InProcTransport> {
 public:
  void send(const util::Bytes& frame) override {
    std::shared_ptr<InProcTransport> peer;
    {
      std::lock_guard lock(mutex_);
      if (!open_) throw util::TransportError("InProcTransport: closed");
      peer = peer_.lock();
    }
    if (!peer) throw util::TransportError("InProcTransport: peer gone");
    peer->deliver(frame);
  }

  void onReceive(Handler handler) override {
    std::deque<util::Bytes> backlog;
    {
      std::lock_guard lock(mutex_);
      handler_ = std::move(handler);
      backlog.swap(pending_);
    }
    for (const auto& frame : backlog) {
      if (handler_) handler_(frame);
    }
  }

  void close() override {
    std::lock_guard lock(mutex_);
    open_ = false;
    handler_ = nullptr;
  }

  [[nodiscard]] bool isOpen() const override {
    std::lock_guard lock(mutex_);
    return open_ && !peer_.expired();
  }

  void bind(std::shared_ptr<InProcTransport> peer) {
    std::lock_guard lock(mutex_);
    peer_ = std::move(peer);
  }

 private:
  void deliver(util::ByteView frame) {
    Handler handler;
    {
      std::lock_guard lock(mutex_);
      if (!open_) return;  // dropped silently, like a closed socket
      if (!handler_) {
        pending_.push_back(frame.toBytes());
        return;
      }
      handler = handler_;
    }
    handler(frame);
  }

  mutable std::mutex mutex_;
  bool open_ = true;
  Handler handler_;
  std::deque<util::Bytes> pending_;
  std::weak_ptr<InProcTransport> peer_;
};

}  // namespace

std::pair<std::shared_ptr<Transport>, std::shared_ptr<Transport>> makeInProcPair() {
  auto a = std::make_shared<InProcTransport>();
  auto b = std::make_shared<InProcTransport>();
  a->bind(b);
  b->bind(a);
  return {a, b};
}

}  // namespace mw::orb
