#include "orb/transport.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace mw::orb {

void Transport::sendv(util::ByteView header, util::ByteView payload) {
  util::Bytes frame;
  frame.reserve(header.size() + payload.size());
  frame.insert(frame.end(), header.data(), header.data() + header.size());
  frame.insert(frame.end(), payload.data(), payload.data() + payload.size());
  send(frame);
}

namespace {

/// One endpoint of an in-process pair. Sending locks only the peer's state,
/// so a handler on side A may send back to side B without self-deadlock.
class InProcTransport final : public Transport,
                              public std::enable_shared_from_this<InProcTransport> {
 public:
  void send(const util::Bytes& frame) override {
    std::shared_ptr<InProcTransport> peer;
    {
      std::lock_guard lock(mutex_);
      if (!open_) throw util::TransportError("InProcTransport: closed");
      peer = peer_.lock();
    }
    if (!peer) throw util::TransportError("InProcTransport: peer gone");
    peer->deliver(frame);
  }

  void onReceive(Handler handler) override {
    // Replay the backlog in order while new deliveries queue behind it
    // (deliver() appends while replaying_ is set), so handler invocations
    // stay serialized and in arrival order.
    std::unique_lock lock(mutex_);
    handler_ = std::move(handler);
    if (replaying_) return;  // an earlier install is already draining
    replaying_ = true;
    inFlight_.push_back(std::this_thread::get_id());
    while (open_ && !pending_.empty() && handler_) {
      util::Bytes frame = std::move(pending_.front());
      pending_.pop_front();
      Handler h = handler_;
      lock.unlock();
      h(frame);
      lock.lock();
    }
    replaying_ = false;
    eraseInFlightLocked();
    lock.unlock();
    cv_.notify_all();
  }

  void close() override {
    std::unique_lock lock(mutex_);
    open_ = false;
    handler_ = nullptr;
    // Transport contract: after close() returns the handler is not invoked
    // again, so wait out invocations already in flight on other threads.
    // An entry for THIS thread means close() was called from inside the
    // handler — that invocation finishes by returning, not by waiting.
    const auto self = std::this_thread::get_id();
    cv_.wait(lock, [&] {
      return std::none_of(inFlight_.begin(), inFlight_.end(),
                          [&](std::thread::id id) { return id != self; });
    });
  }

  [[nodiscard]] bool isOpen() const override {
    std::lock_guard lock(mutex_);
    return open_ && !peer_.expired();
  }

  void bind(std::shared_ptr<InProcTransport> peer) {
    std::lock_guard lock(mutex_);
    peer_ = std::move(peer);
  }

 private:
  void deliver(util::ByteView frame) {
    Handler handler;
    {
      std::lock_guard lock(mutex_);
      if (!open_) return;  // dropped silently, like a closed socket
      if (!handler_ || replaying_) {
        pending_.push_back(frame.toBytes());
        return;
      }
      handler = handler_;
      inFlight_.push_back(std::this_thread::get_id());
    }
    handler(frame);
    {
      std::lock_guard lock(mutex_);
      eraseInFlightLocked();
    }
    cv_.notify_all();
  }

  /// Removes one inFlight_ entry for the calling thread (mutex_ held).
  void eraseInFlightLocked() {
    const auto it = std::find(inFlight_.begin(), inFlight_.end(), std::this_thread::get_id());
    if (it != inFlight_.end()) inFlight_.erase(it);
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;  ///< close() waiting for in-flight handlers
  bool open_ = true;
  bool replaying_ = false;  ///< onReceive is draining pending_
  Handler handler_;
  std::deque<util::Bytes> pending_;
  std::vector<std::thread::id> inFlight_;  ///< threads inside the handler
  std::weak_ptr<InProcTransport> peer_;
};

}  // namespace

std::pair<std::shared_ptr<Transport>, std::shared_ptr<Transport>> makeInProcPair() {
  auto a = std::make_shared<InProcTransport>();
  auto b = std::make_shared<InProcTransport>();
  a->bind(b);
  b->bind(a);
  return {a, b};
}

}  // namespace mw::orb
