// Local publish/subscribe event bus.
//
// Inside a process, MiddleWhere components decouple through topics (trigger
// notifications, adapter lifecycle). The bus can be bridged onto the RPC
// layer by subscribing a forwarder that calls RpcServer::publish.
//
// Exact-topic subscriptions are indexed in a hash map (every remote
// subscription gets its own "notify.<id>" topic, so the exact-topic set
// grows with the subscriber count); wildcard subscriptions live in a
// separate list. publish() therefore touches O(matching) entries, not
// O(subscribers).
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace mw::orb {

class EventBus {
 public:
  using Handler = std::function<void(const std::string& topic, const util::Bytes& payload)>;
  using SubscriptionToken = std::uint64_t;

  /// Subscribes to an exact topic. Returns a token for unsubscribe().
  SubscriptionToken subscribe(const std::string& topic, Handler handler);

  /// Subscribes to every topic (wildcard) — used by bridges.
  SubscriptionToken subscribeAll(Handler handler);

  bool unsubscribe(SubscriptionToken token);

  /// Delivers synchronously to all matching handlers, in subscription order
  /// (exact and wildcard subscriptions interleaved by subscription time).
  void publish(const std::string& topic, const util::Bytes& payload);

  [[nodiscard]] std::size_t subscriberCount() const;

 private:
  struct Entry {
    SubscriptionToken token;  ///< monotonically increasing = subscription order
    Handler handler;
  };

  mutable std::mutex mutex_;
  /// Exact-topic index; entries within a bucket are token-ordered (appended).
  std::unordered_map<std::string, std::vector<Entry>> byTopic_;
  std::vector<Entry> wildcards_;
  /// token -> topic, so unsubscribe() finds its bucket without a scan
  /// ("" = wildcard).
  std::unordered_map<SubscriptionToken, std::string> topicOf_;
  SubscriptionToken next_ = 0;
};

}  // namespace mw::orb
