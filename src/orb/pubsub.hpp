// Local publish/subscribe event bus.
//
// Inside a process, MiddleWhere components decouple through topics (trigger
// notifications, adapter lifecycle). The bus can be bridged onto the RPC
// layer by subscribing a forwarder that calls RpcServer::publish.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace mw::orb {

class EventBus {
 public:
  using Handler = std::function<void(const std::string& topic, const util::Bytes& payload)>;
  using SubscriptionToken = std::uint64_t;

  /// Subscribes to an exact topic. Returns a token for unsubscribe().
  SubscriptionToken subscribe(const std::string& topic, Handler handler);

  /// Subscribes to every topic (wildcard) — used by bridges.
  SubscriptionToken subscribeAll(Handler handler);

  bool unsubscribe(SubscriptionToken token);

  /// Delivers synchronously to all matching handlers, in subscription order.
  void publish(const std::string& topic, const util::Bytes& payload);

  [[nodiscard]] std::size_t subscriberCount() const;

 private:
  struct Entry {
    SubscriptionToken token;
    std::string topic;  // empty = wildcard
    Handler handler;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  SubscriptionToken next_ = 0;
};

}  // namespace mw::orb
