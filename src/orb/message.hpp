// MicroOrb wire messages.
//
// MiddleWhere's components talk through a small ORB (the paper used CORBA /
// Orbacus; §7). A message is either a request, its reply (or error), or an
// asynchronous event (trigger notification). Encoding uses the ByteWriter
// little-endian codec; transports add 4-byte length framing.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace mw::orb {

enum class MessageType : std::uint8_t {
  Request = 1,
  Reply = 2,
  Error = 3,  ///< payload carries the error text
  Event = 4,  ///< target is the topic; requestId unused
};

struct Message {
  MessageType type = MessageType::Request;
  std::uint64_t requestId = 0;  ///< correlates Reply/Error with Request
  std::string target;           ///< method name (Request) or topic (Event)
  util::Bytes payload;

  [[nodiscard]] util::Bytes encode() const;
  /// Everything but the payload bytes: magic, type, requestId, target and
  /// the payload length prefix. Transport::sendv(encodeHeader(), payload)
  /// puts the identical frame on the wire as send(encode()) — without
  /// copying the payload into an intermediate buffer.
  [[nodiscard]] util::Bytes encodeHeader() const;
  /// Throws util::ParseError on malformed frames. Accepts a view (the
  /// reactor decodes in place over its receive buffer); util::Bytes
  /// converts implicitly.
  static Message decode(util::ByteView frame);

  friend bool operator==(const Message&, const Message&) = default;
};

}  // namespace mw::orb
