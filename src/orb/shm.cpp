#include "orb/shm.hpp"

#include <fcntl.h>
#include <linux/futex.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::orb {

using mw::util::TransportError;

namespace {

constexpr std::uint64_t kConnectMagic = 0x4D57434F4E4E3031ULL;  // "MWCONN01"
constexpr std::uint64_t kDataMagic = 0x4D57524E47533031ULL;     // "MWRNGS01"
constexpr std::uint32_t kMaxFrame = 64 * 1024 * 1024;  // same cap as the TCP reactor
constexpr std::uint32_t kRingCapacity = 1 << 20;       // per direction
constexpr std::size_t kSlots = 16;
constexpr std::size_t kNameLen = 128;
constexpr int kSpinBeforeSleep = 256;  // polls before falling back to futex

// Slot states of the connect ring.
constexpr std::uint32_t kSlotFree = 0;
constexpr std::uint32_t kSlotClaimed = 1;
constexpr std::uint32_t kSlotReady = 2;

static_assert(std::atomic<std::uint32_t>::is_always_lock_free);
static_assert(sizeof(std::atomic<std::uint32_t>) == 4);

long futexWait(const std::atomic<std::uint32_t>* addr, std::uint32_t expected,
               const timespec* timeout) {
  return ::syscall(SYS_futex, addr, FUTEX_WAIT, expected, timeout, nullptr, 0);
}

void futexWake(std::atomic<std::uint32_t>* addr, int count) {
  ::syscall(SYS_futex, addr, FUTEX_WAKE, count, nullptr, nullptr, 0);
}

/// One SPSC byte ring. head/tail are free-running byte counts; the producer
/// owns head, the consumer owns tail, and the seq words exist only so a
/// sleeping side has a futex to wait on — synchronization of the buffer
/// bytes themselves rides on the acquire/release pairs of head and tail.
struct Ring {
  alignas(64) std::atomic<std::uint64_t> head;
  alignas(64) std::atomic<std::uint64_t> tail;
  alignas(64) std::atomic<std::uint32_t> dataSeq;   ///< bumped after publish
  std::atomic<std::uint32_t> spaceSeq;              ///< bumped after consume
  std::uint32_t capacity;
  std::uint32_t offset;  ///< buffer start, bytes from the region base
};

/// Per-connection region: handshake header + the two rings + their buffers.
struct DataHeader {
  std::uint64_t magic;
  std::atomic<std::uint32_t> attached;  ///< listener sets 1 when serving
  std::atomic<std::uint32_t> closed;    ///< bit 0: connector closed, bit 1: listener
  std::uint32_t ownerPid;               ///< creator, for staleness probes
  Ring c2l;                             ///< connector -> listener
  Ring l2c;                             ///< listener -> connector
};

struct ConnectSlot {
  std::atomic<std::uint32_t> state;
  char region[kNameLen];
};

/// The listener's rendezvous region ("accept(2), re-enacted in shm").
struct ConnectHeader {
  std::uint64_t magic;
  std::atomic<std::uint32_t> doorbell;  ///< bumped per posted slot
  std::atomic<std::uint32_t> closed;    ///< listener stopped; connectors bail
  std::uint32_t ownerPid;               ///< creator, for staleness probes
  std::uint32_t slotCount;
  ConnectSlot slots[kSlots];
};

constexpr std::size_t dataRegionSize() {
  // Buffers start cacheline-aligned after the header.
  return ((sizeof(DataHeader) + 63) / 64) * 64 + 2 * static_cast<std::size_t>(kRingCapacity);
}

struct Mapped {
  void* base = nullptr;
  std::size_t size = 0;
};

std::string shmPath(const std::string& name) {
  std::string path = "/";
  for (char c : name) path.push_back(c == '/' ? '_' : c);
  return path;
}

/// True when the region at `path` carries one of our headers, is not marked
/// closed, and its recorded owner process still exists — i.e. unlinking it
/// would yank a live rendezvous or handshake out from under that owner.
bool regionLooksLive(const std::string& path) {
  int fd = ::shm_open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) return false;  // vanished already
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 24) {
    ::close(fd);
    return false;  // owner died before initializing it
  }
  const std::size_t len = std::min<std::size_t>(static_cast<std::size_t>(st.st_size), 4096);
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) return false;
  std::uint64_t magic = 0;
  std::memcpy(&magic, base, sizeof(magic));
  std::uint32_t ownerPid = 0;
  bool closed = true;
  if (magic == kConnectMagic) {
    const auto* hdr = static_cast<const ConnectHeader*>(base);
    closed = hdr->closed.load(std::memory_order_acquire) != 0;
    ownerPid = hdr->ownerPid;
  } else if (magic == kDataMagic) {
    const auto* hdr = static_cast<const DataHeader*>(base);
    closed = hdr->closed.load(std::memory_order_acquire) != 0;
    ownerPid = hdr->ownerPid;
  }
  ::munmap(base, len);
  if (closed || ownerPid == 0) return false;
  // kill(pid, 0) probes existence without signaling; EPERM still means the
  // process is there (just not ours to signal) — its region stays.
  return ::kill(static_cast<pid_t>(ownerPid), 0) == 0 || errno == EPERM;
}

Mapped createRegion(const std::string& path, std::size_t size) {
  int fd = ::shm_open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    // The name is taken. Reclaim it only when the previous owner is
    // provably gone — unlinking a live owner's region would silently split
    // the rendezvous: existing mappings keep working while new connectors
    // land on a different region.
    if (regionLooksLive(path)) {
      throw TransportError("shm: region " + path + " belongs to a live process; refusing to reclaim");
    }
    util::logWarn("shm", "reclaiming stale region ", path, " from a dead owner");
    ::shm_unlink(path.c_str());
    fd = ::shm_open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  if (fd < 0) throw TransportError("shm: shm_open(create " + path + ") failed");
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    ::shm_unlink(path.c_str());
    throw TransportError("shm: ftruncate(" + path + ") failed");
  }
  void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    ::shm_unlink(path.c_str());
    throw TransportError("shm: mmap(" + path + ") failed");
  }
  return {base, size};
}

Mapped openRegion(const std::string& path, std::size_t minSize) {
  int fd = ::shm_open(path.c_str(), O_RDWR, 0600);
  if (fd < 0) throw TransportError("shm: no region " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || static_cast<std::size_t>(st.st_size) < minSize) {
    ::close(fd);
    throw TransportError("shm: region " + path + " malformed");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) throw TransportError("shm: mmap(" + path + ") failed");
  return {base, size};
}

void initRing(Ring& ring, std::uint32_t offset) {
  ring.head.store(0, std::memory_order_relaxed);
  ring.tail.store(0, std::memory_order_relaxed);
  ring.dataSeq.store(0, std::memory_order_relaxed);
  ring.spaceSeq.store(0, std::memory_order_relaxed);
  ring.capacity = kRingCapacity;
  ring.offset = offset;
}

/// Both endpoints of a connection; `listenerSide` flips which ring is
/// outbound. One reader thread per transport — shm connections are
/// O(colocated shards), so this stays bounded where TCP's thread-per-
/// connection did not.
class ShmTransport final : public Transport {
 public:
  ShmTransport(Mapped region, bool listenerSide, std::string label)
      : region_(region),
        hdr_(static_cast<DataHeader*>(region.base)),
        out_(listenerSide ? &hdr_->l2c : &hdr_->c2l),
        in_(listenerSide ? &hdr_->c2l : &hdr_->l2c),
        closeBit_(listenerSide ? 2U : 1U),
        label_(std::move(label)) {
    reader_ = std::thread([this] { readLoop(); });
  }

  ~ShmTransport() override {
    close();
    joinReader();
    ::munmap(region_.base, region_.size);
  }

  void send(const util::Bytes& frame) override { sendv(frame, {}); }

  void sendv(util::ByteView header, util::ByteView payload) override {
    const std::uint64_t total = header.size() + payload.size();
    if (total > kMaxFrame) {
      throw TransportError("ShmTransport: frame of " + std::to_string(total) +
                           " bytes exceeds the 64 MiB cap");
    }
    const auto len = static_cast<std::uint32_t>(total);
    std::uint8_t prefix[4];
    for (int i = 0; i < 4; ++i) prefix[i] = static_cast<std::uint8_t>(len >> (8 * i));
    std::lock_guard lock(sendMutex_);
    writeAll(prefix, 4);
    writeAll(header.data(), header.size());
    writeAll(payload.data(), payload.size());
  }

  void onReceive(Handler handler) override {
    // Replay buffered frames in order while the reader thread queues new
    // arrivals behind them (deliver() appends while replaying_ is set), so
    // handler invocations stay serialized and in arrival order.
    std::unique_lock lock(handlerMutex_);
    handler_ = std::move(handler);
    if (replaying_) return;  // an earlier install is already draining
    replaying_ = true;
    while (!pendingIn_.empty() && handler_) {
      util::Bytes frame = std::move(pendingIn_.front());
      pendingIn_.pop_front();
      Handler h = handler_;
      lock.unlock();
      h(frame);
      lock.lock();
    }
    replaying_ = false;
  }

  void close() override {
    open_.store(false, std::memory_order_release);
    hdr_->closed.fetch_or(closeBit_, std::memory_order_release);
    wakeEverything();
    // Transport contract: after close() returns the receive handler is not
    // invoked again. The reader exits promptly (open_ is false), so joining
    // here is cheap — except from the reader's own handler, where the exit
    // is already in motion and joining would deadlock.
    if (std::this_thread::get_id() != reader_.get_id()) joinReader();
  }

  [[nodiscard]] bool isOpen() const override {
    return open_.load(std::memory_order_acquire) &&
           (hdr_->closed.load(std::memory_order_acquire) & ~closeBit_) == 0;
  }

  [[nodiscard]] std::uint64_t oversizedFrames() const override {
    return oversized_.load(std::memory_order_relaxed);
  }

 private:
  void joinReader() {
    std::lock_guard lock(joinMutex_);
    if (reader_.joinable()) reader_.join();
  }

  [[nodiscard]] std::uint8_t* buf(const Ring& ring) const {
    return static_cast<std::uint8_t*>(region_.base) + ring.offset;
  }

  [[nodiscard]] bool peerClosed() const {
    return (hdr_->closed.load(std::memory_order_acquire) & ~closeBit_) != 0;
  }

  void wakeEverything() {
    out_->dataSeq.fetch_add(1, std::memory_order_release);
    out_->spaceSeq.fetch_add(1, std::memory_order_release);
    in_->dataSeq.fetch_add(1, std::memory_order_release);
    in_->spaceSeq.fetch_add(1, std::memory_order_release);
    futexWake(&out_->dataSeq, 1);
    futexWake(&out_->spaceSeq, 1);
    futexWake(&in_->dataSeq, 1);
    futexWake(&in_->spaceSeq, 1);
  }

  /// Producer side (sendMutex_ held): copies `n` bytes into the out ring,
  /// blocking for space — a frame larger than the ring streams through in
  /// chunks, the flow control TCP gives for free.
  void writeAll(const std::uint8_t* data, std::size_t n) {
    while (n > 0) {
      const std::uint64_t head = out_->head.load(std::memory_order_relaxed);
      std::uint64_t tail = out_->tail.load(std::memory_order_acquire);
      int spins = 0;
      while (head - tail >= out_->capacity) {
        if (!open_.load(std::memory_order_acquire) || peerClosed()) {
          throw TransportError("ShmTransport: " + label_ + " closed");
        }
        if (++spins < kSpinBeforeSleep) {
          std::this_thread::yield();
        } else {
          const std::uint32_t seen = out_->spaceSeq.load(std::memory_order_acquire);
          tail = out_->tail.load(std::memory_order_acquire);
          if (head - tail < out_->capacity) break;
          timespec ts{0, 50'000'000};  // bounded nap: closes must be noticed
          futexWait(&out_->spaceSeq, seen, &ts);
          spins = 0;
        }
        tail = out_->tail.load(std::memory_order_acquire);
      }
      const std::size_t room = out_->capacity - static_cast<std::size_t>(head - tail);
      const std::size_t chunk = std::min(n, room);
      const std::size_t at = static_cast<std::size_t>(head % out_->capacity);
      const std::size_t first = std::min(chunk, static_cast<std::size_t>(out_->capacity) - at);
      std::memcpy(buf(*out_) + at, data, first);
      std::memcpy(buf(*out_), data + first, chunk - first);
      out_->head.store(head + chunk, std::memory_order_release);
      out_->dataSeq.fetch_add(1, std::memory_order_release);
      futexWake(&out_->dataSeq, 1);
      data += chunk;
      n -= chunk;
    }
  }

  /// Consumer side (reader thread only). False when the connection closed
  /// with no (more) data — remaining ring bytes are drained first, like a
  /// TCP FIN after buffered data.
  bool readAll(std::uint8_t* dst, std::size_t n) {
    while (n > 0) {
      const std::uint64_t tail = in_->tail.load(std::memory_order_relaxed);
      std::uint64_t head = in_->head.load(std::memory_order_acquire);
      int spins = 0;
      while (head == tail) {
        if (!open_.load(std::memory_order_acquire) || peerClosed()) return false;
        if (++spins < kSpinBeforeSleep) {
          std::this_thread::yield();
        } else {
          const std::uint32_t seen = in_->dataSeq.load(std::memory_order_acquire);
          head = in_->head.load(std::memory_order_acquire);
          if (head != tail) break;
          timespec ts{0, 50'000'000};
          futexWait(&in_->dataSeq, seen, &ts);
          spins = 0;
        }
        head = in_->head.load(std::memory_order_acquire);
      }
      const std::size_t avail = static_cast<std::size_t>(head - tail);
      const std::size_t chunk = std::min(n, avail);
      const std::size_t at = static_cast<std::size_t>(tail % in_->capacity);
      const std::size_t first = std::min(chunk, static_cast<std::size_t>(in_->capacity) - at);
      std::memcpy(dst, buf(*in_) + at, first);
      std::memcpy(dst + first, buf(*in_), chunk - first);
      in_->tail.store(tail + chunk, std::memory_order_release);
      in_->spaceSeq.fetch_add(1, std::memory_order_release);
      futexWake(&in_->spaceSeq, 1);
      dst += chunk;
      n -= chunk;
    }
    return true;
  }

  void readLoop() {
    util::Bytes scratch;
    for (;;) {
      std::uint8_t prefix[4];
      if (!readAll(prefix, 4)) break;
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
      if (len > kMaxFrame) {
        oversized_.fetch_add(1, std::memory_order_relaxed);
        util::logWarn("ShmTransport", "oversized frame from ", label_, ": ", len,
                      " bytes (cap ", kMaxFrame, "); closing connection");
        break;
      }
      scratch.resize(len);
      if (len > 0 && !readAll(scratch.data(), len)) break;
      deliver(util::ByteView(scratch.data(), len));
    }
    open_.store(false, std::memory_order_release);
    wakeEverything();  // unblock senders waiting for ring space
  }

  void deliver(util::ByteView frame) {
    Handler handler;
    {
      std::lock_guard lock(handlerMutex_);
      if (!handler_ || replaying_) {
        pendingIn_.push_back(frame.toBytes());
        return;
      }
      handler = handler_;
    }
    handler(frame);
  }

  const Mapped region_;
  DataHeader* const hdr_;
  Ring* const out_;
  Ring* const in_;
  const std::uint32_t closeBit_;
  const std::string label_;

  std::atomic<bool> open_{true};
  std::mutex sendMutex_;
  std::mutex handlerMutex_;
  Handler handler_;
  std::deque<util::Bytes> pendingIn_;
  bool replaying_ = false;  ///< onReceive is draining pendingIn_
  std::atomic<std::uint64_t> oversized_{0};
  std::mutex joinMutex_;
  std::thread reader_;
};

}  // namespace

bool shmAvailable() {
  const std::string probe = "/mw-shm-probe-" + std::to_string(::getpid());
  int fd = ::shm_open(probe.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) return false;
  ::close(fd);
  ::shm_unlink(probe.c_str());
  return true;
}

std::shared_ptr<Transport> shmConnect(const std::string& name) {
  mw::util::require(!name.empty(), "shmConnect: empty name");
  const std::string connectPath = shmPath(name);
  Mapped connectRegion = openRegion(connectPath, sizeof(ConnectHeader));
  auto* chdr = static_cast<ConnectHeader*>(connectRegion.base);
  auto unmapConnect = [&] { ::munmap(connectRegion.base, connectRegion.size); };
  if (chdr->magic != kConnectMagic || chdr->closed.load(std::memory_order_acquire) != 0) {
    unmapConnect();
    throw TransportError("shmConnect: listener " + name + " is gone");
  }

  // The connection's own region, created and initialized before it is
  // advertised (the slot-state release makes the init visible).
  static std::atomic<std::uint64_t> counter{0};
  const std::string dataPath =
      connectPath + ".c" + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  if (dataPath.size() >= kNameLen) {
    unmapConnect();
    throw TransportError("shmConnect: region name too long: " + dataPath);
  }
  Mapped dataRegion;
  try {
    dataRegion = createRegion(dataPath, dataRegionSize());
  } catch (...) {
    unmapConnect();
    throw;
  }
  auto* dhdr = static_cast<DataHeader*>(dataRegion.base);
  const auto bufStart = static_cast<std::uint32_t>(((sizeof(DataHeader) + 63) / 64) * 64);
  initRing(dhdr->c2l, bufStart);
  initRing(dhdr->l2c, bufStart + kRingCapacity);
  dhdr->attached.store(0, std::memory_order_relaxed);
  dhdr->closed.store(0, std::memory_order_relaxed);
  dhdr->ownerPid = static_cast<std::uint32_t>(::getpid());
  dhdr->magic = kDataMagic;

  auto fail = [&](const std::string& what) -> TransportError {
    // The listener may have mapped the region by now and spun up its
    // transport. Publish the connector's closed bit (and wake the waits on
    // the listener's in/out rings) before abandoning the region, so that
    // transport observes peerClosed() and tears down — otherwise its
    // reader would nap on a region nobody owns for the listener's
    // lifetime.
    dhdr->closed.fetch_or(1U, std::memory_order_release);
    dhdr->c2l.dataSeq.fetch_add(1, std::memory_order_release);
    dhdr->l2c.spaceSeq.fetch_add(1, std::memory_order_release);
    futexWake(&dhdr->c2l.dataSeq, 1);
    futexWake(&dhdr->l2c.spaceSeq, 1);
    ::munmap(dataRegion.base, dataRegion.size);
    ::shm_unlink(dataPath.c_str());
    unmapConnect();
    return TransportError(what);
  };

  // Post the region name into a free connect slot and ring the doorbell.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  bool posted = false;
  while (!posted) {
    for (std::size_t i = 0; i < kSlots && !posted; ++i) {
      std::uint32_t expected = kSlotFree;
      if (chdr->slots[i].state.compare_exchange_strong(expected, kSlotClaimed,
                                                       std::memory_order_acq_rel)) {
        std::strncpy(chdr->slots[i].region, dataPath.c_str(), kNameLen);
        chdr->slots[i].state.store(kSlotReady, std::memory_order_release);
        chdr->doorbell.fetch_add(1, std::memory_order_release);
        futexWake(&chdr->doorbell, 1);
        posted = true;
      }
    }
    if (!posted) {
      if (std::chrono::steady_clock::now() > deadline) {
        throw fail("shmConnect: connect ring of " + name + " is full");
      }
      std::this_thread::yield();
    }
  }

  // Wait for the listener to attach; a dead listener means no transport.
  while (dhdr->attached.load(std::memory_order_acquire) == 0) {
    if (chdr->closed.load(std::memory_order_acquire) != 0) {
      throw fail("shmConnect: listener " + name + " stopped during handshake");
    }
    if (std::chrono::steady_clock::now() > deadline) {
      throw fail("shmConnect: listener " + name + " did not attach");
    }
    const std::uint32_t seen = 0;
    timespec ts{0, 10'000'000};
    futexWait(&dhdr->attached, seen, &ts);
  }

  // Both sides hold mappings; the name has done its job.
  ::shm_unlink(dataPath.c_str());
  unmapConnect();
  return std::make_shared<ShmTransport>(dataRegion, /*listenerSide=*/false, "shm:" + name);
}

struct ShmListener::Impl {
  std::string path;
  Mapped region;
  AcceptHandler onAccept;
  std::atomic<bool> running{true};
  std::thread acceptor;

  [[nodiscard]] ConnectHeader* header() const { return static_cast<ConnectHeader*>(region.base); }

  void acceptLoop(const std::string& name) {
    ConnectHeader* hdr = header();
    while (running.load(std::memory_order_acquire)) {
      const std::uint32_t seen = hdr->doorbell.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < kSlots; ++i) {
        if (hdr->slots[i].state.load(std::memory_order_acquire) != kSlotReady) continue;
        char regionName[kNameLen];
        std::memcpy(regionName, hdr->slots[i].region, kNameLen);
        regionName[kNameLen - 1] = '\0';
        hdr->slots[i].state.store(kSlotFree, std::memory_order_release);
        try {
          Mapped data = openRegion(regionName, dataRegionSize());
          auto* dhdr = static_cast<DataHeader*>(data.base);
          if (dhdr->magic != kDataMagic) {
            ::munmap(data.base, data.size);
            throw TransportError("shm: bad magic in " + std::string(regionName));
          }
          auto transport =
              std::make_shared<ShmTransport>(data, /*listenerSide=*/true, "shm:" + name);
          dhdr->attached.store(1, std::memory_order_release);
          futexWake(&dhdr->attached, 1);
          onAccept(std::move(transport));
        } catch (const TransportError& e) {
          util::logWarn("ShmListener", name, ": dropped connect request: ", e.what());
        }
      }
      if (!running.load(std::memory_order_acquire)) break;
      if (hdr->doorbell.load(std::memory_order_acquire) == seen) {
        timespec ts{0, 100'000'000};  // bounded nap so stop() is noticed
        futexWait(&hdr->doorbell, seen, &ts);
      }
    }
  }
};

ShmListener::ShmListener(std::string name, AcceptHandler onAccept)
    : name_(std::move(name)), impl_(std::make_unique<Impl>()) {
  mw::util::require(!name_.empty(), "ShmListener: empty name");
  mw::util::require(static_cast<bool>(onAccept), "ShmListener: null accept handler");
  impl_->onAccept = std::move(onAccept);
  impl_->path = shmPath(name_);
  impl_->region = createRegion(impl_->path, sizeof(ConnectHeader));
  ConnectHeader* hdr = impl_->header();
  hdr->doorbell.store(0, std::memory_order_relaxed);
  hdr->closed.store(0, std::memory_order_relaxed);
  hdr->ownerPid = static_cast<std::uint32_t>(::getpid());
  hdr->slotCount = kSlots;
  for (auto& slot : hdr->slots) slot.state.store(kSlotFree, std::memory_order_relaxed);
  hdr->magic = kConnectMagic;
  impl_->acceptor = std::thread([impl = impl_.get(), name = name_] { impl->acceptLoop(name); });
}

ShmListener::~ShmListener() {
  stop();
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  ::munmap(impl_->region.base, impl_->region.size);
  ::shm_unlink(impl_->path.c_str());
}

void ShmListener::stop() {
  ConnectHeader* hdr = impl_->header();
  impl_->running.store(false, std::memory_order_release);
  hdr->closed.store(1, std::memory_order_release);
  hdr->doorbell.fetch_add(1, std::memory_order_release);
  futexWake(&hdr->doorbell, kSlots);
}

}  // namespace mw::orb
