// Shared-memory ring transport for colocated processes (the "shm://" lane).
//
// ShardHost spawns its shards on the host the router runs on, so every byte
// routed to them through TCP loopback pays socket syscalls for a memcpy's
// worth of work. This transport replaces the hop with a pair of SPSC byte
// rings in a POSIX shared-memory region: send() copies the frame into the
// ring and wakes the peer with a futex; the peer's reader copies it out.
// No syscalls on the hot path (futexes fire only when a side actually
// sleeps), same Transport interface, same 4-byte framing and 64 MiB frame
// cap as TCP — the cluster oracle tests assert byte-identical answers over
// either lane.
//
// Rendezvous: a listener owns a small "connect ring" region under its name;
// a connector creates its own data region (two rings + handshake header),
// posts the region's name into a connect slot and futex-wakes the listener,
// which maps the region, marks itself attached and serves the new transport
// — accept(2), re-enacted in shared memory. Frames larger than a ring
// stream through it in chunks (the writer blocks for space, the flow
// control TCP gives for free). Each transport runs one reader thread; shm
// connections are O(colocated shards), not O(clients), so the thread count
// stays bounded.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "orb/transport.hpp"

namespace mw::orb {

/// True when POSIX shared memory is usable on this host (/dev/shm mounted,
/// shm_open permitted). ShardHost skips the shm lane when false.
[[nodiscard]] bool shmAvailable();

/// Connects to a ShmListener by name. Throws util::TransportError when the
/// listener's region does not exist (e.g. the name came from another host)
/// or the listener does not attach within the handshake timeout.
std::shared_ptr<Transport> shmConnect(const std::string& name);

/// Accepts shared-memory connections under `name` (a registry-safe string;
/// the region is created as "/<name>" in /dev/shm). Each accepted
/// connection is handed to `onAccept` as a ready transport.
class ShmListener {
 public:
  using AcceptHandler = std::function<void(std::shared_ptr<Transport>)>;

  ShmListener(std::string name, AcceptHandler onAccept);
  ~ShmListener();

  ShmListener(const ShmListener&) = delete;
  ShmListener& operator=(const ShmListener&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void stop();

 private:
  struct Impl;
  std::string name_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mw::orb
