// TCP loopback transport with 4-byte little-endian length framing.
//
// Gives the MicroOrb a genuinely distributed path: the Fig-9 benchmark and
// the distribution tests run adapters and the Location Service on separate
// sockets, like the paper's CORBA deployment. Connections no longer own a
// reader thread each — every socket is adopted by an epoll reactor
// (event_loop.hpp), so a server with thousands of connections runs O(loops)
// reader threads, not O(connections).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "orb/event_loop.hpp"
#include "orb/transport.hpp"

namespace mw::orb {

/// Connects to a listening endpoint and registers the socket with `group`
/// (the process-wide EventLoopGroup::shared() when null). Throws
/// util::TransportError on failure.
std::shared_ptr<Transport> tcpConnect(const std::string& host, std::uint16_t port,
                                      const std::shared_ptr<EventLoopGroup>& group = nullptr);

/// Accepts connections on 127.0.0.1:<port> (0 = ephemeral). Each accepted
/// connection is adopted by the event-loop group and handed to `onAccept`
/// as a ready transport.
class TcpListener {
 public:
  using AcceptHandler = std::function<void(std::shared_ptr<Transport>)>;

  struct Options {
    /// listen(2) backlog — pending-connection queue depth. The old
    /// hardcoded 16 stalled connection storms (64+ concurrent dials).
    int backlog = 128;
    /// Reactor adopting accepted sockets; null = EventLoopGroup::shared().
    std::shared_ptr<EventLoopGroup> group;
  };

  TcpListener(std::uint16_t port, AcceptHandler onAccept) : TcpListener(port, onAccept, {}) {}
  TcpListener(std::uint16_t port, AcceptHandler onAccept, Options options);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The actually bound port (useful with port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_ = 0;
};

}  // namespace mw::orb
