// TCP loopback transport with 4-byte little-endian length framing.
//
// Gives the MicroOrb a genuinely distributed path: the Fig-9 benchmark and
// the distribution tests run adapters and the Location Service on separate
// sockets, like the paper's CORBA deployment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "orb/transport.hpp"

namespace mw::orb {

/// Connects to a listening endpoint. Throws util::TransportError on failure.
std::shared_ptr<Transport> tcpConnect(const std::string& host, std::uint16_t port);

/// Accepts connections on 127.0.0.1:<port> (0 = ephemeral). Each accepted
/// connection is handed to `onAccept` as a ready transport.
class TcpListener {
 public:
  using AcceptHandler = std::function<void(std::shared_ptr<Transport>)>;

  TcpListener(std::uint16_t port, AcceptHandler onAccept);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The actually bound port (useful with port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_ = 0;
};

}  // namespace mw::orb
