// Transport abstraction: a bidirectional channel carrying whole frames.
//
// Three implementations: an in-process pair (deterministic, used by tests
// and same-process wiring), TCP on an epoll reactor (tcp.hpp + event_loop.hpp)
// and a shared-memory ring for colocated processes (shm.hpp). Handlers may be
// invoked on arbitrary threads; implementations serialize delivery per
// transport. Received frames arrive as util::ByteView over the transport's
// receive buffer — valid only for the duration of the handler call.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "util/bytes.hpp"

namespace mw::orb {

class Transport {
 public:
  using Handler = std::function<void(util::ByteView frame)>;

  virtual ~Transport() = default;

  /// Sends one frame. Throws util::TransportError when the channel is down.
  virtual void send(const util::Bytes& frame) = 0;

  /// Gather-send: `header` immediately followed by `payload` goes on the
  /// wire as ONE frame. The reactor transports implement this with a single
  /// writev (no payload copy); the base implementation concatenates and
  /// delegates to send().
  virtual void sendv(util::ByteView header, util::ByteView payload);

  /// Non-blocking send for fan-out paths: where send() would WAIT for a
  /// slow peer (the reactor transport blocks once its backlog cap is hit),
  /// trySend returns false and drops the frame instead. Broadcast callers
  /// (RpcServer::publish) use this so one wedged subscriber cannot stall
  /// delivery to every other one. Transports without backpressure inherit
  /// the blocking behavior (they never report a drop). Still throws
  /// util::TransportError when the channel is down.
  virtual bool trySend(const util::Bytes& frame) {
    send(frame);
    return true;
  }

  /// Installs the receive handler. Frames arriving before a handler is set
  /// are buffered and delivered on installation.
  virtual void onReceive(Handler handler) = 0;

  /// Closes the channel. After close() returns, the receive handler is not
  /// invoked again (reactor transports synchronize with in-flight delivery),
  /// so owners may safely destroy handler state.
  virtual void close() = 0;
  [[nodiscard]] virtual bool isOpen() const = 0;

  /// Frames refused because their length prefix exceeded the 64 MiB sanity
  /// cap (the connection is closed when this trips). Cumulative.
  [[nodiscard]] virtual std::uint64_t oversizedFrames() const { return 0; }
};

/// Creates a connected in-process transport pair: frames sent on one side
/// are delivered synchronously to the other side's handler.
std::pair<std::shared_ptr<Transport>, std::shared_ptr<Transport>> makeInProcPair();

}  // namespace mw::orb
