// Transport abstraction: a bidirectional channel carrying whole frames.
//
// Two implementations: an in-process pair (deterministic, used by tests and
// same-process wiring) and TCP loopback (tcp.hpp). Handlers may be invoked
// on arbitrary threads; implementations serialize delivery per transport.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "util/bytes.hpp"

namespace mw::orb {

class Transport {
 public:
  using Handler = std::function<void(const util::Bytes& frame)>;

  virtual ~Transport() = default;

  /// Sends one frame. Throws util::TransportError when the channel is down.
  virtual void send(const util::Bytes& frame) = 0;

  /// Installs the receive handler. Frames arriving before a handler is set
  /// are buffered and delivered on installation.
  virtual void onReceive(Handler handler) = 0;

  virtual void close() = 0;
  [[nodiscard]] virtual bool isOpen() const = 0;
};

/// Creates a connected in-process transport pair: frames sent on one side
/// are delivered synchronously to the other side's handler.
std::pair<std::shared_ptr<Transport>, std::shared_ptr<Transport>> makeInProcPair();

}  // namespace mw::orb
