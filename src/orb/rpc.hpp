// Request/reply RPC over a Transport, plus asynchronous event delivery.
//
// Server side: register named methods, then serve any number of transports.
// By default a request executes inline on the delivering thread (an event
// loop for reactor transports). With enableDispatcher(N) the delivering
// threads only decode and enqueue: decoded requests are handed to N executor
// lanes (a util::WorkerPool), each lane a FIFO, and replies are written back
// through the owning transport. A per-method LaneSelector chooses the lane —
// same lane means same execution order, so ordering-sensitive methods (e.g.
// sensor ingest keyed by object) route deterministically while order-free
// reads spread round-robin across every lane. A connection is pinned to one
// event loop, so its frames reach handleFrame in order and the lane routing
// (and with it the reading-store stripe invariant) holds end to end.
// Client side: blocking call() with timeout; event handlers for server-push
// Event messages (trigger notifications, §4.3).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "orb/message.hpp"
#include "orb/transport.hpp"
#include "util/clock.hpp"
#include "util/worker_pool.hpp"

namespace mw::orb {

class RpcServer {
 public:
  /// A method takes the request payload and returns the reply payload.
  /// Exceptions become Error replies carrying the exception text.
  using Method = std::function<util::Bytes(const util::Bytes&)>;

  /// Picks the executor lane for a dispatched request. `connection` is an
  /// opaque key identifying the transport the request arrived on (stable for
  /// the connection's lifetime). The returned value is taken modulo the lane
  /// count. Requests routed to the same lane execute in arrival order; a
  /// selector that throws falls back to the per-connection default.
  using LaneSelector =
      std::function<std::size_t(const util::Bytes& payload, std::uintptr_t connection)>;

  /// Serving-path observability. All counters are cumulative since
  /// construction; handleFrame used to drop every one of these silently.
  struct Stats {
    std::uint64_t undecodableFrames = 0;   ///< junk frames dropped before dispatch
    std::uint64_t unknownMethodErrors = 0; ///< requests naming no registered method
    std::uint64_t onewayExceptions = 0;    ///< exceptions swallowed by oneway semantics
    std::uint64_t dispatchedRequests = 0;  ///< requests executed on a lane
    std::uint64_t inlineRequests = 0;      ///< requests executed on the reader thread
    std::uint64_t oversizedFrames = 0;     ///< frames over the 64 MiB cap; the
                                           ///< transport logged the peer and closed
    std::uint64_t droppedEvents = 0;       ///< publishes refused by a subscriber's
                                           ///< full send backlog (trySend said no)
  };

  RpcServer() = default;
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  void registerMethod(const std::string& name, Method method);
  /// Registers a method with an explicit lane routing rule (used only while
  /// the dispatcher is enabled).
  void registerMethod(const std::string& name, Method method, LaneSelector lane);

  /// Switches the serving path from inline execution to `lanes` executor
  /// threads. Safe to call while serving; passing 0 restores inline
  /// execution. Methods without a LaneSelector route by connection, so one
  /// client's pipelined requests keep their order while different clients
  /// run in parallel.
  void enableDispatcher(std::size_t lanes);
  [[nodiscard]] std::size_t dispatchLanes() const;

  /// A selector that spreads requests round-robin over all lanes — for
  /// thread-safe, order-free methods (pull queries) that should never queue
  /// behind one another.
  [[nodiscard]] static LaneSelector roundRobinLanes();

  /// Starts serving requests arriving on this transport. The server keeps
  /// the transport alive; events published via publish() go to every served
  /// transport.
  void serve(std::shared_ptr<Transport> transport);

  /// Pushes an event to all connected clients.
  void publish(const std::string& topic, const util::Bytes& payload);

  [[nodiscard]] std::size_t connectionCount() const;

  [[nodiscard]] Stats stats() const;

 private:
  void handleFrame(Transport* transport, const std::weak_ptr<Transport>& weak,
                   util::ByteView frame);
  /// Executes one decoded request and writes the reply (two-way) through
  /// `transport`. Shared by the inline and dispatched paths.
  void execute(Transport* transport, const Message& request, const Method& method);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::pair<Method, LaneSelector>> methods_;
  /// Owns served transports. Declared after the method table so ~RpcServer
  /// tears connections down (close() guarantees handler quiescence) before
  /// the method table dies.
  std::vector<std::shared_ptr<Transport>> connections_;
  /// Executor lanes; null = inline execution. Torn down explicitly by
  /// ~RpcServer after every connection is closed.
  std::unique_ptr<util::WorkerPool> dispatcher_;

  std::atomic<std::uint64_t> undecodableFrames_{0};
  std::atomic<std::uint64_t> unknownMethodErrors_{0};
  std::atomic<std::uint64_t> onewayExceptions_{0};
  std::atomic<std::uint64_t> dispatchedRequests_{0};
  std::atomic<std::uint64_t> inlineRequests_{0};
  /// Oversized-frame counts carried over from pruned connections, so the
  /// Stats total survives the transports that produced it.
  std::atomic<std::uint64_t> prunedOversized_{0};
  std::atomic<std::uint64_t> droppedEvents_{0};
};

class RpcClient {
 public:
  using EventHandler = std::function<void(const std::string& topic, const util::Bytes& payload)>;

  explicit RpcClient(std::shared_ptr<Transport> transport);

  /// Closes the transport first (close() guarantees the receive handler is
  /// not invoked again), so the client's mutex/cv/pending state outlives
  /// every delivery.
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Blocking call; throws util::TimeoutError when the deadline expires with
  /// no reply, util::TransportError on disconnect, and util::MwError when
  /// the server replied with an Error message. Without an explicit timeout
  /// the per-client deadline (setCallTimeout, default 5 s) applies.
  /// Calls multiplex: any number of threads may call() concurrently over the
  /// one connection — each request carries a correlation id, the transport
  /// interleaves frames, and replies resolve whichever caller they answer,
  /// in whatever order the server's lanes finish.
  util::Bytes call(const std::string& method, const util::Bytes& args);
  util::Bytes call(const std::string& method, const util::Bytes& args, util::Duration timeout);

  /// Per-client default deadline used by call() when none is passed. Routers
  /// shrink this so a dead shard costs a bounded wait instead of 5 s.
  void setCallTimeout(util::Duration timeout);
  [[nodiscard]] util::Duration callTimeout() const;

  /// Fire-and-forget invocation (CORBA "oneway"): the request carries id 0,
  /// the server executes the method but sends no reply, and errors are
  /// swallowed server-side. Use for high-rate sensor ingest where the
  /// round-trip would dominate (§7 push model).
  void notify(const std::string& method, const util::Bytes& args);

  /// Installs the handler for server-push events. The swap synchronizes with
  /// delivery: once onEvent returns, the previously installed handler is not
  /// running and will never run again — so a handler that captures `this`
  /// can be safely uninstalled (onEvent(nullptr)) from its owner's
  /// destructor. Do not call onEvent from inside a handler; it self-locks.
  void onEvent(EventHandler handler);

  [[nodiscard]] bool isOpen() const { return transport_ && transport_->isOpen(); }

 private:
  struct Pending {
    bool done = false;
    bool isError = false;
    util::Bytes payload;
  };

  void handleFrame(util::ByteView frame);

  std::shared_ptr<Transport> transport_;
  std::atomic<util::Duration::rep> callTimeoutMs_{5000};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t nextId_ = 0;
  std::unordered_map<std::uint64_t, Pending> pending_;
  // Held across event-handler invocation so onEvent() swaps quiesce; kept
  // separate from mutex_ so a long handler never blocks call()/reply paths.
  std::mutex eventMutex_;
  EventHandler eventHandler_;
};

}  // namespace mw::orb
