// Request/reply RPC over a Transport, plus asynchronous event delivery.
//
// Server side: register named methods, then serve any number of transports.
// Client side: blocking call() with timeout; event handlers for server-push
// Event messages (trigger notifications, §4.3).
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "orb/message.hpp"
#include "orb/transport.hpp"
#include "util/clock.hpp"

namespace mw::orb {

class RpcServer {
 public:
  /// A method takes the request payload and returns the reply payload.
  /// Exceptions become Error replies carrying the exception text.
  using Method = std::function<util::Bytes(const util::Bytes&)>;

  void registerMethod(const std::string& name, Method method);

  /// Starts serving requests arriving on this transport. The server keeps
  /// the transport alive; events published via publish() go to every served
  /// transport.
  void serve(std::shared_ptr<Transport> transport);

  /// Pushes an event to all connected clients.
  void publish(const std::string& topic, const util::Bytes& payload);

  [[nodiscard]] std::size_t connectionCount() const;

 private:
  void handleFrame(Transport* transport, const util::Bytes& frame);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Method> methods_;
  /// Owns served transports. Declared last so ~RpcServer tears connections
  /// down (joining their reader threads) before the method table dies.
  std::vector<std::shared_ptr<Transport>> connections_;
};

class RpcClient {
 public:
  using EventHandler = std::function<void(const std::string& topic, const util::Bytes& payload)>;

  explicit RpcClient(std::shared_ptr<Transport> transport);

  /// Closes and releases the transport first, so its reader thread is joined
  /// before the client's mutex/cv/pending state is destroyed.
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Blocking call; throws util::TransportError on timeout/disconnect and
  /// util::MwError when the server replied with an Error message.
  util::Bytes call(const std::string& method, const util::Bytes& args,
                   util::Duration timeout = util::sec(5));

  /// Fire-and-forget invocation (CORBA "oneway"): the request carries id 0,
  /// the server executes the method but sends no reply, and errors are
  /// swallowed server-side. Use for high-rate sensor ingest where the
  /// round-trip would dominate (§7 push model).
  void notify(const std::string& method, const util::Bytes& args);

  /// Installs the handler for server-push events.
  void onEvent(EventHandler handler);

  [[nodiscard]] bool isOpen() const { return transport_ && transport_->isOpen(); }

 private:
  struct Pending {
    bool done = false;
    bool isError = false;
    util::Bytes payload;
  };

  void handleFrame(const util::Bytes& frame);

  std::shared_ptr<Transport> transport_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t nextId_ = 0;
  std::unordered_map<std::uint64_t, Pending> pending_;
  EventHandler eventHandler_;
};

}  // namespace mw::orb
