#include "orb/pubsub.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mw::orb {

EventBus::SubscriptionToken EventBus::subscribe(const std::string& topic, Handler handler) {
  mw::util::require(!topic.empty(), "EventBus::subscribe: empty topic (use subscribeAll)");
  mw::util::require(static_cast<bool>(handler), "EventBus::subscribe: null handler");
  std::lock_guard lock(mutex_);
  entries_.push_back(Entry{++next_, topic, std::move(handler)});
  return entries_.back().token;
}

EventBus::SubscriptionToken EventBus::subscribeAll(Handler handler) {
  mw::util::require(static_cast<bool>(handler), "EventBus::subscribeAll: null handler");
  std::lock_guard lock(mutex_);
  entries_.push_back(Entry{++next_, "", std::move(handler)});
  return entries_.back().token;
}

bool EventBus::unsubscribe(SubscriptionToken token) {
  std::lock_guard lock(mutex_);
  auto before = entries_.size();
  std::erase_if(entries_, [token](const Entry& e) { return e.token == token; });
  return entries_.size() != before;
}

void EventBus::publish(const std::string& topic, const util::Bytes& payload) {
  std::vector<Handler> handlers;
  {
    std::lock_guard lock(mutex_);
    for (const Entry& e : entries_) {
      if (e.topic.empty() || e.topic == topic) handlers.push_back(e.handler);
    }
  }
  for (const auto& h : handlers) h(topic, payload);
}

std::size_t EventBus::subscriberCount() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace mw::orb
