#include "orb/pubsub.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mw::orb {

EventBus::SubscriptionToken EventBus::subscribe(const std::string& topic, Handler handler) {
  mw::util::require(!topic.empty(), "EventBus::subscribe: empty topic (use subscribeAll)");
  mw::util::require(static_cast<bool>(handler), "EventBus::subscribe: null handler");
  std::lock_guard lock(mutex_);
  const SubscriptionToken token = ++next_;
  byTopic_[topic].push_back(Entry{token, std::move(handler)});
  topicOf_[token] = topic;
  return token;
}

EventBus::SubscriptionToken EventBus::subscribeAll(Handler handler) {
  mw::util::require(static_cast<bool>(handler), "EventBus::subscribeAll: null handler");
  std::lock_guard lock(mutex_);
  const SubscriptionToken token = ++next_;
  wildcards_.push_back(Entry{token, std::move(handler)});
  topicOf_[token] = "";
  return token;
}

bool EventBus::unsubscribe(SubscriptionToken token) {
  std::lock_guard lock(mutex_);
  auto where = topicOf_.find(token);
  if (where == topicOf_.end()) return false;
  auto drop = [token](const Entry& e) { return e.token == token; };
  if (where->second.empty()) {
    std::erase_if(wildcards_, drop);
  } else {
    auto bucket = byTopic_.find(where->second);
    std::erase_if(bucket->second, drop);
    if (bucket->second.empty()) byTopic_.erase(bucket);
  }
  topicOf_.erase(where);
  return true;
}

void EventBus::publish(const std::string& topic, const util::Bytes& payload) {
  // Merge the topic's bucket with the wildcard list by token so delivery
  // order stays global subscription order; both lists are token-ascending.
  std::vector<Handler> handlers;
  {
    std::lock_guard lock(mutex_);
    auto bucket = byTopic_.find(topic);
    const std::vector<Entry> empty;
    const std::vector<Entry>& exact = bucket == byTopic_.end() ? empty : bucket->second;
    handlers.reserve(exact.size() + wildcards_.size());
    std::size_t e = 0, w = 0;
    while (e < exact.size() || w < wildcards_.size()) {
      if (w == wildcards_.size() ||
          (e < exact.size() && exact[e].token < wildcards_[w].token)) {
        handlers.push_back(exact[e++].handler);
      } else {
        handlers.push_back(wildcards_[w++].handler);
      }
    }
  }
  for (const auto& h : handlers) h(topic, payload);
}

std::size_t EventBus::subscriberCount() const {
  std::lock_guard lock(mutex_);
  return topicOf_.size();
}

}  // namespace mw::orb
