#include "orb/event_loop.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::orb {

using mw::util::TransportError;

namespace {

/// Sanity cap shared with the shm transport: a length prefix beyond this is
/// a protocol error (or an attack), never a legitimate frame.
constexpr std::uint32_t kMaxFrame = 64 * 1024 * 1024;
/// Bytes buffered per connection before senders block (the flow control the
/// old blocking sendAll provided implicitly). The loop itself never blocks —
/// inline replies past the cap buffer unboundedly rather than deadlock the
/// loop that must flush them.
constexpr std::size_t kMaxSendBacklog = 8 * 1024 * 1024;
/// Receive chunk per readiness event; level-triggered epoll re-signals, so
/// one bounded read per event keeps delivery fair across connections.
constexpr std::size_t kReadChunk = 64 * 1024;

void closeFd(int fd) {
  if (fd >= 0) ::close(fd);
}

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw TransportError("EventLoop: fcntl(O_NONBLOCK) failed");
  }
}

struct GroupCounters {
  std::atomic<std::uint64_t> framesIn{0};
  std::atomic<std::uint64_t> framesOut{0};
  std::atomic<std::uint64_t> bytesIn{0};
  std::atomic<std::uint64_t> bytesOut{0};
  std::atomic<std::uint64_t> oversizedFrames{0};
};

class EventLoop;

/// A reactor-owned connection. The receive buffer is touched only by the
/// loop thread; sends are serialized by sendMutex_ and try the socket
/// inline (one writev), spilling the remainder into backlog_ for the loop
/// to flush on EPOLLOUT. The fd is immutable and closed only by the
/// destructor, after the loop has dropped the connection — no thread can
/// race a recycled descriptor.
class EpollConn final : public Transport, public std::enable_shared_from_this<EpollConn> {
 public:
  EpollConn(EventLoop* loop, int fd, std::string peer, GroupCounters* counters)
      : loop_(loop), fd_(fd), peer_(std::move(peer)), counters_(counters) {}

  ~EpollConn() override { closeFd(fd_); }

  void send(const util::Bytes& frame) override { sendv(frame, {}); }
  void sendv(util::ByteView header, util::ByteView payload) override;
  bool trySend(const util::Bytes& frame) override;

  void onReceive(Handler handler) override {
    // Replay buffered frames without breaking the per-connection delivery
    // order: while replaying_ is set, the loop thread queues new arrivals
    // behind the backlog instead of invoking the handler concurrently, and
    // this thread drains the queue front-to-back.
    std::unique_lock lock(handlerMutex_);
    handler_ = std::move(handler);
    if (replaying_) return;  // an earlier install is already draining
    replaying_ = true;
    while (!pendingIn_.empty() && handler_) {
      util::Bytes frame = std::move(pendingIn_.front());
      pendingIn_.pop_front();
      Handler h = handler_;
      lock.unlock();
      h(frame);
      lock.lock();
    }
    replaying_ = false;
  }

  void close() override;

  [[nodiscard]] bool isOpen() const override { return open_.load(std::memory_order_acquire); }

  [[nodiscard]] std::uint64_t oversizedFrames() const override {
    return oversized_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] const std::string& peer() const noexcept { return peer_; }

  /// Loop thread: socket readable. Returns false when the connection died
  /// (EOF, error, oversized frame) and must be removed.
  bool handleReadable();
  /// Loop thread: socket writable — flush the backlog.
  void handleWritable();
  /// Marks the connection dead and wakes blocked senders. Loop thread or
  /// close().
  void markClosed();

  /// Loop thread, at registration time: the epoll interest to ADD with.
  /// Taken under sendMutex_ so a send that spilled before the fd was
  /// registered (armWriteLocked's EPOLL_CTL_MOD failed with ENOENT) gets
  /// its EPOLLOUT here instead of being stranded.
  [[nodiscard]] std::uint32_t initialEvents() {
    std::lock_guard lock(sendMutex_);
    writeArmed_ = backlogPos_ < backlog_.size();
    return EPOLLIN | (writeArmed_ ? EPOLLOUT : 0);
  }

 private:
  void deliver(util::ByteView frame) {
    Handler handler;
    {
      std::lock_guard lock(handlerMutex_);
      if (!handler_ || replaying_) {
        pendingIn_.push_back(frame.toBytes());
        return;
      }
      handler = handler_;
    }
    handler(frame);
  }

  /// Appends to backlog_ and arms EPOLLOUT (sendMutex_ held).
  void spill(const std::uint8_t* data, std::size_t n);
  void armWriteLocked();
  /// One framed gather-send: socket fast path, spilling leftovers to the
  /// backlog (sendMutex_ held; caller has settled backpressure).
  void transmitLocked(util::ByteView header, util::ByteView payload);

  EventLoop* const loop_;
  const int fd_;
  const std::string peer_;
  GroupCounters* const counters_;

  std::atomic<bool> open_{true};

  std::mutex sendMutex_;
  std::condition_variable sendCv_;       ///< senders blocked on backlog_ room
  std::vector<std::uint8_t> backlog_;    ///< unflushed outbound bytes, in order
  std::size_t backlogPos_ = 0;           ///< flushed prefix of backlog_
  bool writeArmed_ = false;

  std::mutex handlerMutex_;
  Handler handler_;
  std::deque<util::Bytes> pendingIn_;
  bool replaying_ = false;  ///< onReceive is draining pendingIn_

  // Receive state: loop thread only.
  std::vector<std::uint8_t> rbuf_;
  std::size_t rpos_ = 0;  ///< parse offset
  std::size_t rend_ = 0;  ///< filled bytes

  std::atomic<std::uint64_t> oversized_{0};
};

/// One epoll thread. Connections register/deregister through tasks executed
/// on the loop thread, so the fd->connection map needs no lock; foreign
/// threads wake the loop through an eventfd.
class EventLoop {
 public:
  explicit EventLoop(GroupCounters* counters) : counters_(counters) {
    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0) throw TransportError("EventLoop: epoll_create1 failed");
    wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wakeFd_ < 0) {
      closeFd(epollFd_);
      throw TransportError("EventLoop: eventfd failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakeFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev);
    thread_ = std::thread([this] { run(); });
  }

  ~EventLoop() {
    {
      std::lock_guard lock(taskMutex_);
      stopping_ = true;
    }
    wake();
    if (thread_.joinable()) thread_.join();
    closeFd(wakeFd_);
    closeFd(epollFd_);
  }

  [[nodiscard]] GroupCounters* counters() const noexcept { return counters_; }
  [[nodiscard]] int epollFd() const noexcept { return epollFd_; }
  [[nodiscard]] bool onLoopThread() const noexcept {
    return std::this_thread::get_id() == thread_.get_id();
  }

  void add(std::shared_ptr<EpollConn> conn) {
    post([this, conn = std::move(conn)] {
      if (stopped_) {
        conn->markClosed();
        return;
      }
      epoll_event ev{};
      ev.events = conn->initialEvents();
      ev.data.fd = conn->fd();
      if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, conn->fd(), &ev) != 0) {
        conn->markClosed();
        return;
      }
      conns_.emplace(conn->fd(), std::move(conn));
      connCount_.fetch_add(1, std::memory_order_relaxed);
    });
  }

  /// Removes the connection and returns only when no further handler
  /// invocation can happen — the synchronization close() promises.
  void removeSync(const std::shared_ptr<EpollConn>& conn) {
    if (onLoopThread()) {
      removeNow(conn->fd(), conn.get());
      return;
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    const bool posted = post([this, fd = conn->fd(), raw = conn.get(), done] {
      removeNow(fd, raw);
      done->store(true, std::memory_order_release);
      std::lock_guard lock(taskMutex_);
      taskCv_.notify_all();
    });
    if (!posted) return;  // loop already stopped and drained — nothing runs
    std::unique_lock lock(taskMutex_);
    taskCv_.wait(lock, [&] { return done->load(std::memory_order_acquire); });
  }

  /// Queues a task for the loop thread. False when the loop has stopped.
  bool post(std::function<void()> task) {
    {
      std::lock_guard lock(taskMutex_);
      if (stopping_) return false;
      tasks_.push_back(std::move(task));
    }
    wake();
    return true;
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeFd_, &one, sizeof(one));
  }

  [[nodiscard]] std::size_t connectionCount() const {
    return connCount_.load(std::memory_order_relaxed);
  }

 private:
  void run() {
    std::vector<epoll_event> events(64);
    for (;;) {
      int n = ::epoll_wait(epollFd_, events.data(), static_cast<int>(events.size()), -1);
      if (n < 0) {
        if (errno == EINTR) continue;  // signals are not shutdown
        break;
      }
      for (int i = 0; i < n; ++i) {
        const epoll_event& ev = events[i];
        if (ev.data.fd == wakeFd_) {
          std::uint64_t buf;
          while (::read(wakeFd_, &buf, sizeof(buf)) > 0) {
          }
          continue;
        }
        // Pin by fd: an earlier event in this batch may have removed the
        // connection, so the map lookup is the validity check.
        auto it = conns_.find(ev.data.fd);
        if (it == conns_.end()) continue;
        std::shared_ptr<EpollConn> conn = it->second;
        if ((ev.events & EPOLLOUT) != 0) conn->handleWritable();
        if ((ev.events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
          if (!conn->handleReadable()) removeNow(conn->fd(), conn.get());
        }
      }
      // Tasks drain only AFTER the wakeFd counter has been consumed above.
      // The reverse order loses wakeups: a task posted between the drain
      // and the eventfd read would have its signal swallowed with the task
      // still queued — stranded until some unrelated event arrives.
      drainTasks();
      if (stoppingRequested()) break;
    }
    // Shutdown: run straggler tasks (registrations mark their connection
    // closed via the stopped_ flag), then drop every connection.
    stopped_ = true;
    drainTasks();
    for (auto& [fd, conn] : conns_) {
      ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
      conn->markClosed();
    }
    connCount_.store(0, std::memory_order_relaxed);
    conns_.clear();
  }

  bool stoppingRequested() {
    std::lock_guard lock(taskMutex_);
    return stopping_;
  }

  void drainTasks() {
    std::deque<std::function<void()>> tasks;
    {
      std::lock_guard lock(taskMutex_);
      tasks.swap(tasks_);
    }
    for (auto& task : tasks) task();
  }

  void removeNow(int fd, const EpollConn* expected) {
    auto it = conns_.find(fd);
    if (it == conns_.end() || it->second.get() != expected) return;  // already gone
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    it->second->markClosed();
    conns_.erase(it);
    connCount_.fetch_sub(1, std::memory_order_relaxed);
  }

  GroupCounters* const counters_;
  int epollFd_ = -1;
  int wakeFd_ = -1;

  std::mutex taskMutex_;
  std::condition_variable taskCv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;

  /// Loop thread only (reads and writes); stopped_ likewise.
  std::unordered_map<int, std::shared_ptr<EpollConn>> conns_;
  bool stopped_ = false;
  std::atomic<std::size_t> connCount_{0};

  std::thread thread_;
};

void EpollConn::sendv(util::ByteView header, util::ByteView payload) {
  std::unique_lock lock(sendMutex_);
  if (!open_.load(std::memory_order_acquire)) throw TransportError("EpollConn: closed");

  // Backpressure: block until the loop has drained the backlog below the
  // cap — except on the loop thread itself, which is the drainer.
  if (backlog_.size() - backlogPos_ > kMaxSendBacklog && !loop_->onLoopThread()) {
    sendCv_.wait(lock, [&] {
      return backlog_.size() - backlogPos_ <= kMaxSendBacklog ||
             !open_.load(std::memory_order_acquire);
    });
    if (!open_.load(std::memory_order_acquire)) throw TransportError("EpollConn: closed");
  }
  transmitLocked(header, payload);
}

bool EpollConn::trySend(const util::Bytes& frame) {
  std::lock_guard lock(sendMutex_);
  if (!open_.load(std::memory_order_acquire)) throw TransportError("EpollConn: closed");
  // Where sendv would wait on the cv for backlog room, refuse: the caller
  // (broadcast fan-out) drops this frame rather than stalling on one slow
  // peer.
  if (backlog_.size() - backlogPos_ > kMaxSendBacklog && !loop_->onLoopThread()) {
    return false;
  }
  transmitLocked(frame, {});
  return true;
}

void EpollConn::transmitLocked(util::ByteView header, util::ByteView payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(header.size() + payload.size());
  std::uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) prefix[i] = static_cast<std::uint8_t>(len >> (8 * i));

  counters_->framesOut.fetch_add(1, std::memory_order_relaxed);
  counters_->bytesOut.fetch_add(4 + len, std::memory_order_relaxed);

  if (!backlog_.empty()) {
    // Earlier bytes still queued: preserve order, let the loop flush.
    spill(prefix, 4);
    spill(header.data(), header.size());
    spill(payload.data(), payload.size());
    return;
  }

  // Fast path: one gathering write straight to the socket (sendmsg rather
  // than writev for MSG_NOSIGNAL — a dead peer must surface as EPIPE, not
  // kill the process).
  iovec iov[3];
  iov[0] = {prefix, 4};
  iov[1] = {const_cast<std::uint8_t*>(header.data()), header.size()};
  iov[2] = {const_cast<std::uint8_t*>(payload.data()), payload.size()};
  int iovIdx = 0;
  int iovCount = 3;
  while (iovCount > iovIdx) {
    msghdr msg{};
    msg.msg_iov = &iov[iovIdx];
    msg.msg_iovlen = static_cast<std::size_t>(iovCount - iovIdx);
    ssize_t sent = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        for (int i = iovIdx; i < iovCount; ++i) {
          spill(static_cast<const std::uint8_t*>(iov[i].iov_base), iov[i].iov_len);
        }
        return;
      }
      open_.store(false, std::memory_order_release);
      sendCv_.notify_all();
      throw TransportError("EpollConn: send to " + peer_ + " failed");
    }
    std::size_t left = static_cast<std::size_t>(sent);
    while (left > 0 && iovIdx < iovCount) {
      if (left >= iov[iovIdx].iov_len) {
        left -= iov[iovIdx].iov_len;
        ++iovIdx;
      } else {
        iov[iovIdx].iov_base = static_cast<std::uint8_t*>(iov[iovIdx].iov_base) + left;
        iov[iovIdx].iov_len -= left;
        left = 0;
      }
    }
    while (iovIdx < iovCount && iov[iovIdx].iov_len == 0) ++iovIdx;
  }
}

void EpollConn::spill(const std::uint8_t* data, std::size_t n) {
  if (n == 0) return;
  backlog_.insert(backlog_.end(), data, data + n);
  armWriteLocked();
}

void EpollConn::armWriteLocked() {
  if (writeArmed_) return;
  writeArmed_ = true;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.fd = fd_;
  if (::epoll_ctl(loop_->epollFd(), EPOLL_CTL_MOD, fd_, &ev) != 0 && errno == ENOENT) {
    // Not registered yet (the add() task is still queued) or already
    // removed. Leaving writeArmed_ set would make every later spill a
    // no-op and strand the backlog forever; clearing it lets the add()
    // task pick the pending bytes up via initialEvents() — which runs
    // under this same sendMutex_, so one of the two always sees them.
    writeArmed_ = false;
  }
}

void EpollConn::handleWritable() {
  std::lock_guard lock(sendMutex_);
  while (backlogPos_ < backlog_.size()) {
    ssize_t sent = ::send(fd_, backlog_.data() + backlogPos_, backlog_.size() - backlogPos_,
                          MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      open_.store(false, std::memory_order_release);
      break;
    }
    backlogPos_ += static_cast<std::size_t>(sent);
  }
  if (backlogPos_ == backlog_.size()) {
    backlog_.clear();
    backlogPos_ = 0;
    if (writeArmed_) {
      writeArmed_ = false;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd_;
      ::epoll_ctl(loop_->epollFd(), EPOLL_CTL_MOD, fd_, &ev);
    }
    sendCv_.notify_all();  // close() may be waiting for the drain
  } else if (backlog_.size() - backlogPos_ <= kMaxSendBacklog) {
    sendCv_.notify_all();
  }
}

bool EpollConn::handleReadable() {
  if (rbuf_.size() < rend_ + kReadChunk) rbuf_.resize(rend_ + kReadChunk);
  for (;;) {
    ssize_t got = ::recv(fd_, rbuf_.data() + rend_, rbuf_.size() - rend_, 0);
    if (got > 0) {
      rend_ += static_cast<std::size_t>(got);
      counters_->bytesIn.fetch_add(static_cast<std::uint64_t>(got), std::memory_order_relaxed);
      break;
    }
    if (got == 0) return false;  // orderly EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return open_.load(std::memory_order_acquire);
    return false;
  }

  // Decode every complete frame in place — the handler sees a view over
  // rbuf_, valid for the duration of the call.
  while (rend_ - rpos_ >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(rbuf_[rpos_ + i]) << (8 * i);
    if (len > kMaxFrame) {
      oversized_.fetch_add(1, std::memory_order_relaxed);
      counters_->oversizedFrames.fetch_add(1, std::memory_order_relaxed);
      util::logWarn("EventLoop", "oversized frame from ", peer_, ": ", len,
                    " bytes (cap ", kMaxFrame, "); closing connection");
      return false;
    }
    if (rend_ - rpos_ - 4 < len) {
      if (rbuf_.size() < rpos_ + 4 + len) rbuf_.resize(rpos_ + 4 + len);
      break;  // frame incomplete; wait for more bytes
    }
    counters_->framesIn.fetch_add(1, std::memory_order_relaxed);
    deliver(util::ByteView(rbuf_.data() + rpos_ + 4, len));
    rpos_ += 4 + static_cast<std::size_t>(len);
  }
  if (rpos_ == rend_) {
    rpos_ = rend_ = 0;
  } else if (rpos_ >= kReadChunk) {
    std::memmove(rbuf_.data(), rbuf_.data() + rpos_, rend_ - rpos_);
    rend_ -= rpos_;
    rpos_ = 0;
  }
  return open_.load(std::memory_order_acquire);
}

void EpollConn::markClosed() {
  {
    std::lock_guard lock(sendMutex_);
    open_.store(false, std::memory_order_release);
  }
  // The peer must see the FIN now: the fd itself is closed by the
  // destructor, which can lag arbitrarily (RpcServer prunes dead
  // connections lazily), and a peer blocked in recv would hang until then.
  ::shutdown(fd_, SHUT_RDWR);
  sendCv_.notify_all();
}

void EpollConn::close() {
  if (open_.exchange(false, std::memory_order_acq_rel)) {
    // Drain the backlog before the FIN: with the old blocking transport,
    // every byte a completed send() accepted was in the kernel by now, and
    // callers rely on that (oneway ingest followed by client destruction).
    // Bounded wait — a peer that stopped reading forfeits the courtesy.
    if (!loop_->onLoopThread()) {
      std::unique_lock lock(sendMutex_);
      sendCv_.wait_for(lock, std::chrono::seconds(1),
                       [&] { return backlogPos_ == backlog_.size(); });
    }
    ::shutdown(fd_, SHUT_RDWR);
    sendCv_.notify_all();
  }
  // Synchronize with the loop: after this returns no handler runs, so the
  // caller may tear down whatever the handler captured. Safe to repeat.
  loop_->removeSync(std::static_pointer_cast<EpollConn>(shared_from_this()));
}

}  // namespace

// ---------------------------------------------------------------------------

struct EventLoopGroup::Impl {
  GroupCounters counters;
  std::vector<std::unique_ptr<EventLoop>> loops;
  std::atomic<std::size_t> next{0};
};

EventLoopGroup::EventLoopGroup(std::size_t loops) : impl_(std::make_unique<Impl>()) {
  if (loops == 0) loops = defaultLoopCount();
  impl_->loops.reserve(loops);
  for (std::size_t i = 0; i < loops; ++i) {
    impl_->loops.push_back(std::make_unique<EventLoop>(&impl_->counters));
  }
}

EventLoopGroup::~EventLoopGroup() = default;

std::size_t EventLoopGroup::defaultLoopCount() {
  const std::size_t cores = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(cores, 1, 4);
}

const std::shared_ptr<EventLoopGroup>& EventLoopGroup::shared() {
  static const std::shared_ptr<EventLoopGroup> group = std::make_shared<EventLoopGroup>();
  return group;
}

std::size_t EventLoopGroup::loopCount() const noexcept { return impl_->loops.size(); }

std::shared_ptr<Transport> EventLoopGroup::adopt(int fd, std::string peer) {
  setNonBlocking(fd);
  const std::size_t slot =
      impl_->next.fetch_add(1, std::memory_order_relaxed) % impl_->loops.size();
  EventLoop* loop = impl_->loops[slot].get();
  auto conn = std::make_shared<EpollConn>(loop, fd, std::move(peer), &impl_->counters);
  loop->add(conn);
  return conn;
}

std::size_t EventLoopGroup::connectionCount() const {
  std::size_t n = 0;
  for (const auto& loop : impl_->loops) n += loop->connectionCount();
  return n;
}

EventLoopStats EventLoopGroup::stats() const {
  EventLoopStats s;
  s.framesIn = impl_->counters.framesIn.load(std::memory_order_relaxed);
  s.framesOut = impl_->counters.framesOut.load(std::memory_order_relaxed);
  s.bytesIn = impl_->counters.bytesIn.load(std::memory_order_relaxed);
  s.bytesOut = impl_->counters.bytesOut.load(std::memory_order_relaxed);
  s.oversizedFrames = impl_->counters.oversizedFrames.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mw::orb
