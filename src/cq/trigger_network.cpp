#include "cq/trigger_network.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace mw::cq {

using mw::util::require;

std::size_t TriggerNetwork::RectKeyHash::operator()(const RectKey& k) const noexcept {
  auto mix = [](std::size_t seed, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return seed ^ (std::hash<std::uint64_t>{}(bits) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                   (seed >> 2));
  };
  std::size_t h = 0;
  h = mix(h, k.rect.lo().x);
  h = mix(h, k.rect.lo().y);
  h = mix(h, k.rect.hi().x);
  return mix(h, k.rect.hi().y);
}

void TriggerNetwork::installProduction(ProductionId id, const geo::Rect& region,
                                       const std::optional<std::string>& subject) {
  require(!region.empty(), "TriggerNetwork::installProduction: empty region");
  require(!productions_.contains(id), "TriggerNetwork::installProduction: duplicate id");

  std::size_t slot;
  auto it = alphaByRect_.find(RectKey{region});
  if (it != alphaByRect_.end()) {
    slot = it->second;  // shared alpha node: no new R-tree entry
  } else {
    if (!freeAlphaSlots_.empty()) {
      slot = freeAlphaSlots_.back();
      freeAlphaSlots_.pop_back();
      alphas_[slot].emplace();
    } else {
      slot = alphas_.size();
      alphas_.emplace_back(std::in_place);
    }
    alphas_[slot]->region = region;
    alphaByRect_.emplace(RectKey{region}, slot);
    alphaTree_.insert(region, slot);
    ++liveAlphas_;
  }

  AlphaNode& alpha = *alphas_[slot];
  if (subject) {
    alpha.bySubject[*subject].push_back(id);
  } else {
    alpha.anySubject.push_back(id);
  }
  ++alpha.productionCount;
  productions_.emplace(id, Production{slot, subject, {}});
}

bool TriggerNetwork::removeProduction(ProductionId id) {
  auto it = productions_.find(id);
  if (it == productions_.end()) return false;
  Production& prod = it->second;
  AlphaNode& alpha = *alphas_[prod.alphaSlot];

  auto eraseFrom = [id](std::vector<ProductionId>& v) {
    v.erase(std::remove(v.begin(), v.end(), id), v.end());
  };
  if (prod.subject) {
    auto subjectIt = alpha.bySubject.find(*prod.subject);
    eraseFrom(subjectIt->second);
    if (subjectIt->second.empty()) alpha.bySubject.erase(subjectIt);
  } else {
    eraseFrom(alpha.anySubject);
  }
  if (--alpha.productionCount == 0) {
    alphaTree_.remove(alpha.region, prod.alphaSlot);
    alphaByRect_.erase(RectKey{alpha.region});
    alphas_[prod.alphaSlot].reset();
    freeAlphaSlots_.push_back(prod.alphaSlot);
    --liveAlphas_;
  }

  for (const std::string& object : prod.insideObjects) {
    auto objIt = insideByObject_.find(object);
    objIt->second.erase(id);
    if (objIt->second.empty()) insideByObject_.erase(objIt);
    --insidePairs_;
  }
  productions_.erase(it);
  return true;
}

void TriggerNetwork::collectAlpha(const AlphaNode& alpha, const std::string& object,
                                  std::vector<ProductionId>& out) const {
  out.insert(out.end(), alpha.anySubject.begin(), alpha.anySubject.end());
  auto subjectIt = alpha.bySubject.find(object);
  if (subjectIt != alpha.bySubject.end()) {
    out.insert(out.end(), subjectIt->second.begin(), subjectIt->second.end());
  }
}

void TriggerNetwork::matchAlpha(const geo::Rect& readingBox, const std::string& object,
                                std::vector<ProductionId>& out) const {
  out.clear();
  alphaTree_.search(readingBox, [&](const std::uint64_t& slot) {
    collectAlpha(*alphas_[slot], object, out);
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void TriggerNetwork::match(const geo::Rect& readingBox, const std::string& object,
                           std::vector<ProductionId>& out) const {
  out.clear();
  if (!readingBox.empty()) {
    alphaTree_.search(readingBox, [&](const std::uint64_t& slot) {
      collectAlpha(*alphas_[slot], object, out);
    });
  }
  // Exit candidates: productions tracking this object as inside get
  // re-evaluated even when the new evidence no longer touches their region.
  auto insideIt = insideByObject_.find(object);
  if (insideIt != insideByObject_.end()) {
    out.insert(out.end(), insideIt->second.begin(), insideIt->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

bool TriggerNetwork::isInside(ProductionId id, const std::string& object) const {
  auto it = productions_.find(id);
  return it != productions_.end() && it->second.insideObjects.contains(object);
}

void TriggerNetwork::setInside(ProductionId id, const std::string& object, bool inside) {
  auto it = productions_.find(id);
  if (it == productions_.end()) return;  // removed concurrently with evaluation
  Production& prod = it->second;
  if (inside) {
    if (prod.insideObjects.insert(object).second) {
      insideByObject_[object].insert(id);
      ++insidePairs_;
    }
  } else {
    if (prod.insideObjects.erase(object) > 0) {
      auto objIt = insideByObject_.find(object);
      objIt->second.erase(id);
      if (objIt->second.empty()) insideByObject_.erase(objIt);
      --insidePairs_;
    }
  }
}

void TriggerNetwork::makeCounting(ProductionId id, std::size_t limit) {
  auto it = productions_.find(id);
  require(it != productions_.end(), "TriggerNetwork::makeCounting: unknown production");
  require(!it->second.subject, "TriggerNetwork::makeCounting: counting rules are region-wide");
  require(it->second.insideObjects.empty(),
          "TriggerNetwork::makeCounting: production already has edge state");
  it->second.counting = Counting{limit, 0, false};
}

bool TriggerNetwork::isCounting(ProductionId id) const {
  auto it = productions_.find(id);
  return it != productions_.end() && it->second.counting.has_value();
}

CountUpdate TriggerNetwork::syncInside(ProductionId id, const std::vector<std::string>& members) {
  auto it = productions_.find(id);
  if (it == productions_.end()) return {};  // removed concurrently with evaluation
  Production& prod = it->second;
  require(prod.counting.has_value(), "TriggerNetwork::syncInside: not a counting production");

  // Exits: members of the old set absent from the new one. Collected first
  // so the erase loop does not invalidate the iteration.
  const std::unordered_set<std::string> fresh(members.begin(), members.end());
  std::vector<std::string> exits;
  for (const std::string& object : prod.insideObjects) {
    if (!fresh.contains(object)) exits.push_back(object);
  }
  for (const std::string& object : exits) setInside(id, object, false);
  for (const std::string& object : fresh) setInside(id, object, true);

  Counting& counting = *prod.counting;
  CountUpdate update;
  update.count = prod.insideObjects.size();
  update.changed = update.count != counting.lastCount;
  const bool over = update.count >= counting.limit;
  if (over != counting.lastOver) {
    update.edge = over ? CountEdge::Rose : CountEdge::Fell;
  }
  counting.lastCount = update.count;
  counting.lastOver = over;
  return update;
}

std::optional<geo::Rect> TriggerNetwork::regionOf(ProductionId id) const {
  auto it = productions_.find(id);
  if (it == productions_.end()) return std::nullopt;
  return alphas_[it->second.alphaSlot]->region;
}

}  // namespace mw::cq
