// The continuous-query discrimination network — the Rete-style index that
// makes a million standing rules cost O(affected) per update.
//
// MiddleWhere's Figure-9 claim is that trigger response time is independent
// of the number of installed triggers. The naive implementations it replaces
// are O(all rules) in two places: the database trigger table filtered
// subject-specific triggers linearly inside each R-tree hit, and the
// Location Service's edge detection scanned EVERY subscription per ingest to
// find the ones whose tracked object may have exited its region. This
// network fixes both with two classic Rete ideas:
//
//   * alpha-node sharing: productions (triggers/subscriptions) with the same
//     region rect share one alpha node — one R-tree entry, one geometric
//     test — no matter how many rules hang off it. Within an alpha node,
//     subject-constrained productions live in a hash map keyed by subject,
//     so a reading discriminates to exactly the productions that name its
//     object (plus the any-subject list), never a linear filter.
//   * a beta-memory reverse index: the inside/outside edge state of every
//     (production, object) pair is stored both per production and inverted
//     per object. An update for object X retrieves "productions currently
//     tracking X as inside" by one hash lookup — the exit-detection set —
//     instead of scanning the production table.
//
// match() = alpha matches (R-tree over shared regions, then subject
// discrimination) ∪ inside-tracked productions for the object. Both parts
// are proportional to the affected rules, so the per-update cost curve
// stays flat as the rule count grows 10³ → 10⁶.
//
// Thread-safety: none — the owner (SpatialDatabase's trigger table lock,
// LocationService's subscription mutex) synchronizes externally, which keeps
// the network free of its own locking on the ingest hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geometry/rect.hpp"
#include "geometry/rtree.hpp"

namespace mw::cq {

/// Productions are identified by caller-chosen 64-bit ids (trigger ids,
/// subscription ids — whatever the owner sequences).
using ProductionId = std::uint64_t;

/// How a counting production's population relates to its limit after a sync,
/// relative to the previous sync: Rose = crossed up to >= limit (the
/// overcrowding alarm edge), Fell = dropped back below (all-clear).
enum class CountEdge : std::uint8_t { None = 0, Rose = 1, Fell = 2 };

/// Result of syncInside() on a counting production.
struct CountUpdate {
  std::size_t count = 0;             ///< members inside after the sync
  bool changed = false;              ///< count differs from the previous sync
  CountEdge edge = CountEdge::None;  ///< limit crossing, if any
};

class TriggerNetwork {
 public:
  /// Installs a production: notify when a reading for `subject` (or any
  /// object, when unset) intersects `region`. Duplicate ids are a contract
  /// violation; the region must be non-empty.
  void installProduction(ProductionId id, const geo::Rect& region,
                         const std::optional<std::string>& subject);

  /// Uninstalls a production and clears its edge state from the reverse
  /// index. The shared alpha node survives until its last production leaves.
  /// Returns false for unknown ids.
  bool removeProduction(ProductionId id);

  /// The affected-rule set for one update: every production whose alpha
  /// pattern matches (region ∩ readingBox, subject ∈ {unset, object}) plus
  /// every production currently tracking `object` as inside (exit
  /// candidates). Sorted ascending and deduplicated — deterministic
  /// evaluation order for the oracle tests. `out` is cleared first.
  void match(const geo::Rect& readingBox, const std::string& object,
             std::vector<ProductionId>& out) const;

  /// Alpha-only matching (no beta/edge memory) — the database trigger table
  /// is level-triggered and never tracks inside state.
  void matchAlpha(const geo::Rect& readingBox, const std::string& object,
                  std::vector<ProductionId>& out) const;

  /// Edge state for one (production, object) pair. Unknown pairs are
  /// outside. setInside(.., false) erases the entry — the memory holds only
  /// objects currently inside, so it shrinks as objects leave.
  [[nodiscard]] bool isInside(ProductionId id, const std::string& object) const;
  void setInside(ProductionId id, const std::string& object, bool inside);

  /// The production's region (for notification payloads); nullopt when
  /// unknown.
  [[nodiscard]] std::optional<geo::Rect> regionOf(ProductionId id) const;

  /// Marks an installed production as a counting (aggregate) rule: its beta
  /// memory holds the region's population set and syncInside() reports count
  /// changes and crossings of `limit` ("alarm when density(region) >= k").
  /// Must be called once, right after installProduction, before any edge
  /// state accumulates; counting rules are region-wide (no subject).
  void makeCounting(ProductionId id, std::size_t limit);
  [[nodiscard]] bool isCounting(ProductionId id) const;

  /// Replaces a counting production's inside set with `members` wholesale
  /// (the region population cache's current membership), updating the
  /// reverse index pair-by-pair, and reports the resulting count and limit
  /// crossing relative to the previous sync. O(|old| + |new|), so a sync
  /// driven by the population cache stays O(affected). Returns a default
  /// (unchanged, count 0) update for unknown ids — the production may have
  /// been removed between match and evaluation.
  CountUpdate syncInside(ProductionId id, const std::vector<std::string>& members);

  [[nodiscard]] std::size_t productionCount() const noexcept { return productions_.size(); }
  /// Distinct region rects — the R-tree size; productionCount/alphaNodeCount
  /// is the sharing factor.
  [[nodiscard]] std::size_t alphaNodeCount() const noexcept { return liveAlphas_; }
  /// (production, object) pairs currently tracked as inside.
  [[nodiscard]] std::size_t insideCount() const noexcept { return insidePairs_; }

 private:
  struct RectKey {
    geo::Rect rect;
    bool operator==(const RectKey& o) const noexcept { return rect == o.rect; }
  };
  struct RectKeyHash {
    std::size_t operator()(const RectKey& k) const noexcept;
  };

  /// One shared region test. `bySubject` holds subject-constrained
  /// productions; `anySubject` the unconstrained ones.
  struct AlphaNode {
    geo::Rect region;
    std::vector<ProductionId> anySubject;
    std::unordered_map<std::string, std::vector<ProductionId>> bySubject;
    std::size_t productionCount = 0;
  };

  /// Aggregate state for counting productions (makeCounting).
  struct Counting {
    std::size_t limit = 0;
    std::size_t lastCount = 0;
    bool lastOver = false;
  };

  struct Production {
    std::size_t alphaSlot = 0;
    std::optional<std::string> subject;
    /// Objects this production currently tracks as inside (mirror of the
    /// reverse index, so removeProduction cleans up in O(its own state)).
    std::unordered_set<std::string> insideObjects;
    std::optional<Counting> counting;
  };

  void collectAlpha(const AlphaNode& alpha, const std::string& object,
                    std::vector<ProductionId>& out) const;

  /// Alpha nodes in stable slots (tombstoned on last-production removal) so
  /// R-tree values stay valid.
  std::vector<std::optional<AlphaNode>> alphas_;
  std::vector<std::size_t> freeAlphaSlots_;
  std::size_t liveAlphas_ = 0;
  std::unordered_map<RectKey, std::size_t, RectKeyHash> alphaByRect_;
  geo::RTree<std::uint64_t> alphaTree_;

  std::unordered_map<ProductionId, Production> productions_;
  /// object -> productions tracking it as inside (the exit-candidate set).
  std::unordered_map<std::string, std::unordered_set<ProductionId>> insideByObject_;
  std::size_t insidePairs_ = 0;
};

}  // namespace mw::cq
