#include "spatialdb/snapshot.hpp"

#include <fstream>

#include "util/error.hpp"

namespace mw::db {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;
using util::ParseError;

namespace {

constexpr std::uint32_t kMagic = 0x4D575342;  // "MWSB"
constexpr std::uint16_t kVersion = 1;

enum class TdfKind : std::uint8_t { None = 0, Linear = 1, Exponential = 2, Step = 3 };

void encodeTdf(ByteWriter& w, const quality::TemporalDegradation& tdf) {
  // The tdf hierarchy is closed (quality/tdf.hpp); identify by probing the
  // dynamic type and re-deriving parameters from sampled behaviour is
  // fragile — instead serialize by exact type with its parameters recovered
  // through dynamic_cast accessors.
  if (dynamic_cast<const quality::NoDegradation*>(&tdf) != nullptr) {
    w.u8(static_cast<std::uint8_t>(TdfKind::None));
    return;
  }
  if (const auto* linear = dynamic_cast<const quality::LinearDegradation*>(&tdf)) {
    w.u8(static_cast<std::uint8_t>(TdfKind::Linear));
    w.i64(linear->horizon().count());
    return;
  }
  if (const auto* expo = dynamic_cast<const quality::ExponentialDegradation*>(&tdf)) {
    w.u8(static_cast<std::uint8_t>(TdfKind::Exponential));
    w.i64(expo->halfLife().count());
    return;
  }
  if (const auto* step = dynamic_cast<const quality::StepDegradation*>(&tdf)) {
    w.u8(static_cast<std::uint8_t>(TdfKind::Step));
    const auto& steps = step->steps();
    w.u32(static_cast<std::uint32_t>(steps.size()));
    for (const auto& [age, factor] : steps) {
      w.i64(age.count());
      w.f64(factor);
    }
    return;
  }
  throw mw::util::ContractError("snapshotDatabase: unknown tdf type");
}

std::shared_ptr<const quality::TemporalDegradation> decodeTdf(ByteReader& r) {
  switch (static_cast<TdfKind>(r.u8())) {
    case TdfKind::None:
      return std::make_shared<quality::NoDegradation>();
    case TdfKind::Linear:
      return std::make_shared<quality::LinearDegradation>(util::Duration{r.i64()});
    case TdfKind::Exponential:
      return std::make_shared<quality::ExponentialDegradation>(util::Duration{r.i64()});
    case TdfKind::Step: {
      std::vector<quality::StepDegradation::Step> steps;
      for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
        util::Duration age{r.i64()};
        double factor = r.f64();
        steps.emplace_back(age, factor);
      }
      return std::make_shared<quality::StepDegradation>(std::move(steps));
    }
  }
  throw ParseError("restoreDatabase: unknown tdf kind");
}

}  // namespace

Bytes snapshotDatabase(const SpatialDatabase& database) {
  ByteWriter w;
  w.u32(kMagic);
  w.u16(kVersion);

  // Universe.
  w.f64(database.universe().lo().x);
  w.f64(database.universe().lo().y);
  w.f64(database.universe().hi().x);
  w.f64(database.universe().hi().y);

  // Frame tree (root first, parents before children).
  auto frames = database.frames().records();
  w.u32(static_cast<std::uint32_t>(frames.size()));
  for (const auto& f : frames) {
    w.str(f.name);
    w.str(f.parent);
    w.f64(f.toParent.translation.x);
    w.f64(f.toParent.translation.y);
    w.f64(f.toParent.rotation);
  }

  // Spatial-object rows.
  auto rows = database.query([](const SpatialObjectRow&) { return true; });
  w.u32(static_cast<std::uint32_t>(rows.size()));
  for (const auto& row : rows) {
    w.str(row.id.str());
    w.str(row.globPrefix);
    w.u8(static_cast<std::uint8_t>(row.objectType));
    w.u8(static_cast<std::uint8_t>(row.geometryType));
    w.u32(static_cast<std::uint32_t>(row.points.size()));
    for (const auto& p : row.points) {
      w.f64(p.x);
      w.f64(p.y);
    }
    w.u32(static_cast<std::uint32_t>(row.properties.size()));
    for (const auto& [key, value] : row.properties) {
      w.str(key);
      w.str(value);
    }
  }

  // Sensor metadata.
  auto sensorIds = database.sensorIds();
  w.u32(static_cast<std::uint32_t>(sensorIds.size()));
  for (const auto& id : sensorIds) {
    const SensorMeta meta = *database.sensorMeta(id);
    w.str(meta.sensorId.str());
    w.str(meta.sensorType);
    w.f64(meta.errorSpec.carry);
    w.f64(meta.errorSpec.detect);
    w.f64(meta.errorSpec.misidentify);
    w.boolean(meta.scaleMisidentifyByArea);
    w.i64(meta.quality.ttl.count());
    encodeTdf(w, *meta.quality.tdf);
  }
  return w.take();
}

SpatialDatabase restoreDatabase(const util::Clock& clock, const Bytes& snapshot) {
  ByteReader r(snapshot);
  if (r.u32() != kMagic) throw ParseError("restoreDatabase: bad magic");
  if (r.u16() != kVersion) throw ParseError("restoreDatabase: unsupported version");

  double lx = r.f64(), ly = r.f64(), hx = r.f64(), hy = r.f64();
  geo::Rect universe = geo::Rect::fromCorners({lx, ly}, {hx, hy});

  glob::FrameTree frames;
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
    std::string name = r.str();
    std::string parent = r.str();
    glob::Transform2 t;
    t.translation.x = r.f64();
    t.translation.y = r.f64();
    t.rotation = r.f64();
    if (parent.empty()) {
      frames.addRoot(name);
    } else {
      frames.addFrame(name, parent, t);
    }
  }

  SpatialDatabase database(clock, universe, std::move(frames));

  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
    SpatialObjectRow row;
    row.id = util::SpatialObjectId{r.str()};
    row.globPrefix = r.str();
    std::uint8_t objectType = r.u8();
    if (objectType > static_cast<std::uint8_t>(ObjectType::Other)) {
      throw ParseError("restoreDatabase: bad object type");
    }
    row.objectType = static_cast<ObjectType>(objectType);
    std::uint8_t geomType = r.u8();
    if (geomType > static_cast<std::uint8_t>(GeometryType::Polygon)) {
      throw ParseError("restoreDatabase: bad geometry type");
    }
    row.geometryType = static_cast<GeometryType>(geomType);
    for (std::uint32_t k = 0, np = r.u32(); k < np; ++k) {
      double x = r.f64();
      double y = r.f64();
      row.points.push_back({x, y});
    }
    for (std::uint32_t k = 0, nprops = r.u32(); k < nprops; ++k) {
      std::string key = r.str();
      row.properties[key] = r.str();
    }
    database.addObject(std::move(row));
  }

  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
    SensorMeta meta;
    meta.sensorId = util::SensorId{r.str()};
    meta.sensorType = r.str();
    meta.errorSpec.carry = r.f64();
    meta.errorSpec.detect = r.f64();
    meta.errorSpec.misidentify = r.f64();
    meta.scaleMisidentifyByArea = r.boolean();
    meta.quality.ttl = util::Duration{r.i64()};
    meta.quality.tdf = decodeTdf(r);
    database.registerSensor(std::move(meta));
  }
  if (!r.exhausted()) throw ParseError("restoreDatabase: trailing bytes");
  return database;
}

void saveSnapshotFile(const SpatialDatabase& database, const std::string& path) {
  Bytes data = snapshotDatabase(database);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw mw::util::MwError("saveSnapshotFile: cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw mw::util::MwError("saveSnapshotFile: write failed for " + path);
}

SpatialDatabase loadSnapshotFile(const util::Clock& clock, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw mw::util::MwError("loadSnapshotFile: cannot open " + path);
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return restoreDatabase(clock, data);
}

}  // namespace mw::db
