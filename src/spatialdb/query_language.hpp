// A small predicate language over spatial-object rows — the SQL stand-in
// for §5.1's "modeling the physical space allows SQL queries on objects and
// regions. An example query is 'Where is the nearest region that has power
// outlets and high Bluetooth signal?'".
//
// Grammar (case-insensitive keywords, '#' starts nothing — no comments):
//
//   expr       := term ( OR term )*
//   term       := factor ( AND factor )*
//   factor     := NOT factor | '(' expr ')' | comparison
//   comparison := field ( '=' | '!=' ) value
//   field      := 'type' | 'geometry' | 'id' | 'prefix' | 'prop.' key
//   value      := bareword | '"' quoted string '"'
//
// Examples:
//   type = Room and prop.outlets = yes
//   (type = Room or type = Corridor) and not prop.bluetooth = low
//   prefix = "CS/Floor3"
//
// compileQuery returns a reusable predicate; parse errors throw
// util::ParseError with a position-annotated message.
#pragma once

#include <functional>
#include <string>

#include "spatialdb/types.hpp"

namespace mw::db {

using RowPredicate = std::function<bool(const SpatialObjectRow&)>;

/// Compiles the query text into a predicate over rows.
RowPredicate compileQuery(const std::string& text);

}  // namespace mw::db
