#include "spatialdb/types.hpp"

#include "util/error.hpp"

namespace mw::db {

std::string_view toString(ObjectType t) {
  switch (t) {
    case ObjectType::Building: return "Building";
    case ObjectType::Floor: return "Floor";
    case ObjectType::Room: return "Room";
    case ObjectType::Corridor: return "Corridor";
    case ObjectType::Door: return "Door";
    case ObjectType::Wall: return "Wall";
    case ObjectType::Display: return "Display";
    case ObjectType::Table: return "Table";
    case ObjectType::Chair: return "Chair";
    case ObjectType::Workstation: return "Workstation";
    case ObjectType::LightSwitch: return "LightSwitch";
    case ObjectType::PowerOutlet: return "PowerOutlet";
    case ObjectType::Other: return "Other";
  }
  return "?";
}

std::string_view toString(GeometryType t) {
  switch (t) {
    case GeometryType::Point: return "Point";
    case GeometryType::Line: return "Line";
    case GeometryType::Polygon: return "Polygon";
  }
  return "?";
}

std::string SpatialObjectRow::fullGlob() const {
  if (globPrefix.empty()) return id.str();
  return globPrefix + "/" + id.str();
}

geo::Rect SpatialObjectRow::mbr() const {
  geo::Rect r;
  for (const auto& p : points) r = r.unionWith(geo::Rect::fromCorners(p, p));
  return r;
}

geo::Polygon SpatialObjectRow::polygon() const {
  mw::util::require(geometryType == GeometryType::Polygon,
                    "SpatialObjectRow::polygon: row is not a polygon");
  return geo::Polygon{points};
}

geo::Segment SpatialObjectRow::segment() const {
  mw::util::require(geometryType == GeometryType::Line && points.size() == 2,
                    "SpatialObjectRow::segment: row is not a line");
  return geo::Segment{points[0], points[1]};
}

geo::Point2 SpatialObjectRow::point() const {
  mw::util::require(geometryType == GeometryType::Point && points.size() == 1,
                    "SpatialObjectRow::point: row is not a point");
  return points[0];
}

void SpatialObjectRow::validate() const {
  mw::util::require(!id.empty(), "SpatialObjectRow: empty ObjectIdentifier");
  switch (geometryType) {
    case GeometryType::Point:
      mw::util::require(points.size() == 1, "SpatialObjectRow: point needs exactly 1 vertex");
      break;
    case GeometryType::Line:
      mw::util::require(points.size() == 2, "SpatialObjectRow: line needs exactly 2 vertices");
      break;
    case GeometryType::Polygon:
      mw::util::require(points.size() >= 3, "SpatialObjectRow: polygon needs >= 3 vertices");
      break;
  }
}

std::ostream& operator<<(std::ostream& os, const SpatialObjectRow& row) {
  os << row.id << " | " << row.globPrefix << " | " << toString(row.objectType) << " | "
     << toString(row.geometryType) << " | ";
  for (std::size_t i = 0; i < row.points.size(); ++i) {
    if (i) os << ", ";
    os << row.points[i];
  }
  return os;
}

}  // namespace mw::db
