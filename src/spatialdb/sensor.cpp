#include "spatialdb/sensor.hpp"

#include <algorithm>
#include <cmath>

namespace mw::db {

geo::Rect SensorReading::rect() const {
  if (symbolicRegion.has_value()) return *symbolicRegion;
  return geo::Rect::centeredSquare(location, std::max(detectionRadius, 1e-6));
}

std::ostream& operator<<(std::ostream& os, const SensorReading& r) {
  os << r.sensorId << " | " << r.globPrefix << " | " << r.sensorType << " | " << r.mobileObjectId
     << " | " << r.location << " | " << r.detectionRadius << " | "
     << r.detectionTime.time_since_epoch().count();
  return os;
}

int SensorMeta::confidencePercent() const {
  return static_cast<int>(std::lround(errorSpec.detect * 100));
}

std::optional<quality::ConfidencePair> SensorMeta::confidenceFor(double areaA, double areaU,
                                                                 util::Duration age) const {
  if (quality.expiredAt(age)) return std::nullopt;
  quality::ConfidencePair base;
  if (scaleMisidentifyByArea) {
    // Area-aware (p, q): both false-positive sources scale with the reading's
    // share of the coverage universe (see deriveConfidenceAreaScaled).
    base = quality::deriveConfidenceAreaScaled(errorSpec,
                                               std::clamp(areaA / areaU, 0.0, 1.0));
  } else {
    base = quality::deriveConfidence(errorSpec);
  }
  double degraded = quality.confidenceAt(base.p, age);
  quality::ConfidencePair out{degraded, base.q};
  if (!out.informative()) return std::nullopt;
  return out;
}

}  // namespace mw::db
