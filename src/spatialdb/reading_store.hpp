// Striped lock-free reading store — the sensor-readings side of the spatial
// database (Table 2), split out of the database-wide reader/writer lock.
//
// Layout: a fixed array of stripes, each owning the per-object logs whose
// MobileObjectId hashes into it. Every object has one `ObjectLog` with
//
//   - a per-object writer mutex (serializes the multiple producers that may
//     report the same object — adapters for different sensor technologies),
//   - a *published* immutable snapshot: the per-sensor latest readings,
//     their union evidence box, the object's readings epoch and its next
//     TTL-expiry boundary. Writers build the next snapshot aside and swap
//     the published pointer under a per-object reader/writer slot lock;
//     readers pin the current snapshot under the shared side of that lock —
//     a refcount bump, nanoseconds — and then work on immutable state with
//     no lock held, no retry, and a consistent epoch-stamped view. (A raw
//     std::atomic<shared_ptr> would make the pin wait-free, but libstdc++'s
//     _Sp_atomic lock-bit protocol carries no TSan annotations, and a
//     seqlock's racy reads TSan would rightly flag; the slot lock keeps the
//     publication protocol provable under -DMW_SANITIZE=thread.)
//
// Concurrent appends on different objects therefore never touch the same
// lock: they meet only on their stripe's map mutex (shared mode, and only
// to look the log up) and on disjoint cache lines otherwise. Readers
// (fusion, region discovery) never hold a lock while a snapshot is in use,
// so they cannot stall writers for longer than the pointer pin.
//
// The sensor-metadata table lives here too, published copy-on-write as one
// immutable map: the ingest hot path pins calibration/TTL with the same
// brief slot-lock pattern instead of taking the database's catalog lock,
// which is what keeps a long catalog operation from ever stalling ingest.
// (De)registration — rare — swaps the published table under a writer mutex.
//
// Epoch discipline (unchanged from the locked implementation): the reported
// readings epoch is metaEpoch + per-object epoch; the per-object epoch bumps
// on append, forced expiry and lazy TTL expiry, and metaEpoch bumps on
// sensor (de)registration via SpatialDatabase's shared sensor-change helper.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "geometry/rect.hpp"
#include "spatialdb/sensor.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace mw::db {

class ReadingStore {
 public:
  /// One stored observation, universe frame, plus its derived motion flag.
  struct StoredReading {
    SensorReading reading;
    bool moving = false;  ///< sensor's region moved since its prior report
  };

  /// Activity of one sensor since its registration (health monitoring).
  struct SensorActivity {
    std::size_t readingCount = 0;
    std::optional<util::TimePoint> lastReading;
  };

  explicit ReadingStore(const util::Clock& clock, std::size_t stripes = 64);

  // --- sensor-metadata table (published copy-on-write) -----------------------

  /// Registers or re-registers a sensor. Existing activity counters survive
  /// re-registration (recalibration), matching the locked table's behaviour.
  void publishSensor(SensorMeta meta);
  /// Removes a sensor and its activity row; returns false when unknown.
  bool retireSensor(const util::SensorId& id);
  [[nodiscard]] std::optional<SensorMeta> sensorMeta(const util::SensorId& id) const;
  [[nodiscard]] std::vector<util::SensorId> sensorIds() const;  ///< sorted
  [[nodiscard]] std::size_t sensorCount() const;
  [[nodiscard]] std::optional<SensorActivity> activity(const util::SensorId& id) const;

  /// Bumps the meta epoch (added into every object's reported epoch) and
  /// reschedules every object's TTL-expiry boundary under the current
  /// metadata table. SpatialDatabase's sensor-change helper is the only
  /// caller, so register and deregister cannot drift apart.
  void noteSensorTableChanged();

  // --- appends (the ingest hot path) ----------------------------------------

  struct AppendResult {
    /// The object had no stored readings before this append (it entered the
    /// tracked population — the caller bumps the catalog epoch).
    bool newObject = false;
  };
  /// Appends one universe-frame reading: derives the `moving` flag from the
  /// sensor's previous report, publishes a new snapshot with a bumped epoch,
  /// appends to the history ring and updates the sensor's activity counters.
  /// Throws NotFoundError for unregistered sensors.
  AppendResult append(const SensorReading& universeReading);

  // --- snapshot reads (never block writers) ---------------------------------

  /// Fresh (non-expired) readings about one object, one per sensor.
  [[nodiscard]] std::vector<StoredReading> freshReadings(const util::MobileObjectId& id) const;

  /// metaEpoch + per-object epoch, with the lazy TTL bump: the first call
  /// past a stored reading's TTL boundary takes the object's writer lock,
  /// publishes a bumped snapshot exactly once and reschedules the boundary.
  [[nodiscard]] std::uint64_t epochOf(const util::MobileObjectId& id) const;

  /// Objects with at least one stored (possibly expired-but-unpurged)
  /// reading, sorted.
  [[nodiscard]] std::vector<util::MobileObjectId> knownObjects() const;

  /// Objects whose published evidence box intersects `universeRect` — one
  /// non-blocking pass over the published snapshots (the box is the union of
  /// the stored reading rects, recomputed on append/expiry, so it is a
  /// conservative superset while readings age out lazily).
  [[nodiscard]] std::vector<util::MobileObjectId> objectsIntersecting(
      const geo::Rect& universeRect) const;

  /// One object's published evidence box (union of its stored reading
  /// rects); nullopt when the object has no stored readings. The same
  /// conservative box objectsIntersecting scans — what a spatial router
  /// needs to find the territory owner of an object's evidence.
  [[nodiscard]] std::optional<geo::Rect> evidenceBoxOf(const util::MobileObjectId& id) const;

  /// Recent readings within `window` before now, oldest first (the history
  /// ring is guarded by the object's writer mutex; history queries are off
  /// the hot path and may briefly wait behind an in-flight append).
  [[nodiscard]] std::vector<SensorReading> history(const util::MobileObjectId& id,
                                                   util::Duration window) const;

  void setHistoryCapacity(std::size_t perObject);
  [[nodiscard]] std::size_t historyCapacity() const noexcept {
    return historyCapacity_.load(std::memory_order_relaxed);
  }

  /// The object's full history ring in insertion order — the replication /
  /// handoff export source. Unlike history() there is no window and no
  /// re-sort: replaying the returned sequence through append() reproduces
  /// the log (bounded by the ring capacity, like any restart).
  [[nodiscard]] std::vector<SensorReading> exportLog(const util::MobileObjectId& id) const;

  /// Erases everything stored about one object (log, snapshot, history) —
  /// the losing side of an arc handoff. Returns false when unknown. The
  /// caller is responsible for the catalog-epoch bump (SpatialDatabase
  /// wraps this, same as append's newObject contract).
  bool dropObject(const util::MobileObjectId& id);

  // --- maintenance -----------------------------------------------------------

  /// Drops expired (or orphaned: sensor deregistered) readings eagerly.
  /// Returns the number of objects whose last stored reading vanished.
  std::size_t purgeExpired();

  /// Force-expires all readings `sensor` made about `object` (§6.3 logout).
  /// Returns true when a reading was removed; `objectDisappeared` is set
  /// when it was the object's last one.
  bool expireReadings(const util::MobileObjectId& object, const util::SensorId& sensor,
                      bool& objectDisappeared);

  // --- catalog epoch ---------------------------------------------------------

  // The database's structural version counter lives here (not in
  // SpatialDatabase) only so the database stays movable for snapshot
  // restore; SpatialDatabase owns its semantics and is the only bumper.
  [[nodiscard]] std::uint64_t catalogEpoch() const noexcept {
    return catalogEpoch_.load(std::memory_order_acquire);
  }
  void bumpCatalogEpoch() noexcept { catalogEpoch_.fetch_add(1, std::memory_order_acq_rel); }

  // --- contention / retry stats ----------------------------------------------

  /// Appends that found the target object's writer mutex already held (two
  /// producers reporting the same object at once).
  [[nodiscard]] std::uint64_t writerContentions() const noexcept {
    return writerContentions_.load(std::memory_order_relaxed);
  }
  /// epochOf calls that raced another thread's lazy TTL bump and had to
  /// re-read the published snapshot under the writer lock.
  [[nodiscard]] std::uint64_t snapshotRetries() const noexcept {
    return snapshotRetries_.load(std::memory_order_relaxed);
  }

 private:
  /// Immutable once published; replaced wholesale on every mutation.
  struct Snapshot {
    std::vector<std::pair<util::SensorId, StoredReading>> readings;  // one per sensor
    geo::Rect box;  ///< union of reading rects (empty when no readings)
    std::uint64_t epoch = 0;
    util::TimePoint nextExpiry = util::TimePoint::max();
  };
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  struct ObjectLog {
    std::mutex writeMutex;  ///< serializes producers for this object
    /// Publication slot: the slot lock guards ONLY the pointer swap/pin;
    /// snapshot contents are immutable once published.
    mutable std::shared_mutex snapMutex;
    SnapshotPtr snap = std::make_shared<const Snapshot>();
    std::deque<SensorReading> historyRing;  ///< guarded by writeMutex
  };

  struct Stripe {
    mutable std::shared_mutex mapMutex;
    std::unordered_map<util::MobileObjectId, std::unique_ptr<ObjectLog>> logs;
  };

  /// Mutable per-sensor activity cell, shared by every published table
  /// version that contains the sensor (contents are atomics, so updating
  /// through the immutable table is race-free).
  struct ActivityCell {
    std::atomic<std::uint64_t> readingCount{0};
    /// detectionTime of the last ingested reading in ms ticks; kNoReading
    /// until the first one.
    std::atomic<util::Duration::rep> lastReadingMs{kNoReading};
    static constexpr util::Duration::rep kNoReading =
        std::numeric_limits<util::Duration::rep>::min();
  };
  struct SensorEntry {
    SensorMeta meta;
    std::shared_ptr<ActivityCell> cell;
  };
  using MetaTable = std::unordered_map<util::SensorId, SensorEntry>;
  using MetaTablePtr = std::shared_ptr<const MetaTable>;

  /// Pins the published snapshot (shared slot lock, refcount bump only).
  [[nodiscard]] static SnapshotPtr loadSnap(const ObjectLog& log);
  /// Publishes `next` (unique slot lock, pointer swap only).
  static void storeSnap(ObjectLog& log, SnapshotPtr next);
  /// Pins the published sensor-metadata table.
  [[nodiscard]] MetaTablePtr loadMetas() const;

  [[nodiscard]] Stripe& stripeFor(const util::MobileObjectId& id) const;
  /// The object's log, or nullptr when it was never written.
  [[nodiscard]] ObjectLog* findLog(const util::MobileObjectId& id) const;
  /// The object's log, created on first use.
  [[nodiscard]] ObjectLog& obtainLog(const util::MobileObjectId& id);
  /// Locks the object's writer mutex, counting contention.
  [[nodiscard]] std::unique_lock<std::mutex> lockWriter(ObjectLog& log) const;
  [[nodiscard]] static geo::Rect unionBox(
      const std::vector<std::pair<util::SensorId, StoredReading>>& readings);
  /// Earliest future TTL boundary over `readings` under `metas` (max() when
  /// none is pending) — already-expired readings never expire "again".
  [[nodiscard]] static util::TimePoint nextExpiryOf(
      const std::vector<std::pair<util::SensorId, StoredReading>>& readings,
      const MetaTable& metas, util::TimePoint now);

  const util::Clock& clock_;
  // Stripes are stable for the store's lifetime; const methods publish
  // snapshots through them (the lazy TTL bump), hence the unique_ptr
  // indirection rather than a mutable member.
  std::vector<std::unique_ptr<Stripe>> stripes_;

  std::mutex metaWriteMutex_;  ///< serializes (de)registration
  /// Publication slot for the copy-on-write sensor table (same pattern as
  /// ObjectLog::snapMutex: guards the pointer only, contents immutable).
  mutable std::shared_mutex metaSlotMutex_;
  MetaTablePtr metas_ = std::make_shared<const MetaTable>();
  std::atomic<std::uint64_t> metaEpoch_{0};
  std::atomic<std::uint64_t> catalogEpoch_{0};
  std::atomic<std::size_t> historyCapacity_{256};

  mutable std::atomic<std::uint64_t> writerContentions_{0};
  mutable std::atomic<std::uint64_t> snapshotRetries_{0};
};

}  // namespace mw::db
