// Sensor reading and sensor metadata rows (§5.2, Table 2).
//
//   | SensorId | GlobPrefix | SensorType | MObjectId | ObjLocation |
//   | DetectionRadius | DetectionTime |
//
// plus the per-sensor table:
//
//   | SensorId | Confidence(%) | Time-to-live(s) |
//
// extended here with the full (x, y, z) error spec and temporal degradation
// function that §4.1.1/§3.2 require for fusion.
#pragma once

#include <optional>
#include <ostream>
#include <string>

#include "geometry/point.hpp"
#include "geometry/rect.hpp"
#include "quality/error_model.hpp"
#include "quality/tdf.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace mw::db {

/// One sensor observation of one mobile object. Coordinates are in the
/// frame named by `globPrefix`; the database converts to the universe frame
/// via the FrameTree when it stores the reading ("The first step in our
/// algorithm is to get all the sensor data in a common format", §4.1.2).
struct SensorReading {
  util::SensorId sensorId;
  std::string globPrefix;       ///< frame of `location`, e.g. "SC/Floor3/3105"
  std::string sensorType;       ///< "Ubisense", "RF", "Biometric", ...
  util::MobileObjectId mobileObjectId;
  geo::Point2 location;         ///< reported center (ObjLocation)
  double detectionRadius = 0;   ///< error radius; 0 => exact point
  util::TimePoint detectionTime;

  /// Symbolic sensors (card readers, biometrics bound to a room) report a
  /// whole region instead of a point+radius; when set it overrides the
  /// point/radius-derived rectangle.
  std::optional<geo::Rect> symbolicRegion;

  /// The reading as a minimum bounding rectangle in its own frame (§4.1.2:
  /// sensor regions are approximated by MBRs).
  [[nodiscard]] geo::Rect rect() const;

  friend std::ostream& operator<<(std::ostream& os, const SensorReading& r);
};

/// Per-sensor calibration row. `confidence` is the paper's single
/// "Confidence(%)" column; the richer errorSpec drives fusion.
struct SensorMeta {
  util::SensorId sensorId;
  std::string sensorType;
  quality::SensorErrorSpec errorSpec;  ///< x, y, z (z is the *base* value)
  /// When true, z is scaled by area(A)/area(U) at fusion time (Ubisense and
  /// RFID in §6 specify z this way).
  bool scaleMisidentifyByArea = false;
  quality::QualityProfile quality;     ///< tdf + TTL

  /// The paper's headline confidence column: detection probability with the
  /// device carried, as a percentage.
  [[nodiscard]] int confidencePercent() const;

  /// (p, q) for a reading covering `areaA` inside a universe of `areaU`,
  /// degraded for `age`. Returns nullopt when the reading has expired or
  /// has degraded into uninformativeness (p <= q).
  [[nodiscard]] std::optional<quality::ConfidencePair> confidenceFor(double areaA, double areaU,
                                                                     util::Duration age) const;
};

}  // namespace mw::db
