// The spatial database (§5) — MiddleWhere's PostGIS/PostgreSQL substitute.
//
// Stores (a) the model of the physical space as Table-1 rows indexed by an
// R-tree, (b) sensor readings (Table 2) with per-sensor calibration
// metadata, and (c) location triggers: "Location triggers are events that
// are generated when a certain spatial condition is satisfied. ...
// MiddleWhere interprets these conditions into appropriate database triggers
// and creates these triggers in the database" (§5.3).
//
// All cross-space reasoning happens in the universe frame (the root of the
// FrameTree); rows and readings are stored in their local frames and
// converted on ingest/query.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "geometry/rect.hpp"
#include "geometry/rtree.hpp"
#include "glob/frame.hpp"
#include "spatialdb/sensor.hpp"
#include "spatialdb/types.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace mw::db {

/// Event delivered when a database trigger fires.
struct TriggerEvent {
  util::TriggerId id;
  SensorReading reading;  ///< the reading that satisfied the condition (universe frame)
  geo::Rect region;       ///< the trigger's region (universe frame)
};

/// Condition + callback for a database trigger. The DB-level condition is
/// purely geometric (reading MBR intersects region); probabilistic
/// thresholding is layered on top by the Location Service (§4.3).
struct TriggerSpec {
  geo::Rect region;  ///< universe frame
  std::optional<util::MobileObjectId> subject;  ///< nullopt = any mobile object
  std::function<void(const TriggerEvent&)> callback;
};

/// Thread-safety: reads and writes are guarded by one reader/writer lock, so
/// pull queries run concurrently with each other and serialize only against
/// ingest. Exceptions, documented per method: the FrameTree accessors return
/// unguarded references (frames are set up before concurrent operation), and
/// trigger callbacks run OUTSIDE the lock — they may reenter the database,
/// and a callback may still fire once after dropTrigger() returns.
class SpatialDatabase {
 public:
  /// `universe` is the MBR of the whole modeled world in root-frame
  /// coordinates — the paper's area(U), "the floor-area of the entire
  /// building". The FrameTree must already have its root registered.
  SpatialDatabase(const util::Clock& clock, geo::Rect universe, glob::FrameTree frames);

  /// Convenience: single-frame database whose root frame is `rootFrame`.
  SpatialDatabase(const util::Clock& clock, geo::Rect universe, const std::string& rootFrame);

  [[nodiscard]] const geo::Rect& universe() const noexcept { return universe_; }
  [[nodiscard]] glob::FrameTree& frames() noexcept { return frames_; }
  [[nodiscard]] const glob::FrameTree& frames() const noexcept { return frames_; }

  /// Resolves the coordinate frame for a GLOB prefix: the prefix itself when
  /// registered, otherwise its nearest registered ancestor ("SC/roomA"
  /// coordinates are expressed in "SC" when roomA has no frame of its own).
  /// Falls back to the root frame.
  [[nodiscard]] std::string frameFor(const std::string& globPrefix) const;

  // --- spatial-object table (Table 1) ---------------------------------------

  /// Inserts a row; throws ContractError on invalid rows or duplicate
  /// (globPrefix, id) keys, NotFoundError if the row's frame is unknown.
  void addObject(SpatialObjectRow row);
  bool removeObject(const std::string& globPrefix, const util::SpatialObjectId& id);
  [[nodiscard]] std::optional<SpatialObjectRow> object(const std::string& globPrefix,
                                                       const util::SpatialObjectId& id) const;
  /// Looks an object up by its full GLOB string ("CS/Floor3/3105").
  [[nodiscard]] std::optional<SpatialObjectRow> objectByGlob(const std::string& fullGlob) const;

  [[nodiscard]] std::vector<SpatialObjectRow> objectsOfType(ObjectType type) const;
  /// All rows whose universe-frame MBR intersects `universeRect`.
  [[nodiscard]] std::vector<SpatialObjectRow> objectsIntersecting(
      const geo::Rect& universeRect) const;
  /// All rows whose exact geometry contains the universe-frame point.
  [[nodiscard]] std::vector<SpatialObjectRow> objectsContaining(geo::Point2 universePoint) const;
  /// Filter scan — the SQL-query stand-in ("Where is the nearest region that
  /// has power outlets and high Bluetooth signal?" style predicates).
  [[nodiscard]] std::vector<SpatialObjectRow> query(
      const std::function<bool(const SpatialObjectRow&)>& predicate) const;
  /// Nearest object satisfying `predicate` by universe MBR distance.
  [[nodiscard]] std::optional<SpatialObjectRow> nearest(
      geo::Point2 universePoint,
      const std::function<bool(const SpatialObjectRow&)>& predicate) const;

  [[nodiscard]] std::size_t objectCount() const;

  /// A row's MBR converted into universe coordinates.
  [[nodiscard]] geo::Rect universeMbr(const SpatialObjectRow& row) const;
  /// A row's polygon converted into universe coordinates (Polygon rows only).
  [[nodiscard]] geo::Polygon universePolygon(const SpatialObjectRow& row) const;

  // --- sensor tables (Table 2 + sensor metadata, §5.2) -----------------------

  void registerSensor(SensorMeta meta);
  /// Removes a sensor's calibration row. Its stored readings become invisible
  /// to readingsFor/fusion immediately (readings are interpreted through the
  /// metadata table), every object's readings epoch moves, and the catalog
  /// epoch is bumped. Returns false for unknown sensors.
  bool deregisterSensor(const util::SensorId& id);
  [[nodiscard]] std::optional<SensorMeta> sensorMeta(const util::SensorId& id) const;
  [[nodiscard]] std::size_t sensorCount() const;
  /// All registered sensor ids, sorted (deterministic snapshots).
  [[nodiscard]] std::vector<util::SensorId> sensorIds() const;

  /// Operational health of one sensor: how much it has reported and how
  /// long ago. A sensor silent for many TTLs is likely unplugged — the
  /// deployment-monitoring hook for "deploy the middleware widely" (§11).
  struct SensorHealth {
    util::SensorId sensorId;
    std::string sensorType;
    std::size_t readingCount = 0;  ///< readings ingested since registration
    /// Age of the most recent reading; nullopt if it never reported.
    std::optional<util::Duration> lastReadingAge;
    /// lastReadingAge > silenceFactor * TTL (or never reported at all).
    bool silent = true;
  };
  /// Health of every sensor, sorted by id. `silenceFactor` scales each
  /// sensor's own TTL into its silence threshold.
  [[nodiscard]] std::vector<SensorHealth> sensorHealth(double silenceFactor = 3.0) const;

  /// Ingests a reading: converts it into the universe frame, derives its
  /// `moving` attribute from the sensor's previous report, stores it as the
  /// sensor's latest observation of that mobile object, and fires matching
  /// triggers synchronously. Throws NotFoundError for unregistered sensors.
  void insertReading(SensorReading reading);

  /// Fresh (non-expired) readings about one mobile object, one per sensor,
  /// already converted into the universe frame, plus their derived motion
  /// flags (used by conflict-resolution rule 1, §4.1.2).
  struct StoredReading {
    SensorReading reading;  ///< universe frame
    bool moving = false;    ///< sensor's region moved since its prior report
  };
  [[nodiscard]] std::vector<StoredReading> readingsFor(const util::MobileObjectId& id) const;

  /// The object's *readings epoch*: a monotonically increasing counter that
  /// changes whenever the fusion-relevant state of the object's readings can
  /// have changed — on insertReading, on forced or TTL expiry, and on sensor
  /// (re)registration (calibration changes alter every confidence). TTL
  /// expiry is detected lazily: the first readingsEpoch() call after a
  /// stored reading outlives its TTL observes a bumped value. The Location
  /// Service keys its fusion cache on (object, epoch).
  [[nodiscard]] std::uint64_t readingsEpoch(const util::MobileObjectId& id) const;

  /// The database's *catalog epoch*: a monotonically increasing counter that
  /// changes whenever the answer to "which objects could a region query ever
  /// involve" can have changed — on spatial-object insert/delete, on sensor
  /// (de)registration, and when a mobile object appears (first reading) or
  /// disappears (its last stored reading is removed). Cross-object caches
  /// (the Location Service's region population cache) key their candidate
  /// discovery on it; per-object staleness is covered by readingsEpoch.
  [[nodiscard]] std::uint64_t catalogEpoch() const;

  [[nodiscard]] std::vector<util::MobileObjectId> knownMobileObjects() const;

  /// Mobile objects with at least one stored reading whose MBR intersects
  /// `universeRect` — one R-tree pass over per-object evidence boxes, the
  /// candidate-discovery primitive for region population queries. The
  /// indexed box is the union of the object's stored reading rects and is
  /// only recomputed on insert/expiry, so it is a conservative superset
  /// while readings age out lazily: discovery can over-approximate but
  /// never misses an object with fresh evidence in the region.
  [[nodiscard]] std::vector<util::MobileObjectId> mobileObjectsIntersecting(
      const geo::Rect& universeRect) const;

  /// Recent readings about one mobile object across all sensors, oldest
  /// first, restricted to `window` before now. The history ring is capped at
  /// historyCapacity() entries per object (Table 2 keeps temporal data; the
  /// paper's trigger machinery needs only the latest, but trajectory queries
  /// and movement-pattern learning consume the tail).
  [[nodiscard]] std::vector<SensorReading> history(const util::MobileObjectId& id,
                                                   util::Duration window) const;
  void setHistoryCapacity(std::size_t perObject);
  [[nodiscard]] std::size_t historyCapacity() const noexcept { return historyCapacity_; }

  /// Drops expired readings eagerly (they are also filtered lazily on read).
  void purgeExpired();

  /// Force-expires all readings a given sensor made about a mobile object —
  /// §6.3: on manual logout "the adapter also forces all location
  /// information relating to that user and obtained from the same device to
  /// expire immediately."
  void expireReadings(const util::MobileObjectId& object, const util::SensorId& sensor);

  // --- triggers (§5.3) --------------------------------------------------------

  util::TriggerId createTrigger(TriggerSpec spec);
  bool dropTrigger(util::TriggerId id);
  [[nodiscard]] std::size_t triggerCount() const;

 private:
  struct ReadingSlot {
    SensorReading reading;  // universe frame
    bool moving = false;
  };

  /// Per-object epoch state. `nextExpiry` is the first instant at which some
  /// currently fresh reading of the object outlives its TTL (TimePoint::max
  /// when nothing is pending); crossing it lazily bumps `epoch`.
  struct ObjectEpoch {
    std::uint64_t epoch = 0;
    util::TimePoint nextExpiry = util::TimePoint::max();
  };

  [[nodiscard]] static std::string objectKey(const std::string& prefix,
                                             const util::SpatialObjectId& id);
  void fireTriggers(const SensorReading& universeReading);
  [[nodiscard]] bool rowContains(const SpatialObjectRow& row, geo::Point2 universePoint) const;
  [[nodiscard]] std::optional<SpatialObjectRow> objectLocked(
      const std::string& globPrefix, const util::SpatialObjectId& id) const;
  [[nodiscard]] std::vector<util::SensorId> sensorIdsLocked() const;
  /// Recomputes epochs_[id].nextExpiry from the stored readings (lock held).
  void refreshNextExpiryLocked(const util::MobileObjectId& id, ObjectEpoch& state) const;
  /// Re-indexes the object's evidence box in the readings R-tree from its
  /// current stored readings (write lock held).
  void reindexMobileBoxLocked(const util::MobileObjectId& id);

  const util::Clock& clock_;
  geo::Rect universe_;
  glob::FrameTree frames_;

  /// One reader/writer lock over all tables (behind unique_ptr so the
  /// database stays movable for snapshot restore). Mutators take it
  /// exclusively; const queries take it shared. Lazy TTL-epoch bumps are the
  /// one place a const method upgrades to the exclusive lock.
  mutable std::unique_ptr<std::shared_mutex> mutex_;

  // Object storage: stable slots + tombstones so R-tree handles stay valid.
  std::vector<std::optional<SpatialObjectRow>> objects_;
  std::unordered_map<std::string, std::size_t> objectIndex_;  // key -> slot
  geo::RTree<std::uint64_t> objectTree_;
  std::size_t liveObjects_ = 0;

  std::unordered_map<util::SensorId, SensorMeta> sensors_;
  struct SensorActivity {
    std::size_t readingCount = 0;
    std::optional<util::TimePoint> lastReading;
  };
  std::unordered_map<util::SensorId, SensorActivity> activity_;
  // mobile object -> (sensor -> latest reading)
  std::unordered_map<util::MobileObjectId, std::unordered_map<util::SensorId, ReadingSlot>>
      readings_;
  // mobile object -> readings epoch (mutable: lazily bumped on TTL expiry)
  mutable std::unordered_map<util::MobileObjectId, ObjectEpoch> epochs_;
  // bumped on sensor (re)registration; added into every object's epoch
  std::uint64_t metaEpoch_ = 0;
  // structural version for cross-object caches (see catalogEpoch())
  std::uint64_t catalogEpoch_ = 0;

  // Evidence index: per-object union MBR of stored readings, R-tree keyed by
  // a stable slot (slots are never reused for a different object).
  geo::RTree<std::uint64_t> readingTree_;
  std::vector<util::MobileObjectId> mobileSlots_;  // slot -> object id
  std::unordered_map<util::MobileObjectId, std::size_t> mobileSlotIndex_;
  std::vector<geo::Rect> mobileBoxes_;  // slot -> indexed box (empty = not indexed)
  // mobile object -> recent readings, oldest first (ring of historyCapacity_)
  std::unordered_map<util::MobileObjectId, std::deque<SensorReading>> history_;
  std::size_t historyCapacity_ = 256;

  util::IdSequencer<util::TriggerId> triggerIds_;
  std::unordered_map<util::TriggerId, TriggerSpec> triggers_;
  geo::RTree<std::uint64_t> triggerTree_;
};

}  // namespace mw::db
