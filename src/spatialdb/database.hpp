// The spatial database (§5) — MiddleWhere's PostGIS/PostgreSQL substitute.
//
// Stores (a) the model of the physical space as Table-1 rows indexed by an
// R-tree, (b) sensor readings (Table 2) with per-sensor calibration
// metadata, and (c) location triggers: "Location triggers are events that
// are generated when a certain spatial condition is satisfied. ...
// MiddleWhere interprets these conditions into appropriate database triggers
// and creates these triggers in the database" (§5.3).
//
// All cross-space reasoning happens in the universe frame (the root of the
// FrameTree); rows and readings are stored in their local frames and
// converted on ingest/query.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cq/trigger_network.hpp"
#include "geometry/rect.hpp"
#include "geometry/rtree.hpp"
#include "glob/frame.hpp"
#include "spatialdb/reading_store.hpp"
#include "spatialdb/sensor.hpp"
#include "spatialdb/types.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace mw::db {

/// Event delivered when a database trigger fires.
struct TriggerEvent {
  util::TriggerId id;
  SensorReading reading;  ///< the reading that satisfied the condition (universe frame)
  geo::Rect region;       ///< the trigger's region (universe frame)
};

/// Condition + callback for a database trigger. The DB-level condition is
/// purely geometric (reading MBR intersects region); probabilistic
/// thresholding is layered on top by the Location Service (§4.3).
struct TriggerSpec {
  geo::Rect region;  ///< universe frame
  std::optional<util::MobileObjectId> subject;  ///< nullopt = any mobile object
  std::function<void(const TriggerEvent&)> callback;
};

/// Thread-safety: the database is split into three independently
/// synchronized parts, so a long catalog operation can never stall sensor
/// ingest:
///
///   1. the static catalog (spatial-object table + its R-tree) behind one
///      reader/writer lock — mutators exclusive, const queries shared;
///   2. the trigger table behind its own reader/writer lock (trigger
///      matching is on the ingest hot path, so it must not serialize with
///      catalog writers);
///   3. the sensor readings + sensor metadata in a striped `ReadingStore`
///      (see reading_store.hpp): concurrent insertReading calls on
///      different objects never contend, and readers pin epoch-published
///      immutable snapshots under a per-object slot lock held only for the
///      pointer copy.
///
/// The FrameTree accessors return unguarded references (frames are set up
/// before concurrent operation), and trigger callbacks run OUTSIDE every
/// lock — they may reenter the database, and a callback may still fire once
/// after dropTrigger() returns.
class SpatialDatabase {
 public:
  /// `universe` is the MBR of the whole modeled world in root-frame
  /// coordinates — the paper's area(U), "the floor-area of the entire
  /// building". The FrameTree must already have its root registered.
  SpatialDatabase(const util::Clock& clock, geo::Rect universe, glob::FrameTree frames);

  /// Convenience: single-frame database whose root frame is `rootFrame`.
  SpatialDatabase(const util::Clock& clock, geo::Rect universe, const std::string& rootFrame);

  [[nodiscard]] const geo::Rect& universe() const noexcept { return universe_; }
  [[nodiscard]] glob::FrameTree& frames() noexcept { return frames_; }
  [[nodiscard]] const glob::FrameTree& frames() const noexcept { return frames_; }

  /// Resolves the coordinate frame for a GLOB prefix: the prefix itself when
  /// registered, otherwise its nearest registered ancestor ("SC/roomA"
  /// coordinates are expressed in "SC" when roomA has no frame of its own).
  /// Falls back to the root frame.
  [[nodiscard]] std::string frameFor(const std::string& globPrefix) const;

  // --- spatial-object table (Table 1) ---------------------------------------

  /// Inserts a row; throws ContractError on invalid rows or duplicate
  /// (globPrefix, id) keys, NotFoundError if the row's frame is unknown.
  void addObject(SpatialObjectRow row);
  bool removeObject(const std::string& globPrefix, const util::SpatialObjectId& id);
  [[nodiscard]] std::optional<SpatialObjectRow> object(const std::string& globPrefix,
                                                       const util::SpatialObjectId& id) const;
  /// Looks an object up by its full GLOB string ("CS/Floor3/3105").
  [[nodiscard]] std::optional<SpatialObjectRow> objectByGlob(const std::string& fullGlob) const;

  [[nodiscard]] std::vector<SpatialObjectRow> objectsOfType(ObjectType type) const;
  /// All rows whose universe-frame MBR intersects `universeRect`.
  [[nodiscard]] std::vector<SpatialObjectRow> objectsIntersecting(
      const geo::Rect& universeRect) const;
  /// All rows whose exact geometry contains the universe-frame point.
  [[nodiscard]] std::vector<SpatialObjectRow> objectsContaining(geo::Point2 universePoint) const;
  /// Filter scan — the SQL-query stand-in ("Where is the nearest region that
  /// has power outlets and high Bluetooth signal?" style predicates).
  [[nodiscard]] std::vector<SpatialObjectRow> query(
      const std::function<bool(const SpatialObjectRow&)>& predicate) const;
  /// Nearest object satisfying `predicate` by universe MBR distance.
  [[nodiscard]] std::optional<SpatialObjectRow> nearest(
      geo::Point2 universePoint,
      const std::function<bool(const SpatialObjectRow&)>& predicate) const;

  [[nodiscard]] std::size_t objectCount() const;

  /// A row's MBR converted into universe coordinates.
  [[nodiscard]] geo::Rect universeMbr(const SpatialObjectRow& row) const;
  /// A row's polygon converted into universe coordinates (Polygon rows only).
  [[nodiscard]] geo::Polygon universePolygon(const SpatialObjectRow& row) const;

  // --- sensor tables (Table 2 + sensor metadata, §5.2) -----------------------

  void registerSensor(SensorMeta meta);
  /// Removes a sensor's calibration row. Its stored readings become invisible
  /// to readingsFor/fusion immediately (readings are interpreted through the
  /// metadata table), every object's readings epoch moves, and the catalog
  /// epoch is bumped. Returns false for unknown sensors.
  bool deregisterSensor(const util::SensorId& id);
  [[nodiscard]] std::optional<SensorMeta> sensorMeta(const util::SensorId& id) const;
  [[nodiscard]] std::size_t sensorCount() const;
  /// All registered sensor ids, sorted (deterministic snapshots).
  [[nodiscard]] std::vector<util::SensorId> sensorIds() const;

  /// Operational health of one sensor: how much it has reported and how
  /// long ago. A sensor silent for many TTLs is likely unplugged — the
  /// deployment-monitoring hook for "deploy the middleware widely" (§11).
  struct SensorHealth {
    util::SensorId sensorId;
    std::string sensorType;
    std::size_t readingCount = 0;  ///< readings ingested since registration
    /// Age of the most recent reading; nullopt if it never reported.
    std::optional<util::Duration> lastReadingAge;
    /// lastReadingAge > silenceFactor * TTL (or never reported at all).
    bool silent = true;
  };
  /// Health of every sensor, sorted by id. `silenceFactor` scales each
  /// sensor's own TTL into its silence threshold.
  [[nodiscard]] std::vector<SensorHealth> sensorHealth(double silenceFactor = 3.0) const;

  /// Ingests a reading: converts it into the universe frame, derives its
  /// `moving` attribute from the sensor's previous report, stores it as the
  /// sensor's latest observation of that mobile object, and fires matching
  /// triggers synchronously. Throws NotFoundError for unregistered sensors.
  /// Lock-free with respect to the catalog: appends go to the reading
  /// store's stripes, so concurrent inserts on different objects never
  /// contend and catalog writers never stall ingest. Returns the stored
  /// universe-frame reading — the delta the Location Service feeds into its
  /// continuous-query network without re-deriving the frame conversion.
  SensorReading insertReading(SensorReading reading);

  /// insertReading minus the trigger pass: the replay path for handoff and
  /// replication imports. An imported reading already fired its triggers on
  /// the shard that first ingested it — firing again here would duplicate
  /// notifications the moment a shard with live subscriptions receives a
  /// migrated object's log.
  void importReading(SensorReading reading);

  /// Fresh (non-expired) readings about one mobile object, one per sensor,
  /// already converted into the universe frame, plus their derived motion
  /// flags (used by conflict-resolution rule 1, §4.1.2).
  using StoredReading = ReadingStore::StoredReading;
  [[nodiscard]] std::vector<StoredReading> readingsFor(const util::MobileObjectId& id) const;

  /// The object's *readings epoch*: a monotonically increasing counter that
  /// changes whenever the fusion-relevant state of the object's readings can
  /// have changed — on insertReading, on forced or TTL expiry, and on sensor
  /// (re)registration (calibration changes alter every confidence). TTL
  /// expiry is detected lazily: the first readingsEpoch() call after a
  /// stored reading outlives its TTL observes a bumped value. The Location
  /// Service keys its fusion cache on (object, epoch).
  [[nodiscard]] std::uint64_t readingsEpoch(const util::MobileObjectId& id) const;

  /// The database's *catalog epoch*: a monotonically increasing counter that
  /// changes whenever the answer to "which objects could a region query ever
  /// involve" can have changed — on spatial-object insert/delete, on sensor
  /// (de)registration, and when a mobile object appears (first reading) or
  /// disappears (its last stored reading is removed). Cross-object caches
  /// (the Location Service's region population cache) key their candidate
  /// discovery on it; per-object staleness is covered by readingsEpoch.
  [[nodiscard]] std::uint64_t catalogEpoch() const;

  [[nodiscard]] std::vector<util::MobileObjectId> knownMobileObjects() const;

  /// Mobile objects with at least one stored reading whose MBR intersects
  /// `universeRect` — one pass over the store's published per-object
  /// evidence boxes, the candidate-discovery primitive for region
  /// population queries. The box is the union of the object's stored
  /// reading rects and is only recomputed on insert/expiry, so it is a
  /// conservative superset while readings age out lazily: discovery can
  /// over-approximate but never misses an object with fresh evidence in the
  /// region.
  [[nodiscard]] std::vector<util::MobileObjectId> mobileObjectsIntersecting(
      const geo::Rect& universeRect) const;

  /// One object's published evidence box (see mobileObjectsIntersecting);
  /// nullopt when the object has no stored readings.
  [[nodiscard]] std::optional<geo::Rect> evidenceBoxOf(const util::MobileObjectId& id) const;

  /// Recent readings about one mobile object across all sensors, oldest
  /// first, restricted to `window` before now. The history ring is capped at
  /// historyCapacity() entries per object (Table 2 keeps temporal data; the
  /// paper's trigger machinery needs only the latest, but trajectory queries
  /// and movement-pattern learning consume the tail).
  [[nodiscard]] std::vector<SensorReading> history(const util::MobileObjectId& id,
                                                   util::Duration window) const;
  void setHistoryCapacity(std::size_t perObject);
  [[nodiscard]] std::size_t historyCapacity() const noexcept {
    return store_->historyCapacity();
  }

  /// The object's full history ring in insertion order, un-windowed — the
  /// replication/handoff export source: replaying it through insertReading
  /// reproduces the object's state (bounded by the ring capacity).
  [[nodiscard]] std::vector<SensorReading> exportObjectLog(
      const util::MobileObjectId& id) const;

  /// Removes everything stored about one mobile object (readings, history),
  /// bumping the catalog epoch when it was tracked — the losing side of an
  /// arc handoff purges moved objects so stale estimates cannot leak into
  /// scatter-gather merges. Returns false when the object was unknown.
  bool dropMobileObject(const util::MobileObjectId& id);

  /// Drops expired readings eagerly (they are also filtered lazily on read).
  void purgeExpired();

  /// Force-expires all readings a given sensor made about a mobile object —
  /// §6.3: on manual logout "the adapter also forces all location
  /// information relating to that user and obtained from the same device to
  /// expire immediately."
  void expireReadings(const util::MobileObjectId& object, const util::SensorId& sensor);

  // --- reading-store stats ----------------------------------------------------

  /// Inserts that contended with another writer on the same object.
  [[nodiscard]] std::uint64_t readingWriterContentions() const noexcept {
    return store_->writerContentions();
  }
  /// readingsEpoch calls that raced another thread's lazy TTL bump.
  [[nodiscard]] std::uint64_t readingSnapshotRetries() const noexcept {
    return store_->snapshotRetries();
  }

  // --- triggers (§5.3) --------------------------------------------------------

  util::TriggerId createTrigger(TriggerSpec spec);
  bool dropTrigger(util::TriggerId id);
  [[nodiscard]] std::size_t triggerCount() const;

 private:
  [[nodiscard]] static std::string objectKey(const std::string& prefix,
                                             const util::SpatialObjectId& id);
  SensorReading insertReadingImpl(SensorReading reading, bool fireTriggersAfter);
  void fireTriggers(const SensorReading& universeReading);
  [[nodiscard]] bool rowContains(const SpatialObjectRow& row, geo::Point2 universePoint) const;
  [[nodiscard]] std::optional<SpatialObjectRow> objectLocked(
      const std::string& globPrefix, const util::SpatialObjectId& id) const;
  /// The single epoch-bump path for sensor-table changes: register and
  /// deregister both go through here, so the meta epoch (every object's
  /// reported readings epoch) and the catalog epoch can never drift apart.
  void noteSensorTableChanged();

  const util::Clock& clock_;
  geo::Rect universe_;
  glob::FrameTree frames_;

  /// Catalog lock: the spatial-object table and its R-tree only (behind
  /// unique_ptr so the database stays movable for snapshot restore).
  /// Mutators take it exclusively; const queries take it shared.
  mutable std::unique_ptr<std::shared_mutex> mutex_;

  // Object storage: stable slots + tombstones so R-tree handles stay valid.
  std::vector<std::optional<SpatialObjectRow>> objects_;
  std::unordered_map<std::string, std::size_t> objectIndex_;  // key -> slot
  geo::RTree<std::uint64_t> objectTree_;
  std::size_t liveObjects_ = 0;

  /// Sensor readings, sensor metadata, per-object epochs, evidence boxes and
  /// history rings — everything the ingest hot path touches (see
  /// reading_store.hpp). Also hosts the atomic catalog epoch so the
  /// database stays movable.
  std::unique_ptr<ReadingStore> store_;

  /// Trigger lock: the trigger table and its discrimination network.
  /// Separate from the catalog lock because trigger matching runs on every
  /// insertReading. Matching goes through the continuous-query network
  /// (alpha nodes shared by region rect, subject discrimination by hash),
  /// so the per-reading cost tracks the AFFECTED triggers, not the table
  /// size; the spec map only resolves matched ids to their callbacks.
  mutable std::unique_ptr<std::shared_mutex> triggersMutex_;
  util::IdSequencer<util::TriggerId> triggerIds_;
  std::unordered_map<util::TriggerId, TriggerSpec> triggers_;
  cq::TriggerNetwork triggerNet_;
};

}  // namespace mw::db
