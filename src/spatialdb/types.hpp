// Spatial-object rows — the Table 1 schema (§5.1).
//
//   | ObjectIdentifier | GlobPrefix | ObjectType | GeometryType | Points |
//
// "The ObjectIdentifier is a unique name in the name space of GlobPrefix.
// The GlobPrefix field specifies the identity of the enclosing space for an
// object. ... GlobPrefix and ObjectIdentifier make up the combined key for
// the spatial table."
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/polygon.hpp"
#include "geometry/rect.hpp"
#include "geometry/segment.hpp"
#include "util/ids.hpp"

namespace mw::db {

/// Semantic category of a spatial object ("assigns semantic information to
/// the object such as Room, Corridor, Floor, chair, table, etc").
enum class ObjectType {
  Building,
  Floor,
  Room,
  Corridor,
  Door,
  Wall,
  Display,
  Table,
  Chair,
  Workstation,
  LightSwitch,
  PowerOutlet,
  Other,
};

std::string_view toString(ObjectType t);

/// Geometry representation chosen for the object ("certain entities such as
/// non-enclosing walls, light switches, etc are more conveniently
/// represented with other geometry types such as lines and points").
enum class GeometryType { Point, Line, Polygon };

std::string_view toString(GeometryType t);

/// One row of the spatial table. All coordinates are in the frame named by
/// `globPrefix` — the Location Service converts to the universe frame when
/// reasoning across spaces.
struct SpatialObjectRow {
  util::SpatialObjectId id;  ///< ObjectIdentifier, unique within globPrefix
  std::string globPrefix;    ///< enclosing space, e.g. "CS/Floor3"
  ObjectType objectType = ObjectType::Other;
  GeometryType geometryType = GeometryType::Polygon;
  std::vector<geo::Point2> points;  ///< 1 point / 2 line endpoints / >=3 polygon

  /// Extra spatial properties: location, dimension, orientation, power
  /// outlets, Bluetooth signal strength, ... (§5.1: "the database also
  /// stores spatial properties of objects").
  std::unordered_map<std::string, std::string> properties;

  /// Full hierarchical name: globPrefix + "/" + id.
  [[nodiscard]] std::string fullGlob() const;

  /// MBR of the geometry (degenerate for points/lines).
  [[nodiscard]] geo::Rect mbr() const;

  /// Polygon view (only for GeometryType::Polygon rows).
  [[nodiscard]] geo::Polygon polygon() const;
  /// Segment view (only for GeometryType::Line rows).
  [[nodiscard]] geo::Segment segment() const;
  /// Point view (only for GeometryType::Point rows).
  [[nodiscard]] geo::Point2 point() const;

  /// Checks the geometry payload matches the declared type; throws
  /// ContractError when it does not.
  void validate() const;

  friend std::ostream& operator<<(std::ostream& os, const SpatialObjectRow& row);
};

}  // namespace mw::db
