#include "spatialdb/reading_store.hpp"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "geometry/point.hpp"
#include "util/error.hpp"

namespace mw::db {

using mw::util::NotFoundError;
using mw::util::require;

namespace {
/// First instant at which a reading of age 0 at `detectionTime` outlives
/// `ttl` (expiredAt tests age > ttl, so the boundary is one tick past).
util::TimePoint expiryInstant(const SensorReading& reading, const SensorMeta& meta) {
  return reading.detectionTime + meta.quality.ttl + util::Duration{1};
}
}  // namespace

ReadingStore::ReadingStore(const util::Clock& clock, std::size_t stripes) : clock_(clock) {
  require(stripes >= 1, "ReadingStore: stripe count must be >= 1");
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) stripes_.push_back(std::make_unique<Stripe>());
}

// --- sensor-metadata table ----------------------------------------------------

void ReadingStore::publishSensor(SensorMeta meta) {
  std::lock_guard lock(metaWriteMutex_);
  auto next = std::make_shared<MetaTable>(*loadMetas());
  auto it = next->find(meta.sensorId);
  if (it != next->end()) {
    it->second.meta = std::move(meta);  // recalibration keeps the activity row
  } else {
    util::SensorId id = meta.sensorId;
    next->emplace(std::move(id),
                  SensorEntry{std::move(meta), std::make_shared<ActivityCell>()});
  }
  MetaTablePtr pub = std::move(next);
  {
    std::unique_lock slot(metaSlotMutex_);
    metas_.swap(pub);
  }  // the previous table's refcount drops after unlock
}

bool ReadingStore::retireSensor(const util::SensorId& id) {
  std::lock_guard lock(metaWriteMutex_);
  MetaTablePtr cur = loadMetas();
  if (!cur->contains(id)) return false;
  auto next = std::make_shared<MetaTable>(*cur);
  next->erase(id);
  MetaTablePtr pub = std::move(next);
  {
    std::unique_lock slot(metaSlotMutex_);
    metas_.swap(pub);
  }
  return true;
}

std::optional<SensorMeta> ReadingStore::sensorMeta(const util::SensorId& id) const {
  MetaTablePtr metas = loadMetas();
  auto it = metas->find(id);
  if (it == metas->end()) return std::nullopt;
  return it->second.meta;
}

std::vector<util::SensorId> ReadingStore::sensorIds() const {
  MetaTablePtr metas = loadMetas();
  std::vector<util::SensorId> out;
  out.reserve(metas->size());
  for (const auto& [id, _] : *metas) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ReadingStore::sensorCount() const {
  return loadMetas()->size();
}

std::optional<ReadingStore::SensorActivity> ReadingStore::activity(
    const util::SensorId& id) const {
  MetaTablePtr metas = loadMetas();
  auto it = metas->find(id);
  if (it == metas->end()) return std::nullopt;
  SensorActivity out;
  out.readingCount =
      static_cast<std::size_t>(it->second.cell->readingCount.load(std::memory_order_relaxed));
  const util::Duration::rep last = it->second.cell->lastReadingMs.load(std::memory_order_relaxed);
  if (last != ActivityCell::kNoReading) {
    out.lastReading = util::TimePoint{util::Duration{last}};
  }
  return out;
}

void ReadingStore::noteSensorTableChanged() {
  metaEpoch_.fetch_add(1, std::memory_order_acq_rel);
  // Calibration/TTL changes reschedule every object's pending expiry under
  // the new table; epochs need no per-object bump because metaEpoch is added
  // into every reported value.
  MetaTablePtr metas = loadMetas();
  const util::TimePoint now = clock_.now();
  for (const auto& stripe : stripes_) {
    std::vector<ObjectLog*> logs;
    {
      std::shared_lock lock(stripe->mapMutex);
      logs.reserve(stripe->logs.size());
      for (const auto& [_, log] : stripe->logs) logs.push_back(log.get());
    }
    for (ObjectLog* log : logs) {
      std::lock_guard lock(log->writeMutex);
      SnapshotPtr cur = loadSnap(*log);
      const util::TimePoint boundary = nextExpiryOf(cur->readings, *metas, now);
      if (boundary == cur->nextExpiry) continue;
      auto next = std::make_shared<Snapshot>(*cur);
      next->nextExpiry = boundary;
      storeSnap(*log, std::move(next));
    }
  }
}

// --- internals ----------------------------------------------------------------

ReadingStore::SnapshotPtr ReadingStore::loadSnap(const ObjectLog& log) {
  std::shared_lock lock(log.snapMutex);
  return log.snap;
}

void ReadingStore::storeSnap(ObjectLog& log, SnapshotPtr next) {
  {
    std::unique_lock lock(log.snapMutex);
    log.snap.swap(next);
  }
  // `next` now holds the previous snapshot; its refcount drops (and the
  // snapshot possibly frees) outside the slot lock.
}

ReadingStore::MetaTablePtr ReadingStore::loadMetas() const {
  std::shared_lock lock(metaSlotMutex_);
  return metas_;
}

ReadingStore::Stripe& ReadingStore::stripeFor(const util::MobileObjectId& id) const {
  const std::size_t h = std::hash<std::string>{}(id.str());
  return *stripes_[h % stripes_.size()];
}

ReadingStore::ObjectLog* ReadingStore::findLog(const util::MobileObjectId& id) const {
  Stripe& stripe = stripeFor(id);
  std::shared_lock lock(stripe.mapMutex);
  auto it = stripe.logs.find(id);
  return it == stripe.logs.end() ? nullptr : it->second.get();
}

ReadingStore::ObjectLog& ReadingStore::obtainLog(const util::MobileObjectId& id) {
  Stripe& stripe = stripeFor(id);
  {
    std::shared_lock lock(stripe.mapMutex);
    auto it = stripe.logs.find(id);
    if (it != stripe.logs.end()) return *it->second;
  }
  std::unique_lock lock(stripe.mapMutex);
  auto& slot = stripe.logs[id];
  if (!slot) slot = std::make_unique<ObjectLog>();
  return *slot;
}

std::unique_lock<std::mutex> ReadingStore::lockWriter(ObjectLog& log) const {
  std::unique_lock lock(log.writeMutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    writerContentions_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

geo::Rect ReadingStore::unionBox(
    const std::vector<std::pair<util::SensorId, StoredReading>>& readings) {
  geo::Rect box;
  for (const auto& [_, stored] : readings) box = box.unionWith(stored.reading.rect());
  // Degenerate evidence (a single exact-point reading) still needs a
  // non-empty box for intersection tests, mirroring the object table.
  if (!box.empty() && box.area() == 0) box = box.inflated(1e-6);
  return box;
}

util::TimePoint ReadingStore::nextExpiryOf(
    const std::vector<std::pair<util::SensorId, StoredReading>>& readings,
    const MetaTable& metas, util::TimePoint now) {
  util::TimePoint next = util::TimePoint::max();
  for (const auto& [sensorId, stored] : readings) {
    auto it = metas.find(sensorId);
    if (it == metas.end()) continue;
    const util::TimePoint boundary = expiryInstant(stored.reading, it->second.meta);
    if (boundary > now) next = std::min(next, boundary);
  }
  return next;
}

// --- appends ------------------------------------------------------------------

ReadingStore::AppendResult ReadingStore::append(const SensorReading& universeReading) {
  MetaTablePtr metas = loadMetas();
  auto metaIt = metas->find(universeReading.sensorId);
  if (metaIt == metas->end()) {
    throw NotFoundError("SpatialDatabase::insertReading: unregistered sensor '" +
                        universeReading.sensorId.str() + "'");
  }
  const SensorMeta& meta = metaIt->second.meta;

  ObjectLog& log = obtainLog(universeReading.mobileObjectId);
  std::unique_lock lock = lockWriter(log);
  SnapshotPtr old = loadSnap(log);
  const bool newObject = old->readings.empty();

  auto next = std::make_shared<Snapshot>();
  next->readings.reserve(old->readings.size() + 1);
  bool moving = false;
  // Freshest report first: conflict resolution ranks candidate regions by
  // probability, and when time-decay leaves two readings tied the earlier
  // input wins — the published behaviour is that the most recent evidence
  // breaks such ties.
  next->readings.emplace_back(universeReading.sensorId, StoredReading{universeReading, false});
  for (const auto& entry : old->readings) {
    if (entry.first == universeReading.sensorId) {
      // Rule-1 input (§4.1.2 case 3): the region moved if its center shifted
      // by more than a hair since the sensor's previous report.
      moving = geo::distance(entry.second.reading.rect().center(),
                             universeReading.rect().center()) > 1e-6;
      continue;  // replaced by the fresh report above
    }
    next->readings.push_back(entry);
  }
  next->readings.front().second.moving = moving;
  next->epoch = old->epoch + 1;
  next->nextExpiry = std::min(old->nextExpiry, expiryInstant(universeReading, meta));
  next->box = unionBox(next->readings);

  log.historyRing.push_back(universeReading);
  const std::size_t capacity = historyCapacity_.load(std::memory_order_relaxed);
  while (log.historyRing.size() > capacity) log.historyRing.pop_front();

  ActivityCell& cell = *metaIt->second.cell;
  cell.readingCount.fetch_add(1, std::memory_order_relaxed);
  cell.lastReadingMs.store(universeReading.detectionTime.time_since_epoch().count(),
                           std::memory_order_relaxed);

  storeSnap(log, std::move(next));
  return AppendResult{newObject};
}

// --- snapshot reads -----------------------------------------------------------

std::vector<ReadingStore::StoredReading> ReadingStore::freshReadings(
    const util::MobileObjectId& id) const {
  std::vector<StoredReading> out;
  const ObjectLog* log = findLog(id);
  if (log == nullptr) return out;
  MetaTablePtr metas = loadMetas();
  SnapshotPtr snap = loadSnap(*log);
  const util::TimePoint now = clock_.now();
  out.reserve(snap->readings.size());
  for (const auto& [sensorId, stored] : snap->readings) {
    auto metaIt = metas->find(sensorId);
    if (metaIt == metas->end()) continue;  // deregistered: invisible immediately
    if (metaIt->second.meta.quality.expiredAt(now - stored.reading.detectionTime)) continue;
    out.push_back(stored);
  }
  return out;
}

std::uint64_t ReadingStore::epochOf(const util::MobileObjectId& id) const {
  const std::uint64_t metaEpoch = metaEpoch_.load(std::memory_order_acquire);
  ObjectLog* log = findLog(id);
  if (log == nullptr) return metaEpoch;
  SnapshotPtr snap = loadSnap(*log);
  const util::TimePoint now = clock_.now();
  if (now < snap->nextExpiry) return metaEpoch + snap->epoch;

  // A TTL boundary has been crossed: publish the bump under the object's
  // writer lock so cached fusion states keyed on the old value are
  // invalidated exactly once.
  std::lock_guard lock(log->writeMutex);
  SnapshotPtr cur = loadSnap(*log);
  if (now < cur->nextExpiry) {
    // Another thread advanced the snapshot while we waited for the lock.
    snapshotRetries_.fetch_add(1, std::memory_order_relaxed);
    return metaEpoch + cur->epoch;
  }
  MetaTablePtr metas = loadMetas();
  auto next = std::make_shared<Snapshot>(*cur);
  next->epoch = cur->epoch + 1;
  next->nextExpiry = nextExpiryOf(next->readings, *metas, now);
  const std::uint64_t result = metaEpoch + next->epoch;
  storeSnap(*log, std::move(next));
  return result;
}

std::vector<util::MobileObjectId> ReadingStore::knownObjects() const {
  std::vector<util::MobileObjectId> out;
  for (const auto& stripe : stripes_) {
    std::shared_lock lock(stripe->mapMutex);
    for (const auto& [id, log] : stripe->logs) {
      if (!loadSnap(*log)->readings.empty()) out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<util::MobileObjectId> ReadingStore::objectsIntersecting(
    const geo::Rect& universeRect) const {
  std::vector<util::MobileObjectId> out;
  for (const auto& stripe : stripes_) {
    std::shared_lock lock(stripe->mapMutex);
    for (const auto& [id, log] : stripe->logs) {
      SnapshotPtr snap = loadSnap(*log);
      if (!snap->box.empty() && snap->box.intersects(universeRect)) out.push_back(id);
    }
  }
  return out;
}

std::optional<geo::Rect> ReadingStore::evidenceBoxOf(const util::MobileObjectId& id) const {
  const ObjectLog* log = findLog(id);
  if (log == nullptr) return std::nullopt;
  SnapshotPtr snap = loadSnap(*log);
  if (snap->box.empty()) return std::nullopt;
  return snap->box;
}

std::vector<SensorReading> ReadingStore::history(const util::MobileObjectId& id,
                                                 util::Duration window) const {
  const util::TimePoint cutoff = clock_.now() - window;
  std::vector<SensorReading> out;
  ObjectLog* log = findLog(id);
  if (log == nullptr) return out;
  {
    std::lock_guard lock(log->writeMutex);
    for (const auto& reading : log->historyRing) {
      if (reading.detectionTime >= cutoff) out.push_back(reading);
    }
  }
  std::sort(out.begin(), out.end(), [](const SensorReading& a, const SensorReading& b) {
    return a.detectionTime < b.detectionTime;
  });
  return out;
}

std::vector<SensorReading> ReadingStore::exportLog(const util::MobileObjectId& id) const {
  std::vector<SensorReading> out;
  ObjectLog* log = findLog(id);
  if (log == nullptr) return out;
  std::lock_guard lock(log->writeMutex);
  out.assign(log->historyRing.begin(), log->historyRing.end());
  return out;
}

bool ReadingStore::dropObject(const util::MobileObjectId& id) {
  // Publishes an empty snapshot instead of erasing the map entry: readers
  // hold ObjectLog pointers past the stripe lock (logs are stable for the
  // store's lifetime), so erasure would dangle them. An emptied log is
  // invisible to every read path — knownObjects and objectsIntersecting
  // filter empty snapshots, freshReadings returns nothing — which is all
  // "dropped" means.
  ObjectLog* log = findLog(id);
  if (log == nullptr) return false;
  std::lock_guard lock(log->writeMutex);
  SnapshotPtr cur = loadSnap(*log);
  const bool had = !cur->readings.empty() || !log->historyRing.empty();
  log->historyRing.clear();
  if (!cur->readings.empty()) {
    auto next = std::make_shared<Snapshot>();
    next->epoch = cur->epoch + 1;
    storeSnap(*log, std::move(next));
  }
  return had;
}

void ReadingStore::setHistoryCapacity(std::size_t perObject) {
  require(perObject >= 1, "SpatialDatabase::setHistoryCapacity: capacity must be >= 1");
  historyCapacity_.store(perObject, std::memory_order_relaxed);
  for (const auto& stripe : stripes_) {
    std::vector<ObjectLog*> logs;
    {
      std::shared_lock lock(stripe->mapMutex);
      logs.reserve(stripe->logs.size());
      for (const auto& [_, log] : stripe->logs) logs.push_back(log.get());
    }
    for (ObjectLog* log : logs) {
      std::lock_guard lock(log->writeMutex);
      while (log->historyRing.size() > perObject) log->historyRing.pop_front();
    }
  }
}

// --- maintenance --------------------------------------------------------------

std::size_t ReadingStore::purgeExpired() {
  MetaTablePtr metas = loadMetas();
  const util::TimePoint now = clock_.now();
  std::size_t disappeared = 0;
  for (const auto& stripe : stripes_) {
    std::vector<ObjectLog*> logs;
    {
      std::shared_lock lock(stripe->mapMutex);
      logs.reserve(stripe->logs.size());
      for (const auto& [_, log] : stripe->logs) logs.push_back(log.get());
    }
    for (ObjectLog* log : logs) {
      std::lock_guard lock(log->writeMutex);
      SnapshotPtr cur = loadSnap(*log);
      if (cur->readings.empty()) continue;
      auto next = std::make_shared<Snapshot>();
      next->readings.reserve(cur->readings.size());
      for (const auto& entry : cur->readings) {
        auto metaIt = metas->find(entry.first);
        if (metaIt == metas->end()) continue;  // orphaned by deregistration
        if (metaIt->second.meta.quality.expiredAt(now - entry.second.reading.detectionTime)) {
          continue;
        }
        next->readings.push_back(entry);
      }
      if (next->readings.size() == cur->readings.size()) continue;
      next->epoch = cur->epoch + 1;
      next->box = unionBox(next->readings);
      next->nextExpiry = nextExpiryOf(next->readings, *metas, now);
      if (next->readings.empty()) ++disappeared;
      storeSnap(*log, std::move(next));
    }
  }
  return disappeared;
}

bool ReadingStore::expireReadings(const util::MobileObjectId& object,
                                  const util::SensorId& sensor, bool& objectDisappeared) {
  objectDisappeared = false;
  ObjectLog* log = findLog(object);
  if (log == nullptr) return false;
  std::lock_guard lock(log->writeMutex);
  SnapshotPtr cur = loadSnap(*log);
  auto it = std::find_if(cur->readings.begin(), cur->readings.end(),
                         [&](const auto& entry) { return entry.first == sensor; });
  if (it == cur->readings.end()) return false;
  auto next = std::make_shared<Snapshot>();
  next->readings.reserve(cur->readings.size() - 1);
  for (const auto& entry : cur->readings) {
    if (entry.first != sensor) next->readings.push_back(entry);
  }
  next->epoch = cur->epoch + 1;
  next->box = unionBox(next->readings);
  MetaTablePtr metas = loadMetas();
  next->nextExpiry = nextExpiryOf(next->readings, *metas, clock_.now());
  objectDisappeared = next->readings.empty();
  storeSnap(*log, std::move(next));
  return true;
}

}  // namespace mw::db
