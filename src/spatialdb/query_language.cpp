#include "spatialdb/query_language.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <vector>

#include "util/error.hpp"

namespace mw::db {

using mw::util::ParseError;

namespace {

// --- tokenizer ---------------------------------------------------------------------

enum class TokenKind { Word, String, Equals, NotEquals, LParen, RParen, End };

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t pos;
};

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> out;
  std::size_t i = 0;
  auto isWordChar = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '-' ||
           c == '/';
  };
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '(') {
      out.push_back({TokenKind::LParen, "(", i++});
    } else if (c == ')') {
      out.push_back({TokenKind::RParen, ")", i++});
    } else if (c == '=') {
      out.push_back({TokenKind::Equals, "=", i++});
    } else if (c == '!' && i + 1 < text.size() && text[i + 1] == '=') {
      out.push_back({TokenKind::NotEquals, "!=", i});
      i += 2;
    } else if (c == '"') {
      std::size_t start = ++i;
      while (i < text.size() && text[i] != '"') ++i;
      if (i == text.size()) {
        throw ParseError("query: unterminated string at position " + std::to_string(start - 1));
      }
      out.push_back({TokenKind::String, text.substr(start, i - start), start - 1});
      ++i;  // closing quote
    } else if (isWordChar(c)) {
      std::size_t start = i;
      while (i < text.size() && isWordChar(text[i])) ++i;
      out.push_back({TokenKind::Word, text.substr(start, i - start), start});
    } else {
      throw ParseError(std::string("query: unexpected character '") + c + "' at position " +
                       std::to_string(i));
    }
  }
  out.push_back({TokenKind::End, "", text.size()});
  return out;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

// --- parser --------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  RowPredicate parse() {
    RowPredicate p = parseExpr();
    expect(TokenKind::End, "end of query");
    return p;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  Token take() { return tokens_[pos_++]; }

  void expect(TokenKind kind, const std::string& what) {
    if (peek().kind != kind) {
      throw ParseError("query: expected " + what + " at position " +
                       std::to_string(peek().pos));
    }
    ++pos_;
  }

  bool takeKeyword(const char* keyword) {
    if (peek().kind == TokenKind::Word && lower(peek().text) == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }

  RowPredicate parseExpr() {
    RowPredicate left = parseTerm();
    while (takeKeyword("or")) {
      RowPredicate right = parseTerm();
      left = [left, right](const SpatialObjectRow& row) { return left(row) || right(row); };
    }
    return left;
  }

  RowPredicate parseTerm() {
    RowPredicate left = parseFactor();
    while (takeKeyword("and")) {
      RowPredicate right = parseFactor();
      left = [left, right](const SpatialObjectRow& row) { return left(row) && right(row); };
    }
    return left;
  }

  RowPredicate parseFactor() {
    if (takeKeyword("not")) {
      RowPredicate inner = parseFactor();
      return [inner](const SpatialObjectRow& row) { return !inner(row); };
    }
    if (peek().kind == TokenKind::LParen) {
      ++pos_;
      RowPredicate inner = parseExpr();
      expect(TokenKind::RParen, "')'");
      return inner;
    }
    return parseComparison();
  }

  RowPredicate parseComparison() {
    if (peek().kind != TokenKind::Word) {
      throw ParseError("query: expected a field name at position " +
                       std::to_string(peek().pos));
    }
    Token field = take();
    bool negate = false;
    if (peek().kind == TokenKind::Equals) {
      ++pos_;
    } else if (peek().kind == TokenKind::NotEquals) {
      negate = true;
      ++pos_;
    } else {
      throw ParseError("query: expected '=' or '!=' at position " +
                       std::to_string(peek().pos));
    }
    if (peek().kind != TokenKind::Word && peek().kind != TokenKind::String) {
      throw ParseError("query: expected a value at position " + std::to_string(peek().pos));
    }
    Token value = take();
    RowPredicate eq = makeEquals(field, value);
    if (!negate) return eq;
    return [eq](const SpatialObjectRow& row) { return !eq(row); };
  }

  static RowPredicate makeEquals(const Token& field, const Token& value) {
    const std::string name = lower(field.text);
    const std::string expected = value.text;
    if (name == "type") {
      return [expected = lower(expected), pos = field.pos](const SpatialObjectRow& row) {
        return lower(std::string(toString(row.objectType))) == expected;
      };
    }
    if (name == "geometry") {
      return [expected = lower(expected)](const SpatialObjectRow& row) {
        return lower(std::string(toString(row.geometryType))) == expected;
      };
    }
    if (name == "id") {
      return [expected](const SpatialObjectRow& row) { return row.id.str() == expected; };
    }
    if (name == "prefix") {
      return [expected](const SpatialObjectRow& row) { return row.globPrefix == expected; };
    }
    if (name.rfind("prop.", 0) == 0) {
      std::string key = field.text.substr(5);
      if (key.empty()) {
        throw ParseError("query: empty property key at position " + std::to_string(field.pos));
      }
      return [key, expected](const SpatialObjectRow& row) {
        auto it = row.properties.find(key);
        return it != row.properties.end() && it->second == expected;
      };
    }
    throw ParseError("query: unknown field '" + field.text + "' at position " +
                     std::to_string(field.pos));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

RowPredicate compileQuery(const std::string& text) {
  mw::util::require(!text.empty(), "compileQuery: empty query");
  return Parser(tokenize(text)).parse();
}

}  // namespace mw::db
