// Spatial-database persistence — the PostgreSQL-durability substrate.
//
// A snapshot captures the world model: universe, coordinate-frame tree,
// every spatial-object row and every sensor-metadata row (including the
// temporal degradation function). Sensor *readings* are deliberately
// excluded: they are transient by definition (§3.2 freshness) and would be
// stale by the time a snapshot is reloaded.
//
// The format is the MicroOrb binary codec with a magic/version header, so
// snapshots can also travel over the wire.
#pragma once

#include <string>

#include "spatialdb/database.hpp"
#include "util/bytes.hpp"

namespace mw::db {

/// Serializes the database's world model.
util::Bytes snapshotDatabase(const SpatialDatabase& database);

/// Reconstructs a database from a snapshot. Throws util::ParseError on
/// malformed input (including unknown tdf kinds).
SpatialDatabase restoreDatabase(const util::Clock& clock, const util::Bytes& snapshot);

/// File convenience wrappers. Throw util::MwError on I/O failure.
void saveSnapshotFile(const SpatialDatabase& database, const std::string& path);
SpatialDatabase loadSnapshotFile(const util::Clock& clock, const std::string& path);

}  // namespace mw::db
