#include "spatialdb/database.hpp"

#include <algorithm>
#include <limits>
#include <mutex>

#include "geometry/segment.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::db {

using mw::util::ContractError;
using mw::util::NotFoundError;
using mw::util::require;

namespace {
glob::FrameTree singleFrameTree(const std::string& rootFrame) {
  glob::FrameTree tree;
  tree.addRoot(rootFrame);
  return tree;
}
}  // namespace

SpatialDatabase::SpatialDatabase(const util::Clock& clock, geo::Rect universe,
                                 glob::FrameTree frames)
    : clock_(clock),
      universe_(universe),
      frames_(std::move(frames)),
      mutex_(std::make_unique<std::shared_mutex>()),
      store_(std::make_unique<ReadingStore>(clock)),
      triggersMutex_(std::make_unique<std::shared_mutex>()) {
  require(!universe_.empty() && universe_.area() > 0,
          "SpatialDatabase: universe must have positive area");
  (void)frames_.rootName();  // throws if no root was registered
}

SpatialDatabase::SpatialDatabase(const util::Clock& clock, geo::Rect universe,
                                 const std::string& rootFrame)
    : SpatialDatabase(clock, universe, singleFrameTree(rootFrame)) {}

// --- spatial-object table -----------------------------------------------------

std::string SpatialDatabase::objectKey(const std::string& prefix,
                                       const util::SpatialObjectId& id) {
  return prefix + "/" + id.str();
}

std::string SpatialDatabase::frameFor(const std::string& globPrefix) const {
  std::string candidate = globPrefix;
  while (!candidate.empty()) {
    if (frames_.has(candidate)) return candidate;
    auto slash = candidate.rfind('/');
    if (slash == std::string::npos) break;
    candidate.resize(slash);
  }
  return frames_.rootName();
}

void SpatialDatabase::addObject(SpatialObjectRow row) {
  row.validate();
  const std::string frameName = frameFor(row.globPrefix);
  std::string key = objectKey(row.globPrefix, row.id);
  geo::Rect box = frames_.convertRect(frameName, frames_.rootName(), row.mbr());
  // Degenerate geometries (points, axis-aligned lines) still need a non-empty
  // box for the index.
  if (box.area() == 0) box = box.inflated(1e-6);

  std::unique_lock lock(*mutex_);
  require(!objectIndex_.contains(key), "SpatialDatabase::addObject: duplicate key " + key);
  std::size_t slot = objects_.size();
  objects_.push_back(std::move(row));
  objectIndex_.emplace(std::move(key), slot);
  objectTree_.insert(box, static_cast<std::uint64_t>(slot));
  ++liveObjects_;
  store_->bumpCatalogEpoch();
}

bool SpatialDatabase::removeObject(const std::string& globPrefix,
                                   const util::SpatialObjectId& id) {
  std::unique_lock lock(*mutex_);
  auto it = objectIndex_.find(objectKey(globPrefix, id));
  if (it == objectIndex_.end()) return false;
  std::size_t slot = it->second;
  const SpatialObjectRow& row = *objects_[slot];
  geo::Rect box = frames_.convertRect(frameFor(row.globPrefix), frames_.rootName(), row.mbr());
  if (box.area() == 0) box = box.inflated(1e-6);
  objectTree_.remove(box, static_cast<std::uint64_t>(slot));
  objects_[slot].reset();
  objectIndex_.erase(it);
  --liveObjects_;
  store_->bumpCatalogEpoch();
  return true;
}

std::optional<SpatialObjectRow> SpatialDatabase::objectLocked(
    const std::string& globPrefix, const util::SpatialObjectId& id) const {
  auto it = objectIndex_.find(objectKey(globPrefix, id));
  if (it == objectIndex_.end()) return std::nullopt;
  return objects_[it->second];
}

std::optional<SpatialObjectRow> SpatialDatabase::object(const std::string& globPrefix,
                                                        const util::SpatialObjectId& id) const {
  std::shared_lock lock(*mutex_);
  return objectLocked(globPrefix, id);
}

std::optional<SpatialObjectRow> SpatialDatabase::objectByGlob(const std::string& fullGlob) const {
  std::shared_lock lock(*mutex_);
  auto slash = fullGlob.rfind('/');
  if (slash == std::string::npos) {
    return objectLocked("", util::SpatialObjectId{fullGlob});
  }
  return objectLocked(fullGlob.substr(0, slash),
                      util::SpatialObjectId{fullGlob.substr(slash + 1)});
}

std::vector<SpatialObjectRow> SpatialDatabase::objectsOfType(ObjectType type) const {
  std::shared_lock lock(*mutex_);
  std::vector<SpatialObjectRow> out;
  for (const auto& row : objects_) {
    if (row && row->objectType == type) out.push_back(*row);
  }
  return out;
}

std::vector<SpatialObjectRow> SpatialDatabase::objectsIntersecting(
    const geo::Rect& universeRect) const {
  std::shared_lock lock(*mutex_);
  std::vector<SpatialObjectRow> out;
  objectTree_.search(universeRect, [&](const std::uint64_t& slot) {
    const auto& row = objects_[static_cast<std::size_t>(slot)];
    if (row) out.push_back(*row);
  });
  return out;
}

bool SpatialDatabase::rowContains(const SpatialObjectRow& row, geo::Point2 universePoint) const {
  geo::Point2 local = frames_.convert(frames_.rootName(), frameFor(row.globPrefix), universePoint);
  switch (row.geometryType) {
    case GeometryType::Polygon:
      return row.polygon().contains(local);
    case GeometryType::Line:
      return geo::distanceToSegment(local, row.segment()) < 1e-6;
    case GeometryType::Point:
      return geo::distance(local, row.point()) < 1e-6;
  }
  return false;
}

std::vector<SpatialObjectRow> SpatialDatabase::objectsContaining(geo::Point2 universePoint) const {
  std::shared_lock lock(*mutex_);
  std::vector<SpatialObjectRow> out;
  objectTree_.containing(universePoint, [&](const std::uint64_t& slot) {
    const auto& row = objects_[static_cast<std::size_t>(slot)];
    if (row && rowContains(*row, universePoint)) out.push_back(*row);
  });
  return out;
}

std::vector<SpatialObjectRow> SpatialDatabase::query(
    const std::function<bool(const SpatialObjectRow&)>& predicate) const {
  std::shared_lock lock(*mutex_);
  std::vector<SpatialObjectRow> out;
  for (const auto& row : objects_) {
    if (row && predicate(*row)) out.push_back(*row);
  }
  return out;
}

std::optional<SpatialObjectRow> SpatialDatabase::nearest(
    geo::Point2 universePoint,
    const std::function<bool(const SpatialObjectRow&)>& predicate) const {
  std::shared_lock lock(*mutex_);
  std::optional<SpatialObjectRow> best;
  double bestDist = std::numeric_limits<double>::infinity();
  for (const auto& row : objects_) {
    if (!row || !predicate(*row)) continue;
    double d = universeMbr(*row).distanceTo(universePoint);
    if (d < bestDist) {
      bestDist = d;
      best = *row;
    }
  }
  return best;
}

std::size_t SpatialDatabase::objectCount() const {
  std::shared_lock lock(*mutex_);
  return liveObjects_;
}

geo::Rect SpatialDatabase::universeMbr(const SpatialObjectRow& row) const {
  return frames_.convertRect(frameFor(row.globPrefix), frames_.rootName(), row.mbr());
}

geo::Polygon SpatialDatabase::universePolygon(const SpatialObjectRow& row) const {
  return frames_.convertPolygon(frameFor(row.globPrefix), frames_.rootName(), row.polygon());
}

// --- sensor tables --------------------------------------------------------------

void SpatialDatabase::noteSensorTableChanged() {
  // The one shared epoch-bump path for every sensor-table mutation:
  // calibration/TTL changes alter every cached confidence (meta epoch moves
  // every object's readings epoch, expiry schedules are recomputed under the
  // new TTLs) and reshape the answerable population (catalog epoch).
  store_->noteSensorTableChanged();
  store_->bumpCatalogEpoch();
}

void SpatialDatabase::registerSensor(SensorMeta meta) {
  require(!meta.sensorId.empty(), "SpatialDatabase::registerSensor: empty sensor id");
  meta.errorSpec.validate();
  store_->publishSensor(std::move(meta));
  noteSensorTableChanged();
}

bool SpatialDatabase::deregisterSensor(const util::SensorId& id) {
  // Stored readings from the sensor stay in place but are skipped on every
  // read path (their metadata lookup fails), so each object's fusion inputs
  // change. Re-registration later bumps the epochs again.
  if (!store_->retireSensor(id)) return false;
  noteSensorTableChanged();
  return true;
}

std::vector<util::SensorId> SpatialDatabase::sensorIds() const { return store_->sensorIds(); }

std::size_t SpatialDatabase::sensorCount() const { return store_->sensorCount(); }

std::optional<SensorMeta> SpatialDatabase::sensorMeta(const util::SensorId& id) const {
  return store_->sensorMeta(id);
}

std::vector<SpatialDatabase::SensorHealth> SpatialDatabase::sensorHealth(
    double silenceFactor) const {
  require(silenceFactor > 0, "SpatialDatabase::sensorHealth: factor must be positive");
  const util::TimePoint now = clock_.now();
  std::vector<SensorHealth> out;
  for (const auto& id : store_->sensorIds()) {
    const auto meta = store_->sensorMeta(id);
    const auto activity = store_->activity(id);
    if (!meta || !activity) continue;  // deregistered between the two loads
    SensorHealth h;
    h.sensorId = id;
    h.sensorType = meta->sensorType;
    if (activity->lastReading) {
      h.readingCount = activity->readingCount;
      h.lastReadingAge = now - *activity->lastReading;
      auto threshold = util::Duration{static_cast<std::int64_t>(
          static_cast<double>(meta->quality.ttl.count()) * silenceFactor)};
      h.silent = *h.lastReadingAge > threshold;
    } else {
      h.readingCount = 0;
      h.silent = true;
    }
    out.push_back(std::move(h));
  }
  return out;
}

SensorReading SpatialDatabase::insertReading(SensorReading reading) {
  return insertReadingImpl(std::move(reading), /*fireTriggersAfter=*/true);
}

void SpatialDatabase::importReading(SensorReading reading) {
  insertReadingImpl(std::move(reading), /*fireTriggersAfter=*/false);
}

SensorReading SpatialDatabase::insertReadingImpl(SensorReading reading, bool fireTriggersAfter) {
  require(!reading.mobileObjectId.empty(), "SpatialDatabase::insertReading: empty mobile object");

  // Convert into the universe frame (§4.1.2 step 1: common format). The
  // FrameTree is set up before concurrent operation, so no lock is needed.
  const std::string frameName = frameFor(reading.globPrefix);
  const std::string& root = frames_.rootName();
  if (frameName != root) {
    reading.location = frames_.convert(frameName, root, reading.location);
    if (reading.symbolicRegion) {
      reading.symbolicRegion = frames_.convertRect(frameName, root, *reading.symbolicRegion);
    }
    reading.globPrefix = root;
  }

  // The append touches only the object's own stripe — never the catalog
  // lock — so concurrent inserts on different objects scale across cores.
  const ReadingStore::AppendResult result = store_->append(reading);
  // A first reading brings a new member into the tracked population.
  if (result.newObject) store_->bumpCatalogEpoch();

  // Triggers fire outside every lock so their callbacks may reenter the
  // database (and so concurrent shards never serialize on user code).
  // Imports (handoff/replication replays of readings that already fired
  // wherever they were first ingested) skip this.
  if (fireTriggersAfter) fireTriggers(reading);
  return reading;
}

std::vector<SpatialDatabase::StoredReading> SpatialDatabase::readingsFor(
    const util::MobileObjectId& id) const {
  return store_->freshReadings(id);
}

std::uint64_t SpatialDatabase::readingsEpoch(const util::MobileObjectId& id) const {
  return store_->epochOf(id);
}

std::uint64_t SpatialDatabase::catalogEpoch() const { return store_->catalogEpoch(); }

std::vector<util::MobileObjectId> SpatialDatabase::mobileObjectsIntersecting(
    const geo::Rect& universeRect) const {
  return store_->objectsIntersecting(universeRect);
}

std::optional<geo::Rect> SpatialDatabase::evidenceBoxOf(const util::MobileObjectId& id) const {
  return store_->evidenceBoxOf(id);
}

std::vector<util::MobileObjectId> SpatialDatabase::knownMobileObjects() const {
  return store_->knownObjects();
}

std::vector<SensorReading> SpatialDatabase::history(const util::MobileObjectId& id,
                                                    util::Duration window) const {
  return store_->history(id, window);
}

void SpatialDatabase::setHistoryCapacity(std::size_t perObject) {
  store_->setHistoryCapacity(perObject);
}

void SpatialDatabase::purgeExpired() {
  if (store_->purgeExpired() > 0) store_->bumpCatalogEpoch();
}

std::vector<SensorReading> SpatialDatabase::exportObjectLog(
    const util::MobileObjectId& id) const {
  return store_->exportLog(id);
}

bool SpatialDatabase::dropMobileObject(const util::MobileObjectId& id) {
  const bool had = store_->dropObject(id);
  if (had) store_->bumpCatalogEpoch();  // the tracked population changed
  return had;
}

void SpatialDatabase::expireReadings(const util::MobileObjectId& object,
                                     const util::SensorId& sensor) {
  bool disappeared = false;
  store_->expireReadings(object, sensor, disappeared);
  if (disappeared) store_->bumpCatalogEpoch();
}

// --- triggers --------------------------------------------------------------------

util::TriggerId SpatialDatabase::createTrigger(TriggerSpec spec) {
  require(!spec.region.empty(), "SpatialDatabase::createTrigger: empty region");
  require(static_cast<bool>(spec.callback), "SpatialDatabase::createTrigger: null callback");
  std::unique_lock lock(*triggersMutex_);
  util::TriggerId id = triggerIds_.next();
  std::optional<std::string> subject;
  if (spec.subject) subject = spec.subject->str();
  triggerNet_.installProduction(id.value(), spec.region, subject);
  triggers_.emplace(id, std::move(spec));
  return id;
}

bool SpatialDatabase::dropTrigger(util::TriggerId id) {
  std::unique_lock lock(*triggersMutex_);
  auto it = triggers_.find(id);
  if (it == triggers_.end()) return false;
  triggerNet_.removeProduction(id.value());
  triggers_.erase(it);
  return true;
}

std::size_t SpatialDatabase::triggerCount() const {
  std::shared_lock lock(*triggersMutex_);
  return triggers_.size();
}

void SpatialDatabase::fireTriggers(const SensorReading& universeReading) {
  geo::Rect box = universeReading.rect();
  // Match under the shared trigger lock, invoke outside it: callbacks are
  // user code and must be free to call back into the database. The network
  // discriminates by shared region node AND subject, so the matched set is
  // exactly the affected triggers — never a linear pass over the table.
  std::vector<std::pair<std::function<void(const TriggerEvent&)>, TriggerEvent>> toFire;
  {
    std::shared_lock lock(*triggersMutex_);
    std::vector<cq::ProductionId> matched;
    triggerNet_.matchAlpha(box, universeReading.mobileObjectId.str(), matched);
    toFire.reserve(matched.size());
    for (cq::ProductionId raw : matched) {
      util::TriggerId id{raw};
      const TriggerSpec& spec = triggers_.at(id);
      toFire.emplace_back(spec.callback, TriggerEvent{id, universeReading, spec.region});
    }
  }
  for (auto& [callback, event] : toFire) callback(event);
}

}  // namespace mw::db
