#include "spatialdb/database.hpp"

#include <algorithm>
#include <limits>
#include <mutex>

#include "geometry/segment.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::db {

using mw::util::ContractError;
using mw::util::NotFoundError;
using mw::util::require;

namespace {
glob::FrameTree singleFrameTree(const std::string& rootFrame) {
  glob::FrameTree tree;
  tree.addRoot(rootFrame);
  return tree;
}

/// First instant at which a reading of age 0 at `detectionTime` outlives
/// `ttl` (expiredAt tests age > ttl, so the boundary is one tick past).
util::TimePoint expiryInstant(const SensorReading& reading, const SensorMeta& meta) {
  return reading.detectionTime + meta.quality.ttl + util::Duration{1};
}
}  // namespace

SpatialDatabase::SpatialDatabase(const util::Clock& clock, geo::Rect universe,
                                 glob::FrameTree frames)
    : clock_(clock),
      universe_(universe),
      frames_(std::move(frames)),
      mutex_(std::make_unique<std::shared_mutex>()) {
  require(!universe_.empty() && universe_.area() > 0,
          "SpatialDatabase: universe must have positive area");
  (void)frames_.rootName();  // throws if no root was registered
}

SpatialDatabase::SpatialDatabase(const util::Clock& clock, geo::Rect universe,
                                 const std::string& rootFrame)
    : SpatialDatabase(clock, universe, singleFrameTree(rootFrame)) {}

// --- spatial-object table -----------------------------------------------------

std::string SpatialDatabase::objectKey(const std::string& prefix,
                                       const util::SpatialObjectId& id) {
  return prefix + "/" + id.str();
}

std::string SpatialDatabase::frameFor(const std::string& globPrefix) const {
  std::string candidate = globPrefix;
  while (!candidate.empty()) {
    if (frames_.has(candidate)) return candidate;
    auto slash = candidate.rfind('/');
    if (slash == std::string::npos) break;
    candidate.resize(slash);
  }
  return frames_.rootName();
}

void SpatialDatabase::addObject(SpatialObjectRow row) {
  row.validate();
  const std::string frameName = frameFor(row.globPrefix);
  std::string key = objectKey(row.globPrefix, row.id);
  geo::Rect box = frames_.convertRect(frameName, frames_.rootName(), row.mbr());
  // Degenerate geometries (points, axis-aligned lines) still need a non-empty
  // box for the index.
  if (box.area() == 0) box = box.inflated(1e-6);

  std::unique_lock lock(*mutex_);
  require(!objectIndex_.contains(key), "SpatialDatabase::addObject: duplicate key " + key);
  std::size_t slot = objects_.size();
  objects_.push_back(std::move(row));
  objectIndex_.emplace(std::move(key), slot);
  objectTree_.insert(box, static_cast<std::uint64_t>(slot));
  ++liveObjects_;
  ++catalogEpoch_;
}

bool SpatialDatabase::removeObject(const std::string& globPrefix,
                                   const util::SpatialObjectId& id) {
  std::unique_lock lock(*mutex_);
  auto it = objectIndex_.find(objectKey(globPrefix, id));
  if (it == objectIndex_.end()) return false;
  std::size_t slot = it->second;
  const SpatialObjectRow& row = *objects_[slot];
  geo::Rect box = frames_.convertRect(frameFor(row.globPrefix), frames_.rootName(), row.mbr());
  if (box.area() == 0) box = box.inflated(1e-6);
  objectTree_.remove(box, static_cast<std::uint64_t>(slot));
  objects_[slot].reset();
  objectIndex_.erase(it);
  --liveObjects_;
  ++catalogEpoch_;
  return true;
}

std::optional<SpatialObjectRow> SpatialDatabase::objectLocked(
    const std::string& globPrefix, const util::SpatialObjectId& id) const {
  auto it = objectIndex_.find(objectKey(globPrefix, id));
  if (it == objectIndex_.end()) return std::nullopt;
  return objects_[it->second];
}

std::optional<SpatialObjectRow> SpatialDatabase::object(const std::string& globPrefix,
                                                        const util::SpatialObjectId& id) const {
  std::shared_lock lock(*mutex_);
  return objectLocked(globPrefix, id);
}

std::optional<SpatialObjectRow> SpatialDatabase::objectByGlob(const std::string& fullGlob) const {
  std::shared_lock lock(*mutex_);
  auto slash = fullGlob.rfind('/');
  if (slash == std::string::npos) {
    return objectLocked("", util::SpatialObjectId{fullGlob});
  }
  return objectLocked(fullGlob.substr(0, slash),
                      util::SpatialObjectId{fullGlob.substr(slash + 1)});
}

std::vector<SpatialObjectRow> SpatialDatabase::objectsOfType(ObjectType type) const {
  std::shared_lock lock(*mutex_);
  std::vector<SpatialObjectRow> out;
  for (const auto& row : objects_) {
    if (row && row->objectType == type) out.push_back(*row);
  }
  return out;
}

std::vector<SpatialObjectRow> SpatialDatabase::objectsIntersecting(
    const geo::Rect& universeRect) const {
  std::shared_lock lock(*mutex_);
  std::vector<SpatialObjectRow> out;
  objectTree_.search(universeRect, [&](const std::uint64_t& slot) {
    const auto& row = objects_[static_cast<std::size_t>(slot)];
    if (row) out.push_back(*row);
  });
  return out;
}

bool SpatialDatabase::rowContains(const SpatialObjectRow& row, geo::Point2 universePoint) const {
  geo::Point2 local = frames_.convert(frames_.rootName(), frameFor(row.globPrefix), universePoint);
  switch (row.geometryType) {
    case GeometryType::Polygon:
      return row.polygon().contains(local);
    case GeometryType::Line:
      return geo::distanceToSegment(local, row.segment()) < 1e-6;
    case GeometryType::Point:
      return geo::distance(local, row.point()) < 1e-6;
  }
  return false;
}

std::vector<SpatialObjectRow> SpatialDatabase::objectsContaining(geo::Point2 universePoint) const {
  std::shared_lock lock(*mutex_);
  std::vector<SpatialObjectRow> out;
  objectTree_.containing(universePoint, [&](const std::uint64_t& slot) {
    const auto& row = objects_[static_cast<std::size_t>(slot)];
    if (row && rowContains(*row, universePoint)) out.push_back(*row);
  });
  return out;
}

std::vector<SpatialObjectRow> SpatialDatabase::query(
    const std::function<bool(const SpatialObjectRow&)>& predicate) const {
  std::shared_lock lock(*mutex_);
  std::vector<SpatialObjectRow> out;
  for (const auto& row : objects_) {
    if (row && predicate(*row)) out.push_back(*row);
  }
  return out;
}

std::optional<SpatialObjectRow> SpatialDatabase::nearest(
    geo::Point2 universePoint,
    const std::function<bool(const SpatialObjectRow&)>& predicate) const {
  std::shared_lock lock(*mutex_);
  std::optional<SpatialObjectRow> best;
  double bestDist = std::numeric_limits<double>::infinity();
  for (const auto& row : objects_) {
    if (!row || !predicate(*row)) continue;
    double d = universeMbr(*row).distanceTo(universePoint);
    if (d < bestDist) {
      bestDist = d;
      best = *row;
    }
  }
  return best;
}

std::size_t SpatialDatabase::objectCount() const {
  std::shared_lock lock(*mutex_);
  return liveObjects_;
}

geo::Rect SpatialDatabase::universeMbr(const SpatialObjectRow& row) const {
  return frames_.convertRect(frameFor(row.globPrefix), frames_.rootName(), row.mbr());
}

geo::Polygon SpatialDatabase::universePolygon(const SpatialObjectRow& row) const {
  return frames_.convertPolygon(frameFor(row.globPrefix), frames_.rootName(), row.polygon());
}

// --- sensor tables --------------------------------------------------------------

void SpatialDatabase::registerSensor(SensorMeta meta) {
  require(!meta.sensorId.empty(), "SpatialDatabase::registerSensor: empty sensor id");
  meta.errorSpec.validate();
  std::unique_lock lock(*mutex_);
  sensors_[meta.sensorId] = std::move(meta);
  // Calibration/TTL changes alter every cached confidence, so every object's
  // epoch moves; per-object expiry schedules are recomputed under the new TTLs.
  ++metaEpoch_;
  ++catalogEpoch_;
  for (auto& [objectId, state] : epochs_) refreshNextExpiryLocked(objectId, state);
}

bool SpatialDatabase::deregisterSensor(const util::SensorId& id) {
  std::unique_lock lock(*mutex_);
  if (sensors_.erase(id) == 0) return false;
  activity_.erase(id);
  // Stored readings from the sensor stay in place but are skipped on every
  // read path (their metadata lookup fails), so each object's fusion inputs
  // change: bump every epoch via metaEpoch_ and reschedule expiries over the
  // surviving sensors. Re-registration later bumps the epochs again.
  ++metaEpoch_;
  ++catalogEpoch_;
  for (auto& [objectId, state] : epochs_) refreshNextExpiryLocked(objectId, state);
  return true;
}

std::vector<util::SensorId> SpatialDatabase::sensorIdsLocked() const {
  std::vector<util::SensorId> out;
  out.reserve(sensors_.size());
  for (const auto& [id, _] : sensors_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<util::SensorId> SpatialDatabase::sensorIds() const {
  std::shared_lock lock(*mutex_);
  return sensorIdsLocked();
}

std::size_t SpatialDatabase::sensorCount() const {
  std::shared_lock lock(*mutex_);
  return sensors_.size();
}

std::optional<SensorMeta> SpatialDatabase::sensorMeta(const util::SensorId& id) const {
  std::shared_lock lock(*mutex_);
  auto it = sensors_.find(id);
  if (it == sensors_.end()) return std::nullopt;
  return it->second;
}

std::vector<SpatialDatabase::SensorHealth> SpatialDatabase::sensorHealth(
    double silenceFactor) const {
  require(silenceFactor > 0, "SpatialDatabase::sensorHealth: factor must be positive");
  const util::TimePoint now = clock_.now();
  std::shared_lock lock(*mutex_);
  std::vector<SensorHealth> out;
  for (const auto& id : sensorIdsLocked()) {
    const SensorMeta& meta = sensors_.at(id);
    SensorHealth h;
    h.sensorId = id;
    h.sensorType = meta.sensorType;
    auto actIt = activity_.find(id);
    if (actIt != activity_.end() && actIt->second.lastReading) {
      h.readingCount = actIt->second.readingCount;
      h.lastReadingAge = now - *actIt->second.lastReading;
      auto threshold = util::Duration{static_cast<std::int64_t>(
          static_cast<double>(meta.quality.ttl.count()) * silenceFactor)};
      h.silent = *h.lastReadingAge > threshold;
    } else {
      h.readingCount = 0;
      h.silent = true;
    }
    out.push_back(std::move(h));
  }
  return out;
}

void SpatialDatabase::refreshNextExpiryLocked(const util::MobileObjectId& id,
                                              ObjectEpoch& state) const {
  state.nextExpiry = util::TimePoint::max();
  auto it = readings_.find(id);
  if (it == readings_.end()) return;
  const util::TimePoint now = clock_.now();
  for (const auto& [sensorId, slot] : it->second) {
    auto metaIt = sensors_.find(sensorId);
    if (metaIt == sensors_.end()) continue;
    const util::TimePoint boundary = expiryInstant(slot.reading, metaIt->second);
    // Already-expired readings never expire "again"; only pending boundaries
    // schedule an epoch bump.
    if (boundary > now) state.nextExpiry = std::min(state.nextExpiry, boundary);
  }
}

void SpatialDatabase::insertReading(SensorReading reading) {
  require(!reading.mobileObjectId.empty(), "SpatialDatabase::insertReading: empty mobile object");
  SensorReading universeReading;
  {
    std::unique_lock lock(*mutex_);
    auto metaIt = sensors_.find(reading.sensorId);
    if (metaIt == sensors_.end()) {
      throw NotFoundError("SpatialDatabase::insertReading: unregistered sensor '" +
                          reading.sensorId.str() + "'");
    }

    // Convert into the universe frame (§4.1.2 step 1: common format).
    const std::string frameName = frameFor(reading.globPrefix);
    const std::string& root = frames_.rootName();
    if (frameName != root) {
      reading.location = frames_.convert(frameName, root, reading.location);
      if (reading.symbolicRegion) {
        reading.symbolicRegion = frames_.convertRect(frameName, root, *reading.symbolicRegion);
      }
      reading.globPrefix = root;
    }

    // A first reading brings a new member into the tracked population.
    if (!readings_.contains(reading.mobileObjectId)) ++catalogEpoch_;
    auto& perSensor = readings_[reading.mobileObjectId];
    bool moving = false;
    if (auto prev = perSensor.find(reading.sensorId); prev != perSensor.end()) {
      // Rule-1 input (§4.1.2 case 3): "a moving rectangle implies that the
      // person is carrying a location device". The region moved if its center
      // shifted by more than a hair since the sensor's previous report.
      moving =
          geo::distance(prev->second.reading.rect().center(), reading.rect().center()) > 1e-6;
    }
    ReadingSlot slot{reading, moving};
    perSensor[reading.sensorId] = std::move(slot);

    auto& ring = history_[reading.mobileObjectId];
    ring.push_back(reading);
    while (ring.size() > historyCapacity_) ring.pop_front();

    auto& act = activity_[reading.sensorId];
    ++act.readingCount;
    act.lastReading = reading.detectionTime;

    ObjectEpoch& epoch = epochs_[reading.mobileObjectId];
    ++epoch.epoch;
    epoch.nextExpiry =
        std::min(epoch.nextExpiry, expiryInstant(reading, metaIt->second));

    reindexMobileBoxLocked(reading.mobileObjectId);
    universeReading = std::move(reading);
  }
  // Triggers fire outside the write lock so their callbacks may reenter the
  // database (and so concurrent shards never serialize on user code).
  fireTriggers(universeReading);
}

std::vector<SpatialDatabase::StoredReading> SpatialDatabase::readingsFor(
    const util::MobileObjectId& id) const {
  const util::TimePoint now = clock_.now();
  std::shared_lock lock(*mutex_);
  std::vector<StoredReading> out;
  auto it = readings_.find(id);
  if (it == readings_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [sensorId, slot] : it->second) {
    auto metaIt = sensors_.find(sensorId);
    if (metaIt == sensors_.end()) continue;
    util::Duration age = now - slot.reading.detectionTime;
    if (metaIt->second.quality.expiredAt(age)) continue;
    out.push_back(StoredReading{slot.reading, slot.moving});
  }
  return out;
}

std::uint64_t SpatialDatabase::readingsEpoch(const util::MobileObjectId& id) const {
  const util::TimePoint now = clock_.now();
  {
    std::shared_lock lock(*mutex_);
    auto it = epochs_.find(id);
    if (it == epochs_.end()) return metaEpoch_;
    if (now < it->second.nextExpiry) return metaEpoch_ + it->second.epoch;
  }
  // A TTL boundary has been crossed: bump the epoch under the write lock so
  // cached fusion states keyed on the old value are invalidated exactly once.
  std::unique_lock lock(*mutex_);
  auto it = epochs_.find(id);
  if (it == epochs_.end()) return metaEpoch_;
  if (now >= it->second.nextExpiry) {
    ++it->second.epoch;
    refreshNextExpiryLocked(id, it->second);
  }
  return metaEpoch_ + it->second.epoch;
}

std::uint64_t SpatialDatabase::catalogEpoch() const {
  std::shared_lock lock(*mutex_);
  return catalogEpoch_;
}

void SpatialDatabase::reindexMobileBoxLocked(const util::MobileObjectId& id) {
  auto slotIt = mobileSlotIndex_.find(id);
  std::size_t slot;
  if (slotIt == mobileSlotIndex_.end()) {
    slot = mobileSlots_.size();
    mobileSlots_.push_back(id);
    mobileBoxes_.push_back(geo::Rect{});
    mobileSlotIndex_.emplace(id, slot);
  } else {
    slot = slotIt->second;
  }

  geo::Rect box;
  auto readingsIt = readings_.find(id);
  if (readingsIt != readings_.end()) {
    for (const auto& [sensorId, stored] : readingsIt->second) {
      box = box.unionWith(stored.reading.rect());
    }
  }
  // Degenerate evidence (a single exact-point reading) still needs a
  // non-empty box for the index, mirroring addObject.
  if (!box.empty() && box.area() == 0) box = box.inflated(1e-6);

  if (!mobileBoxes_[slot].empty()) {
    readingTree_.remove(mobileBoxes_[slot], static_cast<std::uint64_t>(slot));
  }
  if (!box.empty()) readingTree_.insert(box, static_cast<std::uint64_t>(slot));
  mobileBoxes_[slot] = box;
}

std::vector<util::MobileObjectId> SpatialDatabase::mobileObjectsIntersecting(
    const geo::Rect& universeRect) const {
  std::shared_lock lock(*mutex_);
  std::vector<util::MobileObjectId> out;
  readingTree_.search(universeRect, [&](const std::uint64_t& slot) {
    out.push_back(mobileSlots_[static_cast<std::size_t>(slot)]);
  });
  return out;
}

std::vector<util::MobileObjectId> SpatialDatabase::knownMobileObjects() const {
  std::shared_lock lock(*mutex_);
  std::vector<util::MobileObjectId> out;
  out.reserve(readings_.size());
  for (const auto& [id, _] : readings_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SensorReading> SpatialDatabase::history(const util::MobileObjectId& id,
                                                    util::Duration window) const {
  const util::TimePoint cutoff = clock_.now() - window;
  std::shared_lock lock(*mutex_);
  std::vector<SensorReading> out;
  auto it = history_.find(id);
  if (it == history_.end()) return out;
  for (const auto& reading : it->second) {
    if (reading.detectionTime >= cutoff) out.push_back(reading);
  }
  std::sort(out.begin(), out.end(), [](const SensorReading& a, const SensorReading& b) {
    return a.detectionTime < b.detectionTime;
  });
  return out;
}

void SpatialDatabase::setHistoryCapacity(std::size_t perObject) {
  require(perObject >= 1, "SpatialDatabase::setHistoryCapacity: capacity must be >= 1");
  std::unique_lock lock(*mutex_);
  historyCapacity_ = perObject;
  for (auto& [_, ring] : history_) {
    while (ring.size() > historyCapacity_) ring.pop_front();
  }
}

void SpatialDatabase::purgeExpired() {
  const util::TimePoint now = clock_.now();
  std::unique_lock lock(*mutex_);
  for (auto& [objectId, perSensor] : readings_) {
    std::size_t before = perSensor.size();
    std::erase_if(perSensor, [&](const auto& entry) {
      auto metaIt = sensors_.find(entry.first);
      if (metaIt == sensors_.end()) return true;
      return metaIt->second.quality.expiredAt(now - entry.second.reading.detectionTime);
    });
    if (perSensor.size() != before) {
      ObjectEpoch& epoch = epochs_[objectId];
      ++epoch.epoch;
      refreshNextExpiryLocked(objectId, epoch);
    }
  }
  std::size_t beforeObjects = readings_.size();
  std::erase_if(readings_, [](const auto& entry) { return entry.second.empty(); });
  if (readings_.size() != beforeObjects) ++catalogEpoch_;
  // Shrink evidence boxes to the surviving readings (iterates every slot, not
  // just the purged ones — purge is the explicit slow-path maintenance call).
  for (const auto& id : mobileSlots_) reindexMobileBoxLocked(id);
}

void SpatialDatabase::expireReadings(const util::MobileObjectId& object,
                                     const util::SensorId& sensor) {
  std::unique_lock lock(*mutex_);
  auto it = readings_.find(object);
  if (it == readings_.end()) return;
  if (it->second.erase(sensor) > 0) {
    ObjectEpoch& epoch = epochs_[object];
    ++epoch.epoch;
    refreshNextExpiryLocked(object, epoch);
  }
  if (it->second.empty()) {
    readings_.erase(it);
    ++catalogEpoch_;
  }
  reindexMobileBoxLocked(object);
}

// --- triggers --------------------------------------------------------------------

util::TriggerId SpatialDatabase::createTrigger(TriggerSpec spec) {
  require(!spec.region.empty(), "SpatialDatabase::createTrigger: empty region");
  require(static_cast<bool>(spec.callback), "SpatialDatabase::createTrigger: null callback");
  std::unique_lock lock(*mutex_);
  util::TriggerId id = triggerIds_.next();
  triggerTree_.insert(spec.region, id.value());
  triggers_.emplace(id, std::move(spec));
  return id;
}

bool SpatialDatabase::dropTrigger(util::TriggerId id) {
  std::unique_lock lock(*mutex_);
  auto it = triggers_.find(id);
  if (it == triggers_.end()) return false;
  triggerTree_.remove(it->second.region, id.value());
  triggers_.erase(it);
  return true;
}

std::size_t SpatialDatabase::triggerCount() const {
  std::shared_lock lock(*mutex_);
  return triggers_.size();
}

void SpatialDatabase::fireTriggers(const SensorReading& universeReading) {
  geo::Rect box = universeReading.rect();
  // Match under the shared lock, invoke outside it: callbacks are user code
  // and must be free to call back into the database.
  std::vector<std::pair<std::function<void(const TriggerEvent&)>, TriggerEvent>> toFire;
  {
    std::shared_lock lock(*mutex_);
    triggerTree_.search(box, [&](const std::uint64_t& raw) {
      util::TriggerId id{raw};
      auto it = triggers_.find(id);
      if (it == triggers_.end()) return;
      const TriggerSpec& spec = it->second;
      if (spec.subject && *spec.subject != universeReading.mobileObjectId) return;
      toFire.emplace_back(spec.callback, TriggerEvent{id, universeReading, spec.region});
    });
  }
  for (auto& [callback, event] : toFire) callback(event);
}

}  // namespace mw::db
