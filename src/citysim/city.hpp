// Procedural city generation: many sim::Blueprint buildings on a street grid.
//
// The north star ("heavy traffic from millions of users") needs a world far
// larger than one building. generateCity() composes the existing blueprint
// generator into a campus/city: buildings laid out on a grid of plazas and
// streets, every room/door name prefixed with its building so the city-wide
// connectivity graph and spatial database stay collision-free, entrance
// passages stitching each building's ground-floor corridor to the plaza at
// its west wall, and outdoor regions (plazas, streets) modeled as Corridor
// rows tagged `outdoor=true` so GPS-grade sensing has named regions to land
// in. The whole city shares one root frame (`CityConfig::name`); each
// building keeps its own frame subtree (building -> floor -> room) so
// Blueprint::populate() is reused verbatim per building.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/rect.hpp"
#include "glob/frame.hpp"
#include "reasoning/connectivity.hpp"
#include "reasoning/passages.hpp"
#include "sim/blueprint.hpp"
#include "spatialdb/database.hpp"

namespace mw::citysim {

struct CityConfig {
  std::string name = "City";
  int rows = 2;  ///< building grid rows
  int cols = 2;  ///< building grid columns
  /// Per-building template; `building` is overridden with "B<r><c>" names
  /// and all coordinates are translated into the city frame.
  sim::BlueprintConfig building;
  double plazaWidth = 40;    ///< outdoor plaza west of every building (feet)
  double streetHeight = 30;  ///< east-west street south of every row (feet)
};

/// One placed building: the (translated, name-prefixed) blueprint plus its
/// city-frame origin.
struct CityBuilding {
  std::string name;    ///< e.g. "B00" — also the building frame name
  geo::Point2 origin;  ///< city-frame position of the blueprint's (0,0)
  sim::Blueprint blueprint;  ///< rects already in city coordinates
};

/// A plaza or street: an outdoor circulation region in the city frame.
struct OutdoorRegion {
  std::string name;  ///< "plaza-<r>-<c>" or "street-<r>"
  geo::Rect rect;    ///< city frame
  bool isStreet = false;
};

/// A generated city. All coordinates are in the city (root) frame.
struct CityBlueprint {
  std::string name;  ///< root frame / GLOB prefix
  geo::Rect universe;
  std::vector<CityBuilding> buildings;
  std::vector<OutdoorRegion> outdoors;
  /// Inter-region passages owned by the city (building entrances onto their
  /// plazas, plaza<->street crossings); building-internal doors live in each
  /// building's blueprint.
  std::vector<reasoning::Passage> passages;

  /// Frame tree: city -> building -> floor -> room. Buildings sit at the
  /// identity under the city root (their blueprints already carry city
  /// coordinates), so per-building frames keep the Blueprint layout.
  [[nodiscard]] glob::FrameTree frames() const;
  /// Adds the same frames to an existing tree whose root is `name` — for
  /// injecting the city into a database constructed with just the root
  /// frame (e.g. a ShardHost's core).
  void installFrames(glob::FrameTree& tree) const;

  /// Inserts every building's Table-1 rows (via Blueprint::populate), the
  /// outdoor regions as `outdoor=true` Corridor rows and the city-owned
  /// passages as Door rows.
  void populate(db::SpatialDatabase& database) const;

  /// City-wide connectivity: one node per room/corridor/outdoor region, one
  /// edge per door/entrance/crossing, plus per-building stair edges.
  [[nodiscard]] reasoning::ConnectivityGraph connectivity() const;

  /// Any room/corridor of any building, by prefixed name ("B00-101").
  [[nodiscard]] const sim::BlueprintRoom* roomNamed(const std::string& roomName) const;
  [[nodiscard]] const OutdoorRegion* outdoorNamed(const std::string& regionName) const;

  [[nodiscard]] std::size_t roomCount() const;

  /// Canonical text rendering of everything the generator decides — names,
  /// geometry (%.17g), frame records and the connectivity summary. Two
  /// cities are the same iff their fingerprints are byte-identical; the
  /// determinism test hashes this.
  [[nodiscard]] std::string fingerprint() const;
};

/// Generates the city per the config. Purely deterministic: the layout is a
/// closed-form function of the config (no RNG), so equal configs yield
/// byte-identical fingerprints.
CityBlueprint generateCity(const CityConfig& config);

}  // namespace mw::citysim
