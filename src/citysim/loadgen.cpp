#include "citysim/loadgen.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "util/error.hpp"

namespace mw::citysim {

namespace {
using SteadyClock = std::chrono::steady_clock;

std::uint64_t nanosSince(SteadyClock::time_point from, SteadyClock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}
}  // namespace

std::vector<OpClassResult> OpenLoopLoadGen::run() {
  util::require(durationSeconds_ > 0, "OpenLoopLoadGen: duration must be positive");
  for (const OpClassSpec& spec : specs_) {
    util::require(spec.rate > 0, "OpenLoopLoadGen: rate must be positive");
    util::require(spec.threads >= 1, "OpenLoopLoadGen: need at least one worker");
    util::require(static_cast<bool>(spec.op), "OpenLoopLoadGen: op must be set");
  }

  std::vector<OpClassResult> results(specs_.size());
  std::mutex mergeMutex;

  // One shared start instant: classes run concurrently, like the mixed
  // workload they model.
  const SteadyClock::time_point start = SteadyClock::now() + std::chrono::milliseconds(5);
  const auto scheduleEnd =
      start + std::chrono::nanoseconds(static_cast<std::int64_t>(durationSeconds_ * 1e9));

  std::vector<std::thread> workers;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> nextSeq;
  nextSeq.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    nextSeq.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }

  for (std::size_t c = 0; c < specs_.size(); ++c) {
    const OpClassSpec& spec = specs_[c];
    OpClassResult& result = results[c];
    result.name = spec.name;
    result.targetRate = spec.rate;
    result.durationSeconds = durationSeconds_;

    for (std::size_t w = 0; w < spec.threads; ++w) {
      workers.emplace_back([&spec, &result, &mergeMutex, &counter = *nextSeq[c], start,
                            scheduleEnd]() {
        LatencyHistogram corrected, service;
        std::uint64_t completed = 0;
        const double nsPerOp = 1e9 / spec.rate;
        for (;;) {
          const std::uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
          const auto intended =
              start + std::chrono::nanoseconds(static_cast<std::int64_t>(seq * nsPerOp));
          // Every arrival scheduled inside the run window executes, no
          // matter how late we get to it: lateness is the datum, not a
          // reason to skip (skipping IS coordinated omission).
          if (intended >= scheduleEnd) break;
          std::this_thread::sleep_until(intended);
          const SteadyClock::time_point opStart = SteadyClock::now();
          spec.op(seq);
          const SteadyClock::time_point done = SteadyClock::now();
          corrected.record(nanosSince(intended, done));
          service.record(nanosSince(opStart, done));
          ++completed;
        }
        std::lock_guard lock(mergeMutex);
        result.corrected.merge(corrected);
        result.service.merge(service);
        result.completed += completed;
      });
    }
  }
  for (std::thread& worker : workers) worker.join();
  return results;
}

}  // namespace mw::citysim
