// Open-loop load generation with explicit coordinated-omission correction.
//
// A closed-loop bench (issue, wait, issue) hides server stalls: while one
// request is stuck, the generator stops offering load, so the stall costs
// one sample instead of the hundreds of requests that real arrivals would
// have queued behind it. This harness is open-loop: operation i of a class
// has the INTENDED start time `start + i/rate`, fixed in advance and
// independent of completions. Workers execute every arrival whose intended
// time precedes the deadline — even after the wall-clock deadline, draining
// the backlog a stall created — and record two latencies per operation:
//
//   corrected = completion - intended   (what a client arriving on schedule
//                                        would have observed; the honest,
//                                        coordinated-omission-free number)
//   service   = completion - actual start  (server time alone)
//
// A 100 ms server stall therefore surfaces as ~rate*0.1 corrected samples
// decaying from 100 ms — visible at p99/p999 — while the service histogram
// stays flat except for the stalled call itself. The self-test in
// citysim_test.cpp asserts exactly this separation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "citysim/histogram.hpp"

namespace mw::citysim {

/// One operation class driven at a fixed arrival rate.
struct OpClassSpec {
  std::string name;
  double rate = 100;          ///< intended arrivals per second
  std::size_t threads = 1;    ///< workers sharing the arrival schedule
  /// The operation; `seq` is the global arrival index of this class.
  std::function<void(std::uint64_t seq)> op;
};

struct OpClassResult {
  std::string name;
  double targetRate = 0;
  double durationSeconds = 0;  ///< scheduled (not drained) duration
  std::uint64_t completed = 0;
  LatencyHistogram corrected;  ///< nanoseconds, completion - intended
  LatencyHistogram service;    ///< nanoseconds, completion - actual start

  [[nodiscard]] double achievedRate() const {
    return durationSeconds > 0 ? static_cast<double>(completed) / durationSeconds : 0;
  }
};

/// Runs every class concurrently for the configured duration (plus backlog
/// drain) against the real monotonic clock.
class OpenLoopLoadGen {
 public:
  /// `durationSeconds` is the arrival-schedule length for every class.
  explicit OpenLoopLoadGen(double durationSeconds) : durationSeconds_(durationSeconds) {}

  void addClass(OpClassSpec spec) { specs_.push_back(std::move(spec)); }

  /// Blocks until every class has drained its schedule; results are in
  /// addClass order.
  [[nodiscard]] std::vector<OpClassResult> run();

 private:
  double durationSeconds_;
  std::vector<OpClassSpec> specs_;
};

}  // namespace mw::citysim
