#include "citysim/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace mw::citysim {

LatencyHistogram::LatencyHistogram() : counts_(kBuckets, 0) {}

std::size_t LatencyHistogram::indexFor(std::uint64_t value) {
  if (value < kSub) return static_cast<std::size_t>(value);
  const int k = 63 - std::countl_zero(value);  // k >= kSubBits
  const std::uint64_t sub = (value - (1ULL << k)) >> (k - kSubBits);
  return kSub + static_cast<std::size_t>(k - kSubBits) * kSub + static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::upperEdge(std::size_t index) {
  if (index < kSub) return index;
  const std::size_t rel = index - kSub;
  const int k = kSubBits + static_cast<int>(rel / kSub);
  const std::uint64_t sub = rel % kSub;
  const std::uint64_t lo = (1ULL << k) + (sub << (k - kSubBits));
  return lo + ((1ULL << (k - kSubBits)) - 1);
}

void LatencyHistogram::record(std::uint64_t value) {
  ++counts_[indexFor(value)];
  ++count_;
  total_ += value;
  max_ = std::max(max_, value);
  min_ = std::min(min_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  total_ += other.total_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

void LatencyHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  total_ = 0;
  max_ = 0;
  min_ = ~0ULL;
}

double LatencyHistogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : static_cast<double>(total_) / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::valueAtPercentile(double percentile) const {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(percentile, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += counts_[i];
    if (cumulative >= target && cumulative > 0) return std::min(upperEdge(i), max_);
  }
  return max_;
}

}  // namespace mw::citysim
