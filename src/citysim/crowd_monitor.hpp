// Crowd-monitoring workload: standing density queries, overcrowding alarms
// and region-to-region flow counters over a live location service.
//
// The monitor is service-agnostic: it polls populations through an injected
// function (LocationService::objectsInRegion, the cluster router's
// scatter-gather, or a test stub) and receives overcrowding alarms by being
// fed DensityNotifications from subscribeDensity callbacks. sweep() is the
// periodic standing query: it refreshes every watched region's population
// and diffs per-object memberships against the previous sweep to maintain
// directed flow counters ("how many people moved plaza-0-1 -> street-0
// since the last sweep") — the three queries the crowd-monitoring target
// workload is made of.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/location_service.hpp"
#include "geometry/rect.hpp"

namespace mw::citysim {

struct WatchedRegion {
  std::string name;
  geo::Rect rect;  ///< universe/city frame
};

class CrowdMonitor {
 public:
  /// Population query: (region, minProbability) -> (object, probability)
  /// list, typically a bound objectsInRegion.
  using Poll = std::function<std::vector<std::pair<util::MobileObjectId, double>>(
      const geo::Rect&, double)>;

  CrowdMonitor(std::vector<WatchedRegion> regions, Poll poll, double minProbability = 0.5);

  /// Feed for subscribeDensity callbacks (any thread).
  void onDensity(const core::DensityNotification& notification);

  /// Refreshes every region's population and updates the flow counters.
  void sweep();

  [[nodiscard]] std::size_t population(const std::string& region) const;
  [[nodiscard]] std::uint64_t alarmCount() const;  ///< CountEdge::Rose seen
  [[nodiscard]] std::uint64_t clearCount() const;  ///< CountEdge::Fell seen
  [[nodiscard]] std::uint64_t sweepCount() const;

  struct Flow {
    std::string from;
    std::string to;
    std::uint64_t count = 0;
  };
  /// Largest region-to-region flows observed so far, descending.
  [[nodiscard]] std::vector<Flow> topFlows(std::size_t n) const;

  /// Human-readable snapshot (populations, alarms, top flows).
  [[nodiscard]] std::string report() const;

 private:
  std::vector<WatchedRegion> regions_;
  Poll poll_;
  double minProbability_;

  mutable std::mutex mutex_;
  std::vector<std::size_t> populations_;  ///< parallel to regions_
  /// object -> region index as of the previous sweep.
  std::unordered_map<util::MobileObjectId, std::size_t> lastRegion_;
  /// (from, to) region-index pair -> movers observed across sweeps.
  std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> flows_;
  std::uint64_t alarms_ = 0;
  std::uint64_t clears_ = 0;
  std::uint64_t sweeps_ = 0;
};

}  // namespace mw::citysim
