#include "citysim/crowd_monitor.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace mw::citysim {

CrowdMonitor::CrowdMonitor(std::vector<WatchedRegion> regions, Poll poll, double minProbability)
    : regions_(std::move(regions)), poll_(std::move(poll)), minProbability_(minProbability) {
  util::require(static_cast<bool>(poll_), "CrowdMonitor: poll must be set");
  populations_.assign(regions_.size(), 0);
}

void CrowdMonitor::onDensity(const core::DensityNotification& notification) {
  std::lock_guard lock(mutex_);
  if (notification.edge == cq::CountEdge::Rose) ++alarms_;
  if (notification.edge == cq::CountEdge::Fell) ++clears_;
}

void CrowdMonitor::sweep() {
  // Poll outside the lock: the poll may be a scatter-gather over a cluster,
  // and alarms must keep landing while it runs.
  std::vector<std::vector<std::pair<util::MobileObjectId, double>>> results;
  results.reserve(regions_.size());
  for (const WatchedRegion& region : regions_) {
    results.push_back(poll_(region.rect, minProbability_));
  }

  std::lock_guard lock(mutex_);
  std::unordered_map<util::MobileObjectId, std::size_t> nowRegion;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    populations_[i] = results[i].size();
    // First-region-wins on overlap: watched regions are normally disjoint.
    for (const auto& [object, probability] : results[i]) nowRegion.emplace(object, i);
  }
  for (const auto& [object, region] : nowRegion) {
    auto it = lastRegion_.find(object);
    if (it != lastRegion_.end() && it->second != region) {
      ++flows_[{it->second, region}];
    }
  }
  lastRegion_ = std::move(nowRegion);
  ++sweeps_;
}

std::size_t CrowdMonitor::population(const std::string& region) const {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].name == region) return populations_[i];
  }
  return 0;
}

std::uint64_t CrowdMonitor::alarmCount() const {
  std::lock_guard lock(mutex_);
  return alarms_;
}

std::uint64_t CrowdMonitor::clearCount() const {
  std::lock_guard lock(mutex_);
  return clears_;
}

std::uint64_t CrowdMonitor::sweepCount() const {
  std::lock_guard lock(mutex_);
  return sweeps_;
}

std::vector<CrowdMonitor::Flow> CrowdMonitor::topFlows(std::size_t n) const {
  std::lock_guard lock(mutex_);
  std::vector<Flow> flows;
  flows.reserve(flows_.size());
  for (const auto& [key, count] : flows_) {
    flows.push_back(Flow{regions_[key.first].name, regions_[key.second].name, count});
  }
  std::sort(flows.begin(), flows.end(), [](const Flow& a, const Flow& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });
  if (flows.size() > n) flows.resize(n);
  return flows;
}

std::string CrowdMonitor::report() const {
  std::ostringstream out;
  {
    std::lock_guard lock(mutex_);
    out << "crowd monitor: " << sweeps_ << " sweeps, " << alarms_ << " alarms, " << clears_
        << " all-clears\n";
    for (std::size_t i = 0; i < regions_.size(); ++i) {
      out << "  " << regions_[i].name << ": " << populations_[i] << "\n";
    }
  }
  for (const Flow& flow : topFlows(5)) {
    out << "  flow " << flow.from << " -> " << flow.to << ": " << flow.count << "\n";
  }
  return out.str();
}

}  // namespace mw::citysim
