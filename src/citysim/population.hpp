// City population: 10^5..10^6 agents with pluggable behaviour models.
//
// Each agent follows one of four models, each mapped to the sensor
// technology (and §6 error model) that would actually observe it:
//
//   Commuter — walks between an assigned home room and work room on a
//     schedule; observed indoors by the city-wide Ubisense UWB deployment
//     (detect 0.95, radius 0.5 ft, gaussian noise).
//   Crowd — flocks toward the announced event region (gaussian scatter
//     around the attractor), wandering the outdoors otherwise; observed by
//     GPS outdoors (detect 0.99, accuracy 15 ft) and UWB indoors.
//   Vehicle — drives between random points of streets and plazas; GPS only.
//   Staff — badge-only: invisible to continuous sensing, emits a single
//     CardReader reading (symbolicRegion = the room) on each room entry.
//
// Storage is struct-of-arrays and the whole engine is driven by one master
// RNG stepping agents in index order, so a (city, config) pair replays
// byte-identically. step() moves every agent and appends the sensor
// readings the deployment would emit for that tick; region membership is
// tracked against an R-tree of every city region and only re-queried when
// an agent leaves its cached region's rect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "citysim/city.hpp"
#include "geometry/rtree.hpp"
#include "spatialdb/sensor.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace mw::citysim {

enum class AgentModel : std::uint8_t { Commuter, Crowd, Vehicle, Staff };

struct PopulationConfig {
  std::uint64_t seed = 42;
  std::size_t commuters = 400;
  std::size_t crowd = 300;
  std::size_t vehicles = 200;
  std::size_t staff = 100;
  double walkingSpeed = 4.0;    ///< ft/s
  double vehicleSpeed = 30.0;   ///< ft/s
  /// Commuters swap home<->work every `commutePeriod` of simulated time.
  util::Duration commutePeriod = util::minutes(10);
  /// Fraction of agents emitting a reading per step for the continuous
  /// technologies (UWB/GPS) — the per-tick sampling rate of the deployment.
  double sampleFraction = 1.0;
};

/// Sensor ids/types the population emits with; registerSensors installs
/// their §6 calibration rows.
struct CitySensors {
  static constexpr const char* kUwbId = "city-uwb";
  static constexpr const char* kGpsId = "city-gps";
  static constexpr const char* kBadgeId = "city-badge";
  static void registerAll(db::SpatialDatabase& database);
};

class Population {
 public:
  Population(const CityBlueprint& city, const PopulationConfig& config);

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] const std::string& nameOf(std::size_t agent) const { return names_[agent]; }
  [[nodiscard]] AgentModel modelOf(std::size_t agent) const { return models_[agent]; }
  [[nodiscard]] geo::Point2 positionOf(std::size_t agent) const { return positions_[agent]; }
  /// Ground-truth region name (room or outdoor region), empty when between
  /// regions.
  [[nodiscard]] const std::string& regionOf(std::size_t agent) const;

  /// Crowd agents start flocking toward `region` (the event venue).
  void announceEvent(const geo::Rect& region);
  void clearEvent();

  /// Advances every agent by `dt` and appends the readings emitted this
  /// tick. Readings are in the city root frame (globPrefix = city name),
  /// timestamped `now`.
  void step(util::TimePoint now, util::Duration dt, std::vector<db::SensorReading>& out);

  /// Total readings emitted since construction.
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  struct RegionRef {
    std::string name;
    geo::Rect rect;
    bool indoor = false;
    bool isProperRoom = false;  ///< indoor and not a corridor
  };

  void spawn(std::size_t count, AgentModel model, const char* prefix);
  [[nodiscard]] geo::Point2 randomPointIn(const geo::Rect& rect);
  [[nodiscard]] std::int32_t regionIndexAt(geo::Point2 p) const;
  void pickGoal(std::size_t agent, util::TimePoint now);
  void emitFor(std::size_t agent, std::int32_t regionIdx, bool entered,
               util::TimePoint now, std::vector<db::SensorReading>& out);

  const CityBlueprint& city_;
  PopulationConfig config_;
  util::Rng rng_;

  std::vector<RegionRef> regions_;
  geo::RTree<std::int32_t> regionIndex_;
  std::vector<std::int32_t> indoorRegions_;   ///< indices into regions_
  std::vector<std::int32_t> outdoorRegions_;  ///< indices into regions_

  // Struct-of-arrays agent state.
  std::vector<std::string> names_;
  std::vector<AgentModel> models_;
  std::vector<geo::Point2> positions_;
  std::vector<geo::Point2> goals_;
  std::vector<float> speeds_;
  std::vector<std::int32_t> currentRegion_;  ///< -1 = between regions
  std::vector<std::int32_t> homeRegion_;     ///< commuters: home room index
  std::vector<std::int32_t> workRegion_;     ///< commuters: work room index

  bool eventActive_ = false;
  geo::Rect eventRegion_;
  std::uint64_t emitted_ = 0;
  std::string emptyName_;
};

}  // namespace mw::citysim
