// HdrHistogram-style log-linear latency histogram.
//
// Fixed-size, allocation-free after construction, mergeable across worker
// threads: values below 64 are recorded exactly; above that, each power of
// two is split into 64 linear sub-buckets, bounding the relative error of
// any reported percentile to one part in 64 (~1.6%). valueAtPercentile
// returns the recorded bucket's UPPER edge, so reported tails are
// conservative (never under-state a latency).
#pragma once

#include <cstdint>
#include <vector>

namespace mw::citysim {

class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(std::uint64_t value);
  /// Adds every recorded value of `other` into this histogram.
  void merge(const LatencyHistogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] double mean() const noexcept;

  /// The smallest recorded bucket upper edge v such that at least
  /// `percentile`% of recorded values are <= v. percentile in [0, 100];
  /// returns 0 for an empty histogram, and never exceeds max().
  [[nodiscard]] std::uint64_t valueAtPercentile(double percentile) const;

 private:
  static constexpr int kSubBits = 6;                     ///< 64 sub-buckets
  static constexpr std::uint64_t kSub = 1ULL << kSubBits;
  static constexpr std::size_t kBuckets = kSub + (64 - kSubBits) * kSub;

  [[nodiscard]] static std::size_t indexFor(std::uint64_t value);
  [[nodiscard]] static std::uint64_t upperEdge(std::size_t index);

  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;  ///< sum of recorded values (for mean)
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~0ULL;
};

}  // namespace mw::citysim
