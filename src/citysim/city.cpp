#include "citysim/city.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "util/error.hpp"

namespace mw::citysim {

using mw::util::require;

namespace {

geo::Rect translated(const geo::Rect& r, geo::Point2 by) {
  return geo::Rect::fromCorners(r.lo() + by, r.hi() + by);
}

std::vector<geo::Point2> rectCorners(const geo::Rect& r) {
  return {r.lo(), {r.hi().x, r.lo().y}, r.hi(), {r.lo().x, r.hi().y}};
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

void appendRect(std::string& out, const geo::Rect& r) {
  appendf(out, " (%.17g,%.17g)-(%.17g,%.17g)", r.lo().x, r.lo().y, r.hi().x, r.hi().y);
}

}  // namespace

glob::FrameTree CityBlueprint::frames() const {
  glob::FrameTree tree;
  tree.addRoot(name);
  installFrames(tree);
  return tree;
}

void CityBlueprint::installFrames(glob::FrameTree& tree) const {
  for (const CityBuilding& b : buildings) {
    // Identity under the city root: the blueprint's rects already carry city
    // coordinates, so the per-building frame layout is unchanged.
    tree.addFrame(b.name, name, glob::Transform2{{0, 0}, 0});
    const sim::Blueprint& bp = b.blueprint;
    for (std::size_t f = 0; f < bp.floorOutlines.size(); ++f) {
      std::string floorName = b.name + "/" + std::to_string(f + 1);
      tree.addFrame(floorName, b.name, glob::Transform2{bp.floorOutlines[f].lo(), 0});
      for (const auto& room : bp.rooms) {
        if (room.floor != static_cast<int>(f)) continue;
        geo::Point2 local = room.rect.lo() - bp.floorOutlines[f].lo();
        tree.addFrame(floorName + "/" + room.name, floorName, glob::Transform2{local, 0});
      }
    }
  }
}

void CityBlueprint::populate(db::SpatialDatabase& database) const {
  for (const CityBuilding& b : buildings) b.blueprint.populate(database);
  for (const OutdoorRegion& region : outdoors) {
    db::SpatialObjectRow row;
    row.id = util::SpatialObjectId{region.name};
    row.globPrefix = name;
    row.objectType = db::ObjectType::Corridor;
    row.geometryType = db::GeometryType::Polygon;
    row.points = rectCorners(region.rect);
    row.properties["outdoor"] = "true";
    if (region.isStreet) row.properties["street"] = "true";
    database.addObject(row);
  }
  for (const reasoning::Passage& passage : passages) {
    db::SpatialObjectRow row;
    row.id = util::SpatialObjectId{passage.name};
    row.globPrefix = name;
    row.objectType = db::ObjectType::Door;
    row.geometryType = db::GeometryType::Line;
    row.points = {passage.segment.a, passage.segment.b};
    row.properties["passage"] =
        passage.kind == reasoning::PassageKind::Free ? "free" : "restricted";
    database.addObject(row);
  }
}

reasoning::ConnectivityGraph CityBlueprint::connectivity() const {
  reasoning::ConnectivityGraph graph;
  for (const CityBuilding& b : buildings) {
    for (const auto& room : b.blueprint.rooms) graph.addRegion(room.name, room.rect);
  }
  for (const OutdoorRegion& region : outdoors) graph.addRegion(region.name, region.rect);
  for (const CityBuilding& b : buildings) {
    for (const auto& door : b.blueprint.doors) graph.addPassage(door);
    // Stairwells, as in Blueprint::connectivity but with prefixed names.
    for (std::size_t f = 1; f < b.blueprint.floorOutlines.size(); ++f) {
      std::string below = b.name + "-" + std::to_string(f) + "00";
      std::string above = b.name + "-" + std::to_string(f + 1) + "00";
      if (graph.hasRegion(below) && graph.hasRegion(above)) {
        graph.connect(below, above, graph.regionRect(below).center());
      }
    }
  }
  for (const reasoning::Passage& passage : passages) graph.addPassage(passage);
  return graph;
}

const sim::BlueprintRoom* CityBlueprint::roomNamed(const std::string& roomName) const {
  for (const CityBuilding& b : buildings) {
    if (const sim::BlueprintRoom* room = b.blueprint.roomNamed(roomName)) return room;
  }
  return nullptr;
}

const OutdoorRegion* CityBlueprint::outdoorNamed(const std::string& regionName) const {
  for (const OutdoorRegion& region : outdoors) {
    if (region.name == regionName) return &region;
  }
  return nullptr;
}

std::size_t CityBlueprint::roomCount() const {
  std::size_t n = 0;
  for (const CityBuilding& b : buildings) n += b.blueprint.rooms.size();
  return n;
}

std::string CityBlueprint::fingerprint() const {
  std::string out;
  appendf(out, "city %s\nuniverse", name.c_str());
  appendRect(out, universe);
  out += "\n";
  for (const CityBuilding& b : buildings) {
    appendf(out, "building %s origin (%.17g,%.17g)\n", b.name.c_str(), b.origin.x, b.origin.y);
    for (std::size_t f = 0; f < b.blueprint.floorOutlines.size(); ++f) {
      appendf(out, " floor %zu", f + 1);
      appendRect(out, b.blueprint.floorOutlines[f]);
      out += "\n";
    }
    for (const auto& room : b.blueprint.rooms) {
      appendf(out, " room %s floor %d %s", room.name.c_str(), room.floor,
              room.isCorridor ? "corridor" : "room");
      appendRect(out, room.rect);
      out += "\n";
    }
    for (const auto& door : b.blueprint.doors) {
      appendf(out, " door %s (%.17g,%.17g)-(%.17g,%.17g) %s\n", door.name.c_str(),
              door.segment.a.x, door.segment.a.y, door.segment.b.x, door.segment.b.y,
              door.kind == reasoning::PassageKind::Free ? "free" : "restricted");
    }
  }
  for (const OutdoorRegion& region : outdoors) {
    appendf(out, "outdoor %s %s", region.name.c_str(), region.isStreet ? "street" : "plaza");
    appendRect(out, region.rect);
    out += "\n";
  }
  for (const reasoning::Passage& passage : passages) {
    appendf(out, "passage %s (%.17g,%.17g)-(%.17g,%.17g) %s\n", passage.name.c_str(),
            passage.segment.a.x, passage.segment.a.y, passage.segment.b.x, passage.segment.b.y,
            passage.kind == reasoning::PassageKind::Free ? "free" : "restricted");
  }
  for (const auto& record : frames().records()) {
    appendf(out, "frame %s parent %s at (%.17g,%.17g) rot %.17g\n", record.name.c_str(),
            record.parent.c_str(), record.toParent.translation.x, record.toParent.translation.y,
            record.toParent.rotation);
  }
  const reasoning::ConnectivityGraph graph = connectivity();
  appendf(out, "connectivity regions %zu edges %zu\n", graph.regionCount(), graph.edgeCount());
  return out;
}

CityBlueprint generateCity(const CityConfig& config) {
  require(config.rows >= 1 && config.cols >= 1, "generateCity: need a non-empty grid");
  require(config.plazaWidth > 0, "generateCity: plazaWidth must be positive");
  require(config.streetHeight > 0, "generateCity: streetHeight must be positive");

  CityBlueprint city;
  city.name = config.name;

  const sim::BlueprintConfig& t = config.building;
  const double floorWidth = t.roomsPerSide * t.roomWidth;
  const double floorHeight = 2 * t.roomDepth + t.corridorWidth;
  // A building's footprint is its whole side-by-side floor strip.
  const double stripWidth = t.floors * floorWidth + (t.floors - 1) * t.floorGap;
  const double cellWidth = config.plazaWidth + stripWidth;
  const double rowPitch = config.streetHeight + floorHeight;
  const double cityWidth = config.cols * cellWidth + config.plazaWidth;

  for (int r = 0; r < config.rows; ++r) {
    const double streetY = r * rowPitch;
    const double rowY = streetY + config.streetHeight;

    // East-west street south of the row: spans the full city width, so it
    // touches every plaza of this row (and of the row below).
    OutdoorRegion street;
    street.name = "street-" + std::to_string(r);
    street.rect = geo::Rect::fromOrigin({0, streetY}, cityWidth, config.streetHeight);
    street.isStreet = true;
    city.outdoors.push_back(street);

    // One plaza west of each building, plus a trailing one closing the row.
    for (int c = 0; c <= config.cols; ++c) {
      OutdoorRegion plaza;
      plaza.name = "plaza-" + std::to_string(r) + "-" + std::to_string(c);
      plaza.rect =
          geo::Rect::fromOrigin({c * cellWidth, rowY}, config.plazaWidth, floorHeight);
      city.outdoors.push_back(plaza);

      // Crossing between the plaza and the street below (on their shared
      // boundary, so ConnectivityGraph::addPassage links them geometrically).
      const double crossHalf = std::min(3.0, config.plazaWidth / 4);
      const double crossX = plaza.rect.center().x;
      city.passages.push_back(reasoning::Passage{
          "cross-" + std::to_string(r) + "-" + std::to_string(c) + "-s",
          {{crossX - crossHalf, rowY}, {crossX + crossHalf, rowY}},
          reasoning::PassageKind::Free});
      if (r + 1 < config.rows) {
        // And to the street above (= the next row's street).
        const double topY = rowY + floorHeight;
        city.passages.push_back(reasoning::Passage{
            "cross-" + std::to_string(r) + "-" + std::to_string(c) + "-n",
            {{crossX - crossHalf, topY}, {crossX + crossHalf, topY}},
            reasoning::PassageKind::Free});
      }
    }

    for (int c = 0; c < config.cols; ++c) {
      const geo::Point2 origin{c * cellWidth + config.plazaWidth, rowY};
      CityBuilding building;
      building.name = "B" + std::to_string(r) + "-" + std::to_string(c);
      building.origin = origin;

      sim::BlueprintConfig bc = t;
      bc.building = building.name;
      sim::Blueprint bp = sim::generateBlueprint(bc);

      // Translate into city coordinates and prefix every name with the
      // building so city-wide name spaces (graph nodes, database ids) stay
      // collision-free.
      bp.universe = translated(bp.universe, origin);
      for (auto& outline : bp.floorOutlines) outline = translated(outline, origin);
      for (auto& room : bp.rooms) {
        room.name = building.name + "-" + room.name;
        room.rect = translated(room.rect, origin);
      }
      for (auto& door : bp.doors) {
        door.name = building.name + "-" + door.name;
        door.segment.a = door.segment.a + origin;
        door.segment.b = door.segment.b + origin;
      }

      // Entrance: a door on the ground-floor corridor's west wall, which is
      // exactly the east boundary of the building's plaza.
      const double doorW = std::min(t.doorWidth, t.corridorWidth);
      const double entranceY = origin.y + t.roomDepth + (t.corridorWidth - doorW) / 2;
      city.passages.push_back(reasoning::Passage{
          building.name + "-entrance",
          {{origin.x, entranceY}, {origin.x, entranceY + doorW}},
          reasoning::PassageKind::Free});

      building.blueprint = std::move(bp);
      city.buildings.push_back(std::move(building));
    }
  }

  geo::Rect universe;
  for (const OutdoorRegion& region : city.outdoors) universe = universe.unionWith(region.rect);
  for (const CityBuilding& b : city.buildings) universe = universe.unionWith(b.blueprint.universe);
  city.universe = universe;
  return city;
}

}  // namespace mw::citysim
