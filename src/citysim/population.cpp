#include "citysim/population.hpp"

#include <algorithm>
#include <cmath>

#include "quality/error_model.hpp"
#include "util/error.hpp"

namespace mw::citysim {

using mw::util::require;

void CitySensors::registerAll(db::SpatialDatabase& database) {
  // One logical sensor row per technology: the population models a uniform
  // city-wide deployment, and fusion keys quality on the sensor id.
  // Continuous-tracking technologies get short TTLs: a walker covers their
  // own detection box in seconds, so a half-minute-old fix is evidence about
  // the PAST, and letting it outlive the walk pins fusion to where the agent
  // used to be (a stale indoor UWB fix would outrank today's GPS reading).
  db::SensorMeta uwb;
  uwb.sensorId = util::SensorId{kUwbId};
  uwb.sensorType = "Ubisense";
  uwb.errorSpec = quality::ubisenseSpec(1.0);  // carried-ness is simulated
  uwb.scaleMisidentifyByArea = true;
  uwb.quality.ttl = util::sec(15);
  database.registerSensor(uwb);

  db::SensorMeta gps;
  gps.sensorId = util::SensorId{kGpsId};
  gps.sensorType = "GPS";
  gps.errorSpec = quality::gpsSpec(1.0);
  gps.quality.ttl = util::sec(30);
  database.registerSensor(gps);

  db::SensorMeta badge;
  badge.sensorId = util::SensorId{kBadgeId};
  badge.sensorType = "CardReader";
  badge.errorSpec = quality::SensorErrorSpec{1.0, 0.98, 0.01};
  badge.scaleMisidentifyByArea = true;
  badge.quality.ttl = util::minutes(10);
  database.registerSensor(badge);
}

namespace {
constexpr double kUwbRadius = 0.5;   ///< ft, §6 Ubisense accuracy
constexpr double kGpsRadius = 15.0;  ///< ft, outdoor GPS accuracy
constexpr double kUwbDetect = 0.95;
constexpr double kGpsDetect = 0.99;
}  // namespace

Population::Population(const CityBlueprint& city, const PopulationConfig& config)
    : city_(city), config_(config), rng_(config.seed) {
  // Region table + R-tree: every room/corridor of every building, then the
  // outdoor regions. Index order is generation order, so it is as
  // deterministic as the city itself.
  for (const CityBuilding& b : city.buildings) {
    for (const sim::BlueprintRoom& room : b.blueprint.rooms) {
      RegionRef ref;
      ref.name = room.name;
      ref.rect = room.rect;
      ref.indoor = true;
      ref.isProperRoom = !room.isCorridor;
      regions_.push_back(std::move(ref));
    }
  }
  for (const OutdoorRegion& region : city.outdoors) {
    RegionRef ref;
    ref.name = region.name;
    ref.rect = region.rect;
    regions_.push_back(std::move(ref));
  }
  require(!regions_.empty(), "Population: city has no regions");
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const auto idx = static_cast<std::int32_t>(i);
    regionIndex_.insert(regions_[i].rect, idx);
    (regions_[i].indoor ? indoorRegions_ : outdoorRegions_).push_back(idx);
  }
  require(!indoorRegions_.empty() && !outdoorRegions_.empty(),
          "Population: need both indoor and outdoor regions");

  const std::size_t total = config.commuters + config.crowd + config.vehicles + config.staff;
  names_.reserve(total);
  models_.reserve(total);
  positions_.reserve(total);
  goals_.reserve(total);
  speeds_.reserve(total);
  currentRegion_.reserve(total);
  homeRegion_.reserve(total);
  workRegion_.reserve(total);

  spawn(config.commuters, AgentModel::Commuter, "com");
  spawn(config.crowd, AgentModel::Crowd, "crw");
  spawn(config.vehicles, AgentModel::Vehicle, "veh");
  spawn(config.staff, AgentModel::Staff, "stf");
}

void Population::spawn(std::size_t count, AgentModel model, const char* prefix) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t agent = names_.size();
    names_.push_back(std::string(prefix) + "-" + std::to_string(i));
    models_.push_back(model);

    std::int32_t startRegion;
    double speed = config_.walkingSpeed;
    switch (model) {
      case AgentModel::Commuter:
      case AgentModel::Staff: {
        startRegion = indoorRegions_[static_cast<std::size_t>(rng_.uniformInt(
            0, static_cast<std::int64_t>(indoorRegions_.size()) - 1))];
        break;
      }
      case AgentModel::Vehicle:
        speed = config_.vehicleSpeed;
        [[fallthrough]];
      case AgentModel::Crowd:
      default: {
        startRegion = outdoorRegions_[static_cast<std::size_t>(rng_.uniformInt(
            0, static_cast<std::int64_t>(outdoorRegions_.size()) - 1))];
        break;
      }
    }
    positions_.push_back(randomPointIn(regions_[startRegion].rect));
    goals_.push_back(positions_.back());
    speeds_.push_back(static_cast<float>(speed * rng_.uniform(0.8, 1.2)));
    currentRegion_.push_back(startRegion);

    if (model == AgentModel::Commuter) {
      homeRegion_.push_back(startRegion);
      workRegion_.push_back(indoorRegions_[static_cast<std::size_t>(rng_.uniformInt(
          0, static_cast<std::int64_t>(indoorRegions_.size()) - 1))]);
    } else {
      homeRegion_.push_back(startRegion);
      workRegion_.push_back(startRegion);
    }
    pickGoal(agent, util::TimePoint{});
  }
}

const std::string& Population::regionOf(std::size_t agent) const {
  const std::int32_t idx = currentRegion_[agent];
  return idx < 0 ? emptyName_ : regions_[static_cast<std::size_t>(idx)].name;
}

void Population::announceEvent(const geo::Rect& region) {
  eventActive_ = true;
  eventRegion_ = region;
}

void Population::clearEvent() { eventActive_ = false; }

geo::Point2 Population::randomPointIn(const geo::Rect& rect) {
  return {rng_.uniform(rect.lo().x, rect.hi().x), rng_.uniform(rect.lo().y, rect.hi().y)};
}

std::int32_t Population::regionIndexAt(geo::Point2 p) const {
  // Smallest-area match, so a room wins over any enclosing circulation rect.
  std::int32_t best = -1;
  double bestArea = 0;
  regionIndex_.search(geo::Rect::fromCorners(p, p), [&](std::int32_t idx) {
    const RegionRef& ref = regions_[static_cast<std::size_t>(idx)];
    if (!ref.rect.contains(p)) return;
    if (best < 0 || ref.rect.area() < bestArea) {
      best = idx;
      bestArea = ref.rect.area();
    }
  });
  return best;
}

void Population::pickGoal(std::size_t agent, util::TimePoint now) {
  switch (models_[agent]) {
    case AgentModel::Commuter: {
      // Schedule: alternate home/work each commutePeriod, phase-shifted per
      // agent so the whole population doesn't commute in lockstep.
      const auto period = config_.commutePeriod.count();
      const auto phase = static_cast<std::int64_t>(agent * 7919) % std::max<std::int64_t>(
                             period, 1);
      const bool atWork = ((now.time_since_epoch().count() + phase) / std::max<std::int64_t>(
                               period, 1)) % 2 == 1;
      const std::int32_t target = atWork ? workRegion_[agent] : homeRegion_[agent];
      goals_[agent] = randomPointIn(regions_[static_cast<std::size_t>(target)].rect);
      break;
    }
    case AgentModel::Crowd: {
      if (eventActive_) {
        const geo::Point2 c = eventRegion_.center();
        goals_[agent] = {c.x + rng_.gaussian(0, std::max(1.0, eventRegion_.width() / 4)),
                         c.y + rng_.gaussian(0, std::max(1.0, eventRegion_.height() / 4))};
      } else {
        const std::int32_t target = outdoorRegions_[static_cast<std::size_t>(rng_.uniformInt(
            0, static_cast<std::int64_t>(outdoorRegions_.size()) - 1))];
        goals_[agent] = randomPointIn(regions_[static_cast<std::size_t>(target)].rect);
      }
      break;
    }
    case AgentModel::Vehicle: {
      const std::int32_t target = outdoorRegions_[static_cast<std::size_t>(rng_.uniformInt(
          0, static_cast<std::int64_t>(outdoorRegions_.size()) - 1))];
      goals_[agent] = randomPointIn(regions_[static_cast<std::size_t>(target)].rect);
      break;
    }
    case AgentModel::Staff: {
      const std::int32_t target = indoorRegions_[static_cast<std::size_t>(rng_.uniformInt(
          0, static_cast<std::int64_t>(indoorRegions_.size()) - 1))];
      goals_[agent] = randomPointIn(regions_[static_cast<std::size_t>(target)].rect);
      break;
    }
  }
}

void Population::emitFor(std::size_t agent, std::int32_t regionIdx, bool entered,
                         util::TimePoint now, std::vector<db::SensorReading>& out) {
  const RegionRef* region =
      regionIdx >= 0 ? &regions_[static_cast<std::size_t>(regionIdx)] : nullptr;
  const bool indoors = region != nullptr && region->indoor;

  db::SensorReading reading;
  reading.globPrefix = city_.name;
  reading.mobileObjectId = util::MobileObjectId{names_[agent]};
  reading.detectionTime = now;

  switch (models_[agent]) {
    case AgentModel::Staff: {
      // Badge-only: one symbolic CardReader reading on each room entry.
      if (!entered || region == nullptr || !region->isProperRoom) return;
      reading.sensorId = util::SensorId{CitySensors::kBadgeId};
      reading.sensorType = "CardReader";
      reading.location = region->rect.center();
      reading.symbolicRegion = region->rect;
      break;
    }
    case AgentModel::Commuter: {
      if (!indoors || !rng_.chance(kUwbDetect * config_.sampleFraction)) return;
      reading.sensorId = util::SensorId{CitySensors::kUwbId};
      reading.sensorType = "Ubisense";
      reading.location = {positions_[agent].x + rng_.gaussian(0, kUwbRadius / 3),
                          positions_[agent].y + rng_.gaussian(0, kUwbRadius / 3)};
      reading.detectionRadius = kUwbRadius;
      break;
    }
    case AgentModel::Crowd:
    case AgentModel::Vehicle: {
      if (indoors) {
        if (models_[agent] == AgentModel::Vehicle) return;  // vehicles never enter
        if (!rng_.chance(kUwbDetect * config_.sampleFraction)) return;
        reading.sensorId = util::SensorId{CitySensors::kUwbId};
        reading.sensorType = "Ubisense";
        reading.location = {positions_[agent].x + rng_.gaussian(0, kUwbRadius / 3),
                            positions_[agent].y + rng_.gaussian(0, kUwbRadius / 3)};
        reading.detectionRadius = kUwbRadius;
      } else {
        if (!rng_.chance(kGpsDetect * config_.sampleFraction)) return;
        reading.sensorId = util::SensorId{CitySensors::kGpsId};
        reading.sensorType = "GPS";
        reading.location = {positions_[agent].x + rng_.gaussian(0, kGpsRadius / 3),
                            positions_[agent].y + rng_.gaussian(0, kGpsRadius / 3)};
        reading.detectionRadius = kGpsRadius;
      }
      break;
    }
  }
  out.push_back(std::move(reading));
  ++emitted_;
}

void Population::step(util::TimePoint now, util::Duration dt,
                      std::vector<db::SensorReading>& out) {
  const double seconds = static_cast<double>(dt.count()) / 1000.0;
  for (std::size_t agent = 0; agent < names_.size(); ++agent) {
    geo::Point2& pos = positions_[agent];
    const geo::Point2 goal = goals_[agent];
    const double dx = goal.x - pos.x;
    const double dy = goal.y - pos.y;
    const double dist = std::sqrt(dx * dx + dy * dy);
    const double stride = speeds_[agent] * seconds;
    if (dist <= stride) {
      pos = goal;
      pickGoal(agent, now);
    } else {
      pos.x += dx / dist * stride;
      pos.y += dy / dist * stride;
    }

    // Region tracking: cheap containment check against the cached region,
    // full (R-tree) lookup only on exit.
    std::int32_t region = currentRegion_[agent];
    bool entered = false;
    if (region < 0 || !regions_[static_cast<std::size_t>(region)].rect.contains(pos)) {
      region = regionIndexAt(pos);
      entered = region >= 0;
      currentRegion_[agent] = region;
    }
    emitFor(agent, region, entered, now, out);
  }
}

}  // namespace mw::citysim
