// Time abstraction.
//
// Freshness and temporal degradation (§3.2) make most of MiddleWhere
// time-dependent. All components take a `Clock&` so that tests and the
// scenario simulator can run on a deterministic virtual clock while the
// benchmarks run on the system clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace mw::util {

/// Durations and instants use a fixed epoch with millisecond resolution,
/// which matches the granularity of the sensor technologies in §6 (TTLs of
/// seconds to minutes).
using Duration = std::chrono::milliseconds;
using TimePoint = std::chrono::time_point<std::chrono::system_clock, Duration>;

/// Source of "now". Implementations must be safe to call concurrently.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual TimePoint now() const = 0;
};

/// Deterministic clock advanced explicitly by the test or simulation driver.
/// now()/advance()/set() are safe to call concurrently (the concurrency
/// stress tests advance virtual time while ingest workers read it).
class VirtualClock final : public Clock {
 public:
  /// Starts at an arbitrary fixed epoch (not zero, so that code subtracting
  /// TTLs from "now" never underflows).
  VirtualClock();
  explicit VirtualClock(TimePoint start);

  [[nodiscard]] TimePoint now() const override;

  /// Moves time forward. Negative advances are a programming error.
  void advance(Duration d);
  void set(TimePoint t);

 private:
  std::atomic<Duration::rep> nowMs_;  ///< milliseconds since the TimePoint epoch
};

/// Wall-clock time; used by benchmarks and the TCP transport.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() const override;
};

/// Convenience literal helpers.
constexpr Duration msec(std::int64_t n) { return Duration{n}; }
constexpr Duration sec(std::int64_t n) { return Duration{n * 1000}; }
constexpr Duration minutes(std::int64_t n) { return Duration{n * 60'000}; }

}  // namespace mw::util
