// Strong identifier types used throughout MiddleWhere.
//
// Every entity class (mobile objects, sensors, adapters, subscriptions,
// triggers, ...) gets its own id type so that ids of different kinds cannot
// be accidentally interchanged (C++ Core Guidelines I.4: make interfaces
// precisely and strongly typed).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>

namespace mw::util {

/// A strongly typed string identifier. `Tag` is a phantom type that makes
/// each instantiation a distinct type.
template <typename Tag>
class StringId {
 public:
  StringId() = default;
  explicit StringId(std::string value) : value_(std::move(value)) {}

  [[nodiscard]] const std::string& str() const noexcept { return value_; }
  [[nodiscard]] bool empty() const noexcept { return value_.empty(); }

  friend auto operator<=>(const StringId&, const StringId&) = default;
  friend std::ostream& operator<<(std::ostream& os, const StringId& id) {
    return os << id.value_;
  }

 private:
  std::string value_;
};

/// A strongly typed numeric identifier, usually allocated by a sequencer.
template <typename Tag>
class NumericId {
 public:
  constexpr NumericId() = default;
  constexpr explicit NumericId(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != 0; }

  friend constexpr auto operator<=>(const NumericId&, const NumericId&) = default;
  friend std::ostream& operator<<(std::ostream& os, const NumericId& id) {
    return os << id.value_;
  }

 private:
  std::uint64_t value_ = 0;  // 0 == invalid / unset
};

/// Monotonic allocator for a NumericId type. Not thread-safe; each owning
/// component allocates from its own sequencer.
template <typename Id>
class IdSequencer {
 public:
  Id next() { return Id{++last_}; }

 private:
  std::uint64_t last_ = 0;
};

// --- Identifier kinds -------------------------------------------------------

/// A mobile object: a person or a device a person carries (§1).
using MobileObjectId = StringId<struct MobileObjectTag>;
/// A physical sensor instance, e.g. "Ubi-18" (§5.2 Table 2).
using SensorId = StringId<struct SensorTag>;
/// A location adapter instance wrapping one sensor deployment (§6).
using AdapterId = StringId<struct AdapterTag>;
/// A static spatial object in the world model, e.g. "3105", "NetLab" (§5.1).
using SpatialObjectId = StringId<struct SpatialObjectTag>;

/// A location trigger registered in the spatial database (§5.3).
using TriggerId = NumericId<struct TriggerTag>;
/// An application subscription with the Location Service (§4.3).
using SubscriptionId = NumericId<struct SubscriptionTag>;
/// A request in flight on the MicroOrb RPC layer.
using RequestId = NumericId<struct RequestTag>;

}  // namespace mw::util

namespace std {
template <typename Tag>
struct hash<mw::util::StringId<Tag>> {
  size_t operator()(const mw::util::StringId<Tag>& id) const noexcept {
    return hash<string>{}(id.str());
  }
};
template <typename Tag>
struct hash<mw::util::NumericId<Tag>> {
  size_t operator()(const mw::util::NumericId<Tag>& id) const noexcept {
    return hash<uint64_t>{}(id.value());
  }
};
}  // namespace std
