#include "util/rng.hpp"

#include <algorithm>

namespace mw::util {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::chance(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

}  // namespace mw::util
