// Fixed-size worker pool used by the Location Service's sharded batch
// ingest. Deliberately minimal: a bounded set of threads created once,
// fed from a single queue, with batch-scoped completion waiting — the
// building block the ROADMAP's "millions of users" ingest fan-out needs
// without dragging in an async framework.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mw::util {

class WorkerPool {
 public:
  /// Spawns `threads` workers (>= 1). Threads live until destruction.
  explicit WorkerPool(std::size_t threads);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  [[nodiscard]] std::size_t threadCount() const noexcept { return workers_.size(); }

  /// Runs every job on the pool and blocks until all of them have finished.
  /// Jobs from concurrent run() calls interleave in the queue; each call
  /// waits only for its own batch. The first exception thrown by a job in
  /// the batch is rethrown here (after the whole batch has drained).
  void run(std::vector<std::function<void()>> jobs);

 private:
  /// Completion state shared by the jobs of one run() call.
  struct Batch {
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::exception_ptr error;
  };

  struct Task {
    std::function<void()> fn;
    std::shared_ptr<Batch> batch;
  };

  void workerLoop();

  std::mutex m_;
  std::condition_variable wake_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mw::util
