// Fixed-size worker pool used by the Location Service's sharded batch
// ingest and the MicroOrb's request dispatcher. Deliberately minimal: a
// bounded set of threads created once, fed from a shared batch queue plus
// one FIFO lane per worker, with batch-scoped completion waiting — the
// building block the ROADMAP's "millions of users" ingest fan-out needs
// without dragging in an async framework.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mw::util {

class WorkerPool {
 public:
  /// Spawns `threads` workers (>= 1). Threads live until destruction.
  explicit WorkerPool(std::size_t threads);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  [[nodiscard]] std::size_t threadCount() const noexcept { return workers_.size(); }

  /// Runs every job on the pool and blocks until all of them have finished.
  /// Jobs from concurrent run() calls interleave in the queue; each call
  /// waits only for its own batch. The first exception thrown by a job in
  /// the batch is rethrown here (after the whole batch has drained).
  void run(std::vector<std::function<void()>> jobs);

  /// Asynchronous lane-pinned submission: `fn` runs on worker
  /// `lane % threadCount()`, after every job previously posted to that lane
  /// (FIFO per lane, no ordering across lanes). Returns as soon as the job
  /// is enqueued; jobs already posted when the destructor runs are drained
  /// before the threads exit. Posted jobs must not throw — there is no
  /// caller left to rethrow to, so an escaping exception terminates.
  void post(std::size_t lane, std::function<void()> fn);

 private:
  /// Completion state shared by the jobs of one run() call.
  struct Batch {
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::exception_ptr error;
  };

  struct Task {
    std::function<void()> fn;
    std::shared_ptr<Batch> batch;
  };

  void workerLoop(std::size_t index);

  std::mutex m_;
  std::condition_variable wake_;
  std::deque<Task> queue_;
  /// One FIFO per worker for post(); drained before the shared batch queue
  /// so a lane never reorders behind batch work it did not submit.
  std::vector<std::deque<std::function<void()>>> lanes_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mw::util
