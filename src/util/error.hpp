// Error taxonomy for MiddleWhere.
//
// Per the project conventions (DESIGN.md §6) contract violations and
// unrecoverable failures throw; lookups that can legitimately fail return
// std::optional. These exception types let callers distinguish "you called
// the API wrong" from "the environment failed".
#pragma once

#include <stdexcept>
#include <string>

namespace mw::util {

/// Base class for every exception thrown by MiddleWhere itself.
class MwError : public std::runtime_error {
 public:
  explicit MwError(const std::string& what) : std::runtime_error(what) {}
};

/// The caller violated a precondition (bad argument, wrong state).
class ContractError : public MwError {
 public:
  explicit ContractError(const std::string& what) : MwError(what) {}
};

/// Malformed external input (unparseable GLOB, truncated wire message, ...).
class ParseError : public MwError {
 public:
  explicit ParseError(const std::string& what) : MwError(what) {}
};

/// A referenced entity does not exist where existence was required.
class NotFoundError : public MwError {
 public:
  explicit NotFoundError(const std::string& what) : MwError(what) {}
};

/// The MicroOrb transport failed (peer gone, socket error, ...).
class TransportError : public MwError {
 public:
  explicit TransportError(const std::string& what) : MwError(what) {}
};

/// A call's deadline expired before the peer answered. Distinct from the
/// base TransportError so retry/backoff policies can tell "slow" (the peer
/// may still be working; back off) from "down" (the connection is gone;
/// reconnect or fail over).
class TimeoutError : public TransportError {
 public:
  explicit TimeoutError(const std::string& what) : TransportError(what) {}
};

/// Throws ContractError if `cond` is false. Use for cheap precondition
/// checks on public API boundaries.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw ContractError(what);
}

}  // namespace mw::util
