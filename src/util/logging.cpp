#include "util/logging.hpp"

#include <iostream>

namespace mw::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::setLevel(LogLevel level) {
  std::lock_guard lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard lock(mutex_);
  return level_;
}

void Logger::write(LogLevel level, const std::string& component, const std::string& message) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::lock_guard lock(mutex_);
  if (level < level_) return;
  std::clog << "[" << kNames[static_cast<int>(level)] << "] " << component << ": " << message
            << '\n';
}

}  // namespace mw::util
