// Seeded random number generation for the sensor/world simulators.
//
// All stochastic behaviour in the repository flows through this wrapper so
// that scenarios are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>

namespace mw::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6d77'2004) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool chance(double p);
  /// Normal deviate.
  double gaussian(double mean, double stddev);

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mw::util
