#include "util/bytes.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace mw::util {

void ByteWriter::u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::boolean(bool v) { u8(v ? 1 : 0); }

void ByteWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  raw(reinterpret_cast<const std::uint8_t*>(v.data()), v.size());
}

void ByteWriter::blob(const Bytes& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  raw(v.data(), v.size());
}

void ByteWriter::raw(const std::uint8_t* data, std::size_t n) {
  out_.insert(out_.end(), data, data + n);
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > size_) throw ParseError("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

bool ByteReader::boolean() { return u8() != 0; }

std::string ByteReader::str() {
  std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Bytes ByteReader::blob() {
  std::uint32_t n = u32();
  need(n);
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

}  // namespace mw::util
