// Minimal leveled logger.
//
// Default level is Warn so that tests and benchmarks stay quiet; examples
// raise it to Info to narrate what the middleware is doing.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace mw::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

class Logger {
 public:
  static Logger& instance();

  void setLevel(LogLevel level);
  [[nodiscard]] LogLevel level() const;

  void write(LogLevel level, const std::string& component, const std::string& message);

 private:
  Logger() = default;
  mutable std::mutex mutex_;
  LogLevel level_ = LogLevel::Warn;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void logDebug(const std::string& component, Args&&... args) {
  auto& logger = Logger::instance();
  if (logger.level() <= LogLevel::Debug)
    logger.write(LogLevel::Debug, component, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void logInfo(const std::string& component, Args&&... args) {
  auto& logger = Logger::instance();
  if (logger.level() <= LogLevel::Info)
    logger.write(LogLevel::Info, component, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void logWarn(const std::string& component, Args&&... args) {
  auto& logger = Logger::instance();
  if (logger.level() <= LogLevel::Warn)
    logger.write(LogLevel::Warn, component, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void logError(const std::string& component, Args&&... args) {
  auto& logger = Logger::instance();
  if (logger.level() <= LogLevel::Error)
    logger.write(LogLevel::Error, component, detail::concat(std::forward<Args>(args)...));
}

}  // namespace mw::util
