// Binary buffer primitives shared by the MicroOrb wire codec.
//
// Integers are encoded little-endian at fixed width; doubles are encoded by
// bit pattern. The writer appends, the reader consumes in order and throws
// ParseError on truncation — a truncated network frame must never crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mw::util {

using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over a byte range — the zero-copy counterpart of Bytes.
/// Transports hand received frames to handlers as views over their receive
/// buffers; a handler that needs the bytes past its return must toBytes().
class ByteView {
 public:
  constexpr ByteView() = default;
  constexpr ByteView(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  ByteView(const Bytes& bytes) : data_(bytes.data()), size_(bytes.size()) {}  // NOLINT(*-explicit*)

  [[nodiscard]] constexpr const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }

  /// An owning copy, for keeping the bytes past the view's lifetime.
  [[nodiscard]] Bytes toBytes() const { return Bytes(data_, data_ + size_); }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  /// Length-prefixed (u32) string.
  void str(std::string_view v);
  /// Length-prefixed (u32) raw bytes.
  void blob(const Bytes& v);
  void raw(const std::uint8_t* data, std::size_t n);

  [[nodiscard]] const Bytes& bytes() const noexcept { return out_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(out_); }
  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

 private:
  Bytes out_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
  explicit ByteReader(ByteView view) : data_(view.data()), size_(view.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();
  Bytes blob();

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace mw::util
