#include "util/worker_pool.hpp"

#include "util/error.hpp"

namespace mw::util {

WorkerPool::WorkerPool(std::size_t threads) {
  require(threads >= 1, "WorkerPool: thread count must be >= 1");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(m_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::run(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;
  auto batch = std::make_shared<Batch>();
  batch->remaining = jobs.size();
  {
    std::lock_guard lock(m_);
    for (auto& job : jobs) queue_.push_back(Task{std::move(job), batch});
  }
  wake_.notify_all();

  std::unique_lock lock(batch->m);
  batch->done.wait(lock, [&] { return batch->remaining == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

void WorkerPool::workerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(m_);
      wake_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(task.batch->m);
      if (error && !task.batch->error) task.batch->error = error;
      --task.batch->remaining;
    }
    task.batch->done.notify_all();
  }
}

}  // namespace mw::util
