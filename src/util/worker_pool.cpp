#include "util/worker_pool.hpp"

#include "util/error.hpp"

namespace mw::util {

WorkerPool::WorkerPool(std::size_t threads) {
  require(threads >= 1, "WorkerPool: thread count must be >= 1");
  lanes_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(m_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::run(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;
  auto batch = std::make_shared<Batch>();
  batch->remaining = jobs.size();
  {
    std::lock_guard lock(m_);
    for (auto& job : jobs) queue_.push_back(Task{std::move(job), batch});
  }
  wake_.notify_all();

  std::unique_lock lock(batch->m);
  batch->done.wait(lock, [&] { return batch->remaining == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

void WorkerPool::post(std::size_t lane, std::function<void()> fn) {
  require(static_cast<bool>(fn), "WorkerPool::post: null job");
  {
    std::lock_guard lock(m_);
    lanes_[lane % lanes_.size()].push_back(std::move(fn));
  }
  wake_.notify_all();
}

void WorkerPool::workerLoop(std::size_t index) {
  for (;;) {
    std::function<void()> laneJob;
    Task task;
    {
      std::unique_lock lock(m_);
      wake_.wait(lock, [&] {
        return stopping_ || !queue_.empty() || !lanes_[index].empty();
      });
      if (!lanes_[index].empty()) {
        laneJob = std::move(lanes_[index].front());
        lanes_[index].pop_front();
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        return;  // stopping_ and both queues drained
      }
    }
    if (laneJob) {
      laneJob();  // posted jobs must not throw (see header)
      continue;
    }
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(task.batch->m);
      if (error && !task.batch->error) task.batch->error = error;
      --task.batch->remaining;
    }
    task.batch->done.notify_all();
  }
}

}  // namespace mw::util
