#include "util/clock.hpp"

#include <stdexcept>

namespace mw::util {

namespace {
// 2004-11-01T00:00:00Z-ish epoch: an arbitrary but non-zero starting instant.
constexpr TimePoint kDefaultStart{Duration{1'099'267'200'000LL}};
}  // namespace

VirtualClock::VirtualClock() : nowMs_(kDefaultStart.time_since_epoch().count()) {}
VirtualClock::VirtualClock(TimePoint start) : nowMs_(start.time_since_epoch().count()) {}

TimePoint VirtualClock::now() const {
  return TimePoint{Duration{nowMs_.load(std::memory_order_relaxed)}};
}

void VirtualClock::advance(Duration d) {
  if (d < Duration::zero()) {
    throw std::invalid_argument("VirtualClock::advance: negative duration");
  }
  nowMs_.fetch_add(d.count(), std::memory_order_relaxed);
}

void VirtualClock::set(TimePoint t) {
  const Duration::rep target = t.time_since_epoch().count();
  Duration::rep current = nowMs_.load(std::memory_order_relaxed);
  for (;;) {
    if (target < current) {
      throw std::invalid_argument("VirtualClock::set: time must not go backwards");
    }
    if (nowMs_.compare_exchange_weak(current, target, std::memory_order_relaxed)) return;
  }
}

TimePoint SystemClock::now() const {
  return std::chrono::time_point_cast<Duration>(std::chrono::system_clock::now());
}

}  // namespace mw::util
