#include "util/clock.hpp"

#include <stdexcept>

namespace mw::util {

namespace {
// 2004-11-01T00:00:00Z-ish epoch: an arbitrary but non-zero starting instant.
constexpr TimePoint kDefaultStart{Duration{1'099'267'200'000LL}};
}  // namespace

VirtualClock::VirtualClock() : now_(kDefaultStart) {}
VirtualClock::VirtualClock(TimePoint start) : now_(start) {}

TimePoint VirtualClock::now() const { return now_; }

void VirtualClock::advance(Duration d) {
  if (d < Duration::zero()) {
    throw std::invalid_argument("VirtualClock::advance: negative duration");
  }
  now_ += d;
}

void VirtualClock::set(TimePoint t) {
  if (t < now_) {
    throw std::invalid_argument("VirtualClock::set: time must not go backwards");
  }
  now_ = t;
}

TimePoint SystemClock::now() const {
  return std::chrono::time_point_cast<Duration>(std::chrono::system_clock::now());
}

}  // namespace mw::util
