// The containment lattice of rectangles (§4.1.2, Figs 5-6).
//
// "In order to efficiently combine different sensor readings, we construct a
// lattice of rectangles, where the lattice relationship is containment. The
// rectangles in the lattice are both sensor rectangles as well as any new
// rectangle regions that are formed due to the intersection of two
// rectangles. The children of any node in the lattice are all rectangles
// that are contained by the node."
//
// Node 0 is always Top (the universe — the floor area of the whole
// building). Bottom is implicit: its parents are the minimal nodes, i.e.
// the nodes with no children. Intersection closure is computed to a fixed
// point, so overlaps of three or more source rectangles also get nodes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geometry/rect.hpp"

namespace mw::lattice {

class RectLattice {
 public:
  /// Index of the Top node (the universe rectangle).
  static constexpr std::size_t kTop = 0;

  struct Node {
    geo::Rect rect;
    std::string label;       ///< source label (sensor id) or "" for derived
    bool isSource = false;   ///< inserted directly vs derived by intersection
    /// Indices of the source nodes whose rects contain this node's rect
    /// (filled by edge computation; for a source node includes itself).
    std::vector<std::size_t> contributors;
    /// Hasse-diagram edges: immediate covers (parents contain this rect with
    /// nothing in between) and immediate children.
    std::vector<std::size_t> parents;
    std::vector<std::size_t> children;
  };

  explicit RectLattice(geo::Rect universe);

  /// Inserts a source rectangle (a sensor reading's MBR or an application's
  /// region of interest, clipped to the universe). Creates all intersection
  /// nodes with existing rectangles, to a fixed point. Returns the node
  /// index of the source rect. Throws ContractError if the rect does not
  /// intersect the universe.
  std::size_t insert(const geo::Rect& r, std::string label = "");

  /// Removes a source rectangle and every derived node that existed only
  /// because of it (used by conflict resolution: "S5 is removed from the
  /// lattice", §4.2). The lattice is rebuilt from the surviving sources, so
  /// indices OTHER THAN kTop are invalidated. No-op if `sourceIndex` does
  /// not name a source node.
  void removeSource(std::size_t sourceIndex);

  [[nodiscard]] const Node& node(std::size_t index) const;
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const geo::Rect& universe() const noexcept { return nodes_[kTop].rect; }

  /// Indices of all source nodes, in insertion order.
  [[nodiscard]] std::vector<std::size_t> sources() const;

  /// Parents of the implicit Bottom node — the minimal (smallest-area)
  /// regions, which §4.2 inspects to infer a single location.
  [[nodiscard]] std::vector<std::size_t> bottomParents() const;

  /// Finds a node whose rect approx-equals `r`; returns size() when absent.
  [[nodiscard]] std::size_t find(const geo::Rect& r) const;

  /// Ensures Hasse edges and contributors are up to date. Called lazily by
  /// accessors; exposed for benchmarks that want to time it separately.
  void refreshEdges() const;

 private:
  std::size_t addNode(const geo::Rect& r, std::string label, bool isSource);
  void closeUnderIntersection(std::size_t newIndex);

  mutable std::vector<Node> nodes_;
  mutable bool edgesDirty_ = true;
};

}  // namespace mw::lattice
