#include "lattice/rect_lattice.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace mw::lattice {

using mw::util::ContractError;
using mw::util::require;

RectLattice::RectLattice(geo::Rect universe) {
  require(!universe.empty() && universe.area() > 0,
          "RectLattice: universe must have positive area");
  nodes_.push_back(Node{universe, "Top", false, {}, {}, {}});
}

std::size_t RectLattice::addNode(const geo::Rect& r, std::string label, bool isSource) {
  nodes_.push_back(Node{r, std::move(label), isSource, {}, {}, {}});
  edgesDirty_ = true;
  return nodes_.size() - 1;
}

std::size_t RectLattice::find(const geo::Rect& r) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (geo::approxEqual(nodes_[i].rect, r)) return i;
  }
  return nodes_.size();
}

std::size_t RectLattice::insert(const geo::Rect& r, std::string label) {
  auto clipped = universe().intersection(r);
  require(clipped.has_value() && clipped->area() > 0,
          "RectLattice::insert: rect does not overlap the universe");

  std::size_t existing = find(*clipped);
  if (existing != nodes_.size()) {
    // Region already present (e.g. two sensors reporting the same room):
    // promote it to a source node.
    nodes_[existing].isSource = true;
    if (!label.empty()) {
      if (!nodes_[existing].label.empty() && existing != kTop) {
        nodes_[existing].label += "+" + label;
      } else if (existing != kTop) {
        nodes_[existing].label = std::move(label);
      }
    }
    edgesDirty_ = true;
    return existing;
  }

  std::size_t idx = addNode(*clipped, std::move(label), true);
  closeUnderIntersection(idx);
  return idx;
}

void RectLattice::closeUnderIntersection(std::size_t newIndex) {
  // Breadth-first closure: intersect every new node against every other
  // node until no new region appears. Top is skipped (every rect intersects
  // it trivially, producing itself).
  std::vector<std::size_t> frontier{newIndex};
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t a : frontier) {
      // nodes_ may grow inside the loop; snapshot the size first.
      const std::size_t count = nodes_.size();
      for (std::size_t b = 1; b < count; ++b) {
        if (b == a) continue;
        auto inter = nodes_[a].rect.intersection(nodes_[b].rect);
        if (!inter || inter->area() <= 0) continue;
        if (find(*inter) != nodes_.size()) continue;  // already represented
        next.push_back(addNode(*inter, "", false));
      }
    }
    frontier = std::move(next);
  }
}

void RectLattice::removeSource(std::size_t sourceIndex) {
  if (sourceIndex == kTop || sourceIndex >= nodes_.size() || !nodes_[sourceIndex].isSource) {
    return;
  }
  // Collect the surviving sources and rebuild — removal can delete derived
  // intersection nodes and merge labels, and a rebuild is simple and
  // obviously correct for the small lattices fusion works with.
  struct Source {
    geo::Rect rect;
    std::string label;
  };
  std::vector<Source> survivors;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (i != sourceIndex && nodes_[i].isSource) {
      survivors.push_back({nodes_[i].rect, nodes_[i].label});
    }
  }
  geo::Rect u = universe();
  nodes_.clear();
  nodes_.push_back(Node{u, "Top", false, {}, {}, {}});
  for (auto& s : survivors) insert(s.rect, std::move(s.label));
  edgesDirty_ = true;
}

const RectLattice::Node& RectLattice::node(std::size_t index) const {
  require(index < nodes_.size(), "RectLattice::node: index out of range");
  refreshEdges();
  return nodes_[index];
}

std::vector<std::size_t> RectLattice::sources() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].isSource) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> RectLattice::bottomParents() const {
  refreshEdges();
  std::vector<std::size_t> out;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].children.empty()) out.push_back(i);
  }
  if (out.empty()) out.push_back(kTop);  // lattice with no sources
  return out;
}

void RectLattice::refreshEdges() const {
  if (!edgesDirty_) return;
  const std::size_t n = nodes_.size();
  for (auto& node : nodes_) {
    node.parents.clear();
    node.children.clear();
    node.contributors.clear();
  }

  // Order by area descending; containment can only go from larger to smaller
  // (ties broken arbitrarily — equal rects are merged at insert).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return nodes_[a].rect.area() > nodes_[b].rect.area();
  });

  // contains[i] = indices j (by position in `order`) with rect_i ⊇ rect_j.
  for (std::size_t ai = 0; ai < n; ++ai) {
    std::size_t a = order[ai];
    for (std::size_t bi = ai + 1; bi < n; ++bi) {
      std::size_t b = order[bi];
      if (!nodes_[a].rect.contains(nodes_[b].rect)) continue;
      // a contains b; it is an immediate cover iff no c with a ⊃ c ⊃ b.
      bool immediate = true;
      for (std::size_t ci = ai + 1; ci < bi && immediate; ++ci) {
        std::size_t c = order[ci];
        if (c == a || c == b) continue;
        if (nodes_[a].rect.contains(nodes_[c].rect) && nodes_[c].rect.contains(nodes_[b].rect) &&
            !geo::approxEqual(nodes_[c].rect, nodes_[b].rect) &&
            !geo::approxEqual(nodes_[c].rect, nodes_[a].rect)) {
          immediate = false;
        }
      }
      if (immediate) {
        nodes_[a].children.push_back(b);
        nodes_[b].parents.push_back(a);
      }
      // Contributor bookkeeping: sources containing b influence b.
      if (nodes_[a].isSource) nodes_[b].contributors.push_back(a);
    }
    if (nodes_[a].isSource) nodes_[a].contributors.push_back(a);
  }
  edgesDirty_ = false;
}

}  // namespace mw::lattice
