// GLOB — Gaia LOcation Byte-string (§3.1).
//
// A GLOB names a location hierarchically, like a directory path, and can be
// symbolic, coordinate-based, or both:
//
//   SC/3/3216/lightswitch1                      symbolic point
//   SC/3/3216/(12,3,4)                          coordinate point in room 3216's frame
//   SC/3/3216/Door2                             symbolic line
//   SC/3/3216/(1,3),(4,5)                       coordinate line
//   SC/3/3216                                   symbolic region (the room itself)
//   SC/3/(45,12),(45,40),(65,40),(65,12)        coordinate polygon in floor 3's frame
//
// The path prefix identifies the coordinate frame in which coordinates are
// expressed (see frame.hpp).
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/polygon.hpp"
#include "geometry/rect.hpp"

namespace mw::glob {

/// What geometry a GLOB's payload denotes.
enum class GeometryKind { Point, Line, Polygon, Region };

std::string_view toString(GeometryKind k);

class Glob {
 public:
  Glob() = default;

  /// Builds a purely symbolic GLOB from path segments. The last segment is
  /// the named entity; the rest are its enclosing spaces.
  static Glob symbolic(std::vector<std::string> path);

  /// Builds a coordinate GLOB: `framePath` identifies the coordinate system,
  /// `coords` is 1 point (point), 2 (line) or >= 3 (polygon).
  static Glob coordinate(std::vector<std::string> framePath, std::vector<geo::Point3> coords);

  /// Parses the byte-string form. Throws util::ParseError on malformed input.
  static Glob parse(std::string_view text);

  [[nodiscard]] std::string str() const;

  /// True when the GLOB carries no coordinate payload.
  [[nodiscard]] bool isSymbolic() const noexcept { return coords_.empty(); }
  [[nodiscard]] bool isCoordinate() const noexcept { return !coords_.empty(); }
  [[nodiscard]] bool empty() const noexcept { return path_.empty() && coords_.empty(); }

  /// Path segments. For a symbolic GLOB the last segment names the entity;
  /// for a coordinate GLOB all segments form the frame path.
  [[nodiscard]] const std::vector<std::string>& path() const noexcept { return path_; }
  [[nodiscard]] const std::vector<geo::Point3>& coords() const noexcept { return coords_; }

  /// Final symbolic segment ("" for pure coordinate GLOBs with empty path).
  [[nodiscard]] std::string name() const;
  /// All but the final segment joined with '/', e.g. "SC/3" for SC/3/3216.
  [[nodiscard]] std::string prefix() const;
  /// The whole path joined with '/'; for coordinate GLOBs this is the frame.
  [[nodiscard]] std::string pathString() const;

  /// Geometry classification. Symbolic GLOBs report Region (their real
  /// geometry lives in the spatial database); coordinate GLOBs report by
  /// payload size.
  [[nodiscard]] GeometryKind geometryKind() const;

  /// Number of hierarchy levels (path segments).
  [[nodiscard]] std::size_t depth() const noexcept { return path_.size(); }

  /// True if this GLOB's path is a (non-strict) prefix of `other`'s.
  [[nodiscard]] bool isPrefixOf(const Glob& other) const;

  /// GLOB truncated to the first `levels` path segments with the coordinate
  /// payload dropped — used by privacy constraints to cap the granularity at
  /// which a location may be revealed (§4.5).
  [[nodiscard]] Glob truncated(std::size_t levels) const;

  /// Coordinate payload as 2D polygon / rect helpers (z ignored).
  [[nodiscard]] std::optional<geo::Point2> asPoint() const;
  [[nodiscard]] std::optional<geo::Polygon> asPolygon() const;
  /// MBR of the coordinate payload (empty rect when symbolic).
  [[nodiscard]] geo::Rect mbr() const;

  friend bool operator==(const Glob& a, const Glob& b);
  friend std::ostream& operator<<(std::ostream& os, const Glob& g);

 private:
  std::vector<std::string> path_;
  std::vector<geo::Point3> coords_;
};

}  // namespace mw::glob
