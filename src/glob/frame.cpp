#include "glob/frame.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mw::glob {

using mw::util::NotFoundError;
using mw::util::require;

void FrameTree::addRoot(const std::string& name) {
  require(!name.empty(), "FrameTree::addRoot: empty name");
  require(frames_.empty(), "FrameTree::addRoot: tree already has frames");
  root_ = name;
  frames_.emplace(name, Frame{"", Transform2{}, Transform2{}});
}

void FrameTree::addFrame(const std::string& name, const std::string& parent,
                         const Transform2& toParent) {
  require(!name.empty(), "FrameTree::addFrame: empty name");
  require(!frames_.contains(name), "FrameTree::addFrame: duplicate frame '" + name + "'");
  auto parentIt = frames_.find(parent);
  if (parentIt == frames_.end()) {
    throw NotFoundError("FrameTree::addFrame: unknown parent '" + parent + "'");
  }
  Frame f;
  f.parent = parent;
  f.toParent = toParent;
  f.toRoot = parentIt->second.toRoot * toParent;
  frames_.emplace(name, std::move(f));
}

bool FrameTree::has(const std::string& name) const { return frames_.contains(name); }

const std::string& FrameTree::rootName() const {
  require(!root_.empty(), "FrameTree: no root registered");
  return root_;
}

std::optional<std::string> FrameTree::parentOf(const std::string& name) const {
  const Frame& f = frame(name);
  if (f.parent.empty()) return std::nullopt;
  return f.parent;
}

const FrameTree::Frame& FrameTree::frame(const std::string& name) const {
  auto it = frames_.find(name);
  if (it == frames_.end()) throw NotFoundError("FrameTree: unknown frame '" + name + "'");
  return it->second;
}

std::vector<FrameTree::FrameRecord> FrameTree::records() const {
  std::vector<FrameRecord> out;
  if (root_.empty()) return out;
  // BFS from the root so parents always precede children.
  std::unordered_map<std::string, std::vector<std::string>> children;
  for (const auto& [name, frame] : frames_) {
    if (!frame.parent.empty()) children[frame.parent].push_back(name);
  }
  std::vector<std::string> queue{root_};
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const std::string& name = queue[i];
    const Frame& f = frames_.at(name);
    out.push_back(FrameRecord{name, f.parent, f.toParent});
    auto it = children.find(name);
    if (it != children.end()) {
      // Deterministic order for reproducible snapshots.
      std::vector<std::string> kids = it->second;
      std::sort(kids.begin(), kids.end());
      for (auto& kid : kids) queue.push_back(std::move(kid));
    }
  }
  return out;
}

geo::Point2 FrameTree::toRoot(const std::string& from, geo::Point2 p) const {
  return frame(from).toRoot.apply(p);
}

geo::Point2 FrameTree::fromRoot(const std::string& to, geo::Point2 p) const {
  return frame(to).toRoot.invert(p);
}

geo::Point2 FrameTree::convert(const std::string& from, const std::string& to,
                               geo::Point2 p) const {
  if (from == to) return p;
  return fromRoot(to, toRoot(from, p));
}

geo::Rect FrameTree::convertRect(const std::string& from, const std::string& to,
                                 const geo::Rect& r) const {
  if (r.empty()) return r;
  if (from == to) return r;
  geo::Point2 corners[4] = {r.lo(), {r.hi().x, r.lo().y}, r.hi(), {r.lo().x, r.hi().y}};
  geo::Rect out;
  for (const auto& c : corners) {
    geo::Point2 q = convert(from, to, c);
    out = out.unionWith(geo::Rect::fromCorners(q, q));
  }
  return out;
}

geo::Polygon FrameTree::convertPolygon(const std::string& from, const std::string& to,
                                       const geo::Polygon& poly) const {
  if (from == to) return poly;
  std::vector<geo::Point2> pts;
  pts.reserve(poly.size());
  for (const auto& v : poly.vertices()) pts.push_back(convert(from, to, v));
  return geo::Polygon{std::move(pts)};
}

}  // namespace mw::glob
