#include "glob/glob.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

#include "util/error.hpp"

namespace mw::glob {

using mw::util::ParseError;
using mw::util::require;

std::string_view toString(GeometryKind k) {
  switch (k) {
    case GeometryKind::Point: return "point";
    case GeometryKind::Line: return "line";
    case GeometryKind::Polygon: return "polygon";
    case GeometryKind::Region: return "region";
  }
  return "?";
}

Glob Glob::symbolic(std::vector<std::string> path) {
  require(!path.empty(), "Glob::symbolic: empty path");
  for (const auto& seg : path) {
    require(!seg.empty(), "Glob::symbolic: empty path segment");
    require(seg.find('/') == std::string::npos, "Glob::symbolic: '/' inside segment");
    require(seg.front() != '(', "Glob::symbolic: segment looks like a coordinate");
  }
  Glob g;
  g.path_ = std::move(path);
  return g;
}

Glob Glob::coordinate(std::vector<std::string> framePath, std::vector<geo::Point3> coords) {
  require(!coords.empty(), "Glob::coordinate: empty coordinate payload");
  for (const auto& seg : framePath) {
    require(!seg.empty(), "Glob::coordinate: empty frame segment");
  }
  Glob g;
  g.path_ = std::move(framePath);
  g.coords_ = std::move(coords);
  return g;
}

namespace {

double parseNumber(std::string_view text, std::size_t& pos) {
  std::size_t start = pos;
  if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
  bool sawDigit = false;
  while (pos < text.size() && (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                               text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                               ((text[pos] == '-' || text[pos] == '+') && pos > start &&
                                (text[pos - 1] == 'e' || text[pos - 1] == 'E')))) {
    if (std::isdigit(static_cast<unsigned char>(text[pos]))) sawDigit = true;
    ++pos;
  }
  if (!sawDigit) throw ParseError("Glob: expected number at position " + std::to_string(start));
  double value{};
  auto [ptr, ec] = std::from_chars(text.data() + start, text.data() + pos, value);
  if (ec != std::errc{}) throw ParseError("Glob: bad number");
  (void)ptr;
  return value;
}

geo::Point3 parseTuple(std::string_view text, std::size_t& pos) {
  if (pos >= text.size() || text[pos] != '(') throw ParseError("Glob: expected '('");
  ++pos;
  geo::Point3 p;
  p.x = parseNumber(text, pos);
  if (pos >= text.size() || text[pos] != ',') throw ParseError("Glob: expected ',' in tuple");
  ++pos;
  p.y = parseNumber(text, pos);
  if (pos < text.size() && text[pos] == ',') {
    ++pos;
    p.z = parseNumber(text, pos);
  }
  if (pos >= text.size() || text[pos] != ')') throw ParseError("Glob: expected ')'");
  ++pos;
  return p;
}

}  // namespace

Glob Glob::parse(std::string_view text) {
  if (text.empty()) throw ParseError("Glob: empty string");
  Glob g;
  std::size_t pos = 0;
  while (pos < text.size()) {
    if (text[pos] == '(') {
      // Remainder is the coordinate payload: tuples separated by ','.
      while (pos < text.size()) {
        g.coords_.push_back(parseTuple(text, pos));
        if (pos < text.size()) {
          if (text[pos] != ',') throw ParseError("Glob: expected ',' between tuples");
          ++pos;
          if (pos == text.size()) throw ParseError("Glob: dangling ',' after tuple");
        }
      }
      break;
    }
    std::size_t slash = text.find('/', pos);
    std::string_view seg =
        slash == std::string_view::npos ? text.substr(pos) : text.substr(pos, slash - pos);
    if (seg.empty()) throw ParseError("Glob: empty path segment");
    g.path_.emplace_back(seg);
    pos = slash == std::string_view::npos ? text.size() : slash + 1;
    if (slash != std::string_view::npos && pos == text.size()) {
      throw ParseError("Glob: trailing '/'");
    }
  }
  if (g.path_.empty() && g.coords_.empty()) throw ParseError("Glob: no content");
  return g;
}

std::string Glob::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < path_.size(); ++i) {
    if (i) os << '/';
    os << path_[i];
  }
  if (!coords_.empty()) {
    if (!path_.empty()) os << '/';
    for (std::size_t i = 0; i < coords_.size(); ++i) {
      if (i) os << ',';
      os << '(' << coords_[i].x << ',' << coords_[i].y;
      if (coords_[i].z != 0) os << ',' << coords_[i].z;
      os << ')';
    }
  }
  return os.str();
}

std::string Glob::name() const { return path_.empty() ? std::string{} : path_.back(); }

std::string Glob::prefix() const {
  std::ostringstream os;
  for (std::size_t i = 0; i + 1 < path_.size(); ++i) {
    if (i) os << '/';
    os << path_[i];
  }
  return os.str();
}

std::string Glob::pathString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < path_.size(); ++i) {
    if (i) os << '/';
    os << path_[i];
  }
  return os.str();
}

GeometryKind Glob::geometryKind() const {
  if (isSymbolic()) return GeometryKind::Region;
  switch (coords_.size()) {
    case 1: return GeometryKind::Point;
    case 2: return GeometryKind::Line;
    default: return GeometryKind::Polygon;
  }
}

bool Glob::isPrefixOf(const Glob& other) const {
  if (path_.size() > other.path_.size()) return false;
  return std::equal(path_.begin(), path_.end(), other.path_.begin());
}

Glob Glob::truncated(std::size_t levels) const {
  Glob g;
  g.path_.assign(path_.begin(),
                 path_.begin() + static_cast<std::ptrdiff_t>(std::min(levels, path_.size())));
  return g;
}

std::optional<geo::Point2> Glob::asPoint() const {
  if (coords_.size() != 1) return std::nullopt;
  return coords_[0].xy();
}

std::optional<geo::Polygon> Glob::asPolygon() const {
  if (coords_.size() < 3) return std::nullopt;
  std::vector<geo::Point2> pts;
  pts.reserve(coords_.size());
  for (const auto& c : coords_) pts.push_back(c.xy());
  return geo::Polygon{std::move(pts)};
}

geo::Rect Glob::mbr() const {
  geo::Rect r;
  for (const auto& c : coords_) {
    r = r.unionWith(geo::Rect::fromCorners(c.xy(), c.xy()));
  }
  return r;
}

bool operator==(const Glob& a, const Glob& b) {
  return a.path_ == b.path_ && a.coords_ == b.coords_;
}

std::ostream& operator<<(std::ostream& os, const Glob& g) { return os << g.str(); }

}  // namespace mw::glob
