// Hierarchical coordinate frames (§3).
//
// "Each building, floor and room has its own coordinate axes and a point of
// origin. ... MiddleWhere stores the relationships between the different
// coordinate axes, and hence coordinates can be easily converted from one
// system to another."
//
// Frames form a tree rooted at a "universe" frame (typically the building).
// Each frame is identified by its GLOB path string (e.g. "SC/3/3216") and
// carries a rigid 2D transform (rotation + translation) relative to its
// parent.
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/polygon.hpp"
#include "geometry/rect.hpp"

namespace mw::glob {

/// Rigid 2D transform: first rotate by `rotation` radians, then translate.
struct Transform2 {
  geo::Point2 translation{0, 0};
  double rotation = 0;

  [[nodiscard]] geo::Point2 apply(geo::Point2 p) const {
    double c = std::cos(rotation), s = std::sin(rotation);
    return {c * p.x - s * p.y + translation.x, s * p.x + c * p.y + translation.y};
  }
  [[nodiscard]] geo::Point2 invert(geo::Point2 p) const {
    double c = std::cos(rotation), s = std::sin(rotation);
    geo::Point2 q{p.x - translation.x, p.y - translation.y};
    return {c * q.x + s * q.y, -s * q.x + c * q.y};
  }
  /// Composition: (a * b).apply(p) == a.apply(b.apply(p)).
  friend Transform2 operator*(const Transform2& a, const Transform2& b) {
    return Transform2{a.apply(b.translation), a.rotation + b.rotation};
  }
};

/// Registry of coordinate frames keyed by GLOB path string.
///
/// All conversions are expressed through the root frame, so converting from
/// any frame to any other is two transform applications.
class FrameTree {
 public:
  /// Registers the root (universe) frame, e.g. "SC". Must be called first.
  void addRoot(const std::string& name);

  /// Registers `name` as a child of `parent` with `toParent` mapping local
  /// coordinates into the parent's frame. Throws if the parent is unknown or
  /// the name is already taken.
  void addFrame(const std::string& name, const std::string& parent, const Transform2& toParent);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const std::string& rootName() const;
  [[nodiscard]] std::size_t size() const noexcept { return frames_.size(); }

  /// Parent frame name; nullopt for the root.
  [[nodiscard]] std::optional<std::string> parentOf(const std::string& name) const;

  /// Every frame with its parent and local transform, ordered so parents
  /// precede children (root first) — replaying records() through addRoot/
  /// addFrame reconstructs an identical tree. Used by persistence.
  struct FrameRecord {
    std::string name;
    std::string parent;  ///< empty for the root
    Transform2 toParent;
  };
  [[nodiscard]] std::vector<FrameRecord> records() const;

  /// Converts a point expressed in `from` into `to` coordinates.
  [[nodiscard]] geo::Point2 convert(const std::string& from, const std::string& to,
                                    geo::Point2 p) const;
  /// Point in `from` coordinates -> root (universe) coordinates.
  [[nodiscard]] geo::Point2 toRoot(const std::string& from, geo::Point2 p) const;
  [[nodiscard]] geo::Point2 fromRoot(const std::string& to, geo::Point2 p) const;

  /// Converts a rect by transforming its corners and taking the MBR. For
  /// axis-aligned (multiple of 90°) net rotations this is exact; otherwise
  /// it is the usual MBR over-approximation (§4.1.2).
  [[nodiscard]] geo::Rect convertRect(const std::string& from, const std::string& to,
                                      const geo::Rect& r) const;

  /// Converts every vertex of a polygon.
  [[nodiscard]] geo::Polygon convertPolygon(const std::string& from, const std::string& to,
                                            const geo::Polygon& poly) const;

 private:
  struct Frame {
    std::string parent;    // empty for root
    Transform2 toParent;   // local -> parent
    Transform2 toRoot;     // cached local -> root
  };

  [[nodiscard]] const Frame& frame(const std::string& name) const;

  std::string root_;
  std::unordered_map<std::string, Frame> frames_;
};

}  // namespace mw::glob
