// Card-swipe adapter (§1.2 feature list, §5.2).
//
// "People in our building have to swipe their ID cards on a card reader
// whenever they enter certain rooms. Hence, at the time of swiping their
// card, their location is known with high confidence." The sensor table
// gives card readers a time-to-live of 10 seconds.
#pragma once

#include "adapters/adapter.hpp"

namespace mw::adapters {

struct CardReaderConfig {
  geo::Rect room;  ///< the room entered on swipe (universe frame)
  util::Duration ttl = util::sec(10);
  std::string frame;
};

class CardReaderAdapter final : public LocationAdapter {
 public:
  CardReaderAdapter(util::AdapterId id, util::SensorId sensorId, CardReaderConfig config);

  [[nodiscard]] std::vector<db::SensorMeta> metas() const override;

  /// A badge swipe: the person is in the room right now.
  void swipe(const util::MobileObjectId& person, const util::Clock& clock);

 private:
  util::SensorId sensorId_;
  CardReaderConfig config_;
};

}  // namespace mw::adapters
