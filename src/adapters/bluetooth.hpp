// Bluetooth proximity adapter (§1.1 lists Bluetooth among the location
// sources; §5.1's sample query even asks for "high Bluetooth signal").
//
// Modeled as a class-2 beacon: detects discoverable devices within ~30 ft,
// cannot rank distance, so it reports the symbolic disc around the beacon —
// like RFID but with a shorter range, higher detection probability and a
// quick TTL (inquiry scans are frequent).
#pragma once

#include "adapters/adapter.hpp"

namespace mw::adapters {

struct BluetoothConfig {
  geo::Point2 beacon;             ///< beacon position (universe frame)
  double range = 30.0;            ///< class-2 detection range, feet
  double carryProbability = 0.85; ///< x: phone with Bluetooth on
  util::Duration ttl = util::sec(15);
  std::string frame;
};

class BluetoothAdapter final : public SamplingAdapter {
 public:
  BluetoothAdapter(util::AdapterId id, util::SensorId sensorId, BluetoothConfig config);

  [[nodiscard]] std::vector<db::SensorMeta> metas() const override;
  std::size_t sample(const GroundTruth& truth, const util::Clock& clock,
                     util::Rng& rng) override;

  [[nodiscard]] geo::Rect coverage() const;

 private:
  util::SensorId sensorId_;
  BluetoothConfig config_;
};

}  // namespace mw::adapters
