#include "adapters/adapter.hpp"

#include "spatialdb/database.hpp"
#include "util/error.hpp"

namespace mw::adapters {

LocationAdapter::LocationAdapter(util::AdapterId id, std::string adapterType)
    : id_(std::move(id)), adapterType_(std::move(adapterType)) {
  mw::util::require(!id_.empty(), "LocationAdapter: empty adapter id");
  mw::util::require(!adapterType_.empty(), "LocationAdapter: empty adapter type");
}

void LocationAdapter::connect(Sink sink) { sink_ = std::move(sink); }

void LocationAdapter::registerWith(db::SpatialDatabase& database) const {
  for (const auto& meta : metas()) database.registerSensor(meta);
}

void LocationAdapter::emit(const db::SensorReading& reading) const {
  if (sink_) sink_(reading);
}

}  // namespace mw::adapters
