// GPS adapter (§6.4).
//
// "The GPS device tries to achieve a satellite lock. If successful, the
// adapter should be able to translate longitude, latitude, and altitude
// information into a coordinate location that matches MiddleWhere's
// coordinate system. ... If the GPS receiver estimates an accuracy of 15
// feet, we set area A to a sphere with a radius of 15 feet. We can set
// y=0.99 and z=0.01 ... x will still equal the probability of a person not
// carrying his GPS device." GPS does not work indoors (§1).
#pragma once

#include "adapters/adapter.hpp"

namespace mw::adapters {

struct GpsConfig {
  double accuracy = 15.0;          ///< receiver-estimated accuracy, feet
  double carryProbability = 0.7;   ///< x
  util::Duration ttl = util::sec(10);
  std::string frame;
};

class GpsAdapter final : public SamplingAdapter {
 public:
  GpsAdapter(util::AdapterId id, util::SensorId sensorId, GpsConfig config);

  [[nodiscard]] std::vector<db::SensorMeta> metas() const override;

  /// Samples only people who are outdoors (satellite lock).
  std::size_t sample(const GroundTruth& truth, const util::Clock& clock,
                     util::Rng& rng) override;

 private:
  util::SensorId sensorId_;
  GpsConfig config_;
};

}  // namespace mw::adapters
