// Biometric / fingerprint-login adapter (§6.3).
//
// Event-driven: authentication proves physical presence. The adapter emits
// TWO readings per §6.3:
//  - short-term: expiry 30 s, circle of radius 2 ft at the device, y=0.99,
//    z=0.01, x=1;
//  - long-term: expiry T (default 15 min), area = the whole room, z = the
//    probability of leaving the room before T without logging out.
// On manual logout it emits a final 15-second short-term reading and
// force-expires all prior location information from this device.
#pragma once

#include "adapters/adapter.hpp"

namespace mw::adapters {

struct BiometricConfig {
  geo::Point2 devicePosition;   ///< where the reader is mounted (universe frame)
  geo::Rect room;               ///< the room the device is in (universe frame)
  double shortRadius = 2.0;     ///< feet
  util::Duration shortTtl = util::sec(30);
  util::Duration longTtl = util::minutes(15);  ///< T, from user studies
  double leaveBeforeT = 0.3;    ///< z of the long reading
  util::Duration logoutTtl = util::sec(15);
  std::string frame;
};

class BiometricAdapter final : public LocationAdapter {
 public:
  /// The adapter owns two logical sensors: "<sensorId>.short" and
  /// "<sensorId>.long" (one TTL each, per §6.3).
  BiometricAdapter(util::AdapterId id, util::SensorId sensorId, BiometricConfig config);

  [[nodiscard]] std::vector<db::SensorMeta> metas() const override;

  /// A successful fingerprint match: emits both readings.
  void authenticate(const util::MobileObjectId& person, const util::Clock& clock);

  /// Manual logout: emits the short "leaving now" reading and force-expires
  /// the earlier information through the database.
  void logout(const util::MobileObjectId& person, const util::Clock& clock,
              db::SpatialDatabase& database);

  [[nodiscard]] util::SensorId shortSensorId() const;
  [[nodiscard]] util::SensorId longSensorId() const;

 private:
  util::SensorId sensorId_;
  BiometricConfig config_;
};

}  // namespace mw::adapters
