#include "adapters/ubisense.hpp"

#include "util/error.hpp"

namespace mw::adapters {

UbisenseAdapter::UbisenseAdapter(util::AdapterId id, util::SensorId sensorId,
                                 UbisenseConfig config)
    : SamplingAdapter(std::move(id), "Ubisense"),
      sensorId_(std::move(sensorId)),
      config_(std::move(config)) {
  mw::util::require(!config_.coverage.empty() && config_.coverage.area() > 0,
                    "UbisenseAdapter: coverage must have positive area");
  mw::util::require(config_.radius > 0, "UbisenseAdapter: radius must be positive");
}

std::vector<db::SensorMeta> UbisenseAdapter::metas() const {
  db::SensorMeta meta;
  meta.sensorId = sensorId_;
  meta.sensorType = "Ubisense";
  meta.errorSpec = quality::ubisenseSpec(config_.carryProbability);
  meta.scaleMisidentifyByArea = true;  // z = 0.05 * area(A)/area(U)
  meta.quality.ttl = config_.ttl;
  return {meta};
}

std::size_t UbisenseAdapter::sample(const GroundTruth& truth, const util::Clock& clock,
                                    util::Rng& rng) {
  std::size_t emitted = 0;
  for (const auto& person : truth.people()) {
    auto pos = truth.position(person);
    if (!pos || !config_.coverage.contains(*pos)) continue;
    if (!truth.carrying(person, "tag")) continue;
    // Detection succeeds with probability y; the reported point is the true
    // position perturbed within the 6" accuracy.
    if (!rng.chance(quality::ubisenseSpec(1.0).detect)) continue;
    db::SensorReading reading;
    reading.sensorId = sensorId_;
    reading.globPrefix = config_.frame;
    reading.sensorType = "Ubisense";
    reading.mobileObjectId = person;
    reading.location = {pos->x + rng.gaussian(0, config_.radius / 3),
                        pos->y + rng.gaussian(0, config_.radius / 3)};
    reading.detectionRadius = config_.radius;
    reading.detectionTime = clock.now();
    emit(reading);
    ++emitted;
  }
  return emitted;
}

}  // namespace mw::adapters
