#include "adapters/bluetooth.hpp"

#include "util/error.hpp"

namespace mw::adapters {

BluetoothAdapter::BluetoothAdapter(util::AdapterId id, util::SensorId sensorId,
                                   BluetoothConfig config)
    : SamplingAdapter(std::move(id), "Bluetooth"),
      sensorId_(std::move(sensorId)),
      config_(std::move(config)) {
  mw::util::require(config_.range > 0, "BluetoothAdapter: range must be positive");
}

geo::Rect BluetoothAdapter::coverage() const {
  return geo::Rect::centeredSquare(config_.beacon, config_.range);
}

std::vector<db::SensorMeta> BluetoothAdapter::metas() const {
  db::SensorMeta meta;
  meta.sensorId = sensorId_;
  meta.sensorType = "Bluetooth";
  // Inquiry scans detect a discoverable device reliably (y=0.85); MAC
  // collisions/misreads are rare (z base 0.1, area-scaled).
  meta.errorSpec = quality::SensorErrorSpec{config_.carryProbability, 0.85, 0.1};
  meta.scaleMisidentifyByArea = true;
  meta.quality.ttl = config_.ttl;
  return {meta};
}

std::size_t BluetoothAdapter::sample(const GroundTruth& truth, const util::Clock& clock,
                                     util::Rng& rng) {
  std::size_t emitted = 0;
  for (const auto& person : truth.people()) {
    auto pos = truth.position(person);
    if (!pos) continue;
    if (geo::distance(*pos, config_.beacon) > config_.range) continue;
    if (!truth.carrying(person, "phone")) continue;
    if (!rng.chance(0.85)) continue;
    db::SensorReading reading;
    reading.sensorId = sensorId_;
    reading.globPrefix = config_.frame;
    reading.sensorType = "Bluetooth";
    reading.mobileObjectId = person;
    reading.location = config_.beacon;
    reading.detectionRadius = config_.range;
    reading.symbolicRegion = coverage();
    reading.detectionTime = clock.now();
    emit(reading);
    ++emitted;
  }
  return emitted;
}

}  // namespace mw::adapters
