#include "adapters/desktop_login.hpp"

#include "spatialdb/database.hpp"
#include "util/error.hpp"

namespace mw::adapters {

DesktopLoginAdapter::DesktopLoginAdapter(util::AdapterId id, util::SensorId sensorId,
                                         DesktopLoginConfig config)
    : LocationAdapter(std::move(id), "DesktopLogin"),
      sensorId_(std::move(sensorId)),
      config_(std::move(config)) {
  mw::util::require(!config_.room.empty() && config_.room.area() > 0,
                    "DesktopLoginAdapter: room must have positive area");
  mw::util::require(config_.impersonation >= 0 && config_.impersonation <= 1,
                    "DesktopLoginAdapter: impersonation out of [0,1]");
}

std::vector<db::SensorMeta> DesktopLoginAdapter::metas() const {
  db::SensorMeta meta;
  meta.sensorId = sensorId_;
  meta.sensorType = "DesktopLogin";
  // Typing a password proves presence (x=1, y=0.97) but the account may be
  // used by someone else (z = impersonation).
  meta.errorSpec = quality::SensorErrorSpec{1.0, 0.97, config_.impersonation};
  meta.quality.ttl = config_.sessionTtl;
  // Users drift away from unlocked sessions: linear decay over two TTLs.
  meta.quality.tdf = std::make_shared<quality::LinearDegradation>(config_.sessionTtl * 2);
  return {meta};
}

void DesktopLoginAdapter::login(const util::MobileObjectId& person, const util::Clock& clock) {
  db::SensorReading reading;
  reading.sensorId = sensorId_;
  reading.globPrefix = config_.frame;
  reading.sensorType = "DesktopLogin";
  reading.mobileObjectId = person;
  reading.location = config_.workstation;
  reading.detectionRadius = config_.deskRadius;
  reading.detectionTime = clock.now();
  emit(reading);
}

void DesktopLoginAdapter::logout(const util::MobileObjectId& person,
                                 db::SpatialDatabase& database) {
  database.expireReadings(person, sensorId_);
}

}  // namespace mw::adapters
