#include "adapters/biometric.hpp"

#include "spatialdb/database.hpp"
#include "util/error.hpp"

namespace mw::adapters {

BiometricAdapter::BiometricAdapter(util::AdapterId id, util::SensorId sensorId,
                                   BiometricConfig config)
    : LocationAdapter(std::move(id), "Biometric"),
      sensorId_(std::move(sensorId)),
      config_(std::move(config)) {
  mw::util::require(!config_.room.empty() && config_.room.area() > 0,
                    "BiometricAdapter: room must have positive area");
  mw::util::require(config_.leaveBeforeT >= 0 && config_.leaveBeforeT <= 1,
                    "BiometricAdapter: leaveBeforeT out of [0,1]");
}

util::SensorId BiometricAdapter::shortSensorId() const {
  return util::SensorId{sensorId_.str() + ".short"};
}

util::SensorId BiometricAdapter::longSensorId() const {
  return util::SensorId{sensorId_.str() + ".long"};
}

std::vector<db::SensorMeta> BiometricAdapter::metas() const {
  db::SensorMeta shortMeta;
  shortMeta.sensorId = shortSensorId();
  shortMeta.sensorType = "Biometric";
  shortMeta.errorSpec = quality::biometricSpec();  // x=1, y=0.99, z=0.01
  shortMeta.quality.ttl = config_.shortTtl;

  db::SensorMeta longMeta;
  longMeta.sensorId = longSensorId();
  longMeta.sensorType = "Biometric";
  longMeta.errorSpec = quality::SensorErrorSpec{1.0, 0.99, config_.leaveBeforeT};
  longMeta.quality.ttl = config_.longTtl;
  // "confidence will degrade with time anyway" — linear decay over T.
  longMeta.quality.tdf = std::make_shared<quality::LinearDegradation>(config_.longTtl * 2);

  return {shortMeta, longMeta};
}

void BiometricAdapter::authenticate(const util::MobileObjectId& person,
                                    const util::Clock& clock) {
  db::SensorReading shortReading;
  shortReading.sensorId = shortSensorId();
  shortReading.globPrefix = config_.frame;
  shortReading.sensorType = "Biometric";
  shortReading.mobileObjectId = person;
  shortReading.location = config_.devicePosition;
  shortReading.detectionRadius = config_.shortRadius;
  shortReading.detectionTime = clock.now();
  emit(shortReading);

  db::SensorReading longReading = shortReading;
  longReading.sensorId = longSensorId();
  longReading.location = config_.room.center();
  longReading.detectionRadius = 0;
  longReading.symbolicRegion = config_.room;
  emit(longReading);
}

void BiometricAdapter::logout(const util::MobileObjectId& person, const util::Clock& clock,
                              db::SpatialDatabase& database) {
  // "this is a clear indication that the user is in the room now, but he is
  // leaving soon" — force-expire everything this device said before, then
  // emit the brief departure reading.
  database.expireReadings(person, shortSensorId());
  database.expireReadings(person, longSensorId());

  db::SensorReading leaving;
  leaving.sensorId = shortSensorId();
  leaving.globPrefix = config_.frame;
  leaving.sensorType = "Biometric";
  leaving.mobileObjectId = person;
  leaving.location = config_.devicePosition;
  leaving.detectionRadius = config_.shortRadius;
  leaving.detectionTime = clock.now();
  // The logout reading's validity (15 s) is shorter than the sensor's
  // short-term TTL (30 s); backdate the detection time by the difference so
  // it expires at the right instant without a dedicated sensor row.
  leaving.detectionTime -= (config_.shortTtl - config_.logoutTtl);
  emit(leaving);
}

}  // namespace mw::adapters
