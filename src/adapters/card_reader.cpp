#include "adapters/card_reader.hpp"

#include "util/error.hpp"

namespace mw::adapters {

CardReaderAdapter::CardReaderAdapter(util::AdapterId id, util::SensorId sensorId,
                                     CardReaderConfig config)
    : LocationAdapter(std::move(id), "CardReader"),
      sensorId_(std::move(sensorId)),
      config_(std::move(config)) {
  mw::util::require(!config_.room.empty() && config_.room.area() > 0,
                    "CardReaderAdapter: room must have positive area");
}

std::vector<db::SensorMeta> CardReaderAdapter::metas() const {
  db::SensorMeta meta;
  meta.sensorId = sensorId_;
  meta.sensorType = "CardReader";
  // A card swipe proves presence: x=1 (the card was physically used), high
  // y, tiny z (stolen/cloned card).
  meta.errorSpec = quality::SensorErrorSpec{1.0, 0.98, 0.01};
  meta.quality.ttl = config_.ttl;
  return {meta};
}

void CardReaderAdapter::swipe(const util::MobileObjectId& person, const util::Clock& clock) {
  db::SensorReading reading;
  reading.sensorId = sensorId_;
  reading.globPrefix = config_.frame;
  reading.sensorType = "CardReader";
  reading.mobileObjectId = person;
  reading.location = config_.room.center();
  reading.detectionRadius = 0;
  reading.symbolicRegion = config_.room;
  reading.detectionTime = clock.now();
  emit(reading);
}

}  // namespace mw::adapters
