// Location adapters (§6).
//
// "At the lowest layer of MiddleWhere we define an object called a location
// adapter. The location adapter is a CORBA client wrapper for the specific
// location technology at hand. ... the adapter translates the location
// readings into a GLOB that is fed into MiddleWhere through the provider
// interface. Every adapter has an adapter ID and an adapter type."
//
// Because real badges/tags/fingerprint readers are not available, each
// adapter here wraps a *simulated* sensor: it samples a GroundTruth oracle
// (implemented by the world simulator) and produces readings with exactly
// the error model the paper calibrates in §6 — detection probability y,
// misidentification z, carry probability x, detection radius and TTL.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/rect.hpp"
#include "spatialdb/sensor.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace mw::db {
class SpatialDatabase;
}

namespace mw::adapters {

/// What the simulated world really looks like — implemented by sim::World.
/// Adapters sample it through this interface only, so the sensing code path
/// is identical to one driven by real hardware events.
class GroundTruth {
 public:
  virtual ~GroundTruth() = default;

  [[nodiscard]] virtual std::vector<util::MobileObjectId> people() const = 0;
  /// True position in the universe frame; nullopt if unknown to the oracle.
  [[nodiscard]] virtual std::optional<geo::Point2> position(
      const util::MobileObjectId& person) const = 0;
  /// Whether the person currently carries the given device kind ("badge",
  /// "tag", "gps"); biometrics always "carry" their finger (§4.1.1).
  [[nodiscard]] virtual bool carrying(const util::MobileObjectId& person,
                                      const std::string& deviceKind) const = 0;
  /// GPS only achieves a satellite lock outdoors (§6.4).
  [[nodiscard]] virtual bool outdoors(const util::MobileObjectId& person) const = 0;
};

/// Base class: identification, calibration metadata and the reading sink.
class LocationAdapter {
 public:
  using Sink = std::function<void(const db::SensorReading&)>;

  LocationAdapter(util::AdapterId id, std::string adapterType);
  virtual ~LocationAdapter() = default;

  [[nodiscard]] const util::AdapterId& id() const noexcept { return id_; }
  [[nodiscard]] const std::string& adapterType() const noexcept { return adapterType_; }

  /// Sensor-metadata rows this adapter's readings reference; register them
  /// with the spatial database before ingesting (the §6 calibration step).
  [[nodiscard]] virtual std::vector<db::SensorMeta> metas() const = 0;

  /// Where readings go — LocationService::ingest or a remote client.
  void connect(Sink sink);
  [[nodiscard]] bool connected() const noexcept { return static_cast<bool>(sink_); }

  /// Registers all of metas() with the database.
  void registerWith(db::SpatialDatabase& database) const;

 protected:
  /// Emits one reading into the sink; silently drops when not connected
  /// (like a device wired to nothing).
  void emit(const db::SensorReading& reading) const;

 private:
  util::AdapterId id_;
  std::string adapterType_;
  Sink sink_;
};

/// Adapters for continuously transmitting technologies (Ubisense, RFID, GPS)
/// also implement periodic sampling of the ground truth.
class SamplingAdapter : public LocationAdapter {
 public:
  using LocationAdapter::LocationAdapter;

  /// Samples every tracked person once and emits the resulting readings.
  /// Returns the number of readings emitted.
  virtual std::size_t sample(const GroundTruth& truth, const util::Clock& clock,
                             util::Rng& rng) = 0;
};

}  // namespace mw::adapters
