// Ubisense UWB adapter (§6.1).
//
// "Ubisense consists of tags and base stations that utilize Ultra WideBand
// technology. The base stations are able to pinpoint the location of a tag
// within 6 inches 95% of the time. ... y = 0.95, and
// z = 0.05 * area(A)/area(U), where U is the area of coverage of Ubisense."
#pragma once

#include "adapters/adapter.hpp"

namespace mw::adapters {

struct UbisenseConfig {
  geo::Rect coverage;            ///< area of coverage U (universe frame)
  double radius = 0.5;           ///< 6 inches, in the model's feet units
  double carryProbability = 0.9; ///< x, from user studies
  util::Duration ttl = util::sec(3);  ///< paper's sensor table: Ubisense TTL 3s
  std::string frame;             ///< GLOB prefix of emitted readings ("" = universe)
};

class UbisenseAdapter final : public SamplingAdapter {
 public:
  UbisenseAdapter(util::AdapterId id, util::SensorId sensorId, UbisenseConfig config);

  [[nodiscard]] std::vector<db::SensorMeta> metas() const override;
  std::size_t sample(const GroundTruth& truth, const util::Clock& clock,
                     util::Rng& rng) override;

  [[nodiscard]] const UbisenseConfig& config() const noexcept { return config_; }

 private:
  util::SensorId sensorId_;
  UbisenseConfig config_;
};

}  // namespace mw::adapters
