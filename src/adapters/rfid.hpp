// RFID active-badge adapter (§6.2).
//
// "The base stations can detect badges within a range of approx. 15 ft. This
// system cannot give exact coordinates of the badge; instead, it is capable
// of capturing the IDs of the badges in its vicinity. ... the best set up
// for the RF badges is to define an area of interest, A, and set up a base
// station in the center of A. ... we set y = 0.75, and
// z = 0.25 * area(A)/area(U)."
#pragma once

#include "adapters/adapter.hpp"

namespace mw::adapters {

struct RfidConfig {
  geo::Point2 baseStation;        ///< center of the area of interest A
  double range = 15.0;            ///< detection range in feet
  double carryProbability = 0.8;  ///< x
  util::Duration ttl = util::sec(60);  ///< paper's sensor table: RF TTL 60s
  std::string frame;
};

class RfidBadgeAdapter final : public SamplingAdapter {
 public:
  RfidBadgeAdapter(util::AdapterId id, util::SensorId sensorId, RfidConfig config);

  [[nodiscard]] std::vector<db::SensorMeta> metas() const override;
  std::size_t sample(const GroundTruth& truth, const util::Clock& clock,
                     util::Rng& rng) override;

  [[nodiscard]] const RfidConfig& config() const noexcept { return config_; }
  /// The symbolic area of interest A (MBR of the range disc).
  [[nodiscard]] geo::Rect areaOfInterest() const;

 private:
  util::SensorId sensorId_;
  RfidConfig config_;
};

}  // namespace mw::adapters
