#include "adapters/rfid.hpp"

#include "util/error.hpp"

namespace mw::adapters {

RfidBadgeAdapter::RfidBadgeAdapter(util::AdapterId id, util::SensorId sensorId, RfidConfig config)
    : SamplingAdapter(std::move(id), "RFID"),
      sensorId_(std::move(sensorId)),
      config_(std::move(config)) {
  mw::util::require(config_.range > 0, "RfidBadgeAdapter: range must be positive");
}

geo::Rect RfidBadgeAdapter::areaOfInterest() const {
  return geo::Rect::centeredSquare(config_.baseStation, config_.range);
}

std::vector<db::SensorMeta> RfidBadgeAdapter::metas() const {
  db::SensorMeta meta;
  meta.sensorId = sensorId_;
  meta.sensorType = "RF";
  meta.errorSpec = quality::rfidBadgeSpec(config_.carryProbability);
  meta.scaleMisidentifyByArea = true;  // z = 0.25 * area(A)/area(U)
  meta.quality.ttl = config_.ttl;
  // Signal strength fades with obstacles; degrade confidence linearly over
  // the TTL rather than keeping it flat (§3.2 allows continuous tdfs).
  meta.quality.tdf = std::make_shared<quality::LinearDegradation>(config_.ttl * 2);
  return {meta};
}

std::size_t RfidBadgeAdapter::sample(const GroundTruth& truth, const util::Clock& clock,
                                     util::Rng& rng) {
  std::size_t emitted = 0;
  for (const auto& person : truth.people()) {
    auto pos = truth.position(person);
    if (!pos) continue;
    if (geo::distance(*pos, config_.baseStation) > config_.range) continue;
    if (!truth.carrying(person, "badge")) continue;
    if (!rng.chance(quality::rfidBadgeSpec(1.0).detect)) continue;
    // Symbolic reading: "somewhere within the area of interest".
    db::SensorReading reading;
    reading.sensorId = sensorId_;
    reading.globPrefix = config_.frame;
    reading.sensorType = "RF";
    reading.mobileObjectId = person;
    reading.location = config_.baseStation;
    reading.detectionRadius = config_.range;
    reading.symbolicRegion = areaOfInterest();
    reading.detectionTime = clock.now();
    emit(reading);
    ++emitted;
  }
  return emitted;
}

}  // namespace mw::adapters
