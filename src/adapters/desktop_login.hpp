// Desktop-login adapter (§1.1: "login information on desktops").
//
// Event-driven like the biometric adapter, but weaker: passwords can be
// shared or sessions left unlocked, so the misidentification probability is
// higher and the long reading decays faster. Emits a precise reading at the
// workstation on login; logout force-expires it.
#pragma once

#include "adapters/adapter.hpp"

namespace mw::adapters {

struct DesktopLoginConfig {
  geo::Point2 workstation;  ///< where the machine sits (universe frame)
  geo::Rect room;           ///< the room it is in (universe frame)
  double deskRadius = 3.0;  ///< the user sits within this of the machine
  util::Duration sessionTtl = util::minutes(10);  ///< screensaver lock horizon
  /// P(someone else is using the account): shared credentials, unlocked
  /// sessions — the z of this technology.
  double impersonation = 0.05;
  std::string frame;
};

class DesktopLoginAdapter final : public LocationAdapter {
 public:
  DesktopLoginAdapter(util::AdapterId id, util::SensorId sensorId, DesktopLoginConfig config);

  [[nodiscard]] std::vector<db::SensorMeta> metas() const override;

  /// A successful login: the user is at the desk right now.
  void login(const util::MobileObjectId& person, const util::Clock& clock);
  /// Logout or screensaver lock: expire the session's location claim.
  void logout(const util::MobileObjectId& person, db::SpatialDatabase& database);

 private:
  util::SensorId sensorId_;
  DesktopLoginConfig config_;
};

}  // namespace mw::adapters
