#include "adapters/gps.hpp"

#include "util/error.hpp"

namespace mw::adapters {

GpsAdapter::GpsAdapter(util::AdapterId id, util::SensorId sensorId, GpsConfig config)
    : SamplingAdapter(std::move(id), "GPS"),
      sensorId_(std::move(sensorId)),
      config_(std::move(config)) {
  mw::util::require(config_.accuracy > 0, "GpsAdapter: accuracy must be positive");
}

std::vector<db::SensorMeta> GpsAdapter::metas() const {
  db::SensorMeta meta;
  meta.sensorId = sensorId_;
  meta.sensorType = "GPS";
  meta.errorSpec = quality::gpsSpec(config_.carryProbability);
  meta.quality.ttl = config_.ttl;
  return {meta};
}

std::size_t GpsAdapter::sample(const GroundTruth& truth, const util::Clock& clock,
                               util::Rng& rng) {
  std::size_t emitted = 0;
  for (const auto& person : truth.people()) {
    if (!truth.outdoors(person)) continue;  // no lock indoors
    auto pos = truth.position(person);
    if (!pos) continue;
    if (!truth.carrying(person, "gps")) continue;
    if (!rng.chance(quality::gpsSpec(1.0).detect)) continue;
    db::SensorReading reading;
    reading.sensorId = sensorId_;
    reading.globPrefix = config_.frame;
    reading.sensorType = "GPS";
    reading.mobileObjectId = person;
    reading.location = {pos->x + rng.gaussian(0, config_.accuracy / 3),
                        pos->y + rng.gaussian(0, config_.accuracy / 3)};
    reading.detectionRadius = config_.accuracy;
    reading.detectionTime = clock.now();
    emit(reading);
    ++emitted;
  }
  return emitted;
}

}  // namespace mw::adapters
