// Simple polygons.
//
// §5.1: "Objects are represented as points, lines or polygons while regions
// are represented using minimum bounding rectangles." Polygons carry the
// exact outlines from building blueprints; MBRs drive the fast path, and
// "once a certain condition is satisfied by a MBR, more accurate processing
// of the operation is performed taking the actual region boundaries."
#pragma once

#include <initializer_list>
#include <ostream>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/rect.hpp"
#include "geometry/segment.hpp"

namespace mw::geo {

class Polygon {
 public:
  Polygon() = default;
  /// Vertices in order (either winding); no self-intersection checking is
  /// performed — callers provide simple polygons (blueprint outlines).
  explicit Polygon(std::vector<Point2> vertices);
  Polygon(std::initializer_list<Point2> vertices);
  /// The polygon with the same outline as the rect.
  static Polygon fromRect(const Rect& r);

  [[nodiscard]] const std::vector<Point2>& vertices() const noexcept { return vertices_; }
  [[nodiscard]] std::size_t size() const noexcept { return vertices_.size(); }
  [[nodiscard]] bool valid() const noexcept { return vertices_.size() >= 3; }

  /// Shoelace area (always non-negative).
  [[nodiscard]] double area() const;
  [[nodiscard]] Point2 centroid() const;
  [[nodiscard]] Rect mbr() const;

  /// Ray-casting point-in-polygon; boundary points count as inside.
  [[nodiscard]] bool contains(Point2 p) const;
  [[nodiscard]] bool contains(const Polygon& other) const;

  /// Edge i as a segment (wraps around).
  [[nodiscard]] Segment edge(std::size_t i) const;

  /// True if the outlines cross or one contains the other (closed sets).
  [[nodiscard]] bool intersects(const Polygon& other) const;

  friend std::ostream& operator<<(std::ostream& os, const Polygon& p);

 private:
  std::vector<Point2> vertices_;
};

/// Area of the intersection of a simple convex polygon with a rect, via
/// Sutherland–Hodgman clipping. Used by precise region-probability queries.
double clippedArea(const Polygon& poly, const Rect& clip);

}  // namespace mw::geo
