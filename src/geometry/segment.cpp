#include "geometry/segment.hpp"

#include <algorithm>
#include <cmath>

namespace mw::geo {

namespace {
bool onSegment(Point2 p, Point2 q, Point2 r) {
  return q.x <= std::max(p.x, r.x) && q.x >= std::min(p.x, r.x) && q.y <= std::max(p.y, r.y) &&
         q.y >= std::min(p.y, r.y);
}

int orientation(Point2 p, Point2 q, Point2 r) {
  double v = cross(p, q, r);
  if (std::abs(v) < 1e-12) return 0;
  return v > 0 ? 1 : 2;
}
}  // namespace

bool segmentsIntersect(const Segment& s1, const Segment& s2) {
  Point2 p1 = s1.a, q1 = s1.b, p2 = s2.a, q2 = s2.b;
  int o1 = orientation(p1, q1, p2);
  int o2 = orientation(p1, q1, q2);
  int o3 = orientation(p2, q2, p1);
  int o4 = orientation(p2, q2, q1);

  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && onSegment(p1, p2, q1)) return true;
  if (o2 == 0 && onSegment(p1, q2, q1)) return true;
  if (o3 == 0 && onSegment(p2, p1, q2)) return true;
  if (o4 == 0 && onSegment(p2, q1, q2)) return true;
  return false;
}

double distanceToSegment(Point2 p, const Segment& s) {
  Point2 d = s.b - s.a;
  double len2 = dot(d, d);
  if (len2 == 0) return distance(p, s.a);
  double t = std::clamp(dot(p - s.a, d) / len2, 0.0, 1.0);
  return distance(p, s.a + d * t);
}

bool segmentOnRectBoundary(const Segment& s, const Rect& r, double eps) {
  if (r.empty()) return false;
  auto onVertical = [&](double x) {
    return std::abs(s.a.x - x) <= eps && std::abs(s.b.x - x) <= eps &&
           s.a.y >= r.lo().y - eps && s.a.y <= r.hi().y + eps && s.b.y >= r.lo().y - eps &&
           s.b.y <= r.hi().y + eps;
  };
  auto onHorizontal = [&](double y) {
    return std::abs(s.a.y - y) <= eps && std::abs(s.b.y - y) <= eps &&
           s.a.x >= r.lo().x - eps && s.a.x <= r.hi().x + eps && s.b.x >= r.lo().x - eps &&
           s.b.x <= r.hi().x + eps;
  };
  return onVertical(r.lo().x) || onVertical(r.hi().x) || onHorizontal(r.lo().y) ||
         onHorizontal(r.hi().y);
}

bool segmentIntersectsRect(const Segment& s, const Rect& r) {
  if (r.empty()) return false;
  if (r.contains(s.a) || r.contains(s.b)) return true;
  Point2 ll = r.lo(), hh = r.hi();
  Point2 lh{ll.x, hh.y}, hl{hh.x, ll.y};
  return segmentsIntersect(s, {ll, hl}) || segmentsIntersect(s, {hl, hh}) ||
         segmentsIntersect(s, {hh, lh}) || segmentsIntersect(s, {lh, ll});
}

}  // namespace mw::geo
