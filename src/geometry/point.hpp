// Planar and 3D points.
//
// MiddleWhere's spatial reasoning happens per floor, in 2D; the z coordinate
// of sensor readings selects the floor and is otherwise carried along
// (§3: "locations within a room can be expressed with respect to the
// coordinate system of the room, the floor or the building").
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace mw::geo {

struct Point2 {
  double x = 0;
  double y = 0;

  friend constexpr Point2 operator+(Point2 a, Point2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Point2 operator-(Point2 a, Point2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Point2 operator*(Point2 a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr bool operator==(Point2, Point2) = default;
  friend std::ostream& operator<<(std::ostream& os, Point2 p) {
    return os << '(' << p.x << ',' << p.y << ')';
  }
};

struct Point3 {
  double x = 0;
  double y = 0;
  double z = 0;

  [[nodiscard]] constexpr Point2 xy() const { return {x, y}; }

  friend constexpr Point3 operator+(Point3 a, Point3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Point3 operator-(Point3 a, Point3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr bool operator==(Point3, Point3) = default;
  friend std::ostream& operator<<(std::ostream& os, Point3 p) {
    return os << '(' << p.x << ',' << p.y << ',' << p.z << ')';
  }
};

inline double distance(Point2 a, Point2 b) { return std::hypot(a.x - b.x, a.y - b.y); }
inline double distance(Point3 a, Point3 b) {
  return std::hypot(a.x - b.x, a.y - b.y, a.z - b.z);
}

/// 2D cross product (z component); sign gives turn direction.
constexpr double cross(Point2 o, Point2 a, Point2 b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

constexpr double dot(Point2 a, Point2 b) { return a.x * b.x + a.y * b.y; }

}  // namespace mw::geo
