#include "geometry/polygon.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mw::geo {

Polygon::Polygon(std::vector<Point2> vertices) : vertices_(std::move(vertices)) {}
Polygon::Polygon(std::initializer_list<Point2> vertices) : vertices_(vertices) {}

Polygon Polygon::fromRect(const Rect& r) {
  if (r.empty()) return Polygon{};
  return Polygon{{r.lo(), {r.hi().x, r.lo().y}, r.hi(), {r.lo().x, r.hi().y}}};
}

double Polygon::area() const {
  if (!valid()) return 0;
  double sum = 0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Point2& p = vertices_[i];
    const Point2& q = vertices_[(i + 1) % vertices_.size()];
    sum += p.x * q.y - q.x * p.y;
  }
  return std::abs(sum) / 2;
}

Point2 Polygon::centroid() const {
  mw::util::require(valid(), "Polygon::centroid: needs >= 3 vertices");
  double signedArea = 0;
  Point2 c{0, 0};
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Point2& p = vertices_[i];
    const Point2& q = vertices_[(i + 1) % vertices_.size()];
    double a = p.x * q.y - q.x * p.y;
    signedArea += a;
    c.x += (p.x + q.x) * a;
    c.y += (p.y + q.y) * a;
  }
  if (std::abs(signedArea) < 1e-12) {
    // Degenerate (collinear) polygon: fall back to vertex average.
    Point2 avg{0, 0};
    for (const auto& v : vertices_) avg = avg + v;
    return avg * (1.0 / static_cast<double>(vertices_.size()));
  }
  double k = 1.0 / (3.0 * signedArea);
  return {c.x * k, c.y * k};
}

Rect Polygon::mbr() const {
  Rect r;
  for (const auto& v : vertices_) r = r.unionWith(Rect::fromCorners(v, v));
  return r;
}

bool Polygon::contains(Point2 p) const {
  if (!valid()) return false;
  // Boundary check first so that edge points count as inside.
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (distanceToSegment(p, edge(i)) < 1e-9) return true;
  }
  bool inside = false;
  for (std::size_t i = 0, j = vertices_.size() - 1; i < vertices_.size(); j = i++) {
    const Point2& a = vertices_[i];
    const Point2& b = vertices_[j];
    if ((a.y > p.y) != (b.y > p.y)) {
      double xCross = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < xCross) inside = !inside;
    }
  }
  return inside;
}

bool Polygon::contains(const Polygon& other) const {
  if (!valid() || !other.valid()) return false;
  for (const auto& v : other.vertices()) {
    if (!contains(v)) return false;
  }
  // Vertex containment is insufficient for non-convex containers; also check
  // that no edges cross.
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t j = 0; j < other.size(); ++j) {
      Segment e1 = edge(i), e2 = other.edge(j);
      if (segmentsIntersect(e1, e2)) {
        // Touching is fine; crossing is not. Approximate: if the midpoints of
        // e2 halves are outside, treat as crossing.
        Point2 mid = e2.midpoint();
        if (!contains(mid)) return false;
      }
    }
  }
  return true;
}

Segment Polygon::edge(std::size_t i) const {
  mw::util::require(valid(), "Polygon::edge: needs >= 3 vertices");
  return {vertices_[i % vertices_.size()], vertices_[(i + 1) % vertices_.size()]};
}

bool Polygon::intersects(const Polygon& other) const {
  if (!valid() || !other.valid()) return false;
  if (!mbr().intersects(other.mbr())) return false;
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t j = 0; j < other.size(); ++j) {
      if (segmentsIntersect(edge(i), other.edge(j))) return true;
    }
  }
  return contains(other.vertices()[0]) || other.contains(vertices_[0]);
}

std::ostream& operator<<(std::ostream& os, const Polygon& p) {
  os << "Polygon{";
  for (std::size_t i = 0; i < p.vertices_.size(); ++i) {
    if (i) os << ", ";
    os << p.vertices_[i];
  }
  return os << '}';
}

namespace {
// Clips `input` against the half-plane keep(p) == true whose boundary is the
// line through `a`-`b` (Sutherland–Hodgman step).
std::vector<Point2> clipHalfPlane(const std::vector<Point2>& input, Point2 a, Point2 b) {
  std::vector<Point2> out;
  auto inside = [&](Point2 p) { return cross(a, b, p) >= -1e-12; };
  auto intersect = [&](Point2 p, Point2 q) -> Point2 {
    Point2 d1 = b - a;
    Point2 d2 = q - p;
    double denom = d1.x * d2.y - d1.y * d2.x;
    if (std::abs(denom) < 1e-15) return p;
    double t = ((p.x - a.x) * d1.y - (p.y - a.y) * d1.x) / denom;
    return p + d2 * t;
  };
  for (std::size_t i = 0; i < input.size(); ++i) {
    Point2 cur = input[i];
    Point2 prev = input[(i + input.size() - 1) % input.size()];
    bool curIn = inside(cur);
    bool prevIn = inside(prev);
    if (curIn) {
      if (!prevIn) out.push_back(intersect(prev, cur));
      out.push_back(cur);
    } else if (prevIn) {
      out.push_back(intersect(prev, cur));
    }
  }
  return out;
}
}  // namespace

double clippedArea(const Polygon& poly, const Rect& clip) {
  if (!poly.valid() || clip.empty()) return 0;
  // Ensure counter-clockwise winding for the half-plane tests.
  std::vector<Point2> pts = poly.vertices();
  double signedArea = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Point2& p = pts[i];
    const Point2& q = pts[(i + 1) % pts.size()];
    signedArea += p.x * q.y - q.x * p.y;
  }
  if (signedArea < 0) std::reverse(pts.begin(), pts.end());

  Point2 ll = clip.lo(), hh = clip.hi();
  Point2 lh{ll.x, hh.y}, hl{hh.x, ll.y};
  pts = clipHalfPlane(pts, ll, hl);
  if (pts.empty()) return 0;
  pts = clipHalfPlane(pts, hl, hh);
  if (pts.empty()) return 0;
  pts = clipHalfPlane(pts, hh, lh);
  if (pts.empty()) return 0;
  pts = clipHalfPlane(pts, lh, ll);
  if (pts.size() < 3) return 0;
  return Polygon{std::move(pts)}.area();
}

}  // namespace mw::geo
