// R-tree spatial index (Guttman 1984, the paper's citation [4]).
//
// Backs the spatial database's region queries: "The concept of minimum
// bounding rectangles is used heavily by the spatial data mining community.
// Minimum bounding rectangles provide approximate boundaries to objects of
// interest to enable efficient processing of operations" (§5.1).
//
// Quadratic-split variant, keyed by Rect, holding caller values of type T.
// Deletion uses the classic condense-tree + reinsert algorithm.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "geometry/rect.hpp"
#include "util/error.hpp"

namespace mw::geo {

template <typename T>
class RTree {
 public:
  /// `minEntries`/`maxEntries` follow Guttman's m <= M/2 constraint.
  explicit RTree(std::size_t maxEntries = 8)
      : maxEntries_(maxEntries), minEntries_(std::max<std::size_t>(2, maxEntries / 2)) {
    mw::util::require(maxEntries >= 4, "RTree: maxEntries must be >= 4");
    root_ = std::make_unique<Node>(/*leaf=*/true);
  }

  void insert(const Rect& box, T value) {
    mw::util::require(!box.empty(), "RTree::insert: empty rect");
    Entry e{box, std::move(value), nullptr};
    insertEntry(std::move(e), root_.get());
    ++size_;
  }

  /// Removes one entry with an equal box and value. Returns false if absent.
  bool remove(const Rect& box, const T& value) {
    Node* leaf = findLeaf(root_.get(), box, value);
    if (leaf == nullptr) return false;
    auto it = std::find_if(leaf->entries.begin(), leaf->entries.end(), [&](const Entry& e) {
      return e.box == box && e.value == value;
    });
    leaf->entries.erase(it);
    --size_;
    condense(leaf);
    // Shrink the tree if the root has a single child.
    if (!root_->leaf && root_->entries.size() == 1) {
      auto child = std::move(root_->entries[0].child);
      child->parent = nullptr;
      root_ = std::move(child);
    }
    return true;
  }

  /// All values whose boxes intersect `query` (closed-set test).
  [[nodiscard]] std::vector<T> search(const Rect& query) const {
    std::vector<T> out;
    out.reserve(std::min<std::size_t>(size_, 16));
    search(query, [&out](const T& value) { out.push_back(value); });
    return out;
  }

  /// Visitor form of search: calls `fn(value)` for every hit without
  /// materializing a result vector — the allocation-free path the fusion
  /// input gathering and trigger matching use on every ingest.
  template <typename Fn>
  void search(const Rect& query, Fn&& fn) const {
    if (!query.empty()) searchNode(root_.get(), query, fn);
  }

  /// All values whose boxes contain the point.
  [[nodiscard]] std::vector<T> containing(Point2 p) const {
    return search(Rect::fromCorners(p, p));
  }

  /// Visitor form of containing.
  template <typename Fn>
  void containing(Point2 p, Fn&& fn) const {
    search(Rect::fromCorners(p, p), std::forward<Fn>(fn));
  }

  /// Visits every (box, value); used for exhaustive scans and testing.
  void forEach(const std::function<void(const Rect&, const T&)>& fn) const {
    forEachNode(root_.get(), fn);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Height of the tree (1 = just a leaf root); exposed for benchmarks.
  [[nodiscard]] std::size_t height() const {
    std::size_t h = 1;
    const Node* n = root_.get();
    while (!n->leaf) {
      n = n->entries.front().child.get();
      ++h;
    }
    return h;
  }

 private:
  struct Node;

  struct Entry {
    Rect box;
    T value{};                    // meaningful only in leaves
    std::unique_ptr<Node> child;  // meaningful only in internal nodes
  };

  struct Node {
    explicit Node(bool isLeaf) : leaf(isLeaf) {}
    bool leaf;
    Node* parent = nullptr;
    std::vector<Entry> entries;

    [[nodiscard]] Rect cover() const {
      Rect r;
      for (const auto& e : entries) r = r.unionWith(e.box);
      return r;
    }
  };

  // --- insertion -------------------------------------------------------------

  void insertEntry(Entry e, Node* startNode) {
    Node* leaf = chooseLeaf(startNode, e.box);
    leaf->entries.push_back(std::move(e));
    if (leaf->entries.back().child) leaf->entries.back().child->parent = leaf;
    Node* toSplit = leaf->entries.size() > maxEntries_ ? leaf : nullptr;
    adjustTree(leaf, toSplit);
  }

  Node* chooseLeaf(Node* n, const Rect& box) {
    while (!n->leaf) {
      Entry* best = nullptr;
      double bestGrowth = 0;
      double bestArea = 0;
      for (auto& e : n->entries) {
        double growth = e.box.unionWith(box).area() - e.box.area();
        if (best == nullptr || growth < bestGrowth ||
            (growth == bestGrowth && e.box.area() < bestArea)) {
          best = &e;
          bestGrowth = growth;
          bestArea = e.box.area();
        }
      }
      n = best->child.get();
    }
    return n;
  }

  void adjustTree(Node* n, Node* toSplit) {
    while (n != nullptr) {
      std::unique_ptr<Node> sibling;
      if (toSplit == n) sibling = splitNode(n);
      Node* parent = n->parent;
      if (parent == nullptr) {
        if (sibling) {
          // Grow a new root above n and its new sibling.
          auto newRoot = std::make_unique<Node>(/*leaf=*/false);
          auto oldRoot = std::move(root_);
          oldRoot->parent = newRoot.get();
          sibling->parent = newRoot.get();
          newRoot->entries.push_back({oldRoot->cover(), T{}, std::move(oldRoot)});
          newRoot->entries.push_back({sibling->cover(), T{}, std::move(sibling)});
          root_ = std::move(newRoot);
        }
        return;
      }
      // Refresh the parent entry's box for n.
      for (auto& e : parent->entries) {
        if (e.child.get() == n) {
          e.box = n->cover();
          break;
        }
      }
      if (sibling) {
        sibling->parent = parent;
        Rect cover = sibling->cover();
        parent->entries.push_back({cover, T{}, std::move(sibling)});
      }
      toSplit = parent->entries.size() > maxEntries_ ? parent : nullptr;
      n = parent;
    }
  }

  /// Quadratic split: returns the new sibling; `n` keeps one group.
  std::unique_ptr<Node> splitNode(Node* n) {
    std::vector<Entry> all = std::move(n->entries);
    n->entries.clear();
    auto sibling = std::make_unique<Node>(n->leaf);

    // Pick seeds: the pair wasting the most area if grouped together.
    std::size_t seedA = 0, seedB = 1;
    double worst = -1;
    for (std::size_t i = 0; i < all.size(); ++i) {
      for (std::size_t j = i + 1; j < all.size(); ++j) {
        double waste =
            all[i].box.unionWith(all[j].box).area() - all[i].box.area() - all[j].box.area();
        if (waste > worst) {
          worst = waste;
          seedA = i;
          seedB = j;
        }
      }
    }

    auto place = [](Node* dst, Entry e) {
      if (e.child) e.child->parent = dst;
      dst->entries.push_back(std::move(e));
    };
    place(n, std::move(all[seedA]));
    place(sibling.get(), std::move(all[seedB]));

    Rect coverA = n->entries[0].box;
    Rect coverB = sibling->entries[0].box;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (i == seedA || i == seedB) continue;
      Entry& e = all[i];
      std::size_t remaining = 0;
      for (std::size_t j = i; j < all.size(); ++j) {
        if (j != seedA && j != seedB) ++remaining;
      }
      // Force assignment if one side must take all remaining to reach min.
      if (n->entries.size() + remaining <= minEntries_) {
        coverA = coverA.unionWith(e.box);
        place(n, std::move(e));
        continue;
      }
      if (sibling->entries.size() + remaining <= minEntries_) {
        coverB = coverB.unionWith(e.box);
        place(sibling.get(), std::move(e));
        continue;
      }
      double growthA = coverA.unionWith(e.box).area() - coverA.area();
      double growthB = coverB.unionWith(e.box).area() - coverB.area();
      if (growthA < growthB || (growthA == growthB && coverA.area() <= coverB.area())) {
        coverA = coverA.unionWith(e.box);
        place(n, std::move(e));
      } else {
        coverB = coverB.unionWith(e.box);
        place(sibling.get(), std::move(e));
      }
    }
    return sibling;
  }

  // --- deletion --------------------------------------------------------------

  Node* findLeaf(Node* n, const Rect& box, const T& value) {
    if (n->leaf) {
      for (const auto& e : n->entries) {
        if (e.box == box && e.value == value) return n;
      }
      return nullptr;
    }
    for (const auto& e : n->entries) {
      if (e.box.contains(box) || e.box.intersects(box)) {
        if (Node* found = findLeaf(e.child.get(), box, value)) return found;
      }
    }
    return nullptr;
  }

  void condense(Node* n) {
    std::vector<Entry> orphans;
    while (n->parent != nullptr) {
      Node* parent = n->parent;
      if (n->entries.size() < minEntries_) {
        // Detach n from its parent and queue its entries for reinsertion.
        auto it = std::find_if(parent->entries.begin(), parent->entries.end(),
                               [&](const Entry& e) { return e.child.get() == n; });
        std::unique_ptr<Node> detached = std::move(it->child);
        parent->entries.erase(it);
        collectEntries(detached.get(), orphans);
      } else {
        for (auto& e : parent->entries) {
          if (e.child.get() == n) {
            e.box = n->cover();
            break;
          }
        }
      }
      n = parent;
    }
    for (auto& e : orphans) {
      if (e.child) {
        // Reinsert subtree leaves individually (rare path; simple and correct).
        std::vector<Entry> leafEntries;
        collectEntries(e.child.get(), leafEntries);
        for (auto& le : leafEntries) insertEntry(std::move(le), root_.get());
      } else {
        insertEntry(std::move(e), root_.get());
      }
    }
  }

  void collectEntries(Node* n, std::vector<Entry>& out) {
    if (n->leaf) {
      for (auto& e : n->entries) out.push_back(std::move(e));
      return;
    }
    for (auto& e : n->entries) collectEntries(e.child.get(), out);
  }

  // --- queries ---------------------------------------------------------------

  template <typename Fn>
  void searchNode(const Node* n, const Rect& query, Fn& fn) const {
    for (const auto& e : n->entries) {
      if (!e.box.intersects(query)) continue;
      if (n->leaf) {
        fn(e.value);
      } else {
        searchNode(e.child.get(), query, fn);
      }
    }
  }

  void forEachNode(const Node* n, const std::function<void(const Rect&, const T&)>& fn) const {
    for (const auto& e : n->entries) {
      if (n->leaf) {
        fn(e.box, e.value);
      } else {
        forEachNode(e.child.get(), fn);
      }
    }
  }

  std::size_t maxEntries_;
  std::size_t minEntries_;
  std::size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace mw::geo
