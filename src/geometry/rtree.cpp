// Explicit instantiation of the R-tree for the value types used across the
// repository; keeps template bloat out of dependent translation units and
// gives the linker one authoritative copy to diagnose.
#include "geometry/rtree.hpp"

#include <cstdint>
#include <string>

namespace mw::geo {

template class RTree<std::uint64_t>;
template class RTree<std::string>;

}  // namespace mw::geo
