// Axis-aligned rectangles (minimum bounding rectangles).
//
// §4.1.2: "All locations are converted to a common coordinate format ... and
// are expressed as minimum bounding rectangles. ... Many operations like
// finding intersection regions, area and containment properties are very
// easy and fast to perform on rectangles." The fusion lattice, the spatial
// database index and the trigger machinery all run on this type.
#pragma once

#include <optional>
#include <ostream>

#include "geometry/point.hpp"

namespace mw::geo {

class Rect {
 public:
  /// Default: the canonical empty rectangle.
  constexpr Rect() : lo_{0, 0}, hi_{-1, -1} {}

  /// Construct from two corners; normalizes so that any two opposite corners
  /// are accepted.
  static Rect fromCorners(Point2 a, Point2 b);
  /// Construct from lower-left corner plus extents (w, h >= 0).
  static Rect fromOrigin(Point2 lo, double w, double h);
  /// Square of side 2r centered at c — the MBR of a disc of radius r, used to
  /// rectangle-ize coordinate sensor readings ("error radius", §4.1.2).
  static Rect centeredSquare(Point2 c, double r);

  [[nodiscard]] constexpr Point2 lo() const { return lo_; }
  [[nodiscard]] constexpr Point2 hi() const { return hi_; }
  [[nodiscard]] constexpr bool empty() const { return lo_.x > hi_.x || lo_.y > hi_.y; }
  [[nodiscard]] double width() const { return empty() ? 0 : hi_.x - lo_.x; }
  [[nodiscard]] double height() const { return empty() ? 0 : hi_.y - lo_.y; }
  [[nodiscard]] double area() const { return width() * height(); }
  [[nodiscard]] Point2 center() const;

  [[nodiscard]] bool contains(Point2 p) const;
  /// True also when `other` touches this rect's boundary from the inside.
  [[nodiscard]] bool contains(const Rect& other) const;
  /// Strict containment: `other` is inside and does not touch the boundary.
  [[nodiscard]] bool containsStrictly(const Rect& other) const;
  /// Closed-set intersection test (shared boundary counts).
  [[nodiscard]] bool intersects(const Rect& other) const;
  /// Interiors overlap (shared boundary alone does not count).
  [[nodiscard]] bool overlapsInterior(const Rect& other) const;

  /// Intersection region; nullopt when the closed sets are disjoint.
  [[nodiscard]] std::optional<Rect> intersection(const Rect& other) const;
  /// Smallest rectangle covering both (MBR union).
  [[nodiscard]] Rect unionWith(const Rect& other) const;
  /// Grow by margin m on every side.
  [[nodiscard]] Rect inflated(double m) const;

  /// Minimum distance between the closed sets (0 when intersecting).
  [[nodiscard]] double distanceTo(const Rect& other) const;
  [[nodiscard]] double distanceTo(Point2 p) const;

  friend bool operator==(const Rect& a, const Rect& b);
  friend std::ostream& operator<<(std::ostream& os, const Rect& r);

 private:
  constexpr Rect(Point2 lo, Point2 hi) : lo_(lo), hi_(hi) {}
  Point2 lo_;
  Point2 hi_;
};

/// Rects are "approximately equal" within eps on every coordinate; used by
/// the lattice to merge duplicate intersection regions.
bool approxEqual(const Rect& a, const Rect& b, double eps = 1e-9);

}  // namespace mw::geo
