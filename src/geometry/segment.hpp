// Line segments: doors, walls and other linear features of the world model
// (§3: "A symbolic line location can be defined for a door").
#pragma once

#include <optional>

#include "geometry/point.hpp"
#include "geometry/rect.hpp"

namespace mw::geo {

struct Segment {
  Point2 a;
  Point2 b;

  [[nodiscard]] double length() const { return distance(a, b); }
  [[nodiscard]] Point2 midpoint() const { return {(a.x + b.x) / 2, (a.y + b.y) / 2}; }
  [[nodiscard]] Rect mbr() const { return Rect::fromCorners(a, b); }
};

/// True if the closed segments share at least one point.
bool segmentsIntersect(const Segment& s1, const Segment& s2);

/// Distance from point p to the closed segment s.
double distanceToSegment(Point2 p, const Segment& s);

/// True if the segment lies (within eps) on the boundary of the rect.
bool segmentOnRectBoundary(const Segment& s, const Rect& r, double eps = 1e-9);

/// True if the closed segment intersects the closed rect.
bool segmentIntersectsRect(const Segment& s, const Rect& r);

}  // namespace mw::geo
