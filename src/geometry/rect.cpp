#include "geometry/rect.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mw::geo {

Rect Rect::fromCorners(Point2 a, Point2 b) {
  return Rect{{std::min(a.x, b.x), std::min(a.y, b.y)}, {std::max(a.x, b.x), std::max(a.y, b.y)}};
}

Rect Rect::fromOrigin(Point2 lo, double w, double h) {
  mw::util::require(w >= 0 && h >= 0, "Rect::fromOrigin: negative extent");
  return Rect{lo, {lo.x + w, lo.y + h}};
}

Rect Rect::centeredSquare(Point2 c, double r) {
  mw::util::require(r >= 0, "Rect::centeredSquare: negative radius");
  return Rect{{c.x - r, c.y - r}, {c.x + r, c.y + r}};
}

Point2 Rect::center() const { return {(lo_.x + hi_.x) / 2, (lo_.y + hi_.y) / 2}; }

bool Rect::contains(Point2 p) const {
  return !empty() && p.x >= lo_.x && p.x <= hi_.x && p.y >= lo_.y && p.y <= hi_.y;
}

bool Rect::contains(const Rect& other) const {
  if (other.empty()) return true;  // empty set is a subset of anything
  return !empty() && other.lo_.x >= lo_.x && other.hi_.x <= hi_.x && other.lo_.y >= lo_.y &&
         other.hi_.y <= hi_.y;
}

bool Rect::containsStrictly(const Rect& other) const {
  if (other.empty() || empty()) return false;
  return other.lo_.x > lo_.x && other.hi_.x < hi_.x && other.lo_.y > lo_.y && other.hi_.y < hi_.y;
}

bool Rect::intersects(const Rect& other) const {
  if (empty() || other.empty()) return false;
  return lo_.x <= other.hi_.x && other.lo_.x <= hi_.x && lo_.y <= other.hi_.y &&
         other.lo_.y <= hi_.y;
}

bool Rect::overlapsInterior(const Rect& other) const {
  if (empty() || other.empty()) return false;
  return lo_.x < other.hi_.x && other.lo_.x < hi_.x && lo_.y < other.hi_.y && other.lo_.y < hi_.y;
}

std::optional<Rect> Rect::intersection(const Rect& other) const {
  if (!intersects(other)) return std::nullopt;
  return Rect{{std::max(lo_.x, other.lo_.x), std::max(lo_.y, other.lo_.y)},
              {std::min(hi_.x, other.hi_.x), std::min(hi_.y, other.hi_.y)}};
}

Rect Rect::unionWith(const Rect& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  return Rect{{std::min(lo_.x, other.lo_.x), std::min(lo_.y, other.lo_.y)},
              {std::max(hi_.x, other.hi_.x), std::max(hi_.y, other.hi_.y)}};
}

Rect Rect::inflated(double m) const {
  if (empty()) return *this;
  Rect r{{lo_.x - m, lo_.y - m}, {hi_.x + m, hi_.y + m}};
  if (r.lo_.x > r.hi_.x || r.lo_.y > r.hi_.y) return Rect{};  // deflated to nothing
  return r;
}

double Rect::distanceTo(const Rect& other) const {
  if (empty() || other.empty()) return std::numeric_limits<double>::infinity();
  double dx = std::max({0.0, other.lo_.x - hi_.x, lo_.x - other.hi_.x});
  double dy = std::max({0.0, other.lo_.y - hi_.y, lo_.y - other.hi_.y});
  return std::hypot(dx, dy);
}

double Rect::distanceTo(Point2 p) const {
  if (empty()) return std::numeric_limits<double>::infinity();
  double dx = std::max({0.0, lo_.x - p.x, p.x - hi_.x});
  double dy = std::max({0.0, lo_.y - p.y, p.y - hi_.y});
  return std::hypot(dx, dy);
}

bool operator==(const Rect& a, const Rect& b) {
  if (a.empty() && b.empty()) return true;
  return a.lo_ == b.lo_ && a.hi_ == b.hi_;
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  if (r.empty()) return os << "[empty]";
  return os << '[' << r.lo_ << '-' << r.hi_ << ']';
}

bool approxEqual(const Rect& a, const Rect& b, double eps) {
  if (a.empty() || b.empty()) return a.empty() && b.empty();
  return std::abs(a.lo().x - b.lo().x) <= eps && std::abs(a.lo().y - b.lo().y) <= eps &&
         std::abs(a.hi().x - b.hi().x) <= eps && std::abs(a.hi().y - b.hi().y) <= eps;
}

}  // namespace mw::geo
