#include "core/remote_registry.hpp"

#include <algorithm>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace mw::core {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;

RegistryServer::RegistryServer(std::uint16_t port) {
  rpc_.registerMethod("registry.announce", [this](const Bytes& args) -> Bytes {
    ByteReader r(args);
    std::string name = r.str();
    Endpoint ep{r.str(), r.u16()};
    const std::uint32_t ttlMs = r.u32();
    if (!r.exhausted()) ep.shmName = r.str();  // absent in pre-shm announces
    std::uint64_t generation = 0;
    if (!r.exhausted()) generation = r.u64();  // absent in pre-fencing announces
    mw::util::require(!name.empty(), "registry.announce: empty name");
    Entry entry;
    entry.endpoint = std::move(ep);
    entry.generation = generation;
    entry.expiresAt = ttlMs == 0 ? std::chrono::steady_clock::time_point::max()
                                 : std::chrono::steady_clock::now() +
                                       std::chrono::milliseconds(ttlMs);
    bool accepted = true;
    {
      std::lock_guard lock(mutex_);
      if (generation > 0) {
        auto& fence = fences_[name];
        if (generation < fence) {
          accepted = false;  // stale owner: the name moved on without it
        } else {
          fence = generation;
        }
      }
      if (accepted) entries_[name] = std::move(entry);
    }
    ByteWriter w;
    w.boolean(accepted);
    return w.take();
  });
  rpc_.registerMethod("registry.lookup", [this](const Bytes& args) -> Bytes {
    ByteReader r(args);
    std::string name = r.str();
    ByteWriter w;
    std::lock_guard lock(mutex_);
    pruneExpiredLocked();
    auto it = entries_.find(name);
    w.boolean(it != entries_.end());
    if (it != entries_.end()) {
      w.str(it->second.endpoint.host);
      w.u16(it->second.endpoint.port);
      w.str(it->second.endpoint.shmName);
      w.u64(it->second.generation);
    }
    return w.take();
  });
  rpc_.registerMethod("registry.list", [this](const Bytes&) -> Bytes {
    std::vector<std::string> names;
    {
      std::lock_guard lock(mutex_);
      pruneExpiredLocked();
      names.reserve(entries_.size());
      for (const auto& [name, _] : entries_) names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(names.size()));
    for (const auto& name : names) w.str(name);
    return w.take();
  });
  rpc_.registerMethod("registry.withdraw", [this](const Bytes& args) -> Bytes {
    ByteReader r(args);
    std::string name = r.str();
    bool removed;
    {
      std::lock_guard lock(mutex_);
      pruneExpiredLocked();
      removed = entries_.erase(name) > 0;
    }
    ByteWriter w;
    w.boolean(removed);
    return w.take();
  });
  rpc_.registerMethod("registry.putMeta", [this](const Bytes& args) -> Bytes {
    ByteReader r(args);
    std::string name = r.str();
    const std::uint64_t version = r.u64();
    Bytes value = r.blob();
    mw::util::require(!name.empty(), "registry.putMeta: empty name");
    bool accepted;
    {
      std::lock_guard lock(mutex_);
      auto& slot = meta_[name];
      accepted = slot.version == 0 || version > slot.version;
      if (accepted) {
        slot.value = std::move(value);
        slot.version = version;
      }
    }
    ByteWriter w;
    w.boolean(accepted);
    return w.take();
  });
  rpc_.registerMethod("registry.getMeta", [this](const Bytes& args) -> Bytes {
    ByteReader r(args);
    std::string name = r.str();
    ByteWriter w;
    std::lock_guard lock(mutex_);
    auto it = meta_.find(name);
    w.boolean(it != meta_.end());
    if (it != meta_.end()) {
      w.u64(it->second.version);
      w.blob(it->second.value);
    }
    return w.take();
  });
  listener_ = std::make_unique<orb::TcpListener>(
      port, [this](std::shared_ptr<orb::Transport> t) { rpc_.serve(std::move(t)); });
}

void RegistryServer::pruneExpiredLocked() const {
  const auto now = std::chrono::steady_clock::now();
  std::erase_if(entries_, [&](const auto& kv) { return kv.second.expiresAt <= now; });
}

std::size_t RegistryServer::entryCount() const {
  std::lock_guard lock(mutex_);
  pruneExpiredLocked();
  return entries_.size();
}

RegistryClient::RegistryClient(const std::string& host, std::uint16_t port)
    : rpc_(std::make_shared<orb::RpcClient>(orb::tcpConnect(host, port))) {}

bool RegistryClient::announce(const std::string& name, const Endpoint& endpoint,
                              util::Duration ttl, std::uint64_t generation) {
  mw::util::require(ttl.count() >= 0, "RegistryClient::announce: negative TTL");
  ByteWriter w;
  w.str(name);
  w.str(endpoint.host);
  w.u16(endpoint.port);
  w.u32(static_cast<std::uint32_t>(ttl.count()));
  w.str(endpoint.shmName);  // appended after TTL; absence decodes as "no shm lane"
  w.u64(generation);        // appended last; absence decodes as unfenced
  Bytes reply = rpc_->call("registry.announce", w.take());
  ByteReader r(reply);
  if (r.exhausted()) return true;  // pre-fencing server: every announce lands
  return r.boolean();
}

std::optional<Endpoint> RegistryClient::lookup(const std::string& name) {
  auto resolved = lookupEntry(name);
  if (!resolved) return std::nullopt;
  return std::move(resolved->endpoint);
}

std::optional<RegistryClient::ResolvedEntry> RegistryClient::lookupEntry(
    const std::string& name) {
  ByteWriter w;
  w.str(name);
  Bytes reply = rpc_->call("registry.lookup", w.take());
  ByteReader r(reply);
  if (!r.boolean()) return std::nullopt;
  ResolvedEntry entry;
  entry.endpoint.host = r.str();
  entry.endpoint.port = r.u16();
  if (!r.exhausted()) entry.endpoint.shmName = r.str();  // absent in pre-shm replies
  if (!r.exhausted()) entry.generation = r.u64();        // absent pre-fencing
  return entry;
}

std::vector<std::string> RegistryClient::list() {
  Bytes reply = rpc_->call("registry.list", {});
  ByteReader r(reply);
  std::vector<std::string> names;
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) names.push_back(r.str());
  return names;
}

bool RegistryClient::withdraw(const std::string& name) {
  ByteWriter w;
  w.str(name);
  Bytes reply = rpc_->call("registry.withdraw", w.take());
  ByteReader r(reply);
  return r.boolean();
}

bool RegistryClient::putMeta(const std::string& name, const util::Bytes& value,
                             std::uint64_t version) {
  ByteWriter w;
  w.str(name);
  w.u64(version);
  w.blob(value);
  Bytes reply = rpc_->call("registry.putMeta", w.take());
  ByteReader r(reply);
  return r.boolean();
}

std::optional<RegistryClient::Meta> RegistryClient::getMeta(const std::string& name) {
  ByteWriter w;
  w.str(name);
  Bytes reply = rpc_->call("registry.getMeta", w.take());
  ByteReader r(reply);
  if (!r.boolean()) return std::nullopt;
  Meta meta;
  meta.version = r.u64();
  meta.value = r.blob();
  return meta;
}

}  // namespace mw::core
