#include "core/codec.hpp"

#include "util/error.hpp"

namespace mw::core {

void encodeRect(util::ByteWriter& w, const geo::Rect& r) {
  w.boolean(r.empty());
  if (r.empty()) return;
  w.f64(r.lo().x);
  w.f64(r.lo().y);
  w.f64(r.hi().x);
  w.f64(r.hi().y);
}

geo::Rect decodeRect(util::ByteReader& r) {
  if (r.boolean()) return geo::Rect{};
  double lx = r.f64(), ly = r.f64(), hx = r.f64(), hy = r.f64();
  return geo::Rect::fromCorners({lx, ly}, {hx, hy});
}

void encodeReading(util::ByteWriter& w, const db::SensorReading& reading) {
  w.str(reading.sensorId.str());
  w.str(reading.globPrefix);
  w.str(reading.sensorType);
  w.str(reading.mobileObjectId.str());
  w.f64(reading.location.x);
  w.f64(reading.location.y);
  w.f64(reading.detectionRadius);
  w.i64(reading.detectionTime.time_since_epoch().count());
  w.boolean(reading.symbolicRegion.has_value());
  if (reading.symbolicRegion) encodeRect(w, *reading.symbolicRegion);
}

db::SensorReading decodeReading(util::ByteReader& r) {
  db::SensorReading reading;
  reading.sensorId = util::SensorId{r.str()};
  reading.globPrefix = r.str();
  reading.sensorType = r.str();
  reading.mobileObjectId = util::MobileObjectId{r.str()};
  reading.location.x = r.f64();
  reading.location.y = r.f64();
  reading.detectionRadius = r.f64();
  reading.detectionTime = util::TimePoint{util::Duration{r.i64()}};
  if (r.boolean()) reading.symbolicRegion = decodeRect(r);
  return reading;
}

void encodeEstimate(util::ByteWriter& w, const fusion::LocationEstimate& est) {
  encodeRect(w, est.region);
  w.f64(est.probability);
  w.u8(static_cast<std::uint8_t>(est.cls));
  w.u32(static_cast<std::uint32_t>(est.supporting.size()));
  for (const auto& id : est.supporting) w.str(id.str());
  w.u32(static_cast<std::uint32_t>(est.discarded.size()));
  for (const auto& id : est.discarded) w.str(id.str());
}

fusion::LocationEstimate decodeEstimate(util::ByteReader& r) {
  fusion::LocationEstimate est;
  est.region = decodeRect(r);
  est.probability = r.f64();
  std::uint8_t cls = r.u8();
  if (cls > 3) throw util::ParseError("decodeEstimate: bad probability class");
  est.cls = static_cast<fusion::ProbabilityClass>(cls);
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
    est.supporting.emplace_back(r.str());
  }
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
    est.discarded.emplace_back(r.str());
  }
  return est;
}

}  // namespace mw::core
