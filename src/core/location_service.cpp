#include "core/location_service.hpp"

#include "reasoning/spatial_rules.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::core {

using mw::util::MobileObjectId;
using mw::util::require;
using mw::util::SubscriptionId;

LocationService::LocationService(const util::Clock& clock, db::SpatialDatabase& database)
    : clock_(clock), db_(database), engine_(database.universe()) {}

// --- ingestion --------------------------------------------------------------------

void LocationService::ingest(const db::SensorReading& reading) {
  db_.insertReading(reading);
  // The database-level trigger (registered in subscribe()) fires during
  // insertReading and marks the subscriptions to evaluate; we evaluate after
  // the reading is stored so fusion sees it.
  std::vector<std::pair<SubscriptionId, MobileObjectId>> toEvaluate;
  toEvaluate.swap(pendingEvaluations_);
  // Edge-triggered subscriptions must also observe EXITS: a reading that no
  // longer intersects the region never fires the DB trigger, so every
  // subscription currently tracking this object as inside is re-evaluated.
  for (const auto& [subId, state] : subs_) {
    auto insideIt = state.inside.find(reading.mobileObjectId);
    if (insideIt == state.inside.end() || !insideIt->second) continue;
    auto already = std::find(toEvaluate.begin(), toEvaluate.end(),
                             std::pair{subId, reading.mobileObjectId});
    if (already == toEvaluate.end()) toEvaluate.emplace_back(subId, reading.mobileObjectId);
  }
  for (const auto& [subId, object] : toEvaluate) {
    evaluateSubscription(subId, object);
  }
}

// --- fusion plumbing ----------------------------------------------------------------

fusion::FusionInputs LocationService::fusionInputsFor(const MobileObjectId& object) const {
  fusion::FusionInputs inputs;
  const util::TimePoint now = clock_.now();
  const double areaU = db_.universe().area();
  for (const auto& stored : db_.readingsFor(object)) {
    auto meta = db_.sensorMeta(stored.reading.sensorId);
    if (!meta) continue;
    geo::Rect rect = stored.reading.rect();
    auto clipped = db_.universe().intersection(rect);
    if (!clipped || clipped->area() <= 0) continue;
    util::Duration age = now - stored.reading.detectionTime;
    auto confidence = meta->confidenceFor(clipped->area(), areaU, age);
    if (!confidence) continue;  // expired or degraded to uselessness
    inputs.push_back(fusion::FusionInput{stored.reading.sensorId, *clipped, confidence->p,
                                         confidence->q, stored.moving});
  }
  return inputs;
}

// --- pull queries --------------------------------------------------------------------

std::optional<fusion::LocationEstimate> LocationService::locateObject(
    const MobileObjectId& object) const {
  return engine_.infer(fusionInputsFor(object));
}

// --- symbolic regions (§4.5) ----------------------------------------------------

void LocationService::ensureRegionsIndexed() const {
  if (regionsIndexed_) return;
  regions_ = RegionLattice{};
  // Enclosing spaces name locations (rooms/corridors/floors/buildings) plus
  // any row flagged as an application-defined region.
  for (const auto& row : db_.query([](const db::SpatialObjectRow& r) {
         switch (r.objectType) {
           case db::ObjectType::Room:
           case db::ObjectType::Corridor:
           case db::ObjectType::Floor:
           case db::ObjectType::Building:
             return true;
           default:
             return r.properties.contains("region");
         }
       })) {
    regions_.add(row.fullGlob(), db_.universeMbr(row), row.properties);
  }
  regionsIndexed_ = true;
}

void LocationService::reindexRegions() { regionsIndexed_ = false; }

const RegionLattice& LocationService::regionLattice() const {
  ensureRegionsIndexed();
  return regions_;
}

std::optional<geo::Rect> LocationService::smallestNamedRegionRectAt(geo::Point2 p) const {
  ensureRegionsIndexed();
  auto idx = regions_.smallestAt(p);
  if (!idx) return std::nullopt;
  return regions_.node(*idx).rect;
}

std::optional<glob::Glob> LocationService::locateSymbolic(const MobileObjectId& object) const {
  auto est = locateObject(object);
  if (!est) return std::nullopt;
  ensureRegionsIndexed();
  auto idx = regions_.smallestAt(est->region.center());
  if (!idx) return std::nullopt;
  glob::Glob symbolic = glob::Glob::parse(regions_.node(*idx).glob);
  auto privacyIt = privacy_.find(object);
  if (privacyIt != privacy_.end()) {
    symbolic = symbolic.truncated(privacyIt->second);
  }
  return symbolic;
}

std::vector<std::string> LocationService::symbolicChainFor(const MobileObjectId& object) const {
  std::vector<std::string> out;
  auto est = locateObject(object);
  if (!est) return out;
  ensureRegionsIndexed();
  for (std::size_t idx : regions_.chainAt(est->region.center())) {
    out.push_back(regions_.node(idx).glob);
  }
  return out;
}

std::optional<geo::Rect> LocationService::resolveRegion(const std::string& fullGlob) const {
  ensureRegionsIndexed();
  auto idx = regions_.find(fullGlob);
  if (!idx) return std::nullopt;
  return regions_.node(*idx).rect;
}

std::optional<glob::Glob> LocationService::symbolicAt(geo::Point2 universePoint) const {
  ensureRegionsIndexed();
  auto idx = regions_.smallestAt(universePoint);
  if (!idx) return std::nullopt;
  return glob::Glob::parse(regions_.node(*idx).glob);
}

// --- application regions and static objects (§4 tasks 4-5) -----------------------

void LocationService::defineRegion(const std::string& fullGlob, const geo::Rect& universeRect,
                                   std::unordered_map<std::string, std::string> properties) {
  require(!universeRect.empty() && universeRect.area() > 0,
          "LocationService::defineRegion: empty region");
  glob::Glob parsed = glob::Glob::parse(fullGlob);  // validates the name
  require(parsed.isSymbolic(), "LocationService::defineRegion: name must be symbolic");
  properties["region"] = "app";

  db::SpatialObjectRow row;
  row.id = util::SpatialObjectId{parsed.name()};
  row.globPrefix = parsed.prefix();
  row.objectType = db::ObjectType::Other;
  row.geometryType = db::GeometryType::Polygon;
  row.properties = std::move(properties);
  // defineRegion speaks universe coordinates; re-express them in the frame
  // the row's prefix resolves to (nearest registered ancestor).
  const std::string frame = db_.frameFor(row.globPrefix);
  geo::Rect r = universeRect;
  row.points = {r.lo(), {r.hi().x, r.lo().y}, r.hi(), {r.lo().x, r.hi().y}};
  if (frame != db_.frames().rootName()) {
    for (auto& p : row.points) {
      p = db_.frames().convert(db_.frames().rootName(), frame, p);
    }
  }
  db_.addObject(row);
  regionsIndexed_ = false;
}

void LocationService::addStaticObject(db::SpatialObjectRow row,
                                      std::optional<geo::Rect> usage) {
  util::SpatialObjectId id = row.id;
  db_.addObject(std::move(row));
  if (usage) setUsageRegion(id, *usage);
  regionsIndexed_ = false;
}

void LocationService::setUsageRegion(const util::SpatialObjectId& object,
                                     const geo::Rect& universeRect) {
  require(!universeRect.empty() && universeRect.area() > 0,
          "LocationService::setUsageRegion: empty region");
  usageRegions_[object] = universeRect;
}

std::optional<geo::Rect> LocationService::usageRegion(
    const util::SpatialObjectId& object) const {
  auto it = usageRegions_.find(object);
  if (it == usageRegions_.end()) return std::nullopt;
  return it->second;
}

double LocationService::usageProbability(const util::MobileObjectId& person,
                                         const util::SpatialObjectId& object) const {
  auto usage = usageRegion(object);
  if (!usage) return 0.0;
  auto est = locateObject(person);
  if (!est) return 0.0;
  return reasoning::usageProbability(*est, *usage);
}

double LocationService::probabilityInRegion(const MobileObjectId& object,
                                            const geo::Rect& region) const {
  return engine_.probabilityInRegion(region, fusionInputsFor(object));
}

std::vector<std::pair<MobileObjectId, double>> LocationService::objectsInRegion(
    const geo::Rect& region, double minProbability) const {
  std::vector<std::pair<MobileObjectId, double>> out;
  for (const auto& object : db_.knownMobileObjects()) {
    double p = probabilityInRegion(object, region);
    if (p >= minProbability) out.emplace_back(object, p);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::vector<fusion::RegionProbability> LocationService::distributionFor(
    const MobileObjectId& object) const {
  return engine_.distribution(fusionInputsFor(object));
}

std::vector<LocationService::TrajectoryPoint> LocationService::trajectory(
    const MobileObjectId& object, util::Duration window) const {
  std::vector<TrajectoryPoint> out;
  for (const auto& reading : db_.history(object, window)) {
    out.push_back(TrajectoryPoint{reading.detectionTime, reading.rect().center()});
  }
  return out;
}

// --- subscriptions -------------------------------------------------------------------

SubscriptionId LocationService::subscribe(Subscription subscription) {
  require(static_cast<bool>(subscription.callback), "LocationService::subscribe: null callback");
  require(!subscription.region.empty(), "LocationService::subscribe: empty region");
  SubscriptionId id = subIds_.next();

  // Geometric prefilter at the database layer (§5.3): the DB trigger fires
  // whenever a reading's rect touches the region; the probabilistic
  // condition is then evaluated against the fused estimate (§4.3).
  db::TriggerSpec trigger;
  trigger.region = subscription.region;
  trigger.subject = subscription.subject;
  trigger.callback = [this, id](const db::TriggerEvent& event) {
    pendingEvaluations_.emplace_back(id, event.reading.mobileObjectId);
  };
  util::TriggerId triggerId = db_.createTrigger(std::move(trigger));

  subs_.emplace(id, SubState{std::move(subscription), triggerId, {}});
  return id;
}

bool LocationService::unsubscribe(SubscriptionId id) {
  auto it = subs_.find(id);
  if (it == subs_.end()) return false;
  db_.dropTrigger(it->second.trigger);
  subs_.erase(it);
  return true;
}

void LocationService::evaluateSubscription(SubscriptionId id, const MobileObjectId& object) {
  auto it = subs_.find(id);
  if (it == subs_.end()) return;  // unsubscribed in the meantime
  SubState& state = it->second;

  fusion::FusionInputs inputs = fusionInputsFor(object);
  double probability = engine_.probabilityInRegion(state.spec.region, inputs);
  std::vector<double> ps;
  ps.reserve(inputs.size());
  for (const auto& in : inputs) ps.push_back(in.p);
  fusion::ProbabilityClass cls =
      fusion::classify(probability, fusion::computeThresholds(std::move(ps)));

  bool qualifies = probability >= state.spec.threshold;
  if (state.spec.minClass && cls < *state.spec.minClass) qualifies = false;

  bool& wasInside = state.inside[object];
  bool notify = qualifies && (!state.spec.onlyOnEntry || !wasInside);
  wasInside = qualifies;
  if (!notify) return;

  Notification n;
  n.id = id;
  n.object = object;
  n.region = state.spec.region;
  n.probability = probability;
  n.cls = cls;
  n.when = clock_.now();
  state.spec.callback(n);
}

// --- region-to-region relations (§4.6.1) ----------------------------------------------

namespace {
geo::Rect namedRegionRect(const RegionLattice& regions, const std::string& glob) {
  auto idx = regions.find(glob);
  if (!idx) throw mw::util::NotFoundError("LocationService: unknown region '" + glob + "'");
  return regions.node(*idx).rect;
}
}  // namespace

reasoning::Rcc8 LocationService::regionRelation(const std::string& globA,
                                                const std::string& globB) const {
  ensureRegionsIndexed();
  return reasoning::rcc8(namedRegionRect(regions_, globA), namedRegionRect(regions_, globB));
}

std::vector<reasoning::Passage> LocationService::doorPassages() const {
  std::vector<reasoning::Passage> passages;
  for (const auto& row : db_.query([](const db::SpatialObjectRow& r) {
         return r.objectType == db::ObjectType::Door &&
                r.geometryType == db::GeometryType::Line;
       })) {
    // Door endpoints into the universe frame.
    const std::string frame = db_.frameFor(row.globPrefix);
    geo::Segment seg = row.segment();
    seg.a = db_.frames().convert(frame, db_.frames().rootName(), seg.a);
    seg.b = db_.frames().convert(frame, db_.frames().rootName(), seg.b);
    auto kindIt = row.properties.find("passage");
    reasoning::PassageKind kind = (kindIt != row.properties.end() &&
                                   kindIt->second == "restricted")
                                      ? reasoning::PassageKind::Restricted
                                      : reasoning::PassageKind::Free;
    passages.push_back(reasoning::Passage{row.id.str(), seg, kind});
  }
  return passages;
}

reasoning::EcKind LocationService::passageRelation(const std::string& globA,
                                                   const std::string& globB) const {
  ensureRegionsIndexed();
  return reasoning::classifyEc(namedRegionRect(regions_, globA),
                               namedRegionRect(regions_, globB), doorPassages());
}

bool LocationService::regionsReachable(const std::string& globA, const std::string& globB,
                                       bool allowRestricted) const {
  ensureRegionsIndexed();
  // Assert EC-refinement facts over the leaf regions and saturate the
  // reachability rules — the paper's XSB Prolog layer.
  std::vector<reasoning::NamedRegion> named;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const auto& node = regions_.node(i);
    named.push_back({node.glob, node.rect});
  }
  reasoning::Datalog datalog;
  reasoning::assertSpatialFacts(datalog, named, doorPassages());
  reasoning::installReachabilityRules(datalog);
  const char* predicate = allowRestricted ? "accessible" : "reachable";
  if (globA == globB) return true;
  return datalog.holds({predicate,
                        {reasoning::Term::atom(globA), reasoning::Term::atom(globB)}});
}

// --- movement-pattern priors --------------------------------------------------------

void LocationService::setMovementPrior(std::shared_ptr<const fusion::SpatialPrior> prior) {
  engine_.setPrior(std::move(prior));
}

std::shared_ptr<fusion::RegionDwellPrior> LocationService::makeDwellPrior(
    double smoothingSeconds) const {
  std::vector<fusion::RegionDwellPrior::Cell> cells;
  for (const auto& row : db_.query([](const db::SpatialObjectRow& r) {
         return r.objectType == db::ObjectType::Room ||
                r.objectType == db::ObjectType::Corridor;
       })) {
    cells.push_back({row.fullGlob(), db_.universeMbr(row)});
  }
  return std::make_shared<fusion::RegionDwellPrior>(db_.universe(), std::move(cells),
                                                    smoothingSeconds);
}

// --- privacy ---------------------------------------------------------------------------

void LocationService::setPrivacyGranularity(const MobileObjectId& object, std::size_t maxDepth) {
  require(maxDepth >= 1, "LocationService::setPrivacyGranularity: depth must be >= 1");
  privacy_[object] = maxDepth;
}

std::optional<std::size_t> LocationService::privacyGranularity(
    const MobileObjectId& object) const {
  auto it = privacy_.find(object);
  if (it == privacy_.end()) return std::nullopt;
  return it->second;
}

// --- spatial relationships ----------------------------------------------------------------

double LocationService::proximity(const MobileObjectId& a, const MobileObjectId& b,
                                  double threshold) const {
  auto ea = locateObject(a);
  auto eb = locateObject(b);
  if (!ea || !eb) return 0.0;
  return reasoning::proximityProbability(*ea, *eb, threshold);
}

double LocationService::coLocation(const MobileObjectId& a, const MobileObjectId& b) const {
  auto ea = locateObject(a);
  auto eb = locateObject(b);
  if (!ea || !eb) return 0.0;
  auto region = smallestNamedRegionRectAt(ea->region.center());
  if (!region) return 0.0;
  return reasoning::coLocationProbability(*ea, *eb, *region);
}

double LocationService::coLocationAt(const MobileObjectId& a, const MobileObjectId& b,
                                     std::size_t granularity) const {
  auto ea = locateObject(a);
  auto eb = locateObject(b);
  if (!ea || !eb) return 0.0;
  ensureRegionsIndexed();
  auto idx = regions_.atGranularity(ea->region.center(), granularity);
  if (!idx) return 0.0;
  return reasoning::coLocationProbability(*ea, *eb, regions_.node(*idx).rect);
}

std::optional<reasoning::DistanceBounds> LocationService::distanceBetween(
    const MobileObjectId& a, const MobileObjectId& b) const {
  auto ea = locateObject(a);
  auto eb = locateObject(b);
  if (!ea || !eb) return std::nullopt;
  return reasoning::objectDistance(*ea, *eb);
}

std::optional<double> LocationService::pathDistanceBetween(const MobileObjectId& a,
                                                           const MobileObjectId& b) const {
  auto ea = locateObject(a);
  auto eb = locateObject(b);
  if (!ea || !eb) return std::nullopt;
  return reasoning::objectPathDistance(*ea, *eb, graph_);
}

std::optional<db::SpatialObjectRow> LocationService::nearestObjectOfType(
    const MobileObjectId& object, db::ObjectType type) const {
  auto est = locateObject(object);
  if (!est) return std::nullopt;
  return db_.nearest(est->region.center(),
                     [type](const db::SpatialObjectRow& row) { return row.objectType == type; });
}

}  // namespace mw::core
