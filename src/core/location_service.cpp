#include "core/location_service.hpp"

#include "reasoning/spatial_rules.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::core {

using mw::util::MobileObjectId;
using mw::util::require;
using mw::util::SubscriptionId;

namespace {
std::size_t defaultShards() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(1, std::min<std::size_t>(4, hw == 0 ? 1 : hw));
}
}  // namespace

LocationService::LocationService(const util::Clock& clock, db::SpatialDatabase& database)
    : clock_(clock), db_(database), engine_(database.universe()), shards_(defaultShards()) {}

// --- ingestion --------------------------------------------------------------------

void LocationService::ingest(const db::SensorReading& reading) {
  std::shared_lock gate(ingestGate_);
  if (auto tap = currentTap()) {
    const std::vector<db::SensorReading> kept = (*tap)(std::span(&reading, 1));
    for (const auto& r : kept) ingestOne(r);
    ingestedReadings_.fetch_add(kept.size(), std::memory_order_relaxed);
    return;
  }
  ingestOne(reading);
  ingestedReadings_.fetch_add(1, std::memory_order_relaxed);
}

void LocationService::setIngestTap(IngestTap tap) {
  auto next = tap ? std::make_shared<const IngestTap>(std::move(tap)) : nullptr;
  std::lock_guard lock(tapMutex_);
  tap_ = std::move(next);
}

std::shared_ptr<const LocationService::IngestTap> LocationService::currentTap() const {
  std::lock_guard lock(tapMutex_);
  return tap_;
}

void LocationService::ingestOne(const db::SensorReading& reading) {
  const db::SensorReading stored = db_.insertReading(reading);
  const MobileObjectId& object = stored.mobileObjectId;
  // The continuous-query network discriminates the update to the AFFECTED
  // subscriptions: alpha hits (region ∩ reading box, subject matches) plus
  // every rule currently tracking this object as inside (exit candidates —
  // a reading that no longer intersects a region must still drive that
  // region's falling edge). Cost is O(matched), never O(subscriptions).
  std::vector<cq::ProductionId> toEvaluate;
  struct DensityEval {
    cq::ProductionId id;
    geo::Rect region;
    double minProbability;
  };
  std::vector<DensityEval> densityEvals;
  bool anyPlain = false;
  {
    std::lock_guard lock(subsMutex_);
    subNet_.match(stored.rect(), object.str(), toEvaluate);
    for (cq::ProductionId subId : toEvaluate) {
      auto dit = densitySubs_.find(SubscriptionId{subId});
      if (dit != densitySubs_.end()) {
        densityEvals.push_back(
            DensityEval{subId, dit->second.spec.region, dit->second.spec.minProbability});
      } else {
        anyPlain = true;
      }
    }
  }
  if (toEvaluate.empty()) return;

  // One fusion serves every subscription this reading touched (the insert
  // bumped the epoch, so this recomputes exactly once).
  std::shared_ptr<const fusion::FusedState> fused;
  if (anyPlain) fused = fusedStateFor(object);
  // Density rules poll their region population (the L2 cache makes this
  // O(changed members)) with no service lock held — same lock discipline as
  // the fusion above; the network sync below reconciles under subsMutex_.
  std::vector<std::vector<std::string>> densityMembers;
  densityMembers.reserve(densityEvals.size());
  for (const DensityEval& d : densityEvals) {
    auto population = objectsInRegion(d.region, d.minProbability);
    std::vector<std::string> names;
    names.reserve(population.size());
    for (const auto& [member, probability] : population) names.push_back(member.str());
    densityMembers.push_back(std::move(names));
  }
  std::vector<PendingNotification> notifications;
  std::vector<PendingDensityNotification> densityNotifications;
  {
    std::lock_guard lock(subsMutex_);
    // match() returns sorted ids, so evaluation (and notification) order is
    // deterministic for a given reading.
    std::size_t di = 0;
    for (cq::ProductionId subId : toEvaluate) {
      if (di < densityEvals.size() && densityEvals[di].id == subId) {
        const cq::CountUpdate update = subNet_.syncInside(subId, densityMembers[di]);
        ++di;
        if (!update.changed && update.edge == cq::CountEdge::None) continue;
        auto dit = densitySubs_.find(SubscriptionId{subId});
        if (dit == densitySubs_.end()) continue;  // unsubscribed in the meantime
        DensityNotification n;
        n.id = SubscriptionId{subId};
        n.region = dit->second.spec.region;
        n.count = update.count;
        n.limit = dit->second.spec.limit;
        n.edge = update.edge;
        n.object = object;
        n.when = clock_.now();
        densityNotifications.push_back(
            PendingDensityNotification{dit->second.spec.callback, std::move(n)});
      } else {
        evaluateSubscriptionLocked(SubscriptionId{subId}, object, *fused, notifications);
      }
    }
  }
  // Callbacks run with no locks held, so they may (un)subscribe or query.
  for (auto& pending : notifications) pending.callback(pending.notification);
  for (auto& pending : densityNotifications) pending.callback(pending.notification);
}

void LocationService::ingestBatch(std::span<const db::SensorReading> readings) {
  if (readings.empty()) return;
  std::shared_lock gate(ingestGate_);
  ingestedBatches_.fetch_add(1, std::memory_order_relaxed);
  std::vector<db::SensorReading> kept;
  if (auto tap = currentTap()) {
    kept = (*tap)(readings);
    readings = kept;
    if (readings.empty()) return;  // the tap consumed the whole batch
  }
  ingestedReadings_.fetch_add(readings.size(), std::memory_order_relaxed);
  const std::size_t shardCount = std::min<std::size_t>(shards_, readings.size());
  if (shardCount <= 1) {
    for (const auto& reading : readings) ingestOne(reading);
    return;
  }
  // Shard by object so each object's readings keep their relative order —
  // the invariant that keeps `moving` flags and estimates identical to a
  // sequential replay. Each shard appends straight into the reading store's
  // stripes (per-object locks only), so shards never serialize on a
  // database-wide lock.
  std::vector<std::vector<const db::SensorReading*>> buckets(shardCount);
  for (const auto& reading : readings) {
    const std::size_t shard =
        std::hash<std::string>{}(reading.mobileObjectId.str()) % shardCount;
    buckets[shard].push_back(&reading);
  }

  // At most shardCount jobs — small batches under-fill the pool rather than
  // forcing it down to their size.
  std::vector<std::function<void()>> jobs;
  jobs.reserve(shardCount);
  for (auto& bucket : buckets) {
    if (bucket.empty()) continue;
    jobs.push_back([this, bucket = std::move(bucket)] {
      for (const db::SensorReading* reading : bucket) ingestOne(*reading);
    });
  }

  // The pool is keyed on shards_ alone: setIngestShards drops it on a width
  // change, so a live pool always has shards_ threads and batch size never
  // triggers a rebuild.
  std::unique_lock poolLock(poolMutex_);
  if (!pool_) {
    pool_ = std::make_unique<util::WorkerPool>(shards_);
    poolRecreations_.fetch_add(1, std::memory_order_relaxed);
  }
  util::WorkerPool& pool = *pool_;
  poolLock.unlock();
  pool.run(std::move(jobs));
}

void LocationService::importBatch(std::span<const db::SensorReading> readings) {
  if (readings.empty()) return;
  // Imports share the ingest gate (a pauseIngest() window excludes them like
  // any ingest) but bypass the tap and the subscription machinery: these
  // readings were already acked, tapped and trigger-evaluated by the shard
  // that first ingested them. Replaying them through the tap would let a
  // handoff session consume its own import; evaluating subscriptions would
  // duplicate notifications.
  std::shared_lock gate(ingestGate_);
  for (const auto& reading : readings) db_.importReading(reading);
  importedReadings_.fetch_add(readings.size(), std::memory_order_relaxed);
}

void LocationService::setIngestShards(std::size_t n) {
  require(n >= 1, "LocationService::setIngestShards: shard count must be >= 1");
  std::lock_guard lock(poolMutex_);
  if (n != shards_) pool_.reset();  // rebuilt at the new width on the next batch
  shards_ = n;
}

// --- fusion cache -------------------------------------------------------------------

std::shared_ptr<const fusion::FusedState> LocationService::fusedStateFor(
    const MobileObjectId& object) const {
  // Epoch FIRST, then readings: an insert racing between the two bumps the
  // epoch we key on, so the entry is conservatively treated as stale by the
  // next query — the cache can miss needlessly but never serves stale state.
  const std::uint64_t epoch = db_.readingsEpoch(object);
  const util::TimePoint now = clock_.now();
  const util::Duration tolerance = cacheToleranceNow();
  {
    std::shared_lock lock(cacheMutex_);
    auto it = fusionCache_.find(object);
    if (it != fusionCache_.end() && it->second->freshAt(epoch, now, tolerance)) {
      cacheHits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  cacheMisses_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<fusion::FusedState>(engine_.fuse(fusionInputsFor(object)));
  state->epoch = epoch;
  state->computedAt = now;
  {
    std::unique_lock lock(cacheMutex_);
    if (!fusionCache_.contains(object) && fusionCache_.size() >= cacheCapacity_) {
      fusionCache_.erase(fusionCache_.begin());  // arbitrary eviction at capacity
    }
    fusionCache_[object] = state;
  }
  return state;
}

void LocationService::setFusionCacheTolerance(util::Duration tolerance) {
  require(tolerance >= util::Duration::zero(),
          "LocationService::setFusionCacheTolerance: negative tolerance");
  cacheTolerance_.store(tolerance.count(), std::memory_order_relaxed);
}

void LocationService::setFusionCacheCapacity(std::size_t entries) {
  require(entries >= 1, "LocationService::setFusionCacheCapacity: capacity must be >= 1");
  std::unique_lock lock(cacheMutex_);
  cacheCapacity_ = entries;
  while (fusionCache_.size() > cacheCapacity_) fusionCache_.erase(fusionCache_.begin());
}

void LocationService::invalidateFusionCache() {
  {
    std::unique_lock lock(cacheMutex_);
    fusionCache_.clear();
  }
  // Region populations carry probabilities derived from the dropped states
  // (same engine configuration), so the L2 level flushes with the L1.
  invalidateRegionCache();
}

std::uint64_t LocationService::fusionCacheHits() const noexcept {
  return cacheHits_.load(std::memory_order_relaxed);
}

std::uint64_t LocationService::fusionCacheMisses() const noexcept {
  return cacheMisses_.load(std::memory_order_relaxed);
}

void LocationService::resetFusionCacheCounters() noexcept {
  cacheHits_.store(0, std::memory_order_relaxed);
  cacheMisses_.store(0, std::memory_order_relaxed);
}

// --- region population cache --------------------------------------------------------

std::size_t LocationService::RegionKeyHash::operator()(const RegionKey& k) const noexcept {
  auto mix = [](std::size_t seed, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return seed ^ (std::hash<std::uint64_t>{}(bits) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                   (seed >> 2));
  };
  std::size_t h = 0;
  h = mix(h, k.region.lo().x);
  h = mix(h, k.region.lo().y);
  h = mix(h, k.region.hi().x);
  h = mix(h, k.region.hi().y);
  return mix(h, k.minProbability);
}

void LocationService::setRegionCacheCapacity(std::size_t entries) {
  require(entries >= 1, "LocationService::setRegionCacheCapacity: capacity must be >= 1");
  std::unique_lock lock(regionCacheMutex_);
  regionCacheCapacity_ = entries;
  while (regionCache_.size() > regionCacheCapacity_) regionCache_.erase(regionCache_.begin());
}

void LocationService::invalidateRegionCache() {
  std::unique_lock lock(regionCacheMutex_);
  regionCache_.clear();
}

std::uint64_t LocationService::regionCacheHits() const noexcept {
  return regionCacheHits_.load(std::memory_order_relaxed);
}

std::uint64_t LocationService::regionCacheMisses() const noexcept {
  return regionCacheMisses_.load(std::memory_order_relaxed);
}

std::uint64_t LocationService::regionCacheRevalidations() const noexcept {
  return regionCacheRevalidations_.load(std::memory_order_relaxed);
}

void LocationService::resetRegionCacheCounters() noexcept {
  regionCacheHits_.store(0, std::memory_order_relaxed);
  regionCacheMisses_.store(0, std::memory_order_relaxed);
  regionCacheRevalidations_.store(0, std::memory_order_relaxed);
}

// --- fusion plumbing ----------------------------------------------------------------

fusion::FusionInputs LocationService::fusionInputsFor(const MobileObjectId& object) const {
  fusion::FusionInputs inputs;
  const util::TimePoint now = clock_.now();
  const double areaU = db_.universe().area();
  for (const auto& stored : db_.readingsFor(object)) {
    auto meta = db_.sensorMeta(stored.reading.sensorId);
    if (!meta) continue;
    geo::Rect rect = stored.reading.rect();
    auto clipped = db_.universe().intersection(rect);
    if (!clipped || clipped->area() <= 0) continue;
    util::Duration age = now - stored.reading.detectionTime;
    auto confidence = meta->confidenceFor(clipped->area(), areaU, age);
    if (!confidence) continue;  // expired or degraded to uselessness
    inputs.push_back(fusion::FusionInput{stored.reading.sensorId, *clipped, confidence->p,
                                         confidence->q, stored.moving});
  }
  return inputs;
}

// --- pull queries --------------------------------------------------------------------

std::optional<fusion::LocationEstimate> LocationService::locateObject(
    const MobileObjectId& object) const {
  return fusedStateFor(object)->estimate;
}

// --- symbolic regions (§4.5) ----------------------------------------------------

void LocationService::ensureRegionsIndexed() const {
  {
    std::shared_lock lock(regionsMutex_);
    if (regionsIndexed_) return;
  }
  std::unique_lock lock(regionsMutex_);
  if (regionsIndexed_) return;  // another thread rebuilt while we waited
  regions_.clear();
  // Enclosing spaces name locations (rooms/corridors/floors/buildings) plus
  // any row flagged as an application-defined region.
  for (const auto& row : db_.query([](const db::SpatialObjectRow& r) {
         switch (r.objectType) {
           case db::ObjectType::Room:
           case db::ObjectType::Corridor:
           case db::ObjectType::Floor:
           case db::ObjectType::Building:
             return true;
           default:
             return r.properties.contains("region");
         }
       })) {
    regions_.add(row.fullGlob(), db_.universeMbr(row), row.properties);
  }
  regionsIndexed_ = true;
}

void LocationService::reindexRegions() {
  {
    std::unique_lock lock(regionsMutex_);
    regionsIndexed_ = false;
  }
  // The reachability closure was derived from the old region set; drop it so
  // the next query rebuilds (and then resumes incremental maintenance).
  std::lock_guard lock(reachabilityMutex_);
  reachability_.reset();
}

const RegionLattice& LocationService::regionLattice() const {
  ensureRegionsIndexed();
  return regions_;
}

std::optional<geo::Rect> LocationService::smallestNamedRegionRectAt(geo::Point2 p) const {
  ensureRegionsIndexed();
  auto idx = regions_.smallestAt(p);
  if (!idx) return std::nullopt;
  return regions_.node(*idx).rect;
}

std::optional<glob::Glob> LocationService::locateSymbolic(const MobileObjectId& object) const {
  auto est = locateObject(object);
  if (!est) return std::nullopt;
  ensureRegionsIndexed();
  auto idx = regions_.smallestAt(est->region.center());
  if (!idx) return std::nullopt;
  glob::Glob symbolic = glob::Glob::parse(regions_.node(*idx).glob);
  auto privacyIt = privacy_.find(object);
  if (privacyIt != privacy_.end()) {
    symbolic = symbolic.truncated(privacyIt->second);
  }
  return symbolic;
}

std::vector<std::string> LocationService::symbolicChainFor(const MobileObjectId& object) const {
  std::vector<std::string> out;
  auto est = locateObject(object);
  if (!est) return out;
  ensureRegionsIndexed();
  for (std::size_t idx : regions_.chainAt(est->region.center())) {
    out.push_back(regions_.node(idx).glob);
  }
  return out;
}

std::optional<geo::Rect> LocationService::resolveRegion(const std::string& fullGlob) const {
  ensureRegionsIndexed();
  auto idx = regions_.find(fullGlob);
  if (!idx) return std::nullopt;
  return regions_.node(*idx).rect;
}

std::optional<glob::Glob> LocationService::symbolicAt(geo::Point2 universePoint) const {
  ensureRegionsIndexed();
  auto idx = regions_.smallestAt(universePoint);
  if (!idx) return std::nullopt;
  return glob::Glob::parse(regions_.node(*idx).glob);
}

// --- application regions and static objects (§4 tasks 4-5) -----------------------

void LocationService::defineRegion(const std::string& fullGlob, const geo::Rect& universeRect,
                                   std::unordered_map<std::string, std::string> properties) {
  require(!universeRect.empty() && universeRect.area() > 0,
          "LocationService::defineRegion: empty region");
  glob::Glob parsed = glob::Glob::parse(fullGlob);  // validates the name
  require(parsed.isSymbolic(), "LocationService::defineRegion: name must be symbolic");
  properties["region"] = "app";

  db::SpatialObjectRow row;
  row.id = util::SpatialObjectId{parsed.name()};
  row.globPrefix = parsed.prefix();
  row.objectType = db::ObjectType::Other;
  row.geometryType = db::GeometryType::Polygon;
  row.properties = std::move(properties);
  // defineRegion speaks universe coordinates; re-express them in the frame
  // the row's prefix resolves to (nearest registered ancestor).
  const std::string frame = db_.frameFor(row.globPrefix);
  geo::Rect r = universeRect;
  row.points = {r.lo(), {r.hi().x, r.lo().y}, r.hi(), {r.lo().x, r.hi().y}};
  if (frame != db_.frames().rootName()) {
    for (auto& p : row.points) {
      p = db_.frames().convert(db_.frames().rootName(), frame, p);
    }
  }
  db_.addObject(row);
  reindexRegions();
}

void LocationService::addStaticObject(db::SpatialObjectRow row,
                                      std::optional<geo::Rect> usage) {
  util::SpatialObjectId id = row.id;
  db_.addObject(std::move(row));
  if (usage) setUsageRegion(id, *usage);
  reindexRegions();
}

void LocationService::setUsageRegion(const util::SpatialObjectId& object,
                                     const geo::Rect& universeRect) {
  require(!universeRect.empty() && universeRect.area() > 0,
          "LocationService::setUsageRegion: empty region");
  usageRegions_[object] = universeRect;
}

std::optional<geo::Rect> LocationService::usageRegion(
    const util::SpatialObjectId& object) const {
  auto it = usageRegions_.find(object);
  if (it == usageRegions_.end()) return std::nullopt;
  return it->second;
}

double LocationService::usageProbability(const util::MobileObjectId& person,
                                         const util::SpatialObjectId& object) const {
  auto usage = usageRegion(object);
  if (!usage) return 0.0;
  auto est = locateObject(person);
  if (!est) return 0.0;
  return reasoning::usageProbability(*est, *usage);
}

double LocationService::probabilityInRegion(const MobileObjectId& object,
                                            const geo::Rect& region) const {
  regionQueries_.fetch_add(1, std::memory_order_relaxed);
  return engine_.probabilityInRegion(region, *fusedStateFor(object));
}

std::vector<std::pair<MobileObjectId, double>> LocationService::objectsInRegion(
    const geo::Rect& region, double minProbability) const {
  regionQueries_.fetch_add(1, std::memory_order_relaxed);
  const RegionKey key{region, minProbability};
  // Catalog FIRST, then discovery and member epochs: a structural change
  // racing the poll bumps the value we store, so the next poll rebuilds —
  // the same conservative discipline as the per-object cache.
  const std::uint64_t catalog = db_.catalogEpoch();
  const util::TimePoint now = clock_.now();
  const util::Duration tolerance = cacheToleranceNow();

  RegionCacheEntry entry;
  bool cached = false;
  {
    std::shared_lock lock(regionCacheMutex_);
    auto it = regionCache_.find(key);
    if (it != regionCache_.end() && it->second.catalog == catalog) {
      entry = it->second;  // copied: revalidation runs outside the lock
      cached = true;
    }
  }

  // Candidate discovery: one R-tree pass over the per-object evidence boxes.
  std::vector<MobileObjectId> candidates = db_.mobileObjectsIntersecting(region);

  // Revalidate the population: fresh members are reused outright; stale or
  // new members re-fuse through the per-object cache, so a poll following an
  // ingest that already fused the moved object shares that fusion pass.
  std::unordered_map<MobileObjectId, RegionMember> members;
  members.reserve(candidates.size());
  std::uint64_t refused = 0;
  for (auto& object : candidates) {
    if (cached) {
      auto it = entry.members.find(object);
      if (it != entry.members.end() &&
          it->second.state->freshAt(db_.readingsEpoch(object), now, tolerance)) {
        members.emplace(std::move(object), std::move(it->second));
        continue;
      }
    }
    RegionMember member;
    member.state = fusedStateFor(object);
    member.probability = engine_.probabilityInRegion(region, *member.state);
    ++refused;
    members.emplace(std::move(object), std::move(member));
  }

  const bool changed = !cached || refused > 0 || members.size() != entry.members.size();
  if (changed) {
    entry.result.clear();
    for (const auto& [object, member] : members) {
      if (member.probability >= minProbability) {
        entry.result.emplace_back(object, member.probability);
      }
    }
    // Descending probability; ties broken by id so the answer is stable
    // across the unordered member map's iteration order.
    std::sort(entry.result.begin(), entry.result.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
  }
  entry.catalog = catalog;
  entry.members = std::move(members);

  if (cached) {
    regionCacheHits_.fetch_add(1, std::memory_order_relaxed);
    regionCacheRevalidations_.fetch_add(refused, std::memory_order_relaxed);
  } else {
    regionCacheMisses_.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<std::pair<MobileObjectId, double>> out = entry.result;
  {
    std::unique_lock lock(regionCacheMutex_);
    if (!regionCache_.contains(key) && regionCache_.size() >= regionCacheCapacity_) {
      regionCache_.erase(regionCache_.begin());  // arbitrary eviction at capacity
    }
    regionCache_[key] = std::move(entry);
  }
  return out;
}

std::vector<std::pair<MobileObjectId, double>> LocationService::objectsInRegion(
    const std::string& regionGlob, double minProbability) const {
  auto rect = resolveRegion(regionGlob);
  if (!rect) {
    throw mw::util::NotFoundError("LocationService::objectsInRegion: unknown region '" +
                                  regionGlob + "'");
  }
  return objectsInRegion(*rect, minProbability);
}

std::vector<fusion::RegionProbability> LocationService::distributionFor(
    const MobileObjectId& object) const {
  return engine_.distribution(*fusedStateFor(object));
}

std::vector<LocationService::TrajectoryPoint> LocationService::trajectory(
    const MobileObjectId& object, util::Duration window) const {
  std::vector<TrajectoryPoint> out;
  for (const auto& reading : db_.history(object, window)) {
    out.push_back(TrajectoryPoint{reading.detectionTime, reading.rect().center()});
  }
  return out;
}

// --- subscriptions -------------------------------------------------------------------

SubscriptionId LocationService::subscribe(Subscription subscription) {
  require(static_cast<bool>(subscription.callback), "LocationService::subscribe: null callback");
  require(!subscription.region.empty(), "LocationService::subscribe: empty region");
  // Geometric prefilter (§5.3) as a standing rule in the continuous-query
  // network: the alpha layer shares one node per distinct region rect, so
  // ten thousand subscriptions on the same room cost one R-tree entry; the
  // probabilistic condition is evaluated against the fused estimate (§4.3)
  // only for the rules an update actually affects.
  std::optional<std::string> subject;
  if (subscription.subject) subject = subscription.subject->str();
  std::lock_guard lock(subsMutex_);
  const SubscriptionId id = subIds_.next();
  subNet_.installProduction(id.value(), subscription.region, subject);
  subs_.emplace(id, SubState{std::move(subscription)});
  return id;
}

LocationService::DensityHandle LocationService::subscribeDensity(
    DensitySubscription subscription) {
  require(static_cast<bool>(subscription.callback),
          "LocationService::subscribeDensity: null callback");
  require(!subscription.region.empty(), "LocationService::subscribeDensity: empty region");
  // Seed the rule's beta memory from the current population so the first
  // notification reports a change, not the whole standing crowd. Polled
  // before the production exists — an update racing the install is caught by
  // the next reading that touches the region (level-triggered semantics, the
  // same convergence TTL expiry relies on).
  const auto population = objectsInRegion(subscription.region, subscription.minProbability);
  std::vector<std::string> members;
  members.reserve(population.size());
  for (const auto& [member, probability] : population) members.push_back(member.str());

  std::lock_guard lock(subsMutex_);
  const SubscriptionId id = subIds_.next();
  subNet_.installProduction(id.value(), subscription.region, std::nullopt);
  subNet_.makeCounting(id.value(), subscription.limit);
  const cq::CountUpdate seeded = subNet_.syncInside(id.value(), members);
  densitySubs_.emplace(id, DensitySubState{std::move(subscription)});
  return DensityHandle{id, seeded.count};
}

bool LocationService::unsubscribe(SubscriptionId id) {
  std::lock_guard lock(subsMutex_);
  auto it = subs_.find(id);
  if (it != subs_.end()) {
    subNet_.removeProduction(id.value());
    subs_.erase(it);
    return true;
  }
  auto dit = densitySubs_.find(id);
  if (dit != densitySubs_.end()) {
    subNet_.removeProduction(id.value());
    densitySubs_.erase(dit);
    return true;
  }
  return false;
}

std::size_t LocationService::subscriptionCount() const {
  std::lock_guard lock(subsMutex_);
  return subs_.size() + densitySubs_.size();
}

LocationService::StandingRuleStats LocationService::standingRuleStats() const {
  std::lock_guard lock(subsMutex_);
  return StandingRuleStats{subNet_.productionCount(), subNet_.alphaNodeCount(),
                           subNet_.insideCount()};
}

void LocationService::evaluateSubscriptionLocked(SubscriptionId id, const MobileObjectId& object,
                                                 const fusion::FusedState& fused,
                                                 std::vector<PendingNotification>& out) {
  auto it = subs_.find(id);
  if (it == subs_.end()) return;  // unsubscribed in the meantime
  SubState& state = it->second;

  double probability = engine_.probabilityInRegion(state.spec.region, fused);
  // Classification thresholds are computed over the pre-conflict inputs, as
  // the original per-subscription evaluation did.
  std::vector<double> ps;
  ps.reserve(fused.inputs.size());
  for (const auto& in : fused.inputs) ps.push_back(in.p);
  fusion::ProbabilityClass cls =
      fusion::classify(probability, fusion::computeThresholds(std::move(ps)));

  bool qualifies = probability >= state.spec.threshold;
  if (state.spec.minClass && cls < *state.spec.minClass) qualifies = false;

  // Edge memory lives in the network's beta layer: inside pairs are also
  // reverse-indexed by object, which is what lets the next update for this
  // object find its exit candidates without scanning the table.
  const bool wasInside = subNet_.isInside(id.value(), object.str());
  const bool notify = qualifies && (!state.spec.onlyOnEntry || !wasInside);
  if (qualifies != wasInside) subNet_.setInside(id.value(), object.str(), qualifies);
  if (!notify) return;

  Notification n;
  n.id = id;
  n.object = object;
  n.region = state.spec.region;
  n.probability = probability;
  n.cls = cls;
  n.when = clock_.now();
  out.push_back(PendingNotification{state.spec.callback, std::move(n)});
}

// --- region-to-region relations (§4.6.1) ----------------------------------------------

namespace {
geo::Rect namedRegionRect(const RegionLattice& regions, const std::string& glob) {
  auto idx = regions.find(glob);
  if (!idx) throw mw::util::NotFoundError("LocationService: unknown region '" + glob + "'");
  return regions.node(*idx).rect;
}
}  // namespace

reasoning::Rcc8 LocationService::regionRelation(const std::string& globA,
                                                const std::string& globB) const {
  ensureRegionsIndexed();
  return reasoning::rcc8(namedRegionRect(regions_, globA), namedRegionRect(regions_, globB));
}

std::vector<reasoning::Passage> LocationService::doorPassages() const {
  std::vector<reasoning::Passage> passages;
  for (const auto& row : db_.query([](const db::SpatialObjectRow& r) {
         return r.objectType == db::ObjectType::Door &&
                r.geometryType == db::GeometryType::Line;
       })) {
    // Door endpoints into the universe frame.
    const std::string frame = db_.frameFor(row.globPrefix);
    geo::Segment seg = row.segment();
    seg.a = db_.frames().convert(frame, db_.frames().rootName(), seg.a);
    seg.b = db_.frames().convert(frame, db_.frames().rootName(), seg.b);
    auto kindIt = row.properties.find("passage");
    reasoning::PassageKind kind = (kindIt != row.properties.end() &&
                                   kindIt->second == "restricted")
                                      ? reasoning::PassageKind::Restricted
                                      : reasoning::PassageKind::Free;
    passages.push_back(reasoning::Passage{row.id.str(), seg, kind});
  }
  return passages;
}

reasoning::EcKind LocationService::passageRelation(const std::string& globA,
                                                   const std::string& globB) const {
  ensureRegionsIndexed();
  return reasoning::classifyEc(namedRegionRect(regions_, globA),
                               namedRegionRect(regions_, globB), doorPassages());
}

reasoning::Datalog& LocationService::reachabilityEngineLocked() const {
  if (!reachability_) {
    // Assert EC-refinement facts over the named regions and install the
    // reachability rules — the paper's XSB Prolog layer, now a PERSISTENT
    // engine: the first query saturates the closure, later ones are hash
    // lookups, and fact/rule changes are maintained incrementally
    // (semi-naive inserts, DRed retractions) instead of from scratch.
    std::vector<reasoning::NamedRegion> named;
    for (std::size_t i = 0; i < regions_.size(); ++i) {
      const auto& node = regions_.node(i);
      named.push_back({node.glob, node.rect});
    }
    reachability_ = std::make_unique<reasoning::Datalog>();
    reasoning::assertSpatialFacts(*reachability_, named, doorPassages());
    reasoning::installReachabilityRules(*reachability_);
  }
  return *reachability_;
}

bool LocationService::regionsReachable(const std::string& globA, const std::string& globB,
                                       bool allowRestricted) const {
  ensureRegionsIndexed();
  if (globA == globB) return true;
  const char* predicate = allowRestricted ? "accessible" : "reachable";
  std::lock_guard lock(reachabilityMutex_);
  return reachabilityEngineLocked().holds(
      {predicate, {reasoning::Term::atom(globA), reasoning::Term::atom(globB)}});
}

// --- movement-pattern priors --------------------------------------------------------

void LocationService::setMovementPrior(std::shared_ptr<const fusion::SpatialPrior> prior) {
  engine_.setPrior(std::move(prior));
  invalidateFusionCache();  // cached states were fused under the old prior
}

std::shared_ptr<fusion::RegionDwellPrior> LocationService::makeDwellPrior(
    double smoothingSeconds) const {
  std::vector<fusion::RegionDwellPrior::Cell> cells;
  for (const auto& row : db_.query([](const db::SpatialObjectRow& r) {
         return r.objectType == db::ObjectType::Room ||
                r.objectType == db::ObjectType::Corridor;
       })) {
    cells.push_back({row.fullGlob(), db_.universeMbr(row)});
  }
  return std::make_shared<fusion::RegionDwellPrior>(db_.universe(), std::move(cells),
                                                    smoothingSeconds);
}

// --- privacy ---------------------------------------------------------------------------

void LocationService::setPrivacyGranularity(const MobileObjectId& object, std::size_t maxDepth) {
  require(maxDepth >= 1, "LocationService::setPrivacyGranularity: depth must be >= 1");
  privacy_[object] = maxDepth;
}

std::optional<std::size_t> LocationService::privacyGranularity(
    const MobileObjectId& object) const {
  auto it = privacy_.find(object);
  if (it == privacy_.end()) return std::nullopt;
  return it->second;
}

// --- spatial relationships ----------------------------------------------------------------

double LocationService::proximity(const MobileObjectId& a, const MobileObjectId& b,
                                  double threshold) const {
  auto ea = locateObject(a);
  auto eb = locateObject(b);
  if (!ea || !eb) return 0.0;
  return reasoning::proximityProbability(*ea, *eb, threshold);
}

double LocationService::coLocation(const MobileObjectId& a, const MobileObjectId& b) const {
  auto ea = locateObject(a);
  auto eb = locateObject(b);
  if (!ea || !eb) return 0.0;
  auto region = smallestNamedRegionRectAt(ea->region.center());
  if (!region) return 0.0;
  return reasoning::coLocationProbability(*ea, *eb, *region);
}

double LocationService::coLocationAt(const MobileObjectId& a, const MobileObjectId& b,
                                     std::size_t granularity) const {
  auto ea = locateObject(a);
  auto eb = locateObject(b);
  if (!ea || !eb) return 0.0;
  ensureRegionsIndexed();
  auto idx = regions_.atGranularity(ea->region.center(), granularity);
  if (!idx) return 0.0;
  return reasoning::coLocationProbability(*ea, *eb, regions_.node(*idx).rect);
}

std::optional<reasoning::DistanceBounds> LocationService::distanceBetween(
    const MobileObjectId& a, const MobileObjectId& b) const {
  auto ea = locateObject(a);
  auto eb = locateObject(b);
  if (!ea || !eb) return std::nullopt;
  return reasoning::objectDistance(*ea, *eb);
}

std::optional<double> LocationService::pathDistanceBetween(const MobileObjectId& a,
                                                           const MobileObjectId& b) const {
  auto ea = locateObject(a);
  auto eb = locateObject(b);
  if (!ea || !eb) return std::nullopt;
  return reasoning::objectPathDistance(*ea, *eb, graph_);
}

std::optional<db::SpatialObjectRow> LocationService::nearestObjectOfType(
    const MobileObjectId& object, db::ObjectType type) const {
  auto est = locateObject(object);
  if (!est) return std::nullopt;
  return db_.nearest(est->region.center(),
                     [type](const db::SpatialObjectRow& row) { return row.objectType == type; });
}

}  // namespace mw::core
