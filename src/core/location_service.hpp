// The Location Service (§4) — "the source of location information for all
// location-sensitive applications".
//
// Responsibilities (§4): (1) fuse data from multiple sensors and resolve
// conflicts, (2) answer object-based and region-based queries, (3) accept
// subscriptions for location-based conditions and notify applications when
// they become true, (4) support creating spatial regions with properties,
// (5) support static objects, (6) deduce higher-level spatial relationships.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/region_lattice.hpp"
#include "cq/trigger_network.hpp"
#include "fusion/engine.hpp"
#include "glob/glob.hpp"
#include "reasoning/connectivity.hpp"
#include "reasoning/datalog.hpp"
#include "reasoning/rcc8.hpp"
#include "reasoning/relations.hpp"
#include "spatialdb/database.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"
#include "util/worker_pool.hpp"

namespace mw::core {

/// Notification delivered when a subscription's condition becomes true.
struct Notification {
  util::SubscriptionId id;
  util::MobileObjectId object;
  geo::Rect region;        ///< the subscribed region (universe frame)
  double probability = 0;  ///< fused P(object in region)
  fusion::ProbabilityClass cls = fusion::ProbabilityClass::Low;
  util::TimePoint when;
};

/// A region-based condition (§4.3): notify when `object` (or anyone, when
/// unset) is inside `region` with probability above `threshold` — or, per
/// §4.4, at or above a probability class.
struct Subscription {
  geo::Rect region;  ///< universe frame
  std::optional<util::MobileObjectId> subject;
  double threshold = 0.0;
  std::optional<fusion::ProbabilityClass> minClass;
  /// When true, notify only on the rising edge (region entry) instead of on
  /// every qualifying update.
  bool onlyOnEntry = false;
  std::function<void(const Notification&)> callback;
};

/// Notification delivered when a density subscription's region population
/// changes. `edge` flags crossings of the configured limit: Rose is the
/// overcrowding alarm, Fell the all-clear.
struct DensityNotification {
  util::SubscriptionId id;
  geo::Rect region;  ///< the subscribed region (universe frame)
  std::size_t count = 0;
  std::size_t limit = 0;
  cq::CountEdge edge = cq::CountEdge::None;
  /// The object whose update re-evaluated the rule — what a crowd monitor
  /// timestamps to measure ingest-to-alarm latency.
  util::MobileObjectId object;
  util::TimePoint when;
};

/// An aggregate standing rule (crowd monitoring): maintain the population
/// count of `region` — objects with fused P(inside) >= minProbability, as
/// served by the region population cache — and notify on every count change.
struct DensitySubscription {
  geo::Rect region;  ///< universe frame
  double minProbability = 0.5;
  std::size_t limit = 1;  ///< alarm threshold: edge fires when count crosses it
  std::function<void(const DensityNotification&)> callback;
};

/// Thread-safety: ingest/ingestBatch and all pull queries may run
/// concurrently (reader/writer locks on the database, the fusion cache and
/// the subscription table). Setup-phase mutators — defineRegion,
/// addStaticObject, setMovementPrior, setPrivacyGranularity, connectivity(),
/// reindexRegions — must not race with queries; configure before going
/// concurrent. Subscription callbacks are invoked with no service lock held,
/// so they may call back into the service.
class LocationService {
 public:
  /// The service reads/writes the shared spatial database and fuses with the
  /// universe the database models.
  LocationService(const util::Clock& clock, db::SpatialDatabase& database);

  [[nodiscard]] db::SpatialDatabase& database() noexcept { return db_; }
  [[nodiscard]] const fusion::FusionEngine& engine() const noexcept { return engine_; }

  // --- ingestion -------------------------------------------------------------

  /// Adapters push readings here; the service stores them in the database
  /// and evaluates subscriptions whose region the reading touches.
  void ingest(const db::SensorReading& reading);

  /// Batch ingest, fanned across a fixed worker pool. Readings are
  /// partitioned into shards by hash(MobileObjectId) so every object's
  /// readings land on one shard in their original relative order — the
  /// invariant that makes the result (estimates, notification set, `moving`
  /// flags) identical to sequential ingest, up to cross-object notification
  /// order. With one shard (or one reading) this degrades to the sequential
  /// path.
  void ingestBatch(std::span<const db::SensorReading> readings);

  /// Replay path for handoff/replication imports: stores the readings
  /// (universe conversion, evidence boxes, epochs) but bypasses the ingest
  /// tap AND the subscription/trigger machinery — an imported reading
  /// already fired its notifications on the shard that first ingested it.
  /// Shares the ingest gate, so a pauseIngest() window excludes imports too.
  void importBatch(std::span<const db::SensorReading> readings);

  /// Pre-apply interceptor for every ingest()/ingestBatch() call: the tap
  /// sees the readings BEFORE they touch the database and returns the subset
  /// to apply locally (readings it dropped were consumed — mirrored to a
  /// replica, redirected to another shard, buffered for a handoff). Because
  /// it runs inside the ingest call, whatever the tap does is finished
  /// before the caller's ack — this is what makes replication synchronous.
  /// nullptr removes it. Safe to swap while ingest is in flight: calls
  /// already past the tap complete under the old behavior.
  using IngestTap =
      std::function<std::vector<db::SensorReading>(std::span<const db::SensorReading>)>;
  void setIngestTap(IngestTap tap);

  /// Exclusive ingest window: blocks new ingest()/ingestBatch() calls and
  /// waits out the ones already applying before returning. Replication's
  /// initial sync and handoff arc capture run inside it — with the guard
  /// held, the database holds exactly the readings of completed (acked)
  /// calls, so an export is a consistent cut: nothing half-applied, and
  /// every later reading flows through whatever tap the holder installs.
  /// Keep it brief; ingest acks stall for the duration. Caution: a
  /// subscription callback that re-enters ingest on an ingest thread would
  /// deadlock against a waiting pause.
  [[nodiscard]] std::unique_lock<std::shared_mutex> pauseIngest() {
    return std::unique_lock(ingestGate_);
  }

  /// Shard/worker count used by ingestBatch (default: min(4, hardware
  /// concurrency)). Takes effect on the next batch; do not call while a
  /// batch is in flight.
  void setIngestShards(std::size_t n);
  [[nodiscard]] std::size_t ingestShards() const noexcept { return shards_; }

  /// Times the worker pool was (re)built — exactly once per configured
  /// width, never per batch: the pool is keyed on ingestShards() alone, so
  /// small batches (which submit fewer jobs than the pool has threads) reuse
  /// it untouched.
  [[nodiscard]] std::uint64_t ingestPoolRecreations() const noexcept {
    return poolRecreations_.load(std::memory_order_relaxed);
  }

  /// Reading-store contention stats, surfaced here next to the cache
  /// counters so ops dashboards read one object. Inserts that found their
  /// object's writer lock held (two shards cannot collide on an object —
  /// sharding is by object — so nonzero values mean concurrent ingest*()
  /// callers raced on one object).
  [[nodiscard]] std::uint64_t ingestWriterContentions() const noexcept {
    return db_.readingWriterContentions();
  }
  /// Epoch reads that raced a lazy TTL expiry and re-read the snapshot.
  [[nodiscard]] std::uint64_t ingestSnapshotRetries() const noexcept {
    return db_.readingSnapshotRetries();
  }

  /// Readings accepted through ingest() and ingestBatch() combined — the
  /// drain marker remote benches and batching clients poll to know when
  /// oneway traffic has actually been processed.
  [[nodiscard]] std::uint64_t ingestedReadings() const noexcept {
    return ingestedReadings_.load(std::memory_order_relaxed);
  }
  /// ingestBatch() calls accepted (wire batches land here one call each).
  [[nodiscard]] std::uint64_t ingestedBatches() const noexcept {
    return ingestedBatches_.load(std::memory_order_relaxed);
  }
  /// Readings stored through importBatch() (handoff/replication replays;
  /// not part of ingestedReadings — imports are not new observations).
  [[nodiscard]] std::uint64_t importedReadings() const noexcept {
    return importedReadings_.load(std::memory_order_relaxed);
  }
  /// Region-based pull queries served (probabilityInRegion + objectsInRegion)
  /// — the queries/s side of a shard's territory-load report.
  [[nodiscard]] std::uint64_t regionQueries() const noexcept {
    return regionQueries_.load(std::memory_order_relaxed);
  }

  // --- fusion cache ------------------------------------------------------------

  /// Repeated queries and subscription evaluations for an object reuse one
  /// fused state (inputs + lattice + estimate) until the object's readings
  /// epoch moves (new reading, expiry, sensor re-registration) or `now`
  /// drifts past the staleness tolerance (default 0: a cached entry is only
  /// reused at the exact instant it was computed — always exact, and still
  /// effective because queries between ingests share the same clock tick).
  void setFusionCacheTolerance(util::Duration tolerance);
  /// Bounds the number of cached per-object states (default 4096); the
  /// cheapest entries to lose are evicted arbitrarily beyond it.
  void setFusionCacheCapacity(std::size_t entries);
  /// Drops both cache levels (per-object states and region populations):
  /// everything cached was computed under the current engine configuration,
  /// so a prior change must flush both.
  void invalidateFusionCache();
  [[nodiscard]] std::uint64_t fusionCacheHits() const noexcept;
  [[nodiscard]] std::uint64_t fusionCacheMisses() const noexcept;
  void resetFusionCacheCounters() noexcept;

  // --- region population cache -------------------------------------------------

  /// The second cache level: objectsInRegion memoizes, per (region, query
  /// params) key, the population it answered with — a vector of (object,
  /// epoch, tick, probability) members. A later poll revalidates members
  /// against their current readings epochs and re-fuses ONLY the stale ones
  /// (through the per-object cache above), so repolling an N-person region
  /// costs O(changed objects) fusions instead of O(N). Candidate discovery
  /// runs once per poll as a single R-tree pass over the database's
  /// per-object evidence boxes; a catalogEpoch move (spatial-object
  /// insert/delete, sensor (de)registration, population change) forces a
  /// full rebuild. Staleness tolerance is shared with the fusion cache
  /// (setFusionCacheTolerance).
  /// Bounds the number of cached region populations (default 256).
  void setRegionCacheCapacity(std::size_t entries);
  void invalidateRegionCache();
  /// A poll answered from a cached population (possibly after re-fusing some
  /// stale members).
  [[nodiscard]] std::uint64_t regionCacheHits() const noexcept;
  /// A poll that rebuilt its population from scratch (first poll for the
  /// key, capacity eviction, or catalog epoch move).
  [[nodiscard]] std::uint64_t regionCacheMisses() const noexcept;
  /// Members re-fused during cache hits — the partial-revalidation count;
  /// hits with 0 revalidations reused every member unchanged.
  [[nodiscard]] std::uint64_t regionCacheRevalidations() const noexcept;
  void resetRegionCacheCounters() noexcept;

  // --- pull queries (§4.2) -----------------------------------------------------

  /// "Where is person X?" — fused single-value location estimate.
  [[nodiscard]] std::optional<fusion::LocationEstimate> locateObject(
      const util::MobileObjectId& object) const;

  /// The same, as a symbolic GLOB (§4.5): the most specific named region
  /// containing the estimate, truncated to the object's privacy granularity.
  [[nodiscard]] std::optional<glob::Glob> locateSymbolic(
      const util::MobileObjectId& object) const;

  /// Region-based query: P(object in region).
  [[nodiscard]] double probabilityInRegion(const util::MobileObjectId& object,
                                           const geo::Rect& region) const;

  /// "Who are the people in room 3105?" — every mobile object with sensor
  /// evidence intersecting the region whose fused probability of being
  /// inside reaches `minProbability`, sorted by descending probability.
  /// Candidates are discovered through the readings R-tree: an object whose
  /// entire evidence lies elsewhere is not reported, even when its diffuse
  /// misidentification mass would technically clear a tiny threshold.
  /// Served from the region population cache (see the cache section below).
  [[nodiscard]] std::vector<std::pair<util::MobileObjectId, double>> objectsInRegion(
      const geo::Rect& region, double minProbability) const;

  /// The same, keyed by a named region ("SC/Floor3/3105" or an app-defined
  /// GLOB): resolves the name through the symbolic-region lattice and polls
  /// its universe-frame MBR. Throws NotFoundError for unknown names.
  [[nodiscard]] std::vector<std::pair<util::MobileObjectId, double>> objectsInRegion(
      const std::string& regionGlob, double minProbability) const;

  /// The fused spatial probability distribution for an object.
  [[nodiscard]] std::vector<fusion::RegionProbability> distributionFor(
      const util::MobileObjectId& object) const;

  /// The object's recent trajectory: time-ordered (when, where) samples from
  /// the reading history within `window` (coordinate sensors only; symbolic
  /// readings contribute their region centers).
  struct TrajectoryPoint {
    util::TimePoint when;
    geo::Point2 where;
  };
  [[nodiscard]] std::vector<TrajectoryPoint> trajectory(const util::MobileObjectId& object,
                                                        util::Duration window) const;

  // --- push: subscriptions (§4.3) -----------------------------------------------

  util::SubscriptionId subscribe(Subscription subscription);

  /// Installs an aggregate standing rule as a counting node in the
  /// continuous-query network: each affecting update syncs the rule's beta
  /// memory from the region population cache (O(changed members)), fires the
  /// callback on every count change and flags limit crossings. Returns the
  /// id plus the population at subscribe time (seeded silently — no
  /// callback); an update racing the installation converges the count on the
  /// next reading that touches the region.
  struct DensityHandle {
    util::SubscriptionId id;
    std::size_t initialCount = 0;
  };
  DensityHandle subscribeDensity(DensitySubscription subscription);

  /// Removes a plain or density subscription.
  bool unsubscribe(util::SubscriptionId id);
  /// Plain + density subscriptions currently installed.
  [[nodiscard]] std::size_t subscriptionCount() const;

  /// Continuous-query network shape: standing rules installed, distinct
  /// alpha (region) nodes they share, and (rule, object) pairs currently
  /// tracked as inside. productions/alphaNodes is the sharing factor; the
  /// per-update evaluation cost tracks the match set, not `productions`.
  struct StandingRuleStats {
    std::size_t productions = 0;
    std::size_t alphaNodes = 0;
    std::size_t insidePairs = 0;
  };
  [[nodiscard]] StandingRuleStats standingRuleStats() const;

  // --- movement-pattern priors (§4.1.2 / §11 future work) ---------------------------

  /// Installs a learned spatial prior used by every probability computation;
  /// nullptr restores the paper's uniform-area assumption.
  void setMovementPrior(std::shared_ptr<const fusion::SpatialPrior> prior);

  /// Builds a RegionDwellPrior whose cells are the database's rooms and
  /// corridors — the natural partition to learn dwell fractions over.
  [[nodiscard]] std::shared_ptr<fusion::RegionDwellPrior> makeDwellPrior(
      double smoothingSeconds = 1.0) const;

  // --- privacy (§4.5) -------------------------------------------------------------

  /// Limits the GLOB depth at which this object's location may be revealed
  /// ("a user's location can only be revealed upto a certain granularity").
  void setPrivacyGranularity(const util::MobileObjectId& object, std::size_t maxDepth);
  [[nodiscard]] std::optional<std::size_t> privacyGranularity(
      const util::MobileObjectId& object) const;

  // --- regions and static objects (§4 tasks 4-5, §4.5) -------------------------------

  /// Defines an application region ("East wing of the building", "work
  /// region inside a room") with properties: stored as a spatial-database
  /// row AND as a node of the symbolic-region lattice. `fullGlob` is the
  /// hierarchical name; `universeRect` its MBR in universe coordinates.
  void defineRegion(const std::string& fullGlob, const geo::Rect& universeRect,
                    std::unordered_map<std::string, std::string> properties = {});

  /// Adds a static object (display, table, ...) with an optional usage
  /// region (§4.6.2b: "if a person has to use these objects for some
  /// purpose, he has to be within the usage region of the object").
  /// The row's coordinates are in its globPrefix frame; the usage region is
  /// in universe coordinates.
  void addStaticObject(db::SpatialObjectRow row,
                       std::optional<geo::Rect> usageRegion = std::nullopt);

  void setUsageRegion(const util::SpatialObjectId& object, const geo::Rect& universeRect);
  [[nodiscard]] std::optional<geo::Rect> usageRegion(
      const util::SpatialObjectId& object) const;

  /// P(person is inside the usage region of `object`); 0 when the object
  /// has no usage region or the person is unlocatable.
  [[nodiscard]] double usageProbability(const util::MobileObjectId& person,
                                        const util::SpatialObjectId& object) const;

  /// The symbolic-region lattice (§4.5), indexed lazily from the database's
  /// Building/Floor/Room/Corridor rows plus defineRegion() entries. Call
  /// reindexRegions() after mutating the database directly.
  [[nodiscard]] const RegionLattice& regionLattice() const;
  void reindexRegions();

  /// The containment chain of named regions at the object's location,
  /// outermost first (building, floor, wing, room, ...).
  [[nodiscard]] std::vector<std::string> symbolicChainFor(
      const util::MobileObjectId& object) const;

  // --- symbolic <-> coordinate conversion (§3: "easy conversion between the
  // two forms of location data") --------------------------------------------------

  /// Symbolic -> coordinate: the universe-frame MBR of a named region.
  [[nodiscard]] std::optional<geo::Rect> resolveRegion(const std::string& fullGlob) const;

  /// Coordinate -> symbolic: the most specific named region containing the
  /// universe-frame point, as a GLOB.
  [[nodiscard]] std::optional<glob::Glob> symbolicAt(geo::Point2 universePoint) const;

  // --- spatial relationships (§4.6) ------------------------------------------------

  /// P(distance(a, b) <= threshold).
  [[nodiscard]] double proximity(const util::MobileObjectId& a, const util::MobileObjectId& b,
                                 double threshold) const;

  /// P(a and b are in the same smallest named region that contains a).
  [[nodiscard]] double coLocation(const util::MobileObjectId& a,
                                  const util::MobileObjectId& b) const;

  /// Co-location "of a specified granularity such as room, floor or
  /// building" (§4.6.3): the enclosing region of `a` at lattice depth
  /// <= granularity is used as the shared region.
  [[nodiscard]] double coLocationAt(const util::MobileObjectId& a,
                                    const util::MobileObjectId& b,
                                    std::size_t granularity) const;

  /// Center-to-center distance with uncertainty bounds; nullopt when either
  /// object is unlocatable.
  [[nodiscard]] std::optional<reasoning::DistanceBounds> distanceBetween(
      const util::MobileObjectId& a, const util::MobileObjectId& b) const;

  /// Path-distance through the building's connectivity graph.
  [[nodiscard]] std::optional<double> pathDistanceBetween(const util::MobileObjectId& a,
                                                          const util::MobileObjectId& b) const;

  /// Nearest static object of a type (e.g. the closest Display for the
  /// Follow-Me application), by distance from the object's estimate center.
  [[nodiscard]] std::optional<db::SpatialObjectRow> nearestObjectOfType(
      const util::MobileObjectId& object, db::ObjectType type) const;

  // --- region-to-region relations (§4.6.1) -------------------------------------------

  /// The RCC-8 relation between two named regions (by full GLOB). Throws
  /// NotFoundError for unknown names.
  [[nodiscard]] reasoning::Rcc8 regionRelation(const std::string& globA,
                                               const std::string& globB) const;

  /// The EC refinement (ECFP/ECRP/ECNP) between two named regions, using the
  /// database's Door rows as passages ("the relations ECFP, ECRP and ECNP
  /// are evaluated by checking if there is a door or an obstruction like a
  /// wall between the regions").
  [[nodiscard]] reasoning::EcKind passageRelation(const std::string& globA,
                                                  const std::string& globB) const;

  /// Transitive reachability via the Datalog engine (the XSB Prolog layer):
  /// can one get from region A to region B through free passages only, or —
  /// with `allowRestricted` — also through locked doors?
  [[nodiscard]] bool regionsReachable(const std::string& globA, const std::string& globB,
                                      bool allowRestricted = false) const;

  /// All door passages known to the database (for route displays).
  [[nodiscard]] std::vector<reasoning::Passage> doorPassages() const;

  /// The connectivity graph used for path distances; populated by the world
  /// builder (sim::buildWorld) or manually.
  [[nodiscard]] reasoning::ConnectivityGraph& connectivity() noexcept { return graph_; }
  [[nodiscard]] const reasoning::ConnectivityGraph& connectivity() const noexcept {
    return graph_;
  }

  // --- internals exposed for benchmarks/tests ---------------------------------------

  /// Converts an object's fresh database readings into fusion inputs with
  /// tdf-degraded confidences.
  [[nodiscard]] fusion::FusionInputs fusionInputsFor(const util::MobileObjectId& object) const;

  /// The memoized fused state for an object at its current readings epoch;
  /// recomputed on a cache miss. Every fused query routes through this.
  [[nodiscard]] std::shared_ptr<const fusion::FusedState> fusedStateFor(
      const util::MobileObjectId& object) const;

 private:
  /// Subscription specs live here; their region/subject patterns and
  /// inside/outside edge state live in the continuous-query network
  /// (subNet_), which discriminates updates to the affected rules.
  struct SubState {
    Subscription spec;
  };

  /// Density (counting) subscription specs; their membership state is the
  /// counting node's beta memory in subNet_.
  struct DensitySubState {
    DensitySubscription spec;
  };

  // --- region population cache internals ---------------------------------------

  /// Cache key: the polled region plus the query parameters that shape the
  /// answer. Hashed bitwise — keys come from repeated polls of the same
  /// rect, so exact equality is the right notion.
  struct RegionKey {
    geo::Rect region;
    double minProbability = 0;
    bool operator==(const RegionKey& o) const noexcept {
      return region == o.region && minProbability == o.minProbability;
    }
  };
  struct RegionKeyHash {
    std::size_t operator()(const RegionKey& k) const noexcept;
  };

  /// One population member: the fused state the member's probability was
  /// read from (pinning the memoized state so revalidation can reuse it even
  /// after fusion-cache eviction) plus that probability.
  struct RegionMember {
    std::shared_ptr<const fusion::FusedState> state;
    double probability = 0;
  };

  struct RegionCacheEntry {
    std::uint64_t catalog = 0;  ///< db catalog epoch the population was discovered at
    std::unordered_map<util::MobileObjectId, RegionMember> members;
    /// The filtered, probability-sorted answer for the key as of `members`.
    std::vector<std::pair<util::MobileObjectId, double>> result;
  };

  /// A subscription callback queued for invocation once all locks are
  /// released.
  struct PendingNotification {
    std::function<void(const Notification&)> callback;
    Notification notification;
  };

  struct PendingDensityNotification {
    std::function<void(const DensityNotification&)> callback;
    DensityNotification notification;
  };

  /// Stores one reading and evaluates the subscriptions it touched — the
  /// unit of work shared by sequential ingest and every batch shard.
  void ingestOne(const db::SensorReading& reading);
  /// Evaluates one subscription against a fused state (subsMutex_ held);
  /// appends the callback to `out` instead of invoking it.
  void evaluateSubscriptionLocked(util::SubscriptionId id, const util::MobileObjectId& object,
                                  const fusion::FusedState& fused,
                                  std::vector<PendingNotification>& out);
  /// The persistent reachability engine, (re)built lazily from the lattice
  /// and door passages; reachabilityMutex_ held.
  [[nodiscard]] reasoning::Datalog& reachabilityEngineLocked() const;
  [[nodiscard]] util::Duration cacheToleranceNow() const noexcept {
    return util::Duration{cacheTolerance_.load(std::memory_order_relaxed)};
  }
  /// The installed ingest tap, pinned for one call (tap swaps don't tear).
  [[nodiscard]] std::shared_ptr<const IngestTap> currentTap() const;
  /// Ensures the symbolic lattice reflects the database.
  void ensureRegionsIndexed() const;
  [[nodiscard]] std::optional<geo::Rect> smallestNamedRegionRectAt(geo::Point2 p) const;

  const util::Clock& clock_;
  db::SpatialDatabase& db_;
  fusion::FusionEngine engine_;
  reasoning::ConnectivityGraph graph_;

  mutable std::shared_mutex regionsMutex_;
  mutable RegionLattice regions_;
  mutable bool regionsIndexed_ = false;
  std::unordered_map<util::SpatialObjectId, geo::Rect> usageRegions_;

  // Fusion cache (L1): object -> fused state, stamped with (epoch, computedAt).
  mutable std::shared_mutex cacheMutex_;
  mutable std::unordered_map<util::MobileObjectId, std::shared_ptr<const fusion::FusedState>>
      fusionCache_;
  mutable std::atomic<std::uint64_t> cacheHits_{0};
  mutable std::atomic<std::uint64_t> cacheMisses_{0};
  /// Staleness tolerance in Duration ticks, shared by both cache levels;
  /// atomic so polls can read it without holding the fusion-cache lock.
  std::atomic<util::Duration::rep> cacheTolerance_{0};
  std::size_t cacheCapacity_ = 4096;

  // Region population cache (L2): (region, params) -> revalidatable population.
  mutable std::shared_mutex regionCacheMutex_;
  mutable std::unordered_map<RegionKey, RegionCacheEntry, RegionKeyHash> regionCache_;
  mutable std::atomic<std::uint64_t> regionCacheHits_{0};
  mutable std::atomic<std::uint64_t> regionCacheMisses_{0};
  mutable std::atomic<std::uint64_t> regionCacheRevalidations_{0};
  std::size_t regionCacheCapacity_ = 256;

  // Subscription table; subsMutex_ guards subs_ AND the continuous-query
  // network (patterns + inside/outside edge memory).
  mutable std::mutex subsMutex_;
  util::IdSequencer<util::SubscriptionId> subIds_;
  std::unordered_map<util::SubscriptionId, SubState> subs_;
  std::unordered_map<util::SubscriptionId, DensitySubState> densitySubs_;
  /// Rete-style discrimination network: match(reading box, object) returns
  /// the affected subscriptions — alpha hits plus exit candidates — so an
  /// ingest never scans the subscription table.
  cq::TriggerNetwork subNet_;

  std::unordered_map<util::MobileObjectId, std::size_t> privacy_;

  /// Persistent incremental Datalog for regionsReachable: built once from
  /// the lattice + doors, saturated incrementally, dropped when the region
  /// index is invalidated (reindexRegions).
  mutable std::mutex reachabilityMutex_;
  mutable std::unique_ptr<reasoning::Datalog> reachability_;

  // Sharded ingest worker pool, created lazily at the configured width and
  // keyed on shards_ alone (setIngestShards drops it; batch size never does).
  std::mutex poolMutex_;
  std::unique_ptr<util::WorkerPool> pool_;
  std::size_t shards_;
  mutable std::atomic<std::uint64_t> poolRecreations_{0};

  std::atomic<std::uint64_t> ingestedReadings_{0};
  std::atomic<std::uint64_t> ingestedBatches_{0};
  std::atomic<std::uint64_t> importedReadings_{0};
  mutable std::atomic<std::uint64_t> regionQueries_{0};

  /// Ingest tap, published as a snapshot pointer (swap under mutex, readers
  /// pin the shared_ptr) — the same idiom as the reading-store snapshots.
  mutable std::mutex tapMutex_;
  std::shared_ptr<const IngestTap> tap_;
  /// Held shared across every ingest call (tap + apply); pauseIngest()
  /// takes it exclusively.
  std::shared_mutex ingestGate_;
};

}  // namespace mw::core
