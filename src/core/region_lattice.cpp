#include "core/region_lattice.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace mw::core {

using mw::util::require;

std::size_t RegionLattice::add(const std::string& glob, const geo::Rect& rect,
                               std::unordered_map<std::string, std::string> properties) {
  require(!glob.empty(), "RegionLattice::add: empty name");
  require(!rect.empty() && rect.area() > 0, "RegionLattice::add: empty rect");
  require(!byName_.contains(glob), "RegionLattice::add: duplicate region " + glob);
  std::size_t index = nodes_.size();
  nodes_.push_back(Node{glob, rect, std::move(properties), {}, {}, 0});
  byName_.emplace(glob, index);
  dirty_.store(true, std::memory_order_release);
  return index;
}

void RegionLattice::clear() {
  nodes_.clear();
  byName_.clear();
  dirty_.store(false, std::memory_order_release);
}

const RegionLattice::Node& RegionLattice::node(std::size_t index) const {
  require(index < nodes_.size(), "RegionLattice::node: index out of range");
  refreshEdges();
  return nodes_[index];
}

std::optional<std::size_t> RegionLattice::find(const std::string& glob) const {
  auto it = byName_.find(glob);
  if (it == byName_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> RegionLattice::smallestAt(geo::Point2 p) const {
  std::optional<std::size_t> best;
  double bestArea = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].rect.contains(p)) continue;
    double area = nodes_[i].rect.area();
    if (!best || area < bestArea) {
      best = i;
      bestArea = area;
    }
  }
  return best;
}

std::vector<std::size_t> RegionLattice::chainAt(geo::Point2 p) const {
  refreshEdges();
  std::vector<std::size_t> chain;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].rect.contains(p)) chain.push_back(i);
  }
  // Outermost first: sort by depth, then by area descending for stability.
  std::sort(chain.begin(), chain.end(), [&](std::size_t a, std::size_t b) {
    if (nodes_[a].depth != nodes_[b].depth) return nodes_[a].depth < nodes_[b].depth;
    return nodes_[a].rect.area() > nodes_[b].rect.area();
  });
  return chain;
}

std::optional<std::size_t> RegionLattice::atGranularity(geo::Point2 p,
                                                        std::size_t maxDepth) const {
  auto chain = chainAt(p);
  std::optional<std::size_t> best;
  for (std::size_t i : chain) {
    if (nodes_[i].depth <= maxDepth) best = i;  // chain is outermost-first
  }
  return best;
}

void RegionLattice::refreshEdges() const {
  // Double-checked: the relaxed fast path sees either a fully published
  // rebuild (acquire below pairs with the release store) or takes the lock.
  if (!dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(refreshMutex_);
  if (!dirty_.load(std::memory_order_relaxed)) return;
  const std::size_t n = nodes_.size();
  for (auto& node : nodes_) {
    node.parents.clear();
    node.children.clear();
    node.depth = 0;
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return nodes_[a].rect.area() > nodes_[b].rect.area();
  });
  for (std::size_t ai = 0; ai < n; ++ai) {
    std::size_t a = order[ai];
    for (std::size_t bi = ai + 1; bi < n; ++bi) {
      std::size_t b = order[bi];
      if (!nodes_[a].rect.contains(nodes_[b].rect) ||
          geo::approxEqual(nodes_[a].rect, nodes_[b].rect)) {
        continue;
      }
      bool immediate = true;
      for (std::size_t ci = ai + 1; ci < bi && immediate; ++ci) {
        std::size_t c = order[ci];
        if (nodes_[a].rect.contains(nodes_[c].rect) &&
            nodes_[c].rect.contains(nodes_[b].rect) &&
            !geo::approxEqual(nodes_[c].rect, nodes_[a].rect) &&
            !geo::approxEqual(nodes_[c].rect, nodes_[b].rect)) {
          immediate = false;
        }
      }
      if (immediate) {
        nodes_[a].children.push_back(b);
        nodes_[b].parents.push_back(a);
      }
    }
  }
  // Depths: longest chain from a root, via the area-descending order (every
  // parent has strictly larger area, so order is topological).
  for (std::size_t idx : order) {
    std::size_t depth = 0;
    for (std::size_t p : nodes_[idx].parents) depth = std::max(depth, nodes_[p].depth + 1);
    nodes_[idx].depth = depth;
  }
  dirty_.store(false, std::memory_order_release);
}

}  // namespace mw::core
