// Service registry — the Gaia Space Repository stand-in (§7).
//
// "Gaia applications can discover the location service component of
// MiddleWhere by querying the Gaia Space Repository service, which provides
// a list of available services."
#pragma once

#include <algorithm>
#include <any>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace mw::core {

class ServiceRegistry {
 public:
  /// Registers a shared service under a unique name.
  template <typename T>
  void registerService(const std::string& name, std::shared_ptr<T> service) {
    util::require(!name.empty(), "ServiceRegistry: empty name");
    util::require(static_cast<bool>(service), "ServiceRegistry: null service");
    std::lock_guard lock(mutex_);
    util::require(!services_.contains(name), "ServiceRegistry: duplicate service " + name);
    services_[name] = std::move(service);
  }

  /// Looks a service up by name and type; nullptr when absent or of a
  /// different type.
  template <typename T>
  [[nodiscard]] std::shared_ptr<T> lookup(const std::string& name) const {
    std::lock_guard lock(mutex_);
    auto it = services_.find(name);
    if (it == services_.end()) return nullptr;
    auto* ptr = std::any_cast<std::shared_ptr<T>>(&it->second);
    return ptr ? *ptr : nullptr;
  }

  bool unregisterService(const std::string& name) {
    std::lock_guard lock(mutex_);
    return services_.erase(name) > 0;
  }

  /// Names of all registered services, sorted.
  [[nodiscard]] std::vector<std::string> list() const {
    std::lock_guard lock(mutex_);
    std::vector<std::string> names;
    names.reserve(services_.size());
    for (const auto& [name, _] : services_) names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::any> services_;
};

}  // namespace mw::core
