// The MiddleWhere facade: owns the spatial database, the Location Service,
// the service registry and (optionally) the MicroOrb endpoint, wired per the
// layered architecture of Fig 1.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/location_service.hpp"
#include "core/registry.hpp"
#include "core/remote.hpp"
#include "orb/rpc.hpp"
#include "orb/tcp.hpp"
#include "spatialdb/database.hpp"
#include "util/clock.hpp"

namespace mw::core {

class Middlewhere {
 public:
  /// Builds the stack over a fresh spatial database. The clock must outlive
  /// the instance.
  Middlewhere(const util::Clock& clock, geo::Rect universe, glob::FrameTree frames);
  Middlewhere(const util::Clock& clock, geo::Rect universe, const std::string& rootFrame);

  [[nodiscard]] db::SpatialDatabase& database() noexcept { return db_; }
  [[nodiscard]] LocationService& locationService() noexcept { return *service_; }
  [[nodiscard]] ServiceRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const util::Clock& clock() const noexcept { return clock_; }
  /// The MicroOrb endpoint (serving stats, dispatcher control). The
  /// dispatcher is enabled at construction with defaultDispatchLanes(), so
  /// remote requests run concurrently off the transport reader threads;
  /// rpcServer().enableDispatcher(0) restores the paper's single-threaded
  /// POA behavior per connection.
  [[nodiscard]] orb::RpcServer& rpcServer() noexcept { return rpcServer_; }

  /// Executor lanes used by default: 2..8, scaled to the host's core count.
  [[nodiscard]] static std::size_t defaultDispatchLanes();

  /// Exposes the Location Service over TCP loopback; returns the bound port.
  /// Clients connect with connectRemote().
  std::uint16_t listen(std::uint16_t port = 0);

  /// Connects a typed remote client to a listening Middlewhere instance.
  static std::unique_ptr<RemoteLocationClient> connectRemote(const std::string& host,
                                                             std::uint16_t port);

  /// In-process client pair: the fast path used by same-process applications
  /// (still exercises the full ORB marshalling, like CORBA collocation).
  std::unique_ptr<RemoteLocationClient> connectLocal();

 private:
  const util::Clock& clock_;
  db::SpatialDatabase db_;
  std::unique_ptr<LocationService> service_;
  ServiceRegistry registry_;
  orb::RpcServer rpcServer_;
  std::unique_ptr<orb::TcpListener> listener_;
};

}  // namespace mw::core
