#include "core/reading_log.hpp"

#include <fstream>

#include "core/codec.hpp"
#include "util/error.hpp"

namespace mw::core {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;

namespace {
constexpr std::uint32_t kMagic = 0x4D57544C;  // "MWTL"
constexpr std::uint16_t kVersion = 1;
}  // namespace

adapters::LocationAdapter::Sink ReadingRecorder::tee(
    adapters::LocationAdapter::Sink downstream) {
  mw::util::require(static_cast<bool>(downstream), "ReadingRecorder::tee: null downstream");
  return [this, downstream = std::move(downstream)](const db::SensorReading& reading) {
    record(reading);
    downstream(reading);
  };
}

void ReadingRecorder::record(const db::SensorReading& reading) {
  readings_.push_back(reading);
}

Bytes ReadingRecorder::encode() const {
  ByteWriter w;
  w.u32(kMagic);
  w.u16(kVersion);
  w.u32(static_cast<std::uint32_t>(readings_.size()));
  for (const auto& reading : readings_) encodeReading(w, reading);
  return w.take();
}

void ReadingRecorder::saveFile(const std::string& path) const {
  Bytes data = encode();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw mw::util::MwError("ReadingRecorder::saveFile: cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw mw::util::MwError("ReadingRecorder::saveFile: write failed for " + path);
}

std::vector<db::SensorReading> decodeTrace(const Bytes& data) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw util::ParseError("decodeTrace: bad magic");
  if (r.u16() != kVersion) throw util::ParseError("decodeTrace: unsupported version");
  std::vector<db::SensorReading> out;
  for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
    out.push_back(decodeReading(r));
  }
  if (!r.exhausted()) throw util::ParseError("decodeTrace: trailing bytes");
  return out;
}

std::vector<db::SensorReading> loadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw mw::util::MwError("loadTraceFile: cannot open " + path);
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return decodeTrace(data);
}

std::size_t replayTrace(const std::vector<db::SensorReading>& trace,
                        const adapters::LocationAdapter::Sink& sink,
                        util::VirtualClock* clock) {
  mw::util::require(static_cast<bool>(sink), "replayTrace: null sink");
  std::size_t delivered = 0;
  for (const auto& reading : trace) {
    if (clock != nullptr && reading.detectionTime > clock->now()) {
      clock->set(reading.detectionTime);
    }
    sink(reading);
    ++delivered;
  }
  return delivered;
}

}  // namespace mw::core
