// The symbolic-region lattice (§4.5).
//
// "In order to give location information as a symbolic region, the Location
// Service maintains a lattice of all symbolic regions. This includes rooms,
// corridors and other building structures. In addition, other symbolic
// locations can be defined such as 'East wing of the building' or 'work
// region inside a room'. The lattice representation also allows
// incorporating privacy constraints that specify that a user's location can
// only be revealed upto a certain granularity."
//
// Nodes are named regions (GLOB string + universe-frame MBR + properties);
// the order is rectangle containment, maintained as a Hasse diagram exactly
// like the fusion lattice, but keyed by name.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geometry/rect.hpp"

namespace mw::core {

class RegionLattice {
 public:
  struct Node {
    std::string glob;  ///< full symbolic name, e.g. "SC/3/3216" or "SC/EastWing"
    geo::Rect rect;    ///< universe frame
    std::unordered_map<std::string, std::string> properties;
    std::vector<std::size_t> parents;   ///< immediate covers (containing regions)
    std::vector<std::size_t> children;  ///< immediately contained regions
    /// Longest containment chain from a root to this node (roots = 0);
    /// the granularity level privacy constraints count in.
    std::size_t depth = 0;
  };

  RegionLattice() = default;

  // Movable but not copyable; the refresh mutex stays with each instance.
  // Moves, like `add`, are configuration-time: never concurrent with reads.
  RegionLattice(RegionLattice&& other) noexcept
      : nodes_(std::move(other.nodes_)),
        byName_(std::move(other.byName_)),
        dirty_(other.dirty_.load(std::memory_order_relaxed)) {}
  RegionLattice& operator=(RegionLattice&& other) noexcept {
    nodes_ = std::move(other.nodes_);
    byName_ = std::move(other.byName_);
    dirty_.store(other.dirty_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
  RegionLattice(const RegionLattice&) = delete;
  RegionLattice& operator=(const RegionLattice&) = delete;

  /// Adds a named region. Throws ContractError on duplicate names or empty
  /// rects.
  std::size_t add(const std::string& glob, const geo::Rect& rect,
                  std::unordered_map<std::string, std::string> properties = {});

  /// Drops every region; the lattice is empty and clean afterwards. Like
  /// `add`, must be externally serialized against concurrent reads.
  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(std::size_t index) const;
  [[nodiscard]] std::optional<std::size_t> find(const std::string& glob) const;

  /// The smallest (by area) region containing the point, if any.
  [[nodiscard]] std::optional<std::size_t> smallestAt(geo::Point2 p) const;

  /// The containment chain at a point, outermost first (e.g. building,
  /// floor, wing, room, work-area). Empty when no region contains p.
  [[nodiscard]] std::vector<std::size_t> chainAt(geo::Point2 p) const;

  /// The most specific region at `p` whose depth does not exceed
  /// `maxDepth` — the §4.5 privacy-granularity cut.
  [[nodiscard]] std::optional<std::size_t> atGranularity(geo::Point2 p,
                                                         std::size_t maxDepth) const;

  /// Recomputes Hasse edges and depths; called lazily by the accessors.
  /// Safe to race from concurrent const readers (e.g. dispatcher lanes
  /// serving locateSymbolic): the rebuild is serialized and publishes via
  /// `dirty_`. Mutation (`add`) must still be externally serialized against
  /// reads — it is a configuration-time operation.
  void refreshEdges() const;

 private:
  mutable std::vector<Node> nodes_;
  std::unordered_map<std::string, std::size_t> byName_;
  mutable std::mutex refreshMutex_;
  mutable std::atomic<bool> dirty_{false};
};

}  // namespace mw::core
