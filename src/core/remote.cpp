#include "core/remote.hpp"

#include <mutex>

#include "core/codec.hpp"
#include "util/error.hpp"

namespace mw::core {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;

namespace {

Bytes encodeNotification(const Notification& n) {
  ByteWriter w;
  w.u64(n.id.value());
  w.str(n.object.str());
  encodeRect(w, n.region);
  w.f64(n.probability);
  w.u8(static_cast<std::uint8_t>(n.cls));
  w.i64(n.when.time_since_epoch().count());
  return w.take();
}

Notification decodeNotification(const Bytes& payload) {
  ByteReader r(payload);
  Notification n;
  n.id = util::SubscriptionId{r.u64()};
  n.object = util::MobileObjectId{r.str()};
  n.region = decodeRect(r);
  n.probability = r.f64();
  n.cls = static_cast<fusion::ProbabilityClass>(r.u8());
  n.when = util::TimePoint{util::Duration{r.i64()}};
  return n;
}

}  // namespace

void exposeLocationService(orb::RpcServer& server, LocationService& service) {
  // One mutex serializes all service access: requests can arrive on several
  // transports' reader threads concurrently, and the LocationService (like
  // the spatial database under it) is single-threaded by design.
  auto gate = std::make_shared<std::mutex>();

  server.registerMethod("ingest", [&service, gate](const Bytes& args) -> Bytes {
    ByteReader r(args);
    db::SensorReading reading = decodeReading(r);
    std::lock_guard lock(*gate);
    service.ingest(reading);
    return {};
  });

  server.registerMethod("locate", [&service, gate](const Bytes& args) -> Bytes {
    ByteReader r(args);
    util::MobileObjectId object{r.str()};
    ByteWriter w;
    std::lock_guard lock(*gate);
    auto est = service.locateObject(object);
    w.boolean(est.has_value());
    if (est) encodeEstimate(w, *est);
    return w.take();
  });

  server.registerMethod("locateSymbolic", [&service, gate](const Bytes& args) -> Bytes {
    ByteReader r(args);
    util::MobileObjectId object{r.str()};
    std::lock_guard lock(*gate);
    auto symbolic = service.locateSymbolic(object);
    ByteWriter w;
    w.str(symbolic ? symbolic->str() : "");
    return w.take();
  });

  server.registerMethod("probabilityInRegion", [&service, gate](const Bytes& args) -> Bytes {
    ByteReader r(args);
    util::MobileObjectId object{r.str()};
    geo::Rect region = decodeRect(r);
    ByteWriter w;
    std::lock_guard lock(*gate);
    w.f64(service.probabilityInRegion(object, region));
    return w.take();
  });

  server.registerMethod("subscribe", [&service, &server, gate](const Bytes& args) -> Bytes {
    ByteReader r(args);
    Subscription sub;
    sub.region = decodeRect(r);
    if (r.boolean()) sub.subject = util::MobileObjectId{r.str()};
    sub.threshold = r.f64();
    // Bridge notifications onto the ORB as events; the subscription id is
    // embedded in the topic so the client can dispatch.
    sub.callback = [&server](const Notification& n) {
      server.publish("notify." + std::to_string(n.id.value()), encodeNotification(n));
    };
    std::lock_guard lock(*gate);
    util::SubscriptionId id = service.subscribe(std::move(sub));
    ByteWriter w;
    w.u64(id.value());
    return w.take();
  });

  server.registerMethod("unsubscribe", [&service, gate](const Bytes& args) -> Bytes {
    ByteReader r(args);
    util::SubscriptionId id{r.u64()};
    ByteWriter w;
    std::lock_guard lock(*gate);
    w.boolean(service.unsubscribe(id));
    return w.take();
  });
}

RemoteLocationClient::RemoteLocationClient(std::shared_ptr<orb::RpcClient> rpc)
    : rpc_(std::move(rpc)) {
  mw::util::require(static_cast<bool>(rpc_), "RemoteLocationClient: null rpc client");
  rpc_->onEvent([this](const std::string& topic, const Bytes& payload) {
    constexpr std::string_view kPrefix = "notify.";
    if (topic.rfind(kPrefix, 0) != 0) return;
    std::uint64_t id = std::stoull(topic.substr(kPrefix.size()));
    std::function<void(const Notification&)> callback;
    {
      std::lock_guard lock(mutex_);
      auto it = callbacks_.find(id);
      if (it != callbacks_.end()) callback = it->second;
    }
    if (callback) callback(decodeNotification(payload));
  });
}

void RemoteLocationClient::ingest(const db::SensorReading& reading) {
  ByteWriter w;
  encodeReading(w, reading);
  rpc_->call("ingest", w.take());
}

void RemoteLocationClient::ingestAsync(const db::SensorReading& reading) {
  ByteWriter w;
  encodeReading(w, reading);
  rpc_->notify("ingest", w.take());
}

std::optional<fusion::LocationEstimate> RemoteLocationClient::locate(
    const util::MobileObjectId& object) {
  ByteWriter w;
  w.str(object.str());
  Bytes reply = rpc_->call("locate", w.take());
  ByteReader r(reply);
  if (!r.boolean()) return std::nullopt;
  return decodeEstimate(r);
}

std::string RemoteLocationClient::locateSymbolic(const util::MobileObjectId& object) {
  ByteWriter w;
  w.str(object.str());
  Bytes reply = rpc_->call("locateSymbolic", w.take());
  ByteReader r(reply);
  return r.str();
}

double RemoteLocationClient::probabilityInRegion(const util::MobileObjectId& object,
                                                 const geo::Rect& region) {
  ByteWriter w;
  w.str(object.str());
  encodeRect(w, region);
  Bytes reply = rpc_->call("probabilityInRegion", w.take());
  ByteReader r(reply);
  return r.f64();
}

util::SubscriptionId RemoteLocationClient::subscribe(
    const geo::Rect& region, std::optional<util::MobileObjectId> subject, double threshold,
    std::function<void(const Notification&)> callback) {
  ByteWriter w;
  encodeRect(w, region);
  w.boolean(subject.has_value());
  if (subject) w.str(subject->str());
  w.f64(threshold);
  Bytes reply = rpc_->call("subscribe", w.take());
  ByteReader r(reply);
  util::SubscriptionId id{r.u64()};
  {
    std::lock_guard lock(mutex_);
    callbacks_[id.value()] = std::move(callback);
  }
  return id;
}

bool RemoteLocationClient::unsubscribe(util::SubscriptionId id) {
  {
    std::lock_guard lock(mutex_);
    callbacks_.erase(id.value());
  }
  ByteWriter w;
  w.u64(id.value());
  Bytes reply = rpc_->call("unsubscribe", w.take());
  ByteReader r(reply);
  return r.boolean();
}

}  // namespace mw::core
