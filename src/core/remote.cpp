#include "core/remote.hpp"

#include <string>
#include <utility>

#include "core/codec.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace mw::core {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;

namespace {

Bytes encodeNotification(const Notification& n) {
  ByteWriter w;
  w.u64(n.id.value());
  w.str(n.object.str());
  encodeRect(w, n.region);
  w.f64(n.probability);
  w.u8(static_cast<std::uint8_t>(n.cls));
  w.i64(n.when.time_since_epoch().count());
  return w.take();
}

Notification decodeNotification(const Bytes& payload) {
  ByteReader r(payload);
  Notification n;
  n.id = util::SubscriptionId{r.u64()};
  n.object = util::MobileObjectId{r.str()};
  n.region = decodeRect(r);
  n.probability = r.f64();
  n.cls = static_cast<fusion::ProbabilityClass>(r.u8());
  n.when = util::TimePoint{util::Duration{r.i64()}};
  return n;
}

Bytes encodeDensityNotification(const DensityNotification& n) {
  ByteWriter w;
  w.u64(n.id.value());
  encodeRect(w, n.region);
  w.u64(n.count);
  w.u64(n.limit);
  w.u8(static_cast<std::uint8_t>(n.edge));
  w.str(n.object.str());
  w.i64(n.when.time_since_epoch().count());
  return w.take();
}

DensityNotification decodeDensityNotification(const Bytes& payload) {
  ByteReader r(payload);
  DensityNotification n;
  n.id = util::SubscriptionId{r.u64()};
  n.region = decodeRect(r);
  n.count = static_cast<std::size_t>(r.u64());
  n.limit = static_cast<std::size_t>(r.u64());
  n.edge = static_cast<cq::CountEdge>(r.u8());
  n.object = util::MobileObjectId{r.str()};
  n.when = util::TimePoint{util::Duration{r.i64()}};
  return n;
}

Bytes encodeReadingBatch(std::span<const db::SensorReading> readings) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(readings.size()));
  for (const auto& reading : readings) encodeReading(w, reading);
  return w.take();
}

std::vector<db::SensorReading> decodeReadingBatch(const Bytes& payload) {
  ByteReader r(payload);
  std::vector<db::SensorReading> readings;
  const std::uint32_t count = r.u32();
  readings.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) readings.push_back(decodeReading(r));
  return readings;
}

/// Lane rule for "ingest": hash(object), skipping the three string fields
/// that precede mobileObjectId on the wire (codec.cpp layout). Same object
/// => same lane => the object's readings keep their relative order across
/// however many connections feed the server — the in-process per-object
/// shard invariant, enforced at the transport layer.
std::size_t readingObjectLane(const Bytes& payload, std::uintptr_t /*connection*/) {
  ByteReader r(payload);
  r.str();  // sensorId
  r.str();  // globPrefix
  r.str();  // sensorType
  return std::hash<std::string>{}(r.str());
}

}  // namespace

void exposeLocationService(orb::RpcServer& server, LocationService& service) {
  // No gate: the LocationService is thread-safe (see remote.hpp). Ordering
  // is preserved where it matters by lane routing, not by serialization.
  server.registerMethod(
      "ingest",
      [&service](const Bytes& args) -> Bytes {
        ByteReader r(args);
        db::SensorReading reading = decodeReading(r);
        service.ingest(reading);
        return {};
      },
      readingObjectLane);

  // Batches ride the connection lane (the dispatcher default): one adapter's
  // batches stay FIFO relative to each other, and the service's own sharded
  // ingestBatch preserves per-object order inside each batch.
  server.registerMethod("ingestBatch", [&service](const Bytes& args) -> Bytes {
    std::vector<db::SensorReading> readings = decodeReadingBatch(args);
    service.ingestBatch(readings);
    return {};
  });

  // The replay half of a handoff: stores without firing triggers or passing
  // the ingest tap (see LocationService::importBatch). Connection lane —
  // a handoff's import must not overtake its earlier imports.
  server.registerMethod("importBatch", [&service](const Bytes& args) -> Bytes {
    std::vector<db::SensorReading> readings = decodeReadingBatch(args);
    service.importBatch(readings);
    return {};
  });

  server.registerMethod(
      "locate",
      [&service](const Bytes& args) -> Bytes {
        ByteReader r(args);
        util::MobileObjectId object{r.str()};
        ByteWriter w;
        auto est = service.locateObject(object);
        w.boolean(est.has_value());
        if (est) encodeEstimate(w, *est);
        return w.take();
      },
      orb::RpcServer::roundRobinLanes());

  server.registerMethod(
      "locateSymbolic",
      [&service](const Bytes& args) -> Bytes {
        ByteReader r(args);
        util::MobileObjectId object{r.str()};
        auto symbolic = service.locateSymbolic(object);
        ByteWriter w;
        w.str(symbolic ? symbolic->str() : "");
        return w.take();
      },
      orb::RpcServer::roundRobinLanes());

  server.registerMethod(
      "probabilityInRegion",
      [&service](const Bytes& args) -> Bytes {
        ByteReader r(args);
        util::MobileObjectId object{r.str()};
        geo::Rect region = decodeRect(r);
        ByteWriter w;
        w.f64(service.probabilityInRegion(object, region));
        return w.take();
      },
      orb::RpcServer::roundRobinLanes());

  // The scatter-gather variant: the probability plus an evidence flag, so a
  // router can tell the owning shard's fused answer from the bare prior a
  // shard with no readings for the object would report.
  server.registerMethod(
      "probabilityInRegionEx",
      [&service](const Bytes& args) -> Bytes {
        ByteReader r(args);
        util::MobileObjectId object{r.str()};
        geo::Rect region = decodeRect(r);
        auto state = service.fusedStateFor(object);
        ByteWriter w;
        w.f64(service.engine().probabilityInRegion(region, *state));
        w.boolean(!state->active.empty());
        return w.take();
      },
      orb::RpcServer::roundRobinLanes());

  server.registerMethod(
      "objectsInRegion",
      [&service](const Bytes& args) -> Bytes {
        ByteReader r(args);
        geo::Rect region = decodeRect(r);
        double minProbability = r.f64();
        auto members = service.objectsInRegion(region, minProbability);
        ByteWriter w;
        w.u32(static_cast<std::uint32_t>(members.size()));
        for (const auto& [object, probability] : members) {
          w.str(object.str());
          w.f64(probability);
        }
        return w.take();
      },
      orb::RpcServer::roundRobinLanes());

  // The replication/handoff export: one object's full history ring, in
  // insertion order. Routed by hash(object) — the SAME lane rule as "ingest"
  // (the object id is the first wire field here, the fourth there) — so an
  // export enqueued behind pending ingests for the object observes them all:
  // the property handoff relies on to not lose in-flight readings.
  server.registerMethod(
      "exportReadings",
      [&service](const Bytes& args) -> Bytes {
        ByteReader r(args);
        util::MobileObjectId object{r.str()};
        return encodeReadingBatch(service.database().exportObjectLog(object));
      },
      [](const Bytes& payload, std::uintptr_t /*connection*/) {
        ByteReader r(payload);
        return std::hash<std::string>{}(r.str());
      });

  // Liveness probe: answers as long as the serving path is alive. Routers
  // use it to re-admit a shard that was marked down.
  server.registerMethod(
      "ping", [](const Bytes&) -> Bytes { return {}; }, orb::RpcServer::roundRobinLanes());

  // subscribe/unsubscribe keep the connection lane: a client that
  // unsubscribes right after subscribing must see the two execute in order.
  server.registerMethod("subscribe", [&service, &server](const Bytes& args) -> Bytes {
    ByteReader r(args);
    Subscription sub;
    sub.region = decodeRect(r);
    if (r.boolean()) sub.subject = util::MobileObjectId{r.str()};
    sub.threshold = r.f64();
    // Bridge notifications onto the ORB as events; the subscription id is
    // embedded in the topic so the client can dispatch.
    sub.callback = [&server](const Notification& n) {
      server.publish("notify." + std::to_string(n.id.value()), encodeNotification(n));
    };
    util::SubscriptionId id = service.subscribe(std::move(sub));
    ByteWriter w;
    w.u64(id.value());
    return w.take();
  });

  server.registerMethod("subscribeDensity", [&service, &server](const Bytes& args) -> Bytes {
    ByteReader r(args);
    DensitySubscription sub;
    sub.region = decodeRect(r);
    sub.minProbability = r.f64();
    sub.limit = static_cast<std::size_t>(r.u64());
    sub.callback = [&server](const DensityNotification& n) {
      server.publish("density." + std::to_string(n.id.value()), encodeDensityNotification(n));
    };
    LocationService::DensityHandle handle = service.subscribeDensity(std::move(sub));
    ByteWriter w;
    w.u64(handle.id.value());
    w.u64(handle.initialCount);
    return w.take();
  });

  server.registerMethod("unsubscribe", [&service](const Bytes& args) -> Bytes {
    ByteReader r(args);
    util::SubscriptionId id{r.u64()};
    ByteWriter w;
    w.boolean(service.unsubscribe(id));
    return w.take();
  });
}

RemoteLocationClient::RemoteLocationClient(std::shared_ptr<orb::RpcClient> rpc)
    : rpc_(std::move(rpc)) {
  mw::util::require(static_cast<bool>(rpc_), "RemoteLocationClient: null rpc client");
  rpc_->onEvent([this](const std::string& topic, const Bytes& payload) {
    constexpr std::string_view kPrefix = "notify.";
    constexpr std::string_view kDensityPrefix = "density.";
    if (topic.rfind(kDensityPrefix, 0) == 0) {
      std::uint64_t id = std::stoull(topic.substr(kDensityPrefix.size()));
      std::function<void(const DensityNotification&)> callback;
      {
        std::lock_guard lock(mutex_);
        auto it = densityCallbacks_.find(id);
        if (it != densityCallbacks_.end()) callback = it->second;
      }
      if (callback) callback(decodeDensityNotification(payload));
      return;
    }
    if (topic.rfind(kPrefix, 0) != 0) return;
    std::uint64_t id = std::stoull(topic.substr(kPrefix.size()));
    std::function<void(const Notification&)> callback;
    {
      std::lock_guard lock(mutex_);
      auto it = callbacks_.find(id);
      if (it != callbacks_.end()) callback = it->second;
    }
    if (callback) callback(decodeNotification(payload));
  });
}

RemoteLocationClient::~RemoteLocationClient() {
  // The rpc client may outlive this stub (shared connection pools), so the
  // stub must pull its handler out; onEvent blocks until any in-flight
  // delivery on the reader thread has drained.
  rpc_->onEvent(nullptr);
}

void RemoteLocationClient::ingest(const db::SensorReading& reading) {
  ByteWriter w;
  encodeReading(w, reading);
  rpc_->call("ingest", w.take());
}

void RemoteLocationClient::ingestAsync(const db::SensorReading& reading) {
  ByteWriter w;
  encodeReading(w, reading);
  rpc_->notify("ingest", w.take());
}

void RemoteLocationClient::ingestBatch(std::span<const db::SensorReading> readings) {
  if (readings.empty()) return;
  rpc_->call("ingestBatch", encodeReadingBatch(readings));
}

std::vector<db::SensorReading> RemoteLocationClient::exportReadings(
    const util::MobileObjectId& object) {
  ByteWriter w;
  w.str(object.str());
  return decodeReadingBatch(rpc_->call("exportReadings", w.take()));
}

void RemoteLocationClient::importBatch(std::span<const db::SensorReading> readings) {
  if (readings.empty()) return;
  rpc_->call("importBatch", encodeReadingBatch(readings));
}

void RemoteLocationClient::ingestBatchAsync(std::span<const db::SensorReading> readings) {
  if (readings.empty()) return;
  rpc_->notify("ingestBatch", encodeReadingBatch(readings));
}

std::optional<fusion::LocationEstimate> RemoteLocationClient::locate(
    const util::MobileObjectId& object) {
  ByteWriter w;
  w.str(object.str());
  Bytes reply = rpc_->call("locate", w.take());
  ByteReader r(reply);
  if (!r.boolean()) return std::nullopt;
  return decodeEstimate(r);
}

std::string RemoteLocationClient::locateSymbolic(const util::MobileObjectId& object) {
  ByteWriter w;
  w.str(object.str());
  Bytes reply = rpc_->call("locateSymbolic", w.take());
  ByteReader r(reply);
  return r.str();
}

double RemoteLocationClient::probabilityInRegion(const util::MobileObjectId& object,
                                                 const geo::Rect& region) {
  ByteWriter w;
  w.str(object.str());
  encodeRect(w, region);
  Bytes reply = rpc_->call("probabilityInRegion", w.take());
  ByteReader r(reply);
  return r.f64();
}

RemoteLocationClient::RegionProbability RemoteLocationClient::probabilityInRegionEx(
    const util::MobileObjectId& object, const geo::Rect& region) {
  ByteWriter w;
  w.str(object.str());
  encodeRect(w, region);
  Bytes reply = rpc_->call("probabilityInRegionEx", w.take());
  ByteReader r(reply);
  RegionProbability result;
  result.probability = r.f64();
  result.hasEvidence = r.boolean();
  return result;
}

std::vector<std::pair<util::MobileObjectId, double>> RemoteLocationClient::objectsInRegion(
    const geo::Rect& region, double minProbability) {
  ByteWriter w;
  encodeRect(w, region);
  w.f64(minProbability);
  Bytes reply = rpc_->call("objectsInRegion", w.take());
  ByteReader r(reply);
  std::vector<std::pair<util::MobileObjectId, double>> members;
  const std::uint32_t count = r.u32();
  members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    util::MobileObjectId object{r.str()};
    double probability = r.f64();
    members.emplace_back(std::move(object), probability);
  }
  return members;
}

void RemoteLocationClient::ping() { rpc_->call("ping", {}); }

void RemoteLocationClient::setCallTimeout(util::Duration timeout) {
  rpc_->setCallTimeout(timeout);
}

util::SubscriptionId RemoteLocationClient::subscribe(
    const geo::Rect& region, std::optional<util::MobileObjectId> subject, double threshold,
    std::function<void(const Notification&)> callback) {
  ByteWriter w;
  encodeRect(w, region);
  w.boolean(subject.has_value());
  if (subject) w.str(subject->str());
  w.f64(threshold);
  Bytes reply = rpc_->call("subscribe", w.take());
  ByteReader r(reply);
  util::SubscriptionId id{r.u64()};
  {
    std::lock_guard lock(mutex_);
    callbacks_[id.value()] = std::move(callback);
  }
  return id;
}

RemoteLocationClient::DensityHandle RemoteLocationClient::subscribeDensity(
    const geo::Rect& region, double minProbability, std::size_t limit,
    std::function<void(const DensityNotification&)> callback) {
  ByteWriter w;
  encodeRect(w, region);
  w.f64(minProbability);
  w.u64(limit);
  Bytes reply = rpc_->call("subscribeDensity", w.take());
  ByteReader r(reply);
  DensityHandle handle;
  handle.id = util::SubscriptionId{r.u64()};
  handle.initialCount = static_cast<std::size_t>(r.u64());
  {
    std::lock_guard lock(mutex_);
    densityCallbacks_[handle.id.value()] = std::move(callback);
  }
  return handle;
}

bool RemoteLocationClient::unsubscribe(util::SubscriptionId id) {
  {
    std::lock_guard lock(mutex_);
    callbacks_.erase(id.value());
    densityCallbacks_.erase(id.value());
  }
  ByteWriter w;
  w.u64(id.value());
  Bytes reply = rpc_->call("unsubscribe", w.take());
  ByteReader r(reply);
  return r.boolean();
}

// --- BatchingIngestClient ---------------------------------------------------------

BatchingIngestClient::BatchingIngestClient(std::shared_ptr<orb::RpcClient> rpc,
                                           Options options)
    : rpc_(std::move(rpc)), options_(options) {
  mw::util::require(static_cast<bool>(rpc_), "BatchingIngestClient: null rpc client");
  mw::util::require(options_.maxBatch >= 1, "BatchingIngestClient: maxBatch must be >= 1");
  buffer_.reserve(options_.maxBatch);
  flusher_ = std::thread([this] { flusherLoop(); });
}

BatchingIngestClient::~BatchingIngestClient() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  flusher_.join();
  // Flush on destruction: whatever is still buffered goes out now.
  std::lock_guard lock(mutex_);
  sendLocked();
}

void BatchingIngestClient::ingest(const db::SensorReading& reading) {
  std::lock_guard lock(mutex_);
  buffer_.push_back(reading);
  if (buffer_.size() >= options_.maxBatch) {
    sendLocked();
    return;
  }
  if (buffer_.size() == 1) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(options_.maxDelay.count());
    wake_.notify_all();  // re-arm the flusher's timer
  }
}

void BatchingIngestClient::flush() {
  std::lock_guard lock(mutex_);
  sendLocked();
}

void BatchingIngestClient::sendLocked() {
  if (buffer_.empty()) return;
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(buffer_.size()));
  for (const auto& reading : buffer_) encodeReading(w, reading);
  // Sending under the lock serializes batches in buffered order; a size
  // flush on a producer thread cannot overtake a deadline flush in flight.
  // Counters move before the send: once notify returns the peer may already
  // have processed the batch, and an observer who saw that effect must also
  // see the count (rolled back on the failure path below).
  batchesSent_.fetch_add(1, std::memory_order_relaxed);
  readingsSent_.fetch_add(buffer_.size(), std::memory_order_relaxed);
  try {
    rpc_->notify("ingestBatch", w.take());
  } catch (const util::TransportError&) {
    batchesSent_.fetch_sub(1, std::memory_order_relaxed);
    readingsSent_.fetch_sub(buffer_.size(), std::memory_order_relaxed);
    // Oneway semantics on a dead connection: the batch is dropped, like
    // readings pushed at a restarting service. Callers keep running, but
    // the loss is counted and logged so tests and operators can tell a
    // clean drain from a drop (this used to vanish silently, including in
    // the destructor's final flush).
    flushFailures_.fetch_add(1, std::memory_order_relaxed);
    droppedReadings_.fetch_add(buffer_.size(), std::memory_order_relaxed);
    util::logWarn("BatchingIngestClient",
                  "flush failed on dead connection; dropped ", buffer_.size(), " reading(s)");
  }
  buffer_.clear();
}

void BatchingIngestClient::flusherLoop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (stopping_) return;
    if (buffer_.empty()) {
      wake_.wait(lock, [&] { return stopping_ || !buffer_.empty(); });
      continue;
    }
    if (wake_.wait_until(lock, deadline_,
                         [&] { return stopping_ || buffer_.empty(); })) {
      continue;  // stopping, or a size/manual flush beat the deadline
    }
    sendLocked();  // deadline reached with readings still buffered
  }
}

}  // namespace mw::core
