// Sensor-trace recording and replay.
//
// The paper evaluates on live sensors; for repeatable experiments this
// module captures the adapter→service reading stream to a binary log and
// replays it later — optionally against a virtual clock so temporal
// degradation and TTL expiry behave exactly as they did live. This is the
// trace-driven-evaluation substrate (and a debugging tool for deployments).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "adapters/adapter.hpp"
#include "spatialdb/sensor.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"

namespace mw::core {

/// Accumulates readings in memory; encode() produces the log bytes.
class ReadingRecorder {
 public:
  /// A sink that both forwards to `downstream` and records.
  [[nodiscard]] adapters::LocationAdapter::Sink tee(
      adapters::LocationAdapter::Sink downstream);

  /// Records one reading directly.
  void record(const db::SensorReading& reading);

  [[nodiscard]] std::size_t size() const noexcept { return readings_.size(); }
  [[nodiscard]] const std::vector<db::SensorReading>& readings() const noexcept {
    return readings_;
  }

  /// Serializes the trace (header + readings in capture order).
  [[nodiscard]] util::Bytes encode() const;
  void saveFile(const std::string& path) const;

 private:
  std::vector<db::SensorReading> readings_;
};

/// Decodes a trace. Throws util::ParseError on malformed input.
std::vector<db::SensorReading> decodeTrace(const util::Bytes& data);
std::vector<db::SensorReading> loadTraceFile(const std::string& path);

/// Replays a trace into a sink. When `clock` is given, it is advanced to
/// each reading's detection time before delivery, so freshness-dependent
/// behaviour reproduces; the trace must then be time-ordered and must not
/// start before the clock's current instant. Returns the number delivered.
std::size_t replayTrace(const std::vector<db::SensorReading>& trace,
                        const adapters::LocationAdapter::Sink& sink,
                        util::VirtualClock* clock = nullptr);

}  // namespace mw::core
