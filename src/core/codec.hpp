// Wire encoding of MiddleWhere domain values for the MicroOrb RPC layer.
//
// Hand-rolled like a CORBA CDR mapping: each type has encode/decode pairs
// over the little-endian ByteWriter/ByteReader primitives.
#pragma once

#include "fusion/engine.hpp"
#include "geometry/rect.hpp"
#include "spatialdb/sensor.hpp"
#include "util/bytes.hpp"

namespace mw::core {

void encodeRect(util::ByteWriter& w, const geo::Rect& r);
geo::Rect decodeRect(util::ByteReader& r);

void encodeReading(util::ByteWriter& w, const db::SensorReading& reading);
db::SensorReading decodeReading(util::ByteReader& r);

void encodeEstimate(util::ByteWriter& w, const fusion::LocationEstimate& est);
fusion::LocationEstimate decodeEstimate(util::ByteReader& r);

}  // namespace mw::core
