// Distributed name service over the MicroOrb — the Gaia Space Repository
// (§7: "Gaia applications can discover the location service component of
// MiddleWhere by querying the Gaia Space Repository service, which provides
// a list of available services").
//
// The RegistryServer listens on TCP; services announce (name -> host:port)
// endpoints; applications look names up and connect directly — exactly the
// discovery-then-talk-directly pattern the paper describes.
//
// Liveness: an announce may carry a TTL; the entry expires unless the owner
// re-announces (heartbeats) before the TTL lapses, so a crashed service
// disappears from lookup()/list() instead of lingering as a dead endpoint.
// Expiry is lazy (checked on every read), matching the reading-store's lazy
// TTL discipline — no background reaper thread. A TTL of zero means the
// entry never expires (the pre-TTL behavior).
//
// Ownership fencing: an announce may carry a *generation* (nonzero). The
// registry keeps a per-name high-water mark that survives TTL expiry and
// withdraw(); a generational announce below the mark is rejected. This is
// what keeps a slow-but-alive primary from flapping ownership back after a
// backup promoted itself under generation+1 — the stale heartbeat still
// arrives, but the registry refuses it and the promoted endpoint stands.
// Generation zero opts out (legacy services that never fail over).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "orb/rpc.hpp"
#include "orb/tcp.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"

namespace mw::core {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
  /// Optional shared-memory lane ("shm://<shmName>"): when the announcing
  /// service also listens on an orb::ShmListener, this carries its name so
  /// colocated clients can skip the TCP loopback hop. Empty = TCP only.
  /// Whether the name is reachable is the connecting side's problem — an
  /// entry may be looked up from another host, where connecting falls back
  /// to host:port.
  std::string shmName;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

class RegistryServer {
 public:
  /// Binds to 127.0.0.1:<port> (0 = ephemeral).
  explicit RegistryServer(std::uint16_t port = 0);

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_->port(); }
  [[nodiscard]] std::size_t entryCount() const;

 private:
  struct Entry {
    Endpoint endpoint;
    /// Expiry instant; time_point::max() = never (TTL 0). Steady clock: the
    /// registry measures heartbeat gaps, not calendar time.
    std::chrono::steady_clock::time_point expiresAt;
    /// Generation the entry was announced under (0 = unfenced).
    std::uint64_t generation = 0;
  };

  /// Drops every expired entry (mutex_ held). Expiry mutates on the read
  /// path — that is what "lazy" means here — so the map is mutable.
  void pruneExpiredLocked() const;

  struct MetaEntry {
    util::Bytes value;
    std::uint64_t version = 0;
  };

  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, Entry> entries_;
  /// Per-name generation high-water marks. Deliberately NOT pruned with the
  /// entries: the fence must outlive the entry it protects, or a stale
  /// primary could reclaim a name the moment its promoted successor's
  /// heartbeat lapses.
  std::unordered_map<std::string, std::uint64_t> fences_;
  /// Versioned metadata blobs (putMeta/getMeta): cluster-wide shared state
  /// like the spatial territory map. Never expires; last-writer-wins by
  /// version number, so a slow writer republishing an old map loses.
  std::unordered_map<std::string, MetaEntry> meta_;
  orb::RpcServer rpc_;
  std::unique_ptr<orb::TcpListener> listener_;
};

class RegistryClient {
 public:
  RegistryClient(const std::string& host, std::uint16_t port);

  /// Publishes or replaces a service endpoint. With a nonzero `ttl` the
  /// entry expires unless re-announced (same name, any endpoint) within the
  /// TTL — call announce() periodically as a heartbeat. TTL zero (the
  /// default) registers the entry forever. A nonzero `generation` fences the
  /// name: the registry remembers the highest generation ever announced
  /// (surviving expiry and withdraw) and rejects announces below it.
  /// Returns false when the announce was fenced off; the caller has lost
  /// ownership of the name and should demote itself.
  bool announce(const std::string& name, const Endpoint& endpoint,
                util::Duration ttl = util::Duration::zero(), std::uint64_t generation = 0);
  /// Resolves a name; nullopt when not registered.
  [[nodiscard]] std::optional<Endpoint> lookup(const std::string& name);

  /// lookup() plus the generation the entry was announced under — what a
  /// warm standby needs to promote itself with generation+1.
  struct ResolvedEntry {
    Endpoint endpoint;
    std::uint64_t generation = 0;
  };
  [[nodiscard]] std::optional<ResolvedEntry> lookupEntry(const std::string& name);
  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> list();
  /// Removes an entry; false when absent.
  bool withdraw(const std::string& name);

  /// Versioned metadata blob the registry stores alongside endpoints —
  /// how the cluster publishes shared state (the spatial territory map)
  /// without a separate coordination service. The write lands iff `version`
  /// is strictly greater than the stored one (first write always lands), so
  /// concurrent publishers race monotonically and a stale republish is a
  /// no-op. Returns whether the write was accepted.
  bool putMeta(const std::string& name, const util::Bytes& value, std::uint64_t version);
  struct Meta {
    util::Bytes value;
    std::uint64_t version = 0;
  };
  /// Reads a metadata blob; nullopt when never written.
  [[nodiscard]] std::optional<Meta> getMeta(const std::string& name);

 private:
  std::shared_ptr<orb::RpcClient> rpc_;
};

}  // namespace mw::core
