// Distributed name service over the MicroOrb — the Gaia Space Repository
// (§7: "Gaia applications can discover the location service component of
// MiddleWhere by querying the Gaia Space Repository service, which provides
// a list of available services").
//
// The RegistryServer listens on TCP; services announce (name -> host:port)
// endpoints; applications look names up and connect directly — exactly the
// discovery-then-talk-directly pattern the paper describes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "orb/rpc.hpp"
#include "orb/tcp.hpp"

namespace mw::core {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

class RegistryServer {
 public:
  /// Binds to 127.0.0.1:<port> (0 = ephemeral).
  explicit RegistryServer(std::uint16_t port = 0);

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_->port(); }
  [[nodiscard]] std::size_t entryCount() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Endpoint> entries_;
  orb::RpcServer rpc_;
  std::unique_ptr<orb::TcpListener> listener_;
};

class RegistryClient {
 public:
  RegistryClient(const std::string& host, std::uint16_t port);

  /// Publishes or replaces a service endpoint.
  void announce(const std::string& name, const Endpoint& endpoint);
  /// Resolves a name; nullopt when not registered.
  [[nodiscard]] std::optional<Endpoint> lookup(const std::string& name);
  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> list();
  /// Removes an entry; false when absent.
  bool withdraw(const std::string& name);

 private:
  std::shared_ptr<orb::RpcClient> rpc_;
};

}  // namespace mw::core
