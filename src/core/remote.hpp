// Remote access to the Location Service over the MicroOrb (§7).
//
// "Gaia applications can discover the location service component of
// MiddleWhere by querying the Gaia Space Repository service ... applications
// can then talk directly to the location service. To access location
// information, we provide push and pull models."
//
// exposeLocationService() registers the RPC methods on a server; the
// RemoteLocationClient is the typed stub applications use. Subscriptions
// arrive back as MicroOrb events on topic "notify.<subscriptionId>".
//
// Concurrency model: the paper's deployment ran a single-threaded CORBA POA,
// and this layer used to mirror it with one mutex around every method. The
// LocationService is now thread-safe (reader/writer locks, striped reading
// store, epoch-stamped caches), so the gate is gone: pull queries call the
// service directly from whichever thread carries the request, and with
// RpcServer::enableDispatcher the server fans requests out over executor
// lanes. Ordering-sensitive methods route deterministically — "ingest" by
// hash(object) so one object's readings keep their relative order across
// lanes (the PR-3 shard invariant, lifted to the transport layer), and
// "ingestBatch" by connection so one adapter's batches stay FIFO — while
// "locate"/"locateSymbolic"/"probabilityInRegion" spread round-robin so a
// query storm is never serialized behind ingest traffic.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/location_service.hpp"
#include "orb/rpc.hpp"

namespace mw::core {

/// Registers the service's methods ("ingest", "ingestBatch", "importBatch",
/// "locate",
/// "locateSymbolic", "probabilityInRegion", "probabilityInRegionEx",
/// "objectsInRegion", "subscribe", "unsubscribe", "ping") on the RPC
/// server, with the lane routing rules described above.
/// Subscription notifications are published as events through the server.
/// The service must be configured (regions, sensors) before traffic arrives;
/// enable concurrency with server.enableDispatcher(lanes).
void exposeLocationService(orb::RpcServer& server, LocationService& service);

/// Typed client stub over an RpcClient connection.
class RemoteLocationClient {
 public:
  explicit RemoteLocationClient(std::shared_ptr<orb::RpcClient> rpc);

  /// Uninstalls the this-capturing event handler from the (possibly shared)
  /// RpcClient before the callback table dies; onEvent's quiesce guarantee
  /// makes this safe against a delivery in flight on the reader thread.
  ~RemoteLocationClient();

  RemoteLocationClient(const RemoteLocationClient&) = delete;
  RemoteLocationClient& operator=(const RemoteLocationClient&) = delete;

  /// Push a sensor reading to the remote service (adapter path).
  void ingest(const db::SensorReading& reading);

  /// Oneway variant: returns as soon as the reading is on the wire, without
  /// waiting for the service to process it (high-rate adapters).
  void ingestAsync(const db::SensorReading& reading);

  /// Ships a whole batch as ONE wire frame feeding
  /// LocationService::ingestBatch — one framing + syscall round trip instead
  /// of one per reading. Blocks until the server has processed the batch.
  void ingestBatch(std::span<const db::SensorReading> readings);

  /// Oneway batch: one frame on the wire, no reply awaited.
  void ingestBatchAsync(std::span<const db::SensorReading> readings);

  /// The remote service's full stored history for one object, insertion
  /// order (replication / handoff transfer). Executes on the object's ingest
  /// lane, so it observes every ingest enqueued before it.
  [[nodiscard]] std::vector<db::SensorReading> exportReadings(
      const util::MobileObjectId& object);

  /// The replay half of a handoff: ships readings into the remote service's
  /// importBatch (stored without firing triggers or passing the ingest tap).
  /// Blocks until applied.
  void importBatch(std::span<const db::SensorReading> readings);

  [[nodiscard]] std::optional<fusion::LocationEstimate> locate(
      const util::MobileObjectId& object);

  /// Symbolic location as a GLOB string ("" when unknown).
  [[nodiscard]] std::string locateSymbolic(const util::MobileObjectId& object);

  [[nodiscard]] double probabilityInRegion(const util::MobileObjectId& object,
                                           const geo::Rect& region);

  /// probabilityInRegion plus whether the answering service actually holds
  /// sensor evidence for the object. A service with no readings answers with
  /// the bare prior mass of the region — indistinguishable from a real fused
  /// value by number alone, so scatter-gather routers need the flag to pick
  /// the owning shard's answer over the (N-1) evidence-free priors.
  struct RegionProbability {
    double probability = 0;
    bool hasEvidence = false;
  };
  [[nodiscard]] RegionProbability probabilityInRegionEx(const util::MobileObjectId& object,
                                                        const geo::Rect& region);

  /// Region population query (mirrors LocationService::objectsInRegion):
  /// members with fused P(inside) >= minProbability, sorted by descending
  /// probability with ties broken by object id.
  [[nodiscard]] std::vector<std::pair<util::MobileObjectId, double>> objectsInRegion(
      const geo::Rect& region, double minProbability);

  /// Round-trip liveness check; throws like any call when the peer is gone.
  void ping();

  /// Deadline applied to every blocking call made through this stub
  /// (delegates to the underlying RpcClient).
  void setCallTimeout(util::Duration timeout);

  /// Region-entry subscription; notifications arrive on the callback from
  /// the client's event thread.
  util::SubscriptionId subscribe(const geo::Rect& region,
                                 std::optional<util::MobileObjectId> subject, double threshold,
                                 std::function<void(const Notification&)> callback);

  /// Aggregate (density) subscription; count-change notifications arrive on
  /// topic "density.<id>". The handle carries the region population at
  /// subscribe time so monitors start from the true count.
  struct DensityHandle {
    util::SubscriptionId id;
    std::size_t initialCount = 0;
  };
  DensityHandle subscribeDensity(const geo::Rect& region, double minProbability,
                                 std::size_t limit,
                                 std::function<void(const DensityNotification&)> callback);

  bool unsubscribe(util::SubscriptionId id);

  /// The underlying connection — escape hatch for sideband methods hosts
  /// register on the same server next to the service (e.g. the cluster's
  /// handoff.* / territory.* protocols).
  [[nodiscard]] const std::shared_ptr<orb::RpcClient>& rpc() const noexcept { return rpc_; }

 private:
  std::shared_ptr<orb::RpcClient> rpc_;
  std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::function<void(const Notification&)>> callbacks_;
  std::unordered_map<std::uint64_t, std::function<void(const DensityNotification&)>>
      densityCallbacks_;
};

/// Adapter-side coalescer: buffers single readings and ships them as oneway
/// "ingestBatch" frames, cutting per-reading framing + syscall cost for
/// high-rate adapters. A batch goes on the wire when `maxBatch` readings are
/// buffered, when `maxDelay` (wall clock — this is wire pacing, not model
/// time) has elapsed since the first buffered reading, on flush(), and on
/// destruction. Sends happen under the buffer lock, so readings from any
/// number of producer threads leave in buffered order. ingest() fits
/// adapters::LocationAdapter::Sink directly.
class BatchingIngestClient {
 public:
  struct Options {
    std::size_t maxBatch = 64;
    util::Duration maxDelay = util::msec(5);
  };

  explicit BatchingIngestClient(std::shared_ptr<orb::RpcClient> rpc)
      : BatchingIngestClient(std::move(rpc), Options()) {}
  BatchingIngestClient(std::shared_ptr<orb::RpcClient> rpc, Options options);
  ~BatchingIngestClient();

  BatchingIngestClient(const BatchingIngestClient&) = delete;
  BatchingIngestClient& operator=(const BatchingIngestClient&) = delete;

  /// Buffers one reading; sends a batch when the size threshold is reached.
  void ingest(const db::SensorReading& reading);

  /// Sends whatever is buffered now.
  void flush();

  [[nodiscard]] std::uint64_t batchesSent() const noexcept {
    return batchesSent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t readingsSent() const noexcept {
    return readingsSent_.load(std::memory_order_relaxed);
  }
  /// Flushes that failed on a dead connection. Oneway semantics drop the
  /// batch (callers keep running), but the drop is counted and logged at
  /// warn — it used to vanish silently, which made "did the destructor lose
  /// my readings?" unanswerable in tests.
  [[nodiscard]] std::uint64_t flushFailures() const noexcept {
    return flushFailures_.load(std::memory_order_relaxed);
  }
  /// Readings lost to failed flushes (the sum of the dropped batch sizes).
  [[nodiscard]] std::uint64_t droppedReadings() const noexcept {
    return droppedReadings_.load(std::memory_order_relaxed);
  }

 private:
  /// Encodes and sends buffer_ (mutex_ held), clearing it.
  void sendLocked();
  void flusherLoop();

  std::shared_ptr<orb::RpcClient> rpc_;
  Options options_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<db::SensorReading> buffer_;
  std::chrono::steady_clock::time_point deadline_{};
  bool stopping_ = false;
  std::atomic<std::uint64_t> batchesSent_{0};
  std::atomic<std::uint64_t> readingsSent_{0};
  std::atomic<std::uint64_t> flushFailures_{0};
  std::atomic<std::uint64_t> droppedReadings_{0};
  std::thread flusher_;
};

}  // namespace mw::core
