// Remote access to the Location Service over the MicroOrb (§7).
//
// "Gaia applications can discover the location service component of
// MiddleWhere by querying the Gaia Space Repository service ... applications
// can then talk directly to the location service. To access location
// information, we provide push and pull models."
//
// exposeLocationService() registers the RPC methods on a server; the
// RemoteLocationClient is the typed stub applications use. Subscriptions
// arrive back as MicroOrb events on topic "notify.<subscriptionId>".
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/location_service.hpp"
#include "orb/rpc.hpp"

namespace mw::core {

/// Registers the service's methods ("ingest", "locate", "locateSymbolic",
/// "probabilityInRegion", "subscribe", "unsubscribe") on the RPC server.
/// Subscription notifications are published as events through the server.
///
/// The LocationService itself is single-threaded; requests may arrive
/// concurrently from several transports' reader threads, so every method is
/// serialized through one internal mutex (the CORBA single-threaded-POA
/// model the paper's deployment used).
void exposeLocationService(orb::RpcServer& server, LocationService& service);

/// Typed client stub over an RpcClient connection.
class RemoteLocationClient {
 public:
  explicit RemoteLocationClient(std::shared_ptr<orb::RpcClient> rpc);

  /// Push a sensor reading to the remote service (adapter path).
  void ingest(const db::SensorReading& reading);

  /// Oneway variant: returns as soon as the reading is on the wire, without
  /// waiting for the service to process it (high-rate adapters).
  void ingestAsync(const db::SensorReading& reading);

  [[nodiscard]] std::optional<fusion::LocationEstimate> locate(
      const util::MobileObjectId& object);

  /// Symbolic location as a GLOB string ("" when unknown).
  [[nodiscard]] std::string locateSymbolic(const util::MobileObjectId& object);

  [[nodiscard]] double probabilityInRegion(const util::MobileObjectId& object,
                                           const geo::Rect& region);

  /// Region-entry subscription; notifications arrive on the callback from
  /// the client's event thread.
  util::SubscriptionId subscribe(const geo::Rect& region,
                                 std::optional<util::MobileObjectId> subject, double threshold,
                                 std::function<void(const Notification&)> callback);
  bool unsubscribe(util::SubscriptionId id);

 private:
  std::shared_ptr<orb::RpcClient> rpc_;
  std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::function<void(const Notification&)>> callbacks_;
};

}  // namespace mw::core
