#include "core/middlewhere.hpp"

#include <algorithm>
#include <thread>

#include "orb/transport.hpp"

namespace mw::core {

std::size_t Middlewhere::defaultDispatchLanes() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 2 : hw, 2, 8);
}

Middlewhere::Middlewhere(const util::Clock& clock, geo::Rect universe, glob::FrameTree frames)
    : clock_(clock), db_(clock, universe, std::move(frames)) {
  service_ = std::make_unique<LocationService>(clock_, db_);
  exposeLocationService(rpcServer_, *service_);
  rpcServer_.enableDispatcher(defaultDispatchLanes());
}

Middlewhere::Middlewhere(const util::Clock& clock, geo::Rect universe,
                         const std::string& rootFrame)
    : clock_(clock), db_(clock, universe, rootFrame) {
  service_ = std::make_unique<LocationService>(clock_, db_);
  exposeLocationService(rpcServer_, *service_);
  rpcServer_.enableDispatcher(defaultDispatchLanes());
}

std::uint16_t Middlewhere::listen(std::uint16_t port) {
  listener_ = std::make_unique<orb::TcpListener>(
      port, [this](std::shared_ptr<orb::Transport> t) { rpcServer_.serve(std::move(t)); });
  return listener_->port();
}

std::unique_ptr<RemoteLocationClient> Middlewhere::connectRemote(const std::string& host,
                                                                 std::uint16_t port) {
  auto transport = orb::tcpConnect(host, port);
  return std::make_unique<RemoteLocationClient>(std::make_shared<orb::RpcClient>(transport));
}

std::unique_ptr<RemoteLocationClient> Middlewhere::connectLocal() {
  auto [clientSide, serverSide] = orb::makeInProcPair();
  rpcServer_.serve(serverSide);
  return std::make_unique<RemoteLocationClient>(std::make_shared<orb::RpcClient>(clientSide));
}

}  // namespace mw::core
