// Personnel Locator (§8.4, text interface in place of the voice one).
//
// "A user asks the computer to locate a person or an object using a speech
// interface. The application then queries the spatial database for the
// required info, and replies verbally." Here the dialogue is text: the
// program runs a few scripted queries; pass names as argv to query those
// instead.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "adapters/rfid.hpp"
#include "adapters/ubisense.hpp"
#include "core/middlewhere.hpp"
#include "sim/blueprint.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace {

using namespace mw;
using util::MobileObjectId;

std::string answer(core::LocationService& svc, const std::string& name) {
  MobileObjectId person{name};
  auto symbolic = svc.locateSymbolic(person);
  auto est = svc.locateObject(person);
  std::ostringstream os;
  if (!symbolic || !est) {
    os << "I do not know where " << name << " is.";
    return os.str();
  }
  os << name << " is in " << symbolic->str() << " (confidence: " << fusion::toString(est->cls)
     << ", p=" << est->probability << ").";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  util::VirtualClock clock;
  sim::Blueprint building = sim::generateBlueprint({.building = "SC", .roomsPerSide = 4});
  core::Middlewhere mw(clock, building.universe, building.frames());
  building.populate(mw.database());
  mw.locationService().connectivity() = building.connectivity();
  auto& svc = mw.locationService();

  sim::World world(building, 77);
  world.addPerson({MobileObjectId{"alice"}, "101", 4.0, /*carryTag=*/1.0});
  world.addPerson({MobileObjectId{"bob"}, "153", 4.0, /*carryTag=*/1.0});
  world.addPerson({MobileObjectId{"carol"}, "104", 4.0, /*carryTag=*/0.0, /*carryBadge=*/1.0});

  auto ubi = std::make_shared<adapters::UbisenseAdapter>(
      util::AdapterId{"ubi-main"}, util::SensorId{"ubi-1"},
      adapters::UbisenseConfig{building.universe, 0.5, 0.9, util::sec(5), ""});
  ubi->registerWith(mw.database());
  // Carol has no tag: only the RFID base station in 104 sees her badge.
  auto rfid = std::make_shared<adapters::RfidBadgeAdapter>(
      util::AdapterId{"rf-104"}, util::SensorId{"rf-104"},
      adapters::RfidConfig{building.centerOf("104"), 15.0, 0.9, util::sec(60), ""});
  rfid->registerWith(mw.database());

  sim::Scenario scenario(clock, world, [&](const db::SensorReading& r) { svc.ingest(r); });
  scenario.addAdapter(ubi, util::sec(1));
  scenario.addAdapter(rfid, util::sec(2));
  scenario.run(util::sec(10));

  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) queries.emplace_back(argv[i]);
  if (queries.empty()) queries = {"alice", "bob", "carol", "mallory"};

  for (const auto& q : queries) {
    std::cout << "> where is " << q << "?\n";
    std::cout << "  " << answer(svc, q) << "\n";
  }

  // Also: object queries against the spatial database ("Where is the nearest
  // region that has power outlets?" style, §5.1).
  std::cout << "> which rooms exist on this floor?\n  ";
  for (const auto& row : mw.database().objectsOfType(db::ObjectType::Room)) {
    std::cout << row.id << " ";
  }
  std::cout << "\n";
  return 0;
}
