// Building operations dashboard: a wide deployment at a glance.
//
// Combines the region-based query ("who are the people in room X?", §1.2),
// symbolic resolution, sensor-health monitoring (the §11 "deploy the
// middleware widely" operations concern) and the §5.1 query language in one
// periodic report, over a two-floor building with a dozen occupants and a
// partially failed sensor fleet.
#include <iomanip>
#include <iostream>

#include "adapters/rfid.hpp"
#include "adapters/ubisense.hpp"
#include "core/middlewhere.hpp"
#include "sim/blueprint.hpp"
#include "sim/scenario.hpp"
#include "spatialdb/query_language.hpp"
#include "sim/world.hpp"

int main() {
  using namespace mw;
  using util::MobileObjectId;

  util::VirtualClock clock;
  sim::Blueprint building =
      sim::generateBlueprint({.building = "HQ", .floors = 2, .roomsPerSide = 4});
  core::Middlewhere mw(clock, building.universe, building.frames());
  building.populate(mw.database());
  mw.locationService().connectivity() = building.connectivity();
  auto& svc = mw.locationService();

  sim::World world(building, 4711);
  for (int i = 0; i < 12; ++i) {
    std::string start = (i % 2 ? "1" : "2") + std::string("0") + std::to_string(1 + i % 4);
    world.addPerson({MobileObjectId{"emp-" + std::to_string(i)}, start, 4.0, 1.0, 1.0, 0.0});
  }

  sim::Scenario scenario(clock, world, [&](const db::SensorReading& r) { svc.ingest(r); });
  // Ubisense per floor; the floor-2 unit is "broken" (never sampled).
  auto ubi1 = std::make_shared<adapters::UbisenseAdapter>(
      util::AdapterId{"ubi-f1"}, util::SensorId{"ubi-f1"},
      adapters::UbisenseConfig{building.floorOutlines[0], 0.5, 0.9, util::sec(5), ""});
  ubi1->registerWith(mw.database());
  scenario.addAdapter(ubi1, util::sec(1));
  auto ubi2 = std::make_shared<adapters::UbisenseAdapter>(
      util::AdapterId{"ubi-f2"}, util::SensorId{"ubi-f2"},
      adapters::UbisenseConfig{building.floorOutlines[1], 0.5, 0.9, util::sec(5), ""});
  ubi2->registerWith(mw.database());  // registered but never scheduled: silent
  // RFID base stations cover floor 2's rooms, so its occupants stay visible.
  int rf = 0;
  for (const auto* room : building.properRooms()) {
    if (room->name[0] != '2') continue;
    auto adapter = std::make_shared<adapters::RfidBadgeAdapter>(
        util::AdapterId{"rf-" + room->name}, util::SensorId{"rf-" + std::to_string(rf++)},
        adapters::RfidConfig{room->rect.center(), 15.0, 0.9, util::sec(30), ""});
    adapter->registerWith(mw.database());
    scenario.addAdapter(adapter, util::sec(2));
  }

  scenario.run(util::sec(120));

  // --- occupancy by room ----------------------------------------------------------
  std::cout << "=== occupancy ===\n";
  for (const auto* room : building.properRooms()) {
    auto inside = svc.objectsInRegion(room->rect, 0.5);
    if (inside.empty()) continue;
    std::cout << std::setw(6) << room->name << ": ";
    for (const auto& [who, p] : inside) std::cout << who << " ";
    std::cout << "\n";
  }

  // --- everyone, symbolically ------------------------------------------------------
  std::cout << "\n=== personnel ===\n";
  for (const auto& person : mw.database().knownMobileObjects()) {
    auto symbolic = svc.locateSymbolic(person);
    auto est = svc.locateObject(person);
    std::cout << std::setw(8) << person.str() << "  "
              << (symbolic ? symbolic->str() : std::string("<unknown>"));
    if (est) std::cout << "  (" << fusion::toString(est->cls) << ")";
    std::cout << "\n";
  }

  // --- sensor fleet health -----------------------------------------------------------
  std::cout << "\n=== sensor health ===\n";
  for (const auto& h : mw.database().sensorHealth()) {
    std::cout << std::setw(8) << h.sensorId.str() << "  " << std::setw(9) << h.sensorType
              << "  readings=" << std::setw(5) << h.readingCount << "  "
              << (h.silent ? "SILENT — check the device" : "ok") << "\n";
  }

  // --- facility query (§5.1 style) -----------------------------------------------------
  std::cout << "\n=== rooms on floor 2 (query language) ===\n";
  for (const auto& row :
       mw.database().query(db::compileQuery("type = Room and prefix = \"HQ/2\""))) {
    std::cout << row.fullGlob() << " ";
  }
  std::cout << "\n";
  return 0;
}
