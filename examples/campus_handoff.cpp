// Outdoor-to-indoor handoff (§1: "GPS is the de facto location technology
// for wide outdoor areas; however it does not work in covered areas or
// indoors"; §3: the hierarchical model suits "both outdoor and indoor
// environments").
//
// A commuter crosses the campus with a GPS receiver (15 ft accuracy,
// satellite lock outdoors only), enters the building (GPS loses lock), and
// is picked up by the indoor Ubisense deployment (6" accuracy). The demo
// prints how the fused estimate's resolution and symbolic name change
// through the handoff.
#include <iostream>

#include "adapters/gps.hpp"
#include "adapters/ubisense.hpp"
#include "core/middlewhere.hpp"
#include "sim/blueprint.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

int main() {
  using namespace mw;
  using util::MobileObjectId;

  util::VirtualClock clock;
  sim::Blueprint building = sim::generateBlueprint({.building = "campus", .roomsPerSide = 3});
  // The universe is the whole campus: the building plus 80 ft of grounds on
  // every side.
  geo::Rect campus = building.universe.inflated(80);
  core::Middlewhere mw(clock, campus, building.frames());
  building.populate(mw.database());
  mw.locationService().connectivity() = building.connectivity();
  auto& svc = mw.locationService();
  // Name the grounds so symbolic queries answer something outdoors too.
  svc.defineRegion("campus/grounds", campus);

  sim::World world(building, 99);
  world.addPerson({MobileObjectId{"commuter"}, "101", 5.0, /*carryTag=*/1.0,
                   /*carryBadge=*/0.0, /*carryGps=*/1.0});

  auto gps = std::make_shared<adapters::GpsAdapter>(
      util::AdapterId{"gps"}, util::SensorId{"gps-1"},
      adapters::GpsConfig{15.0, 1.0, util::sec(10), ""});
  gps->registerWith(mw.database());
  auto ubi = std::make_shared<adapters::UbisenseAdapter>(
      util::AdapterId{"ubi"}, util::SensorId{"ubi-1"},
      adapters::UbisenseConfig{building.universe, 0.5, 1.0, util::sec(5), ""});
  ubi->registerWith(mw.database());

  sim::Scenario scenario(clock, world, [&](const db::SensorReading& r) { svc.ingest(r); });
  scenario.addAdapter(gps, util::sec(2));
  scenario.addAdapter(ubi, util::sec(1));

  auto report = [&](const char* phase) {
    auto est = svc.locateObject(MobileObjectId{"commuter"});
    auto symbolic = svc.locateSymbolic(MobileObjectId{"commuter"});
    std::cout << phase << ": ";
    if (!est) {
      std::cout << "unlocatable\n";
      return;
    }
    std::cout << "resolution " << est->region.width() << " ft, p=" << est->probability
              << ", at " << (symbolic ? symbolic->str() : std::string("?")) << "\n";
  };

  // Phase 1: on the grounds, far from the building — GPS only.
  world.setOutdoors(MobileObjectId{"commuter"}, true);
  world.teleport(MobileObjectId{"commuter"}, campus.lo() + geo::Point2{20, 20});
  scenario.run(util::sec(10));
  report("outdoors (GPS)       ");

  // Phase 2: at the entrance — still outdoors, GPS fix near the building.
  world.teleport(MobileObjectId{"commuter"},
                 building.universe.lo() + geo::Point2{-10, 10});
  scenario.run(util::sec(10));
  report("at the entrance (GPS)");

  // Phase 3: inside — GPS loses its lock, Ubisense takes over.
  world.setOutdoors(MobileObjectId{"commuter"}, false);
  world.teleport(MobileObjectId{"commuter"}, building.centerOf("101"));
  world.sendTo(MobileObjectId{"commuter"}, "101");  // settle in 101
  scenario.run(util::sec(15));
  report("indoors (Ubisense)   ");

  // Phase 4: deep indoors, walking between rooms.
  world.sendTo(MobileObjectId{"commuter"}, "153");
  scenario.run(util::sec(30));
  report("after walking to 153 ");
  return 0;
}
