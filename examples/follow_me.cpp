// Follow-Me application (§8.1).
//
// "If a user moves out of the vicinity of the display he is using, the
// application will automatically suspend the session. When a user is
// detected in the vicinity of any other display or workstation, the session
// is automatically migrated and resumed at that machine."
//
// A UserProxy manages the session, discovers the user's location through
// MiddleWhere, and migrates the session to the nearest suitable display.
#include <iostream>
#include <optional>

#include "adapters/ubisense.hpp"
#include "core/middlewhere.hpp"
#include "sim/blueprint.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace {

using namespace mw;
using util::MobileObjectId;

/// The per-user session manager from §8.1.
class UserProxy {
 public:
  UserProxy(MobileObjectId user, core::LocationService& svc, double vicinity)
      : user_(std::move(user)), svc_(svc), vicinity_(vicinity) {}

  /// Re-evaluates where the session should live; returns true on migration.
  bool tick() {
    auto est = svc_.locateObject(user_);
    if (!est) {
      return suspend("location unknown");
    }
    auto display = svc_.nearestObjectOfType(user_, db::ObjectType::Display);
    if (!display) return suspend("no display available");
    double distance = svc_.database().universeMbr(*display).distanceTo(est->region.center());
    if (distance > vicinity_) {
      return suspend("nearest display " + display->id.str() + " is " +
                     std::to_string(distance) + " ft away");
    }
    if (activeDisplay_ && *activeDisplay_ == display->id.str()) return false;
    std::cout << "[follow-me] resuming session of " << user_ << " on " << display->id
              << " (distance " << distance << " ft)\n";
    activeDisplay_ = display->id.str();
    return true;
  }

  [[nodiscard]] std::optional<std::string> activeDisplay() const { return activeDisplay_; }

 private:
  bool suspend(const std::string& reason) {
    if (!activeDisplay_) return false;
    std::cout << "[follow-me] suspending session of " << user_ << " (" << reason << ")\n";
    activeDisplay_.reset();
    return true;
  }

  MobileObjectId user_;
  core::LocationService& svc_;
  double vicinity_;
  std::optional<std::string> activeDisplay_;
};

void installDisplay(db::SpatialDatabase& database, const char* id, geo::Point2 where) {
  db::SpatialObjectRow row;
  row.id = util::SpatialObjectId{id};
  row.globPrefix = database.frames().rootName();
  row.objectType = db::ObjectType::Display;
  row.geometryType = db::GeometryType::Point;
  row.points = {where};
  database.addObject(row);
}

}  // namespace

int main() {
  util::VirtualClock clock;
  sim::Blueprint building = sim::generateBlueprint({.building = "SC", .roomsPerSide = 4});
  core::Middlewhere mw(clock, building.universe, building.frames());
  building.populate(mw.database());
  mw.locationService().connectivity() = building.connectivity();
  auto& svc = mw.locationService();

  // A display in each of three rooms.
  installDisplay(mw.database(), "display-101", building.centerOf("101") + geo::Point2{8, 0});
  installDisplay(mw.database(), "display-103", building.centerOf("103") + geo::Point2{8, 0});
  installDisplay(mw.database(), "display-154", building.centerOf("154") + geo::Point2{8, 0});

  sim::World world(building, 21);
  world.addPerson({MobileObjectId{"tom"}, "101", 5.0, /*carryTag=*/1.0});

  auto ubi = std::make_shared<adapters::UbisenseAdapter>(
      util::AdapterId{"ubi-main"}, util::SensorId{"ubi-1"},
      adapters::UbisenseConfig{building.universe, 0.5, 1.0, util::sec(5), ""});
  ubi->registerWith(mw.database());
  sim::Scenario scenario(clock, world, [&](const db::SensorReading& r) { svc.ingest(r); });
  scenario.addAdapter(ubi, util::sec(1));

  UserProxy proxy(MobileObjectId{"tom"}, svc, /*vicinity=*/15.0);

  // Tom works in 101, walks to 103, then to 154; his session follows.
  for (const char* room : {"101", "103", "154"}) {
    world.sendTo(MobileObjectId{"tom"}, room);
    for (int i = 0; i < 15; ++i) {
      scenario.run(util::sec(2));
      proxy.tick();
    }
    std::cout << "tom is now in " << world.currentRoom(MobileObjectId{"tom"}).value_or("?")
              << "; session on " << proxy.activeDisplay().value_or("<suspended>") << "\n";
  }
  return 0;
}
