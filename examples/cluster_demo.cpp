// Cluster demo: the location service as N shard processes behind the
// registry — the paper's discovery-then-route pattern stretched over a
// partition.
//
// Stands up a live RegistryServer and two ShardHosts on distinct TCP ports,
// routes every object to its owning shard through a ClusterLocationService,
// shows cluster-wide region queries answered by scatter-gather, then kills
// one shard and demonstrates the degraded-but-answering failure mode plus
// probe-based re-admission after a restart.
#include <chrono>
#include <iostream>
#include <thread>

#include "cluster/cluster_location_service.hpp"
#include "cluster/shard_host.hpp"
#include "core/remote_registry.hpp"
#include "quality/error_model.hpp"

using namespace mw;
using util::MobileObjectId;

namespace {

// Every shard (and any oracle) must share one world configuration — fused
// answers only line up when the priors and sensor models do.
void configureWorld(core::Middlewhere& mw) {
  db::SpatialObjectRow room;
  room.id = util::SpatialObjectId{"roomA"};
  room.globPrefix = "SC";
  room.objectType = db::ObjectType::Room;
  room.geometryType = db::GeometryType::Polygon;
  room.points = {{0, 0}, {20, 0}, {20, 20}, {0, 20}};
  mw.database().addObject(room);

  db::SensorMeta ubi;
  ubi.sensorId = util::SensorId{"ubi-1"};
  ubi.sensorType = "Ubisense";
  ubi.errorSpec = quality::ubisenseSpec(1.0);
  ubi.scaleMisidentifyByArea = true;
  ubi.quality.ttl = util::sec(30);
  mw.database().registerSensor(ubi);
}

db::SensorReading reading(const util::Clock& clock, const std::string& object, geo::Point2 where) {
  db::SensorReading r;
  r.sensorId = util::SensorId{"ubi-1"};
  r.sensorType = "Ubisense";
  r.mobileObjectId = MobileObjectId{object};
  r.location = where;
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  return r;
}

std::unique_ptr<cluster::ShardHost> startShard(const util::Clock& clock, std::size_t index,
                                               std::size_t total, std::uint16_t registryPort) {
  cluster::ShardHost::Options opts;
  opts.index = index;
  opts.total = total;
  auto host = std::make_unique<cluster::ShardHost>(
      clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC", "127.0.0.1", registryPort, opts);
  configureWorld(host->core());
  host->start();
  return host;
}

}  // namespace

int main() {
  util::VirtualClock clock;

  // 1. The name service, then two shard processes announcing themselves as
  //    location.shard.0/2 and location.shard.1/2 with TTL heartbeats.
  core::RegistryServer registry;
  std::cout << "registry on port " << registry.port() << "\n";
  std::vector<std::unique_ptr<cluster::ShardHost>> shards;
  shards.push_back(startShard(clock, 0, 2, registry.port()));
  shards.push_back(startShard(clock, 1, 2, registry.port()));
  for (const auto& s : shards) {
    std::cout << "  " << s->name() << " serving on port " << s->port() << "\n";
  }

  // 2. The router resolves the topology from a bare registry.list() and
  //    presents the plain LocationService API.
  cluster::ClusterLocationService::Options opts;
  opts.retry.callDeadline = util::msec(500);
  opts.retry.maxRetries = 1;
  opts.retry.downAfterFailures = 2;
  opts.retry.probeInterval = util::msec(50);
  cluster::ClusterLocationService router("127.0.0.1", registry.port(), opts);
  std::cout << "router sees " << router.shardCount() << " shards\n";

  // 3. Object-keyed traffic routes by hash(object) to the owning shard.
  const std::vector<std::string> people = {"alice", "bob", "carol", "dave"};
  for (std::size_t i = 0; i < people.size(); ++i) {
    router.ingest(reading(clock, people[i], {3.0 + 3.0 * static_cast<double>(i), 5.0}));
    std::cout << "  " << people[i] << " -> shard " << router.shardFor(MobileObjectId{people[i]})
              << ", located in '" << router.locateSymbolic(MobileObjectId{people[i]}) << "'\n";
  }

  // 4. Region queries scatter to every shard and merge the disjoint
  //    populations — callers see one cluster-wide answer.
  const auto region = geo::Rect::fromOrigin({0, 0}, 20, 20);
  auto population = router.objectsInRegionDetailed(region, 0.5);
  std::cout << "objectsInRegion: " << population.members.size() << " people in roomA (from "
            << population.shardsAnswered << "/" << router.shardCount() << " shards)\n";

  // 5. Kill shard 1. The cluster keeps answering: the live shard's objects
  //    still resolve, scatter-gather returns partial results with the
  //    degraded flag, and the dead shard is marked down after consecutive
  //    failures.
  std::cout << "killing " << shards[1]->name() << "...\n";
  shards[1].reset();
  auto degraded = router.objectsInRegionDetailed(region, 0.5);
  std::cout << "objectsInRegion: " << degraded.members.size() << " people (degraded="
            << (degraded.degraded ? "true" : "false") << ", " << degraded.shardsAnswered << "/"
            << router.shardCount() << " shards answered)\n";
  auto stats = router.stats();
  std::cout << "shard 1 down=" << (stats.shards[1].down ? "true" : "false")
            << " failures=" << stats.shards[1].failures
            << "; failed routed calls=" << stats.failedRoutedCalls << "\n";

  // 6. Restart it. The heartbeat re-announces, refreshShardMap picks up the
  //    fresh endpoint, and the health probe re-admits the shard.
  std::cout << "restarting shard 1...\n";
  shards[1] = startShard(clock, 1, 2, registry.port());
  router.refreshShardMap();
  for (int i = 0; i < 100 && router.stats().shards[1].down; ++i) {
    router.probeDownShards();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::cout << "shard 1 down=" << (router.stats().shards[1].down ? "true" : "false")
            << " after probe\n";
  router.ingest(reading(clock, "erin", {10, 10}));
  std::cout << "erin -> shard " << router.shardFor(MobileObjectId{"erin"}) << ", located in '"
            << router.locateSymbolic(MobileObjectId{"erin"}) << "'\n";
  std::cout << "done\n";
  return 0;
}
