// Location-Based Notifications (§8.3).
//
// "Notifications are sent to people located in a particular geographical
// boundary ... The notification may be a message like 'The store is closing
// in five minutes'. This application is implemented by setting up location
// triggers in the target area, and maintaining a list of users in the
// region."
#include <iostream>
#include <set>
#include <string>

#include "adapters/ubisense.hpp"
#include "core/middlewhere.hpp"
#include "sim/blueprint.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

int main() {
  using namespace mw;
  using util::MobileObjectId;

  util::VirtualClock clock;
  sim::Blueprint building = sim::generateBlueprint({.building = "Mall", .roomsPerSide = 3});
  core::Middlewhere mw(clock, building.universe, building.frames());
  building.populate(mw.database());
  mw.locationService().connectivity() = building.connectivity();
  auto& svc = mw.locationService();

  sim::World world(building, 55);
  for (const char* person : {"shopper-1", "shopper-2", "shopper-3"}) {
    world.addPerson({MobileObjectId{person}, "101", 5.0, /*carryTag=*/1.0});
  }

  auto ubi = std::make_shared<adapters::UbisenseAdapter>(
      util::AdapterId{"ubi-mall"}, util::SensorId{"ubi-1"},
      adapters::UbisenseConfig{building.universe, 0.5, 1.0, util::sec(5), ""});
  ubi->registerWith(mw.database());
  sim::Scenario scenario(clock, world, [&](const db::SensorReading& r) { svc.ingest(r); });
  scenario.addAdapter(ubi, util::sec(1));

  // The "store" is room 102. Maintain the in-store roster with two
  // edge-triggered location triggers: entries add, exits are observed by the
  // service's exit re-evaluation.
  const geo::Rect store = building.roomNamed("102")->rect;
  std::set<std::string> inStore;
  svc.subscribe({store, std::nullopt, 0.5, std::nullopt, /*onlyOnEntry=*/true,
                 [&](const core::Notification& n) {
                   if (inStore.insert(n.object.str()).second) {
                     std::cout << "[roster] " << n.object << " entered the store (p="
                               << n.probability << ")\n";
                   }
                 }});

  // Send shoppers 1 and 2 into the store, keep 3 outside.
  world.sendTo(MobileObjectId{"shopper-1"}, "102");
  world.sendTo(MobileObjectId{"shopper-2"}, "102");
  world.sendTo(MobileObjectId{"shopper-3"}, "153");
  scenario.run(util::sec(90));

  // Closing time: notify everyone currently in the boundary. Re-validate the
  // roster with a region query before broadcasting.
  std::cout << "broadcasting closing notice...\n";
  for (const auto& [who, p] : svc.objectsInRegion(store, 0.5)) {
    std::cout << "[notify] to " << who << ": \"The store is closing in five minutes\" (p=" << p
              << ")\n";
  }
  for (const auto& name : inStore) {
    double p = svc.probabilityInRegion(MobileObjectId{name}, store);
    if (p < 0.5) {
      std::cout << "[roster] " << name << " appears to have left (p=" << p << ")\n";
    }
  }
  return 0;
}
